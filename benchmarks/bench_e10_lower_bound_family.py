"""E10 — the Section 1.1 tightness family 𝒫 ∪ ℬ (paths + path-with-claw).

The FO predicate "some vertex has degree > 2" distinguishes P_n from the
path-with-claw B_n, but the witness (the claw) can be n hops from the far
end — any algorithm needs Ω(n) rounds on this family, so the meta-theorem
cannot extend to it (its treedepth is Θ(log n), unbounded).

Series: the treedepth of the family grows with n (so no fixed d is a
valid promise: Algorithm 2 with fixed d correctly *rejects* large members)
while the generic baseline that does decide_pipeline the predicate pays linearly
growing rounds.
"""

import math

from repro.algebra import compile_formula
from repro.distributed import build_elimination_tree, gather_decide
from repro.graph import generators as gen
from repro.graph import properties as props
from repro.mso import formulas

from reporting import record_table

SIZES = (8, 16, 32, 64, 128)
FIXED_D = 3


def run_series():
    rows = []
    for n in SIZES:
        g = gen.path_with_claw(n)
        td_formula = math.ceil(math.log2(n + 1))  # td within +-1 of the path's
        elim = build_elimination_tree(g, d=FIXED_D)
        baseline = gather_decide(g, lambda h: props.max_degree(h) > 2)
        assert baseline.accepted  # the claw exists
        rows.append(
            (
                n,
                f"~{td_formula}",
                "accepted" if elim.accepted else "td > d reported",
                baseline.rounds,
            )
        )
    return rows


def test_e10_lower_bound_family(benchmark):
    rows = run_series()
    record_table(
        "E10",
        f"path+claw family: fixed d={FIXED_D} promise vs baseline rounds",
        ("path length", "treedepth", f"Algorithm 2 (d={FIXED_D})",
         "baseline rounds (Θ(n))"),
        rows,
    )
    # Large family members exceed any fixed treedepth promise...
    assert rows[-1][2] == "td > d reported"
    # ...and the baseline's rounds grow linearly with n.
    baseline_rounds = [r[3] for r in rows]
    assert baseline_rounds[-1] >= 4 * baseline_rounds[0]

    g = gen.path_with_claw(32)
    benchmark(lambda: gather_decide(g, lambda h: props.max_degree(h) > 2))


def test_e10_small_members_still_decidable(benchmark):
    # On members whose treedepth fits the promise, Theorem 6.1 decides the
    # degree predicate exactly.
    from repro.distributed import decide_pipeline

    automaton = compile_formula(formulas.exists_vertex_of_degree_greater(2), ())
    g = gen.path_with_claw(6)  # treedepth 4
    outcome = decide_pipeline(automaton, g, d=4)
    assert not outcome.treedepth_exceeded
    assert outcome.accepted
    path_only = gen.path(9)
    outcome2 = decide_pipeline(automaton, path_only, d=4)
    assert not outcome2.accepted
    record_table(
        "E10",
        "small members: Theorem 6.1 decides the degree predicate",
        ("graph", "degree>2 decided", "rounds"),
        [
            ("path_with_claw(6)", outcome.accepted, outcome.total_rounds),
            ("path(9)", outcome2.accepted, outcome2.total_rounds),
        ],
    )
    benchmark(lambda: decide_pipeline(automaton, g, d=4))
