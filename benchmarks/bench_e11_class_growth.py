"""E11 — Theorem 4.2's "constant-size" class machinery, measured.

|𝒞| depends on the formula and on the boundary size (= d), not on n.
Series: reachable homomorphism classes per catalog formula after running
on graphs of two different sizes at each d — the n-columns must agree,
while classes may grow with d.
"""

from repro.algebra import check, compile_formula
from repro.graph import generators as gen
from repro.mso import formulas
from repro.treedepth import best_heuristic_forest

from reporting import record_table

FORMULAS = {
    "triangle-free (FO)": formulas.triangle_free,
    "acyclic": formulas.acyclic,
    "2-colorable": lambda: formulas.k_colorable(2),
    "connected": formulas.connected,
    "C4-free": lambda: formulas.h_free(gen.cycle(4)),
    "perfect matching": formulas.has_perfect_matching,
}


def classes_after(formula, graphs):
    # Shallow (near-optimal) forests: |C| depends on the boundary size,
    # so the forest heuristic fixes the d the classes are counted at.
    automaton = compile_formula(formula, ())
    sizes = []
    for g in graphs:
        check(formula, g, best_heuristic_forest(g), automaton)
        sizes.append(automaton.num_classes())
    return sizes


def run_series():
    rows = []
    for name, factory in FORMULAS.items():
        for d in (2, 3):
            small = gen.random_bounded_treedepth(12, d, seed=d)
            large = gen.random_bounded_treedepth(48, d, seed=d + 100)
            after_small, after_large = classes_after(factory(), [small, large])
            rows.append((name, d, after_small, after_large))
    return rows


def test_e11_class_growth(benchmark):
    rows = run_series()
    record_table(
        "E11",
        "reachable homomorphism classes |C| (grows with d, bounded in n)",
        ("formula", "d", "|C| after n=12", "|C| after n=12+48"),
        rows,
    )
    # Running on a 4x larger graph may discover a few more reachable
    # classes but must stay within a constant factor — |C| is a function
    # of (formula, d) only.
    for name, d, small, large in rows:
        assert large <= 3 * small, (name, d, small, large)

    formula = formulas.k_colorable(2)
    benchmark(lambda: compile_formula(formula, ()))
