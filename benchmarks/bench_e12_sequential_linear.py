"""E12 — Courcelle on the canonical decomposition: linear time at fixed d.

The sequential Algorithm 1 (our engine) runs in O_φ,d(n): one leaf / glue
/ forget per elimination-tree node, over memoized transitions.  Series:
wall time of the decision run for growing n at fixed d; expected shape:
time per vertex stays within a constant band (linear scaling).
"""

import time

from repro.algebra import check, compile_formula
from repro.graph import generators as gen
from repro.mso import formulas
from repro.treedepth import dfs_elimination_forest

from reporting import record_table

SIZES = (200, 400, 800, 1600)


def run_series():
    formula = formulas.acyclic()
    automaton = compile_formula(formula, ())
    # Warm up the transition caches: the theory treats them as part of the
    # constant-size algorithm description.
    warm = gen.random_bounded_treedepth(64, 3, seed=1)
    check(formula, warm, dfs_elimination_forest(warm), automaton)
    rows = []
    for n in SIZES:
        g = gen.random_bounded_treedepth(n, 3, seed=n)
        forest = dfs_elimination_forest(g)
        start = time.perf_counter()
        check(formula, g, forest, automaton)
        elapsed = time.perf_counter() - start
        rows.append((n, f"{elapsed * 1000:.1f}", f"{elapsed / n * 1e6:.2f}"))
    return rows


def test_e12_sequential_linear(benchmark):
    rows = run_series()
    record_table(
        "E12",
        "sequential engine wall time vs n at d=3 (expect flat us/vertex)",
        ("n", "time (ms)", "us per vertex"),
        rows,
    )
    per_vertex = [float(r[2]) for r in rows]
    assert max(per_vertex) <= 6 * min(per_vertex), per_vertex

    formula = formulas.acyclic()
    automaton = compile_formula(formula, ())
    g = gen.random_bounded_treedepth(400, 3, seed=400)
    forest = dfs_elimination_forest(g)
    benchmark(lambda: check(formula, g, forest, automaton))
