"""E13 (ablation) — extended atoms vs literal quantifier compilation.

DESIGN §5.2 compiles pattern containment and degree predicates to direct
automata instead of chains of projections.  This ablation quantifies the
choice: the same property compiled both ways, comparing reachable class
counts and sequential run time.  Expected shape: the literal FO form pays
orders of magnitude more classes/time — which is why every practical
Courcelle engine ships extended atoms.
"""

import time

from repro.algebra import check, compile_formula
from repro.graph import generators as gen
from repro.mso import formulas
from repro.treedepth import optimal_elimination_forest

from reporting import record_table

CASES = [
    (
        "triangle containment",
        lambda: formulas.contains_subgraph(gen.triangle()),
        lambda: formulas.contains_subgraph_fo(gen.triangle()),
    ),
    (
        "degree > 2",
        lambda: formulas.exists_vertex_of_degree_greater(2),
        lambda: formulas.exists_vertex_of_degree_greater_fo(2),
    ),
]

GRAPHS = [gen.paw(), gen.cycle(5), gen.star(3), gen.random_connected_graph(7, 3, seed=1)]


def measure(formula):
    automaton = compile_formula(formula, ())
    start = time.perf_counter()
    verdicts = []
    for g in GRAPHS:
        verdicts.append(check(formula, g, optimal_elimination_forest(g), automaton))
    elapsed = time.perf_counter() - start
    return verdicts, automaton.num_classes(), elapsed


def run_series():
    rows = []
    for name, direct_factory, literal_factory in CASES:
        direct_verdicts, direct_classes, direct_time = measure(direct_factory())
        literal_verdicts, literal_classes, literal_time = measure(literal_factory())
        assert direct_verdicts == literal_verdicts, name
        rows.append(
            (
                name,
                direct_classes,
                literal_classes,
                f"{direct_time * 1000:.1f}",
                f"{literal_time * 1000:.1f}",
                f"x{literal_time / max(direct_time, 1e-9):.0f}",
            )
        )
    return rows


def test_e13_ablation_extended_atoms(benchmark):
    rows = run_series()
    record_table(
        "E13",
        "extended atoms vs literal FO quantifiers (same verdicts)",
        ("property", "|C| direct", "|C| literal", "direct ms", "literal ms",
         "slowdown"),
        rows,
    )
    # The direct automata must be no worse; typically far smaller.
    for name, direct_classes, literal_classes, *_ in rows:
        assert direct_classes <= literal_classes, name

    formula = formulas.contains_subgraph(gen.triangle())
    automaton = compile_formula(formula, ())
    g = gen.cycle(5)
    forest = optimal_elimination_forest(g)
    benchmark(lambda: check(formula, g, forest, automaton))
