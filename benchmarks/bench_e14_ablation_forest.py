"""E14 (ablation) — elimination-forest quality vs protocol cost.

Algorithm 2's greedy tree can be up to 2^{td} deep (Lemma 2.5) while the
optimal forest has depth td.  Since the convergecast pays one wave per
level and each table transfer costs |entries| rounds, the forest's depth
directly scales the checking phase.  This ablation runs the *sequential*
engine and the decision convergecast cost model on both forests.
Expected shape: deeper forests mean proportionally more checking rounds,
motivating the paper's focus on the 2^d depth guarantee.
"""

from repro.algebra import compile_formula, run_states
from repro.distributed import build_elimination_tree
from repro.graph import generators as gen
from repro.mso import formulas
from repro.treedepth import dfs_elimination_forest, optimal_elimination_forest, treedepth

from reporting import record_table


def run_series():
    rows = []
    for label, g in [
        ("P15", gen.path(15)),
        ("caterpillar", gen.caterpillar(6, 2)),
        ("random td<=3", gen.random_bounded_treedepth(14, 3, seed=9)),
    ]:
        td = treedepth(g)
        optimal = optimal_elimination_forest(g)
        dfs = dfs_elimination_forest(g)
        distributed = build_elimination_tree(g, d=td)
        assert distributed.accepted and distributed.forest is not None
        rows.append(
            (
                label,
                td,
                optimal.depth(),
                dfs.depth(),
                distributed.forest.depth(),
                2 ** td,
            )
        )
    return rows


def test_e14_ablation_forest_depth(benchmark):
    rows = run_series()
    record_table(
        "E14",
        "forest depth: optimal vs DFS vs Algorithm 2 (all <= 2^td)",
        ("graph", "td", "optimal depth", "DFS depth", "Algorithm 2 depth",
         "2^td bound"),
        rows,
    )
    for row in rows:
        _, td, opt_depth, dfs_depth, alg2_depth, bound = row
        assert opt_depth == td
        assert dfs_depth <= bound and alg2_depth <= bound

    # The engine's work scales with depth: time the same formula on both
    # forests of the path (depth 4 vs up to 15).
    g = gen.path(15)
    automaton = compile_formula(formulas.acyclic(), ())
    dfs = dfs_elimination_forest(g)
    benchmark(lambda: run_states(automaton, g, dfs))
