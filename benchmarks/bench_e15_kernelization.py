"""E15 — treedepth kernelization ([GajarskyH15], the paper's §1 citation).

Series: kernel size vs n at fixed treedepth and threshold — expected
flat (the kernel depends on (d, t, labels) only) — plus verdict
preservation across the catalog on the kernels.
"""

from repro.algebra import check, compile_formula
from repro.graph import generators as gen
from repro.kernel import kernelize
from repro.mso import formulas
from repro.treedepth import dfs_elimination_forest

from reporting import record_table

SIZES = (32, 128, 512)
THRESHOLD = 4


def run_series():
    rows = []
    formula = formulas.exists_vertex_of_degree_greater(2)
    automaton = compile_formula(formula, ())
    for legs in (4, 16, 64):
        g = gen.caterpillar(spine=6, legs=legs)
        forest = dfs_elimination_forest(g)
        kernel = kernelize(g, forest, THRESHOLD)
        original = check(formula, g, forest, automaton)
        reduced = check(formula, kernel.graph, kernel.forest, automaton)
        rows.append(
            (
                g.num_vertices(),
                kernel.graph.num_vertices(),
                len(kernel.removed),
                original,
                reduced,
                "OK" if original == reduced else "BROKEN",
            )
        )
    return rows


def test_e15_kernelization(benchmark):
    rows = run_series()
    record_table(
        "E15",
        f"kernel size vs n (caterpillars, threshold {THRESHOLD})",
        ("n", "kernel n", "removed", "verdict G", "verdict kernel", "check"),
        rows,
    )
    assert all(r[-1] == "OK" for r in rows)
    kernel_sizes = [r[1] for r in rows]
    assert len(set(kernel_sizes)) == 1  # independent of n

    g = gen.caterpillar(6, 64)
    forest = dfs_elimination_forest(g)
    benchmark(lambda: kernelize(g, forest, THRESHOLD))
