"""E1 — Theorem 6.1's headline: decision round count is independent of n.

Series: for d in {2, 3} and growing n, the total CONGEST rounds of the
full pipeline (Algorithm 2 + decision convergecast) for two catalog
formulas.  Expected shape: each (d, formula) row is *flat* in n, while the
graph keeps growing.
"""

from repro.algebra import compile_formula
from repro.distributed import decide_pipeline
from repro.graph import generators as gen
from repro.mso import formulas
from repro.obs import Tracer

from reporting import record_phase_table, record_table

SIZES = (16, 32, 64, 128)
# Formulas whose automata stay small at boundary size 2^d (see E13 for the
# ablation: literal quantifier chains blow up doubly-exponentially).
FORMULAS = {
    "triangle-free": formulas.h_free(gen.triangle()),
    "acyclic": formulas.acyclic(),
}


def run_series():
    rows = []
    for d in (2, 3):
        for name, formula in FORMULAS.items():
            automaton = compile_formula(formula, ())
            rounds = []
            for n in SIZES:
                g = gen.random_bounded_treedepth(n, depth=d, seed=n)
                outcome = decide_pipeline(automaton, g, d=d)
                assert not outcome.treedepth_exceeded
                rounds.append(outcome.total_rounds)
            rows.append((d, name) + tuple(rounds) + (
                "FLAT" if len(set(rounds)) == 1 else "varies",
            ))
    return rows


def test_e1_rounds_vs_n(benchmark):
    rows = run_series()
    record_table(
        "E1",
        "decision rounds vs n (expect flat rows)",
        ("d", "formula") + tuple(f"n={n}" for n in SIZES) + ("shape",),
        rows,
    )
    # All round counts must be independent of n.
    for row in rows:
        assert row[-1] == "FLAT", row

    automaton = compile_formula(formulas.h_free(gen.triangle()), ())
    g = gen.random_bounded_treedepth(64, depth=3, seed=64)
    tracer = Tracer(events=False)
    decide_pipeline(automaton, g, d=3, tracer=tracer)
    record_phase_table(
        "E1", "per-phase rounds/bits (triangle-free, n=64, d=3)", tracer
    )
    benchmark(lambda: decide_pipeline(automaton, g, d=3))
