"""E2 — Lemma 5.1 / Theorem 6.1: rounds grow with d as O(2^{2d}).

Series: paths P_{2^d - 1} (treedepth exactly d) for d = 2..5; total rounds
of the decision pipeline, and the ratio to 4^d.  Expected shape: rounds
grow geometrically ~4x per unit of d, with a bounded rounds/4^d ratio —
the elimination-tree construction dominates, exactly as the paper's
analysis says.
"""

from repro.algebra import compile_formula
from repro.distributed import decide_pipeline
from repro.graph import generators as gen
from repro.mso import formulas

from reporting import record_table

DEPTHS = (2, 3, 4, 5)


def run_series():
    automaton = compile_formula(formulas.acyclic(), ())
    rows = []
    previous = None
    for d in DEPTHS:
        n = 2 ** d - 1
        g = gen.path(n)  # td(P_{2^d - 1}) = d
        outcome = decide_pipeline(automaton, g, d=d)
        assert not outcome.treedepth_exceeded and outcome.accepted
        growth = "" if previous is None else f"x{outcome.total_rounds / previous:.2f}"
        rows.append(
            (
                d,
                n,
                outcome.total_rounds,
                outcome.elimination_rounds,
                f"{outcome.total_rounds / 4 ** d:.2f}",
                growth,
            )
        )
        previous = outcome.total_rounds
    return rows


def test_e2_rounds_vs_depth(benchmark):
    rows = run_series()
    record_table(
        "E2",
        "rounds vs treedepth bound d on P_{2^d-1} (expect ~4x per step)",
        ("d", "n", "rounds", "tree rounds", "rounds/4^d", "growth"),
        rows,
    )
    # The O(4^d) claim: the normalized ratio stays within a fixed band.
    ratios = [float(r[4]) for r in rows]
    assert max(ratios) / min(ratios) < 4.0, ratios
    # And rounds must actually grow with d.
    rounds = [r[2] for r in rows]
    assert all(a < b for a, b in zip(rounds, rounds[1:]))

    automaton = compile_formula(formulas.acyclic(), ())
    g = gen.path(15)
    benchmark(lambda: decide_pipeline(automaton, g, d=4))
