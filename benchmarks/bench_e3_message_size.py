"""E3 — CONGEST legality: every message fits the O(log n)-bit budget.

Series: for growing n, the maximum bits of any single message sent by the
full decision and optimization pipelines, against the budget
B = max(48, 4·ceil(log2 n)).  Expected shape: max bits grow (at most)
logarithmically and never exceed B — the simulator enforces this, so the
experiment documents the actual headroom.
"""

from repro.algebra import compile_formula
from repro.congest import default_budget
from repro.distributed import decide_pipeline, optimize_pipeline
from repro.graph import generators as gen
from repro.mso import formulas, vertex_set
from repro.obs import Tracer

from reporting import record_phase_table, record_table

SIZES = (16, 64, 256)


def run_series():
    decision_automaton = compile_formula(formulas.h_free(gen.triangle()), ())
    s = vertex_set("S")
    opt_automaton = compile_formula(formulas.independent_set(s), (s,))
    rows = []
    for n in SIZES:
        g = gen.random_bounded_treedepth(n, depth=3, seed=3 * n)
        budget = default_budget(n)
        dec = decide_pipeline(decision_automaton, g, d=3)
        opt = optimize_pipeline(opt_automaton, g, d=3, maximize=True)
        rows.append(
            (n, budget, dec.max_message_bits, opt.max_message_bits)
        )
        assert dec.max_message_bits <= budget
        assert opt.max_message_bits <= budget
    return rows


def test_e3_message_sizes(benchmark):
    rows = run_series()
    record_table(
        "E3",
        "max message bits vs n (must stay under budget)",
        ("n", "budget B", "decision max bits", "optimization max bits"),
        rows,
    )
    s = vertex_set("S")
    automaton = compile_formula(formulas.independent_set(s), (s,))
    g = gen.random_bounded_treedepth(64, depth=3, seed=99)
    tracer = Tracer(events=False)
    optimize_pipeline(automaton, g, d=3, tracer=tracer)
    record_phase_table(
        "E3", "per-phase messages/bits (independent-set, n=64, d=3)", tracer
    )
    benchmark(lambda: optimize_pipeline(automaton, g, d=3))
