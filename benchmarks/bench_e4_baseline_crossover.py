"""E4 — meta-theorem vs the generic gather-at-every-node baseline.

Series: growing n at fixed d = 3; rounds of the Theorem 6.1 pipeline
(flat) vs the gather baseline (Θ(m + diam), grows linearly).  Expected
shape: the baseline wins on tiny graphs (the meta-theorem pays the fixed
O(2^{2d}) elimination-tree cost), the treedepth algorithm wins from the
crossover on, by an ever-growing factor.
"""

from repro.algebra import compile_formula
from repro.distributed import decide_pipeline, gather_decide
from repro.graph import generators as gen
from repro.graph import properties as props
from repro.mso import formulas

from reporting import record_table

SIZES = (8, 16, 32, 64, 128, 256)


def run_series():
    automaton = compile_formula(formulas.h_free(gen.triangle()), ())
    oracle = lambda h: not props.has_subgraph(h, gen.triangle())  # noqa: E731
    rows = []
    for n in SIZES:
        g = gen.random_bounded_treedepth(n, depth=3, seed=7 * n, edge_prob=0.4)
        ours = decide_pipeline(automaton, g, d=3)
        base = gather_decide(g, oracle)
        assert ours.accepted == base.accepted
        winner = "treedepth" if ours.total_rounds < base.rounds else "baseline"
        rows.append((n, g.num_edges(), ours.total_rounds, base.rounds, winner))
    return rows


def test_e4_baseline_crossover(benchmark):
    rows = run_series()
    record_table(
        "E4",
        "rounds: Theorem 6.1 vs gather baseline (d=3)",
        ("n", "m", "treedepth alg", "gather baseline", "winner"),
        rows,
    )
    # Shape: ours flat, baseline growing, and ours wins at the top end.
    ours = [r[2] for r in rows]
    baseline = [r[3] for r in rows]
    assert len(set(ours)) == 1
    assert baseline[-1] > baseline[0]
    assert ours[-1] < baseline[-1]

    g = gen.random_bounded_treedepth(64, depth=3, seed=7 * 64, edge_prob=0.4)
    benchmark(lambda: gather_decide(g, lambda h: props.is_acyclic(h)))
