"""E5 — Theorem 6.1's optimization variant: exact optima in g(d, φ) rounds.

Series (per problem): the distributed optimum vs the brute-force optimum
on small graphs (must match exactly), plus rounds on growing n at fixed d
(expected: rounds vary only with table sizes |𝒞|·depth, not with n — the
paper's "|𝒞| rounds per level").
"""

from repro.algebra import compile_formula
from repro.distributed import optimize_pipeline
from repro.graph import generators as gen
from repro.graph import properties as props
from repro.mso import formulas, vertex_set

from reporting import record_table

PROBLEMS = [
    ("max independent set", formulas.independent_set, True,
     props.max_independent_set),
    ("min vertex cover", formulas.vertex_cover, False, props.min_vertex_cover),
    ("min dominating set", formulas.dominating_set, False,
     props.min_dominating_set),
]


def run_correctness():
    rows = []
    for name, factory, maximize, oracle in PROBLEMS:
        s = vertex_set("S")
        automaton = compile_formula(factory(s), (s,))
        for g, label in [
            (gen.cycle(6), "C6"),
            (gen.caterpillar(3, 2), "caterpillar"),
            (gen.random_bounded_treedepth(10, 3, seed=5), "random td<=3"),
        ]:
            outcome = optimize_pipeline(automaton, g, d=4, maximize=maximize)
            expected, _ = oracle(g)
            rows.append((name, label, outcome.value, expected,
                         "OK" if outcome.value == expected else "MISMATCH"))
    return rows


def run_scaling():
    s = vertex_set("S")
    automaton = compile_formula(formulas.independent_set(s), (s,))
    rows = []
    for n in (16, 32, 64):
        g = gen.random_bounded_treedepth(n, depth=3, seed=11 * n)
        outcome = optimize_pipeline(automaton, g, d=3, maximize=True)
        rows.append((n, outcome.total_rounds, outcome.optimization_rounds,
                     outcome.num_classes))
    return rows


def test_e5_optimization_exactness(benchmark):
    rows = run_correctness()
    record_table(
        "E5",
        "distributed optimum vs brute force",
        ("problem", "graph", "distributed", "brute force", "verdict"),
        rows,
    )
    assert all(r[-1] == "OK" for r in rows)

    s = vertex_set("S")
    automaton = compile_formula(formulas.independent_set(s), (s,))
    g = gen.random_bounded_treedepth(24, depth=3, seed=21)
    benchmark(lambda: optimize_pipeline(automaton, g, d=3, maximize=True))


def test_e5_optimization_rounds(benchmark):
    rows = run_scaling()
    record_table(
        "E5",
        "MaxIS rounds vs n at d=3 (driven by |C|·depth, not n)",
        ("n", "total rounds", "table rounds", "|C| on wires"),
        rows,
    )
    # Round counts may vary slightly with realized tree shape/table sizes
    # but must not scale with n: allow a small constant band.
    totals = [r[1] for r in rows]
    assert max(totals) <= 2 * min(totals), totals

    s = vertex_set("S")
    automaton = compile_formula(formulas.dominating_set(s), (s,))
    g = gen.random_bounded_treedepth(24, depth=3, seed=33)
    benchmark(lambda: optimize_pipeline(automaton, g, d=3, maximize=False))
