"""E6 — Section 6's counting extension: exact counts, O(1) rounds in n.

Series: distributed triangle counts vs exact enumeration on several
graphs, and round counts on growing n at fixed d.  Expected shape: counts
match exactly; rounds form a narrow band independent of n (the count
magnitudes, not n, drive the streamed digits).
"""

from repro.algebra import compile_with_singletons
from repro.distributed import count_pipeline
from repro.graph import generators as gen
from repro.graph import properties as props
from repro.mso import formulas

from reporting import record_table


def run_correctness():
    formula, variables = formulas.triangle_assignment()
    automaton = compile_with_singletons(formula, variables)
    rows = []
    for g, label in [
        (gen.clique(4), "K4"),
        (gen.paw(), "paw"),
        (gen.random_bounded_treedepth(12, 3, seed=2, edge_prob=0.7), "random"),
        (gen.cycle(8), "C8"),
    ]:
        outcome = count_pipeline(automaton, g, d=4)
        got = outcome.count // 6
        expected = props.count_triangles(g)
        rows.append((label, got, expected, "OK" if got == expected else "BAD"))
    return rows


def run_scaling():
    formula, variables = formulas.triangle_assignment()
    automaton = compile_with_singletons(formula, variables)
    rows = []
    for n in (16, 32, 64):
        g = gen.random_bounded_treedepth(n, depth=3, seed=n, edge_prob=0.5)
        outcome = count_pipeline(automaton, g, d=3)
        rows.append((n, outcome.count // 6, outcome.total_rounds))
    return rows


def test_e6_counting(benchmark):
    rows = run_correctness()
    record_table(
        "E6",
        "distributed triangle counts vs enumeration",
        ("graph", "distributed", "exact", "verdict"),
        rows,
    )
    assert all(r[-1] == "OK" for r in rows)

    scaling = run_scaling()
    record_table(
        "E6",
        "triangle counting rounds vs n at d=3",
        ("n", "triangles", "rounds"),
        scaling,
    )
    totals = [r[2] for r in scaling]
    assert max(totals) <= 2 * min(totals), totals

    formula, variables = formulas.triangle_assignment()
    automaton = compile_with_singletons(formula, variables)
    g = gen.random_bounded_treedepth(24, depth=3, seed=77, edge_prob=0.5)
    benchmark(lambda: count_pipeline(automaton, g, d=3))
