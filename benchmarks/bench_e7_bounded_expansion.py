"""E7 — Corollary 7.3: H-freeness on bounded expansion in O(log n) rounds.

Series: growing grids (planar => bounded expansion, unbounded treedepth),
H in {triangle, P3}; rounds split into the charged O(log n) decomposition
cost and the per-union checking cost.  Expected shape: the decomposition
term grows like log n; the checking term is governed by the constant
number of part-unions (it does not blow up with n); verdicts match the
oracle.
"""

from repro.distributed import decide_h_freeness
from repro.expansion import grid_residue_decomposition
from repro.graph import generators as gen
from repro.graph import properties as props

from reporting import record_table

GRIDS = ((3, 3), (4, 4), (6, 6), (8, 8))
PATTERNS = [("triangle", gen.triangle()), ("P3", gen.path(3))]


def run_series():
    rows = []
    for name, pattern in PATTERNS:
        p = pattern.num_vertices()
        for rows_, cols in GRIDS:
            g = gen.grid(rows_, cols)
            decomposition = grid_residue_decomposition(rows_, cols, p=p)
            outcome = decide_h_freeness(g, pattern, decomposition)
            oracle = not props.has_subgraph(g, pattern)
            rows.append(
                (
                    name,
                    f"{rows_}x{cols}",
                    g.num_vertices(),
                    outcome.h_free,
                    oracle,
                    outcome.decomposition_rounds,
                    outcome.checking_rounds,
                    outcome.subsets_checked,
                )
            )
            assert outcome.h_free == oracle
    return rows


def test_e7_bounded_expansion(benchmark):
    rows = run_series()
    record_table(
        "E7",
        "H-freeness on grids via low treedepth decompositions",
        ("H", "grid", "n", "H-free", "oracle", "decomp rounds (~log n)",
         "check rounds", "part-unions"),
        rows,
    )
    # The decomposition term grows logarithmically with n.
    tri = [r for r in rows if r[0] == "triangle"]
    assert tri[-1][5] > tri[0][5]
    # The checking term *saturates*: once the grid exceeds the residue
    # period everywhere, the per-union component structure (and hence the
    # round count) stops changing with n.
    checking = [r[6] for r in tri]
    assert checking[-1] == checking[-2], checking

    g = gen.grid(4, 4)
    decomposition = grid_residue_decomposition(4, 4, p=3)
    benchmark(lambda: decide_h_freeness(g, gen.triangle(), decomposition))
