"""E8 — the certification/decision trade-off (PODC'22 baseline vs Thm 6.1).

Series: growing n at fixed treedepth; certificate size in bits (expected
Θ(log n) growth for fixed depth), verification rounds (constant ~1), and
the decision protocol's rounds (constant in n but much larger than 1) with
its per-message bits (O(log |𝒞|), much smaller than a certificate).
"""

import math

from repro.algebra import compile_formula
from repro.certification import prove, verify
from repro.distributed import decide_pipeline
from repro.graph import generators as gen
from repro.mso import formulas

from reporting import record_table

SIZES = (16, 64, 256, 1024)


def run_series():
    automaton = compile_formula(formulas.acyclic(), ())
    rows = []
    for n in SIZES:
        # Fixed spine (treedepth stays ~4); n grows via the legs.
        g = gen.caterpillar(spine=7, legs=max(1, n // 7 - 1))
        instance = prove(g, automaton)
        audit = verify(g, automaton, instance)
        assert audit.accepted
        decision_automaton = compile_formula(formulas.acyclic(), ())
        decision = decide_pipeline(decision_automaton, g, d=4)
        assert decision.accepted
        rows.append(
            (
                g.num_vertices(),
                instance.max_certificate_bits,
                f"{instance.max_certificate_bits / math.log2(g.num_vertices()):.1f}",
                audit.rounds,
                decision.total_rounds,
                decision.max_message_bits,
            )
        )
    return rows


def test_e8_certification_tradeoff(benchmark):
    rows = run_series()
    record_table(
        "E8",
        "certification (1 round, big certificates) vs decision "
        "(many rounds, tiny messages)",
        ("n", "cert bits", "cert bits / log2 n", "verify rounds",
         "decision rounds", "decision max msg bits"),
        rows,
    )
    # Certificates grow sublinearly (Θ(log n) for fixed depth).
    bits = [r[1] for r in rows]
    ns = [r[0] for r in rows]
    assert bits[-1] / bits[0] < (ns[-1] / ns[0]) / 4
    # Verification is always a couple of rounds; decision is much larger.
    assert all(r[3] <= 2 for r in rows)
    assert all(r[4] > 10 * r[3] for r in rows)

    automaton = compile_formula(formulas.acyclic(), ())
    g = gen.caterpillar(16, 3)
    benchmark(lambda: verify(g, automaton, prove(g, automaton)))
