"""E9 — the Section 2 quantitative facts about treedepth.

Series A: td(P_n) = ceil(log2(n+1)) (the paper's running example),
computed with the exact solver.
Series B: Lemma 2.5 — any elimination tree that is a subgraph of G (here:
the DFS forest, and Algorithm 2's distributed tree) has depth <= 2^{td}.
Expected shape: equality in A; the B ratios depth/2^td stay <= 1.
"""

import math

from repro.distributed import build_elimination_tree
from repro.graph import generators as gen
from repro.treedepth import dfs_elimination_forest, treedepth

from reporting import record_table


def run_paths():
    rows = []
    for n in (1, 2, 3, 7, 8, 15, 16):
        td = treedepth(gen.path(n))
        expected = math.ceil(math.log2(n + 1))
        rows.append((n, td, expected, "OK" if td == expected else "BAD"))
    return rows


def run_lemma25():
    rows = []
    for seed in range(4):
        g = gen.random_bounded_treedepth(13, 3, seed=seed)
        td = treedepth(g)
        dfs_depth = dfs_elimination_forest(g).depth()
        distributed = build_elimination_tree(g, d=td)
        assert distributed.accepted and distributed.forest is not None
        alg2_depth = distributed.forest.depth()
        rows.append(
            (
                f"random td<=3 #{seed}",
                td,
                dfs_depth,
                alg2_depth,
                2 ** td,
                "OK" if max(dfs_depth, alg2_depth) <= 2 ** td else "VIOLATED",
            )
        )
    return rows


def test_e9_treedepth_bounds(benchmark):
    paths = run_paths()
    record_table(
        "E9",
        "td(P_n) vs ceil(log2(n+1))",
        ("n", "exact td", "formula", "verdict"),
        paths,
    )
    assert all(r[-1] == "OK" for r in paths)

    lemma = run_lemma25()
    record_table(
        "E9",
        "Lemma 2.5: subgraph elimination trees have depth <= 2^td",
        ("graph", "td", "DFS depth", "Algorithm 2 depth", "2^td", "verdict"),
        lemma,
    )
    assert all(r[-1] == "OK" for r in lemma)

    g = gen.path(15)
    benchmark(lambda: treedepth(g))
