"""Engine benchmark: the execution engines head-to-head.

Replays the E1 (decision rounds vs n) and E6 (counting) workloads in
four modes:

* ``naive``      — what every run cost before the execution engine: a
  cold ``compile_formula`` per grid point (no table reuse between
  points) and the round-by-round naive scheduler.
* ``batched``    — the engine path: one shared, pre-warmed
  :class:`repro.algebra.cache.AutomatonCache` (compiled automata, warm
  transition tables, stable class ids) and the batched scheduler.
* ``vectorized`` — the batched path plus the
  :class:`repro.algebra.tables.TabulatedAutomaton` kernel: hash-consed
  integer state ids, dense transition tables, digest-memoized joins.
* ``minimized``  — the batched path plus the
  :mod:`repro.algebra.minimize` state-space reduction: every kernel
  state is canonicalized to one representative per accept-behavior
  class, so the batched scheduler's per-op caches collapse onto a far
  smaller working set.  (The vectorized kernel already tabulates every
  join, so minimization buys it little warm — the batched engine, the
  Session default, is where the reduction pays.)

All modes run the exact same grid through
:func:`repro.congest.parallel.run_sweep`, so per-point seeds are the
sweep's deterministic shard seeds.  Verdicts are cross-checked between
modes — a speedup that changes an answer is a bug, not a result.  The
first three modes pin ``minimize=False`` and must agree on rounds too;
``minimized`` legitimately changes the transcript (it is a run-config
change), so only its answers are cross-checked.

Three speedups are reported per experiment: ``speedup`` (naive over
batched, the historical engine gate), ``vectorized_speedup``
(batched over vectorized, the kernel gate), and ``minimized_speedup``
(batched over batched-with-minimization, the state-reduction gate).
E6's counting joins are merge-dominated, so the vectorized kernel must
win big there (>= 3x warm) and minimization must too (>= 1.5x: three
quarters of its reachable states collapse); E1's decide workload is
elimination-bound, so all kernels only have to not lose (>= 1x minus a
noise margin).

Usage::

    PYTHONPATH=src python benchmarks/bench_engine.py             # full grid
    PYTHONPATH=src python benchmarks/bench_engine.py --smoke     # CI gate

The full run writes ``BENCH_engine.json`` at the repo root and fails if
either experiment's speedup drops below its threshold; ``--smoke``
shrinks the grid and only requires the faster modes to not be slower,
which is the CI perf gate.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from repro.algebra import AutomatonCache, compile_formula
from repro.algebra.minimize import minimized_automaton
from repro.congest.parallel import run_sweep
from repro.distributed import count_pipeline, decide_pipeline
from repro.graph import generators as gen
from repro.mso import formulas

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

# Shared state for the (module-level, hence picklable) sweep workers.
_CACHE: AutomatonCache = AutomatonCache(persist=False)


def _decide_formula():
    return formulas.h_free(gen.triangle())


def _count_formula():
    return formulas.triangle_assignment()


def _graph(params):
    return gen.random_bounded_treedepth(
        params["n"], depth=params["d"], seed=params["seed"] % 1000
    )


def _decide_cached(params, engine, minimize=False):
    automaton, codec = _CACHE.automaton_with_codec(
        _decide_formula(), (), d=params["d"], labels=()
    )
    out = decide_pipeline(
        automaton, _graph(params), params["d"], codec=codec, engine=engine,
        minimize=minimize,
    )
    return {"verdict": out.accepted, "rounds": out.total_rounds}


def _count_cached(params, engine, minimize=False):
    formula, variables = _count_formula()
    automaton, codec = _CACHE.automaton_with_codec(
        formula, variables, d=params["d"], labels=()
    )
    out = count_pipeline(
        automaton, _graph(params), params["d"], codec=codec, engine=engine,
        minimize=minimize,
    )
    return {"verdict": out.count, "rounds": out.total_rounds}


def decide_naive_worker(params):
    automaton = compile_formula(_decide_formula())  # cold per point
    out = decide_pipeline(
        automaton, _graph(params), params["d"], engine="naive",
        minimize=False,
    )
    return {"verdict": out.accepted, "rounds": out.total_rounds}


def decide_batched_worker(params):
    return _decide_cached(params, "batched")


def decide_vectorized_worker(params):
    return _decide_cached(params, "vectorized")


def decide_minimized_worker(params):
    return _decide_cached(params, "batched", minimize=True)


def count_naive_worker(params):
    formula, variables = _count_formula()
    automaton = compile_formula(formula, variables)  # cold per point
    out = count_pipeline(
        automaton, _graph(params), params["d"], engine="naive",
        minimize=False,
    )
    return {"verdict": out.count, "rounds": out.total_rounds}


def count_batched_worker(params):
    return _count_cached(params, "batched")


def count_vectorized_worker(params):
    return _count_cached(params, "vectorized")


def count_minimized_worker(params):
    return _count_cached(params, "batched", minimize=True)


def _minimize_stats(name, d):
    """Before/after state counts for an experiment's minimized kernel."""
    if name == "E1":
        automaton, _ = _CACHE.automaton_with_codec(
            _decide_formula(), (), d=d, labels=()
        )
    else:
        formula, variables = _count_formula()
        automaton, _ = _CACHE.automaton_with_codec(
            formula, variables, d=d, labels=()
        )
    wrapper = minimized_automaton(automaton, d=d, labels=())
    return wrapper.stats if wrapper is not None else None


EXPERIMENTS = {
    "E1": (decide_naive_worker, decide_batched_worker,
           decide_vectorized_worker, decide_minimized_worker),
    "E6": (count_naive_worker, count_batched_worker,
           count_vectorized_worker, count_minimized_worker),
}

#: Minimum batched-over-vectorized speedup per experiment (full mode).
#: E6's counting joins are merge-dominated — the dense-table kernel must
#: deliver; E1 is elimination-bound, so the bar is parity minus a 10%
#: timing-noise margin (single-CPU runs land between 0.99x and 1.1x).
VECTORIZED_THRESHOLDS = {"E1": 0.9, "E6": 3.0}
#: In smoke mode (tiny grid, one repeat) only guard against the kernel
#: being meaningfully slower; absolute times are sub-millisecond noise.
VECTORIZED_SMOKE_THRESHOLD = 0.8
#: Minimum batched-over-minimized speedup (full mode).  E6's
#: triangle-assignment kernel collapses ~74% of its reachable states, so
#: minimization must pay for its canonicalization lookups several times
#: over; E1's h-freeness kernel is already small, so parity suffices.
MINIMIZED_THRESHOLDS = {"E1": 0.9, "E6": 1.5}
MINIMIZED_SMOKE_THRESHOLD = 0.8
#: Minimum reachable-to-minimized state reduction (full mode, E6).
REDUCTION_THRESHOLD = 0.30


def _grid(smoke):
    sizes = (12,) if smoke else (16, 32, 64)
    return [{"n": n, "d": 3} for n in sizes]


def _timed_sweep(worker, grid, repeats):
    best = None
    results = None
    for _ in range(repeats):
        start = time.perf_counter()
        results = run_sweep(worker, grid, seed=0)
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return best, results


def run_experiment(name, grid, repeats):
    (naive_worker, batched_worker,
     vectorized_worker, minimized_worker) = EXPERIMENTS[name]
    # Pre-warm the cache: one compile + one throwaway run per engine,
    # exactly what a prior process would have left on disk (the
    # vectorized warm-up also populates the kernel's dense tables, the
    # minimized warm-up additionally memoizes the quotient map).
    _timed_sweep(batched_worker, grid[:1], 1)
    _timed_sweep(vectorized_worker, grid[:1], 1)
    _timed_sweep(minimized_worker, grid[:1], 1)
    naive_seconds, naive_results = _timed_sweep(naive_worker, grid, repeats)
    batched_seconds, batched_results = _timed_sweep(
        batched_worker, grid, repeats
    )
    vectorized_seconds, vectorized_results = _timed_sweep(
        vectorized_worker, grid, repeats
    )
    minimized_seconds, minimized_results = _timed_sweep(
        minimized_worker, grid, repeats
    )
    for mode, results in (("batched", batched_results),
                          ("vectorized", vectorized_results)):
        for a, b in zip(naive_results, results):
            if a.value != b.value:
                raise SystemExit(
                    f"{name}: {mode} mode changed the answer at "
                    f"{a.shard.params!r}: {a.value!r} != {b.value!r}"
                )
    # Minimization changes the transcript (rounds), never the answer.
    for a, b in zip(naive_results, minimized_results):
        if a.value["verdict"] != b.value["verdict"]:
            raise SystemExit(
                f"{name}: minimized mode changed the answer at "
                f"{a.shard.params!r}: {a.value['verdict']!r} != "
                f"{b.value['verdict']!r}"
            )
    stats = _minimize_stats(name, grid[0]["d"])
    return {
        "grid": [dict(point) for point in grid],
        "repeats": repeats,
        "naive_seconds": round(naive_seconds, 4),
        "batched_seconds": round(batched_seconds, 4),
        "vectorized_seconds": round(vectorized_seconds, 4),
        "minimized_seconds": round(minimized_seconds, 4),
        "speedup": round(naive_seconds / batched_seconds, 2),
        "vectorized_speedup": round(
            batched_seconds / vectorized_seconds, 2
        ),
        "minimized_speedup": round(
            batched_seconds / minimized_seconds, 2
        ),
        "states_total": stats.states_total if stats else 0,
        "states_reachable": stats.states_reachable if stats else 0,
        "states_minimized": stats.states_minimized if stats else 0,
        "state_reduction": round(stats.reduction, 4) if stats else 0.0,
        "checks": [r.value for r in naive_results],
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="small grid, lenient thresholds (CI perf gate)")
    parser.add_argument("--repeats", type=int, default=None,
                        help="timing repetitions per mode (min is kept)")
    parser.add_argument("--out", default=None,
                        help="result JSON path (full runs only; default "
                             "BENCH_engine.json at the repo root)")
    args = parser.parse_args(argv)

    threshold = 1.0 if args.smoke else 1.5
    repeats = args.repeats or (1 if args.smoke else 3)
    grid = _grid(args.smoke)

    report = {
        "benchmark": "engine",
        "mode": "smoke" if args.smoke else "full",
        "threshold_speedup": threshold,
        "threshold_vectorized": (
            VECTORIZED_SMOKE_THRESHOLD if args.smoke
            else dict(VECTORIZED_THRESHOLDS)
        ),
        "threshold_minimized": (
            MINIMIZED_SMOKE_THRESHOLD if args.smoke
            else dict(MINIMIZED_THRESHOLDS)
        ),
        "experiments": {},
    }
    failed = []
    for name in EXPERIMENTS:
        result = run_experiment(name, grid, repeats)
        report["experiments"][name] = result
        vec_threshold = (
            VECTORIZED_SMOKE_THRESHOLD if args.smoke
            else VECTORIZED_THRESHOLDS[name]
        )
        min_threshold = (
            MINIMIZED_SMOKE_THRESHOLD if args.smoke
            else MINIMIZED_THRESHOLDS[name]
        )
        slow = (result["speedup"] < threshold
                or result["vectorized_speedup"] < vec_threshold
                or result["minimized_speedup"] < min_threshold)
        # The state-heavy counting experiment must also actually shrink.
        if (name == "E6" and not args.smoke
                and result["state_reduction"] < REDUCTION_THRESHOLD):
            slow = True
        if slow:
            failed.append(name)
        status = "SLOW" if slow else "ok"
        print(f"{name}: naive {result['naive_seconds']}s, "
              f"batched {result['batched_seconds']}s "
              f"(speedup {result['speedup']}x, need >= {threshold}x), "
              f"vectorized {result['vectorized_seconds']}s "
              f"(speedup {result['vectorized_speedup']}x, need >= "
              f"{vec_threshold}x), "
              f"minimized {result['minimized_seconds']}s "
              f"(speedup {result['minimized_speedup']}x, need >= "
              f"{min_threshold}x; states "
              f"{result['states_reachable']}->{result['states_minimized']}) "
              f"[{status}]")

    if not args.smoke or args.out:
        out = args.out or os.path.join(REPO_ROOT, "BENCH_engine.json")
        with open(out, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {out}")

    if failed:
        print(f"FAIL: {', '.join(failed)} below threshold")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
