"""Engine benchmark: batched + cached execution vs the cold naive baseline.

Replays the E1 (decision rounds vs n) and E6 (counting) workloads in two
modes:

* ``naive``   — what every run cost before the execution engine: a cold
  ``compile_formula`` per grid point (no table reuse between points) and
  the round-by-round naive scheduler.
* ``batched`` — the engine path: one shared, pre-warmed
  :class:`repro.algebra.cache.AutomatonCache` (compiled automata, warm
  transition tables, stable class ids) and the batched scheduler.

Both modes run the exact same grid through
:func:`repro.congest.parallel.run_sweep`, so per-point seeds are the
sweep's deterministic shard seeds.  Verdicts are cross-checked between
modes — a speedup that changes an answer is a bug, not a result.

Usage::

    PYTHONPATH=src python benchmarks/bench_engine.py             # full grid
    PYTHONPATH=src python benchmarks/bench_engine.py --smoke     # CI gate

The full run writes ``BENCH_engine.json`` at the repo root and fails if
either experiment's speedup drops below 1.5x; ``--smoke`` shrinks the
grid and only requires the batched mode to not be slower (threshold
1.0x), which is the CI perf gate.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from repro.algebra import AutomatonCache, compile_formula
from repro.congest.parallel import run_sweep
from repro.distributed import count_pipeline, decide_pipeline
from repro.graph import generators as gen
from repro.mso import formulas

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

# Shared state for the (module-level, hence picklable) sweep workers.
_CACHE: AutomatonCache = AutomatonCache(persist=False)


def _decide_formula():
    return formulas.h_free(gen.triangle())


def _count_formula():
    return formulas.triangle_assignment()


def _graph(params):
    return gen.random_bounded_treedepth(
        params["n"], depth=params["d"], seed=params["seed"] % 1000
    )


def decide_naive_worker(params):
    automaton = compile_formula(_decide_formula())  # cold per point
    out = decide_pipeline(
        automaton, _graph(params), params["d"], engine="naive"
    )
    return {"verdict": out.accepted, "rounds": out.total_rounds}


def decide_batched_worker(params):
    automaton, codec = _CACHE.automaton_with_codec(
        _decide_formula(), (), d=params["d"], labels=()
    )
    out = decide_pipeline(
        automaton, _graph(params), params["d"], codec=codec, engine="batched"
    )
    return {"verdict": out.accepted, "rounds": out.total_rounds}


def count_naive_worker(params):
    formula, variables = _count_formula()
    automaton = compile_formula(formula, variables)  # cold per point
    out = count_pipeline(
        automaton, _graph(params), params["d"], engine="naive"
    )
    return {"verdict": out.count, "rounds": out.total_rounds}


def count_batched_worker(params):
    formula, variables = _count_formula()
    automaton, codec = _CACHE.automaton_with_codec(
        formula, variables, d=params["d"], labels=()
    )
    out = count_pipeline(
        automaton, _graph(params), params["d"], codec=codec, engine="batched"
    )
    return {"verdict": out.count, "rounds": out.total_rounds}


EXPERIMENTS = {
    "E1": (decide_naive_worker, decide_batched_worker),
    "E6": (count_naive_worker, count_batched_worker),
}


def _grid(smoke):
    sizes = (12,) if smoke else (16, 32, 64)
    return [{"n": n, "d": 3} for n in sizes]


def _timed_sweep(worker, grid, repeats):
    best = None
    results = None
    for _ in range(repeats):
        start = time.perf_counter()
        results = run_sweep(worker, grid, seed=0)
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return best, results


def run_experiment(name, grid, repeats):
    naive_worker, batched_worker = EXPERIMENTS[name]
    # Pre-warm the cache: one compile + one throwaway run per experiment,
    # exactly what a prior process would have left on disk.
    _timed_sweep(batched_worker, grid[:1], 1)
    naive_seconds, naive_results = _timed_sweep(naive_worker, grid, repeats)
    batched_seconds, batched_results = _timed_sweep(
        batched_worker, grid, repeats
    )
    for a, b in zip(naive_results, batched_results):
        if a.value != b.value:
            raise SystemExit(
                f"{name}: batched mode changed the answer at "
                f"{a.shard.params!r}: {a.value!r} != {b.value!r}"
            )
    return {
        "grid": [dict(point) for point in grid],
        "repeats": repeats,
        "naive_seconds": round(naive_seconds, 4),
        "batched_seconds": round(batched_seconds, 4),
        "speedup": round(naive_seconds / batched_seconds, 2),
        "checks": [r.value for r in naive_results],
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="small grid, threshold 1.0x (CI perf gate)")
    parser.add_argument("--repeats", type=int, default=None,
                        help="timing repetitions per mode (min is kept)")
    parser.add_argument("--out", default=None,
                        help="result JSON path (full runs only; default "
                             "BENCH_engine.json at the repo root)")
    args = parser.parse_args(argv)

    threshold = 1.0 if args.smoke else 1.5
    repeats = args.repeats or (1 if args.smoke else 3)
    grid = _grid(args.smoke)

    report = {
        "benchmark": "engine",
        "mode": "smoke" if args.smoke else "full",
        "threshold_speedup": threshold,
        "experiments": {},
    }
    failed = []
    for name in EXPERIMENTS:
        result = run_experiment(name, grid, repeats)
        report["experiments"][name] = result
        status = "ok" if result["speedup"] >= threshold else "SLOW"
        if status == "SLOW":
            failed.append(name)
        print(f"{name}: naive {result['naive_seconds']}s, "
              f"batched {result['batched_seconds']}s, "
              f"speedup {result['speedup']}x (need >= {threshold}x) "
              f"[{status}]")

    if not args.smoke or args.out:
        out = args.out or os.path.join(REPO_ROOT, "BENCH_engine.json")
        with open(out, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {out}")

    if failed:
        print(f"FAIL: {', '.join(failed)} below {threshold}x")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
