"""Benchmark-session plumbing: print every recorded experiment table."""

import sys
import os

sys.path.insert(0, os.path.dirname(__file__))

import reporting  # noqa: E402


def pytest_sessionstart(session):
    reporting.reset_results()


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    series = reporting.recorded_series()
    if not series:
        return
    terminalreporter.write_line("")
    terminalreporter.write_line("=" * 70)
    terminalreporter.write_line("EXPERIMENT SERIES (also in benchmarks/results/)")
    terminalreporter.write_line("=" * 70)
    for title, lines in series:
        terminalreporter.write_line("")
        terminalreporter.write_line(f"== {title} ==")
        for line in lines:
            terminalreporter.write_line(line)
