"""Shared reporting for the benchmark harness.

Each experiment records a titled table of rows; ``conftest.py`` prints all
recorded tables in the terminal summary (after pytest's capture ends) and
mirrors them to ``benchmarks/results/<experiment>.txt`` so EXPERIMENTS.md
can reference stable artifacts.  Every table is also appended to
``benchmarks/results/<experiment>.json`` with typed cells (ints stay
ints, floats stay floats), so downstream tooling — plots, the
``repro bench`` gate, ad-hoc analysis — never has to re-parse the
pretty-printed text.
"""

from __future__ import annotations

import json
import os
from typing import Iterable, List, Sequence, Tuple

_SERIES: List[Tuple[str, List[str]]] = []

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def _typed(cell: object) -> object:
    """A JSON-native cell: numbers and bools pass through, rest is str."""
    if cell is None or isinstance(cell, (bool, int, float, str)):
        return cell
    return str(cell)


def _result_stem(experiment: str) -> str:
    return experiment.lower().replace(" ", "_")


def record_table(
    experiment: str,
    title: str,
    header: Sequence[str],
    rows: Iterable[Sequence[object]],
) -> None:
    """Record a table for terminal summary + results files (.txt and .json)."""
    rows = [list(row) for row in rows]
    lines = [" | ".join(str(h) for h in header)]
    lines.append("-+-".join("-" * len(str(h)) for h in header))
    for row in rows:
        lines.append(" | ".join(str(cell) for cell in row))
    _SERIES.append((f"{experiment}: {title}", lines))
    os.makedirs(RESULTS_DIR, exist_ok=True)
    stem = _result_stem(experiment)
    path = os.path.join(RESULTS_DIR, f"{stem}.txt")
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(f"== {title} ==\n")
        handle.write("\n".join(lines))
        handle.write("\n\n")
    json_path = os.path.join(RESULTS_DIR, f"{stem}.json")
    tables = []
    if os.path.exists(json_path):
        try:
            with open(json_path, encoding="utf-8") as handle:
                tables = json.load(handle).get("tables", [])
        except (OSError, json.JSONDecodeError):
            tables = []
    tables.append({
        "title": title,
        "header": [str(h) for h in header],
        "rows": [[_typed(cell) for cell in row] for row in rows],
    })
    with open(json_path, "w", encoding="utf-8") as handle:
        json.dump({"experiment": experiment, "tables": tables}, handle,
                  indent=2, sort_keys=True)
        handle.write("\n")


def record_phase_table(experiment: str, title: str, tracer) -> None:
    """Record a tracer's per-phase round/message/bit breakdown.

    ``tracer`` is a :class:`repro.obs.Tracer`; benchmarks run their
    representative instance under one (usually with ``events=False``) and
    mirror the attribution table next to their headline series.
    """
    from repro.obs import phase_table_rows

    record_table(
        experiment,
        title,
        ("phase", "rounds", "messages", "bits", "max_bits", "spans"),
        phase_table_rows(tracer),
    )


def recorded_series() -> List[Tuple[str, List[str]]]:
    return list(_SERIES)


def reset_results() -> None:
    """Truncate old result files at session start (idempotent runs)."""
    if os.path.isdir(RESULTS_DIR):
        for name in os.listdir(RESULTS_DIR):
            if name.endswith((".txt", ".json")):
                os.remove(os.path.join(RESULTS_DIR, name))
