"""Certified topology: proof-labeling for "the overlay is acyclic".

Scenario: a sensor field maintains a routing overlay that must stay
cycle-free.  Instead of re-deciding acyclicity after every change
(O(2^{2d}) rounds, Theorem 6.1), a coordinator issues *certificates* once;
from then on, a single communication round suffices to audit the overlay —
and any tampering (or any actual cycle) is caught by at least one node.
This is the PODC'22 certification baseline the paper builds on (Section 1).

Run:  python examples/certified_topology.py
"""

from repro.algebra import compile_formula
from repro.certification import prove, verify
from repro.distributed import decide
from repro.graph import generators
from repro.mso import formulas


def main() -> None:
    overlay = generators.random_tree(40, seed=13)
    print(f"overlay: {overlay.num_vertices()} sensors, "
          f"{overlay.num_edges()} links")

    automaton = compile_formula(formulas.acyclic(), ())

    # One-time: the coordinator (prover) assigns certificates.
    instance = prove(overlay, automaton)
    print(f"certificates issued: max {instance.max_certificate_bits} bits "
          f"({instance.codec.num_classes} homomorphism classes)")

    # Every audit afterwards is one round.
    audit = verify(overlay, automaton, instance)
    print(f"audit: accepted={audit.accepted} in {audit.rounds} rounds")

    # Tampering is caught.
    victim = 7
    parent, depth, bag, class_id = instance.certificates[victim]
    instance.certificates[victim] = (parent, depth + 1, bag, class_id)
    tampered = verify(overlay, automaton, instance)
    print(f"tampered audit: accepted={tampered.accepted}, "
          f"rejecting nodes {list(tampered.rejecting_nodes)}")
    instance.certificates[victim] = (parent, depth, bag, class_id)

    # Contrast with re-deciding from scratch.
    fresh = decide(automaton, overlay, d=5)
    print(f"re-decision instead: {fresh.total_rounds} rounds "
          f"(certification audit: {audit.rounds})")


if __name__ == "__main__":
    main()
