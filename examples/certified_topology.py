"""Certified topology: proof-labeling for "the overlay is acyclic".

Scenario: a sensor field maintains a routing overlay that must stay
cycle-free.  Instead of re-deciding acyclicity after every change
(O(2^{2d}) rounds, Theorem 6.1), a coordinator issues *certificates* once;
from then on, a single communication round suffices to audit the overlay —
and any tampering (or any actual cycle) is caught by at least one node.
This is the PODC'22 certification baseline the paper builds on (Section 1).

Run:  python examples/certified_topology.py
"""

from repro.api import Session
from repro.certification import prove, verify
from repro.algebra import cached_compile
from repro.graph import generators
from repro.mso import formulas


def main() -> None:
    overlay = generators.random_tree(40, seed=13)
    print(f"overlay: {overlay.num_vertices()} sensors, "
          f"{overlay.num_edges()} links")

    # The one-call path: prove + verify in a single facade workload.
    audit = Session(overlay, d=5).certify(formulas.acyclic())
    print(f"certificates issued: max {audit.max_payload_bits} bits "
          f"({audit.num_classes} homomorphism classes)")
    print(f"audit: accepted={audit.verdict} in {audit.rounds} rounds")

    # Tampering is caught — drop to the prover/verifier pair to forge a
    # certificate by hand.
    automaton = cached_compile(formulas.acyclic(), (), d=5)
    instance = prove(overlay, automaton)
    victim = 7
    parent, depth, bag, class_id = instance.certificates[victim]
    instance.certificates[victim] = (parent, depth + 1, bag, class_id)
    tampered = verify(overlay, automaton, instance)
    print(f"tampered audit: accepted={tampered.accepted}, "
          f"rejecting nodes {list(tampered.rejecting_nodes)}")
    instance.certificates[victim] = (parent, depth, bag, class_id)

    # Contrast with re-deciding from scratch.
    fresh = Session(overlay, d=5).decide(formulas.acyclic())
    print(f"re-decision instead: {fresh.rounds} rounds "
          f"(certification audit: {audit.rounds})")


if __name__ == "__main__":
    main()
