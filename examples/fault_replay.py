"""Fault replay: break a distributed run deterministically, then fix it.

Three acts on the same network and formula:

1. a faultless baseline of the full decision pipeline,
2. the same run under 20% message loss — unprotected, it degrades to a
   non-verdict (or fails closed), and the *same plan JSON* reproduces the
   same faults every time,
3. the run hardened with the redundancy-lockstep synchronizer, which
   pays retransmissions to recover the baseline verdict.

Run:  python examples/fault_replay.py
"""

from repro.api import Session
from repro.errors import FaultToleranceExceeded
from repro.faults import FaultPlan, RetryPolicy
from repro.graph import generators
from repro.mso import formulas


def attempt(phi, network, plan=None, retry=None):
    """One pipeline run, folded to a printable verdict string."""
    try:
        outcome = Session(network, d=3, faults=plan, retry=retry).decide(phi)
    except FaultToleranceExceeded:
        return "failed closed (FaultToleranceExceeded)", None
    if outcome.treedepth_exceeded:
        return "no verdict (reported td > d)", outcome
    return f"accepted={outcome.verdict}", outcome


def main() -> None:
    network = generators.random_bounded_treedepth(16, depth=3, seed=11)
    phi = formulas.h_free(generators.triangle())

    # Act 1 — the faultless baseline.
    verdict, baseline = attempt(phi, network)
    print(f"baseline:  {verdict} in {baseline.rounds} rounds")

    # Act 2 — 15% of all messages are destroyed, deterministically: the
    # plan serializes to JSON, and replaying the same JSON re-injects the
    # exact same faults (same seed -> same RNG draws).
    plan = FaultPlan(seed=4, drop_rate=0.15)
    replayed = FaultPlan.from_json(plan.to_json())
    assert replayed == plan
    print(f"plan:      {plan.describe()} (JSON round-trips)")
    verdict, _ = attempt(phi, network, plan=replayed)
    print(f"unprotected under loss: {verdict}")
    again, _ = attempt(phi, network, plan=replayed)
    print(f"replay is deterministic: {again == verdict}")

    # Act 3 — the redundancy-lockstep synchronizer: each logical round
    # sends 5 redundant copies, so an edge loses a round only with
    # probability 0.15^5.  The verdict matches the baseline or the run
    # fails closed; it is never silently wrong.
    verdict, hardened = attempt(
        phi, network, plan=replayed, retry=RetryPolicy(attempts=5)
    )
    print(f"with retries: {verdict}")
    if hardened is not None:
        print(f"  agrees with baseline: {hardened.verdict == baseline.verdict}")
        print(f"  cost: {hardened.rounds} physical rounds "
              f"(baseline {baseline.rounds})")


if __name__ == "__main__":
    main()
