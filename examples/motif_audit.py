"""Motif audit: distributed triangle counting and H-freeness checks.

Scenario A — overlay audit: a peering overlay of bounded treedepth must be
C4-free (no redundant 4-cycles) and we want its exact triangle count (a
clustering statistic).  Both are single convergecasts (Theorem 6.1 + the
counting extension of Section 6).

Scenario B — bounded expansion: a mesh (grid) network is planar, hence of
bounded expansion but *unbounded* treedepth.  Corollary 7.3 still applies:
H-freeness is decided in O(log n) rounds through a low treedepth
decomposition.

Run:  python examples/motif_audit.py
"""

from repro.api import Session
from repro.distributed import decide_h_freeness
from repro.expansion import grid_residue_decomposition
from repro.graph import generators
from repro.graph.properties import count_triangles, has_subgraph
from repro.mso import formulas


def overlay_audit() -> None:
    overlay = generators.random_bounded_treedepth(
        30, depth=3, edge_prob=0.6, seed=11
    )
    print(f"overlay: {overlay.num_vertices()} peers, {overlay.num_edges()} links")

    session = Session(overlay, d=3)
    c4_free = formulas.h_free(generators.cycle(4))
    verdict = session.decide(c4_free)
    print(f"C4-free? {verdict.verdict} "
          f"(oracle: {not has_subgraph(overlay, generators.cycle(4))}) "
          f"in {verdict.rounds} rounds")

    formula, _variables = formulas.triangle_assignment()
    counting = session.count(formula)
    triangles = counting.count // 6  # ordered triples -> triangles
    print(f"triangles: {triangles} (oracle: {count_triangles(overlay)}) "
          f"in {counting.rounds} rounds")


def mesh_audit() -> None:
    rows = cols = 6
    mesh = generators.grid(rows, cols)
    print(f"\nmesh: {rows}x{cols} grid (planar => bounded expansion)")
    # Patterns on 3 vertices: (f(3) choose <=3) part-unions is already
    # hundreds of runs — the "constant" of Corollary 7.3 is honest but big.
    for name, pattern in [("triangle", generators.triangle()),
                          ("path-3", generators.path(3))]:
        p = pattern.num_vertices()
        decomposition = grid_residue_decomposition(rows, cols, p=p)
        print(f"p={p}: low treedepth decomposition with "
              f"{decomposition.num_parts} parts")
        outcome = decide_h_freeness(mesh, pattern, decomposition)
        oracle = not has_subgraph(mesh, pattern)
        print(f"{name}-free? {outcome.h_free} (oracle: {oracle}) — "
              f"{outcome.total_rounds} rounds "
              f"({outcome.subsets_checked} part-unions, {outcome.runs} runs)")


def main() -> None:
    overlay_audit()
    mesh_audit()


if __name__ == "__main__":
    main()
