"""Quickstart: distributed MSO model checking in four steps.

We build a small network of bounded treedepth, write a property in MSO,
and decide it in a constant number of CONGEST rounds (Theorem 6.1) — all
through the high-level :class:`repro.api.Session` facade.

Run:  python examples/quickstart.py
"""

from repro.api import Session
from repro.graph import generators
from repro.mso import formulas, parse


def main() -> None:
    # 1. A network: a random connected graph of treedepth <= 3 by
    #    construction (its elimination tree is drawn first).
    network = generators.random_bounded_treedepth(24, depth=3, seed=42)
    print(f"network: {network.num_vertices()} nodes, {network.num_edges()} links, "
          f"treedepth <= 3 by construction")

    # 2. A property in MSO — from the catalog...
    two_colorable = formulas.k_colorable(2)
    # ...or parsed from text:
    no_isolated_check = parse("forall x:V . exists y:V . adj(x, y)")

    # 3. A session binds the network to the treedepth promise; formulas
    #    compile once into cached tree automata (the paper's homomorphism
    #    classes; Theorem 4.2) and every workload returns one Result shape.
    session = Session(network, d=3)

    # 4. Run the full distributed pipeline: Algorithm 2 builds the
    #    elimination tree, then one convergecast decides the formula.
    result = session.decide(two_colorable)
    print(f"2-colorable?      {result.verdict}")
    print(f"  rounds          {result.rounds} "
          f"(tree: {result.phase_rounds['elimination']}, "
          f"check: {result.phase_rounds['checking']})")
    print(f"  message budget  respected: max {result.max_payload_bits} bits/edge/round")
    print(f"  |C| observed    {result.num_classes} homomorphism classes on wires")

    # 5. The round count is independent of n: rerun on a 4x bigger network.
    big = generators.random_bounded_treedepth(96, depth=3, seed=43)
    big_result = Session(big, d=3).decide(two_colorable)
    print(f"4x nodes -> rounds {big_result.rounds} "
          f"(was {result.rounds}): constant in n")

    no_isolated = session.decide(no_isolated_check)
    print(f"every node has a neighbor? {no_isolated.verdict}")


if __name__ == "__main__":
    main()
