"""Quickstart: distributed MSO model checking in five steps.

We build a small network of bounded treedepth, write a property in MSO,
and decide it in a constant number of CONGEST rounds (Theorem 6.1).

Run:  python examples/quickstart.py
"""

from repro.algebra import compile_formula
from repro.distributed import decide
from repro.graph import generators
from repro.mso import formulas, parse


def main() -> None:
    # 1. A network: a random connected graph of treedepth <= 3 by
    #    construction (its elimination tree is drawn first).
    network = generators.random_bounded_treedepth(24, depth=3, seed=42)
    print(f"network: {network.num_vertices()} nodes, {network.num_edges()} links, "
          f"treedepth <= 3 by construction")

    # 2. A property in MSO — from the catalog...
    two_colorable = formulas.k_colorable(2)
    # ...or parsed from text:
    has_isolated_check = parse("forall x:V . exists y:V . adj(x, y)")

    # 3. Compile each formula once into a tree automaton (the paper's
    #    homomorphism classes; Theorem 4.2).
    automaton = compile_formula(two_colorable, ())
    degree_automaton = compile_formula(has_isolated_check, ())

    # 4. Run the full distributed pipeline: Algorithm 2 builds the
    #    elimination tree, then one convergecast decides the formula.
    outcome = decide(automaton, network, d=3)
    print(f"2-colorable?      {outcome.accepted}")
    print(f"  rounds          {outcome.total_rounds} "
          f"(tree: {outcome.elimination_rounds}, check: {outcome.checking_rounds})")
    print(f"  message budget  respected: max {outcome.max_message_bits} bits/edge/round")
    print(f"  |C| observed    {outcome.num_classes} homomorphism classes on wires")

    # 5. The round count is independent of n: rerun on a 4x bigger network.
    big = generators.random_bounded_treedepth(96, depth=3, seed=43)
    big_outcome = decide(automaton, big, d=3)
    print(f"4x nodes -> rounds {big_outcome.total_rounds} "
          f"(was {outcome.total_rounds}): constant in n")

    no_isolated = decide(degree_automaton, network, d=3)
    print(f"every node has a neighbor? {no_isolated.accepted}")


if __name__ == "__main__":
    main()
