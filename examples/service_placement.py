"""Service placement: distributed minimum-weight dominating set.

Scenario: a corporate WAN is organized hierarchically (headquarters,
regional hubs, branch offices) — a topology of small treedepth.  We want
every site to either host a monitoring service or neighbor a site that
does, while minimizing total hosting cost.  That is min-φ for the MSO
predicate "S is a dominating set" with vertex weights — exactly the
optimization variant of Theorem 6.1, solved in a constant number of
CONGEST rounds, with every site learning locally whether it hosts.

Run:  python examples/service_placement.py
"""

import random

from repro.api import Session
from repro.graph import Graph
from repro.graph.properties import is_dominating_set, min_dominating_set
from repro.mso import formulas, vertex_set


def build_wan(regions: int, branches_per_region: int, seed: int = 7) -> Graph:
    """Headquarters 0; hubs 1..regions; branches below each hub.

    Every branch links to its hub; some branches also get a direct line to
    headquarters (redundancy) — all edges stay on the hierarchy's root
    paths, keeping treedepth at 3.
    """
    rng = random.Random(seed)
    g = Graph([0])
    g.set_vertex_weight(0, 1)  # HQ hosts cheaply
    next_id = 1
    for _ in range(regions):
        hub = next_id
        next_id += 1
        g.add_edge(0, hub)
        g.set_vertex_weight(hub, rng.randint(2, 4))
        for _ in range(branches_per_region):
            branch = next_id
            next_id += 1
            g.add_edge(hub, branch)
            g.set_vertex_weight(branch, rng.randint(5, 9))
            if rng.random() < 0.3:
                g.add_edge(0, branch)  # redundant uplink to HQ
    return g


def main() -> None:
    wan = build_wan(regions=3, branches_per_region=4)
    print(f"WAN: {wan.num_vertices()} sites, {wan.num_edges()} links, "
          f"treedepth <= 3 (HQ / hub / branch hierarchy)")

    s = vertex_set("S")
    predicate = formulas.dominating_set(s)

    outcome = Session(wan, d=3).optimize(predicate, sense="min")
    assert outcome.verdict
    print(f"optimal hosting cost: {outcome.value}")
    print(f"hosting sites:        {sorted(outcome.witness)}")
    print(f"rounds:               {outcome.rounds} "
          f"(tree: {outcome.phase_rounds['elimination']}, "
          f"tables: {outcome.phase_rounds['optimization']})")
    print(f"classes on wires:     {outcome.num_classes}")

    # Sanity: the selection is a dominating set and matches brute force.
    assert is_dominating_set(wan, outcome.witness)
    if wan.num_vertices() <= 18:
        best, _ = min_dominating_set(wan, weight=wan.vertex_weight)
        assert outcome.value == best
        print(f"verified against brute force: cost {best}")
    else:
        print("(network too large for the brute-force cross-check)")


if __name__ == "__main__":
    main()
