"""repro — Distributed MSO model checking on graphs of bounded treedepth.

A full reproduction of "Brief Announcement: Distributed Model Checking on
Graphs of Bounded Treedepth" (Fomin, Fraigniaud, Montealegre, Rapaport,
Todinca; PODC 2024).

Subpackages
-----------
``repro.graph``
    Simple labeled weighted graphs, generators, and brute-force oracles.
``repro.treedepth``
    Elimination forests, exact/heuristic treedepth, tree decompositions.
``repro.mso``
    MSO₂ formulas: AST, parser, brute-force semantics, formula catalog.
``repro.algebra``
    The treedepth algebra and the Courcelle engine (homomorphism classes,
    OPT/COUNT tables, sequential Algorithm 1).
``repro.congest``
    Round-synchronous CONGEST simulator with strict message accounting.
``repro.distributed``
    The paper's distributed protocols (Algorithm 2, Theorem 6.1, §6, §7).
``repro.certification``
    The PODC'22 certification baseline (prover/verifier).
``repro.expansion``
    Low-treedepth decompositions and Corollary 7.3 on bounded expansion.
``repro.kernel``
    Gajarský–Hliněný subtree types and kernelization (the §1 citation).
``repro.obs``
    Instrumentation: phase-span tracing, typed trace events, per-phase /
    per-node / per-edge metrics, wall-clock profiling, and exporters
    (JSON lines, summary tables, Chrome trace format).
``repro.cli``
    The ``python -m repro`` command-line interface (including
    ``repro trace`` and the ``REPRO_TRACE`` env var).
"""

__version__ = "1.0.0"

from . import errors
from .graph import Graph

__all__ = ["Graph", "errors", "__version__"]
