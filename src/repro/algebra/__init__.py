"""The treedepth algebra and the Courcelle engine (paper Sections 3-4)."""

from .automata import (
    AllVerticesInAutomaton,
    ComplementAutomaton,
    ConstAutomaton,
    ContainsPatternAutomaton,
    GraphDegreesAutomaton,
    EdgeWitnessAutomaton,
    EndpointsInAutomaton,
    HasLabelAutomaton,
    IncCountsAutomaton,
    IntersectsAutomaton,
    NonEmptyAutomaton,
    ProductAutomaton,
    ProjectionAutomaton,
    SingletonAutomaton,
    State,
    SubsetAutomaton,
    TreeAutomaton,
    extend_symbol,
)
from .compiler import compile_formula, compile_with_singletons
from .engine import (
    OptimizationResult,
    check,
    check_assignment,
    count,
    optimize,
    run_states,
)
from .symbols import (
    BaseStructure,
    BaseSymbol,
    SymbolChoice,
    base_structure,
    enumerate_symbol_choices,
    owned_items,
    symbol_for_assignment,
)

__all__ = [
    "AllVerticesInAutomaton", "ContainsPatternAutomaton",
    "GraphDegreesAutomaton", "compile_with_singletons",
    "BaseStructure", "BaseSymbol", "ComplementAutomaton", "ConstAutomaton",
    "EdgeWitnessAutomaton", "EndpointsInAutomaton", "HasLabelAutomaton",
    "IncCountsAutomaton", "IntersectsAutomaton", "NonEmptyAutomaton",
    "OptimizationResult", "ProductAutomaton", "ProjectionAutomaton",
    "SingletonAutomaton", "State", "SubsetAutomaton", "SymbolChoice",
    "TreeAutomaton", "base_structure", "check", "check_assignment",
    "compile_formula", "count", "enumerate_symbol_choices", "extend_symbol",
    "optimize", "owned_items", "run_states", "symbol_for_assignment",
]
