"""The treedepth algebra and the Courcelle engine (paper Sections 3-4)."""

from .automata import (
    AllVerticesInAutomaton,
    ComplementAutomaton,
    ConstAutomaton,
    ContainsPatternAutomaton,
    GraphDegreesAutomaton,
    EdgeWitnessAutomaton,
    EndpointsInAutomaton,
    HasLabelAutomaton,
    IncCountsAutomaton,
    IntersectsAutomaton,
    NonEmptyAutomaton,
    ProductAutomaton,
    ProjectionAutomaton,
    SingletonAutomaton,
    State,
    SubsetAutomaton,
    TreeAutomaton,
    extend_symbol,
)
from .cache import (
    CACHE_VERSION,
    AutomatonCache,
    cache_key,
    cached_compile,
    default_cache,
    set_default_cache,
    transition_table_bytes,
)
from .compiler import compile_formula, compile_with_singletons
from .minimize import (
    MinimizationBudget,
    MinimizationStats,
    MinimizedAutomaton,
    graph_label_alphabet,
    minimization_stats,
    minimize_automaton,
    minimized_automaton,
)
from .engine import (
    OptimizationResult,
    check,
    check_assignment,
    count,
    optimize,
    run_states,
)
from .tables import TabulatedAutomaton, tabulated
from .symbols import (
    BaseStructure,
    BaseSymbol,
    SymbolChoice,
    base_structure,
    enumerate_symbol_choices,
    owned_items,
    symbol_for_assignment,
)

__all__ = [
    "AllVerticesInAutomaton", "AutomatonCache", "CACHE_VERSION",
    "ContainsPatternAutomaton",
    "GraphDegreesAutomaton", "cache_key", "cached_compile",
    "compile_with_singletons", "default_cache", "set_default_cache",
    "transition_table_bytes",
    "BaseStructure", "BaseSymbol", "ComplementAutomaton", "ConstAutomaton",
    "EdgeWitnessAutomaton", "EndpointsInAutomaton", "HasLabelAutomaton",
    "IncCountsAutomaton", "IntersectsAutomaton", "NonEmptyAutomaton",
    "MinimizationBudget", "MinimizationStats", "MinimizedAutomaton",
    "OptimizationResult", "ProductAutomaton", "ProjectionAutomaton",
    "SingletonAutomaton", "State", "SubsetAutomaton", "SymbolChoice",
    "TabulatedAutomaton", "TreeAutomaton", "base_structure", "check",
    "check_assignment",
    "compile_formula", "count", "enumerate_symbol_choices", "extend_symbol",
    "graph_label_alphabet", "minimization_stats", "minimize_automaton",
    "minimized_automaton",
    "optimize", "owned_items", "run_states", "symbol_for_assignment",
    "tabulated",
]
