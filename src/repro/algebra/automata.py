"""Bottom-up tree automata over the treedepth algebra.

An automaton assigns every w-terminal graph (assembled from Base / Glue /
Forget symbols) a *state*; states are exactly the paper's homomorphism
classes (Definition 4.1): condition 1 holds because acceptance is a
function of the state, condition 2 because ``glue``/``forget`` are the
update functions ⊙_f.  The set of classes 𝒞 is materialized lazily — every
state ever produced is interned, so ``num_classes`` reports |𝒞_reachable|
and ``intern`` provides the O(log |𝒞|)-bit message encoding used by the
CONGEST protocols.

Atomic automata implement the MSO atoms; composites implement the logical
connectives:

* ``ProductAutomaton``    — conjunction / disjunction (state tuples),
* ``ComplementAutomaton`` — negation (flip acceptance; states unchanged,
  which is sound because every automaton here is deterministic),
* ``ProjectionAutomaton`` — existential set/element quantification:
  the projected variable's bits are guessed at each Base symbol and the
  automaton is re-determinized on the fly by the subset construction
  (states become frozensets of inner states).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import (
    Any,
    Callable,
    Dict,
    FrozenSet,
    Hashable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from ..errors import ReproError
from ..mso.syntax import Sort, Var
from .symbols import BaseSymbol

State = Hashable


class TreeAutomaton(ABC):
    """Deterministic bottom-up automaton over Base/Glue/Forget symbols."""

    def __init__(self, scope: Sequence[Var]):
        self.scope: Tuple[Var, ...] = tuple(scope)
        self._leaf_cache: Dict[BaseSymbol, State] = {}
        self._glue_cache: Dict[Tuple[int, State, State], State] = {}
        self._forget_cache: Dict[Tuple[int, State], State] = {}
        self._intern: Dict[State, int] = {}

    # -- public transition API (cached + interning) --------------------
    def leaf(self, symbol: BaseSymbol) -> State:
        """State of the one-vertex graph introduced by ``symbol``."""
        state = self._leaf_cache.get(symbol)
        if state is None:
            state = self._leaf(symbol)
            self._leaf_cache[symbol] = state
            self.intern(state)
        return state

    def glue(self, boundary: int, s1: State, s2: State) -> State:
        """State after identity-gluing two graphs with ``boundary`` terminals."""
        key = (boundary, s1, s2)
        state = self._glue_cache.get(key)
        if state is None:
            state = self._glue(boundary, s1, s2)
            self._glue_cache[key] = state
            self.intern(state)
        return state

    def forget(self, boundary: int, s: State) -> State:
        """State after the deepest of ``boundary`` terminals becomes interior."""
        key = (boundary, s)
        state = self._forget_cache.get(key)
        if state is None:
            state = self._forget(boundary, s)
            self._forget_cache[key] = state
            self.intern(state)
        return state

    def intern(self, state: State) -> int:
        """A stable small integer id for ``state`` (message encoding)."""
        if state not in self._intern:
            self._intern[state] = len(self._intern)
        return self._intern[state]

    def num_classes(self) -> int:
        """|𝒞_reachable|: homomorphism classes materialized so far."""
        return len(self._intern)

    # -- to implement ---------------------------------------------------
    @abstractmethod
    def _leaf(self, symbol: BaseSymbol) -> State: ...

    @abstractmethod
    def _glue(self, boundary: int, s1: State, s2: State) -> State: ...

    @abstractmethod
    def _forget(self, boundary: int, s: State) -> State: ...

    @abstractmethod
    def accepts(self, state: State) -> bool:
        """Is ``state`` an accepting class?  (Boundary must be empty.)"""


# ----------------------------------------------------------------------
# Scan automata: state is a single monoid value over owned items
# ----------------------------------------------------------------------

class ScanAutomaton(TreeAutomaton):
    """Base for atoms that fold a commutative monoid over owned items.

    An *item* is the owned vertex ``("v", bits, labels)`` or an owned edge
    ``("e", bits, labels)``; the ancestry structure is irrelevant to these
    atoms, so Forget is the identity.
    """

    def _leaf(self, symbol: BaseSymbol) -> State:
        value = self._identity()
        value = self._combine(value, self._item_value("v", symbol.vbits, symbol.structure.vlabels))
        for pos, bits in symbol.ebits:
            labels = symbol.structure.edge_labels_at(pos)
            value = self._combine(value, self._item_value("e", bits, labels))
        return value

    def _glue(self, boundary: int, s1: State, s2: State) -> State:
        return self._combine(s1, s2)

    def _forget(self, boundary: int, s: State) -> State:
        return s

    @abstractmethod
    def _identity(self) -> State: ...

    @abstractmethod
    def _combine(self, a: State, b: State) -> State: ...

    @abstractmethod
    def _item_value(self, kind: str, bits: FrozenSet[int], labels: FrozenSet[str]) -> State: ...


class ConstAutomaton(ScanAutomaton):
    """The constant true/false formula."""

    def __init__(self, scope: Sequence[Var], value: bool):
        super().__init__(scope)
        self._value = value

    def _identity(self) -> State:
        return 0

    def _combine(self, a: State, b: State) -> State:
        return 0

    def _item_value(self, kind, bits, labels) -> State:
        return 0

    def accepts(self, state: State) -> bool:
        return self._value


class SingletonAutomaton(ScanAutomaton):
    """|X_i| = 1 (counts capped at 2)."""

    def __init__(self, scope: Sequence[Var], index: int):
        super().__init__(scope)
        self._index = index

    def _identity(self) -> State:
        return 0

    def _combine(self, a: State, b: State) -> State:
        return min(2, a + b)

    def _item_value(self, kind, bits, labels) -> State:
        return 1 if self._index in bits else 0

    def accepts(self, state: State) -> bool:
        return state == 1


class IntersectsAutomaton(ScanAutomaton):
    """Some item lies in both X_i and X_j (=, ∈ under singletons)."""

    def __init__(self, scope: Sequence[Var], i: int, j: int):
        super().__init__(scope)
        self._i, self._j = i, j

    def _identity(self) -> State:
        return False

    def _combine(self, a: State, b: State) -> State:
        return a or b

    def _item_value(self, kind, bits, labels) -> State:
        return self._i in bits and self._j in bits

    def accepts(self, state: State) -> bool:
        return bool(state)


class SubsetAutomaton(ScanAutomaton):
    """X_a ⊆ X_{b₁} ∪ … ∪ X_{b_m}: tracks whether a violation was seen."""

    def __init__(self, scope: Sequence[Var], a: int, bs: Sequence[int]):
        super().__init__(scope)
        self._a = a
        self._bs = tuple(bs)

    def _identity(self) -> State:
        return False

    def _combine(self, a: State, b: State) -> State:
        return a or b

    def _item_value(self, kind, bits, labels) -> State:
        return self._a in bits and not any(b in bits for b in self._bs)

    def accepts(self, state: State) -> bool:
        return not state


class NonEmptyAutomaton(ScanAutomaton):
    """X_i ≠ ∅."""

    def __init__(self, scope: Sequence[Var], index: int):
        super().__init__(scope)
        self._index = index

    def _identity(self) -> State:
        return False

    def _combine(self, a: State, b: State) -> State:
        return a or b

    def _item_value(self, kind, bits, labels) -> State:
        return self._index in bits

    def accepts(self, state: State) -> bool:
        return bool(state)


class HasLabelAutomaton(ScanAutomaton):
    """Some item of X_i carries ``label`` (``universal=False``) or every
    item of X_i carries it (``universal=True``)."""

    def __init__(self, scope: Sequence[Var], index: int, label: str, universal: bool):
        super().__init__(scope)
        self._index = index
        self._label = label
        self._universal = universal

    def _identity(self) -> State:
        return False

    def _combine(self, a: State, b: State) -> State:
        return a or b

    def _item_value(self, kind, bits, labels) -> State:
        if self._index not in bits:
            return False
        has = self._label in labels
        return (not has) if self._universal else has

    def accepts(self, state: State) -> bool:
        # Universal mode tracks violations; existential mode tracks witnesses.
        return not state if self._universal else bool(state)


class AllVerticesInAutomaton(ScanAutomaton):
    """Every vertex of G lies in the union of the given variables."""

    def __init__(self, scope: Sequence[Var], indices: Sequence[int]):
        super().__init__(scope)
        self._indices = tuple(indices)

    def _identity(self) -> State:
        return False

    def _combine(self, a: State, b: State) -> State:
        return a or b

    def _item_value(self, kind, bits, labels) -> State:
        return kind == "v" and not any(i in bits for i in self._indices)

    def accepts(self, state: State) -> bool:
        return not state


class AllEdgesInAutomaton(ScanAutomaton):
    """Every edge of G lies in the union of the given edge-set variables."""

    def __init__(self, scope: Sequence[Var], indices: Sequence[int]):
        super().__init__(scope)
        self._indices = tuple(indices)

    def _identity(self) -> State:
        return False

    def _combine(self, a: State, b: State) -> State:
        return a or b

    def _item_value(self, kind, bits, labels) -> State:
        return kind == "e" and not any(i in bits for i in self._indices)

    def accepts(self, state: State) -> bool:
        return not state


# ----------------------------------------------------------------------
# Pending automata: requirements on boundary vertices resolved at Forget
# ----------------------------------------------------------------------

class PendingAutomaton(TreeAutomaton):
    """Base for atoms about edges between owned items and boundary vertices.

    State: ``(flag, pend, last)`` where ``pend`` has one entry per boundary
    position (requirements aimed at that ancestor), and ``last`` carries the
    information about the deepest boundary vertex gathered from its own Base
    symbol — available exactly when that vertex is about to be forgotten.
    """

    def _leaf(self, symbol: BaseSymbol) -> State:
        flag, contributions = self._leaf_contributions(symbol)
        pend = [self._empty_pend()] * symbol.depth
        for position, entry in contributions:
            pend[position - 1] = self._merge_pend(pend[position - 1], entry)
        return (flag, tuple(pend), self._last_info(symbol))

    def _glue(self, boundary: int, s1: State, s2: State) -> State:
        flag1, pend1, last1 = s1
        flag2, pend2, last2 = s2
        if len(pend1) != boundary or len(pend2) != boundary:
            raise ReproError("glue: boundary size mismatch")
        if last1 is not None and last2 is not None:
            raise ReproError("glue: two Base symbols for one boundary vertex")
        pend = tuple(self._merge_pend(a, b) for a, b in zip(pend1, pend2))
        return (flag1 or flag2, pend, last1 if last1 is not None else last2)

    def _forget(self, boundary: int, s: State) -> State:
        flag, pend, last = s
        if last is None:
            raise ReproError("forget: boundary vertex bits unknown")
        flag = self._resolve(flag, pend[boundary - 1], last)
        return (flag, pend[: boundary - 1], None)

    # -- hooks ----------------------------------------------------------
    @abstractmethod
    def _leaf_contributions(self, symbol: BaseSymbol) -> Tuple[bool, List[Tuple[int, Any]]]:
        """(initial flag, [(position, pend entry), ...]) for a Base symbol."""

    @abstractmethod
    def _last_info(self, symbol: BaseSymbol) -> Hashable:
        """What the Forget of this vertex needs to know about it."""

    @abstractmethod
    def _empty_pend(self) -> Any: ...

    @abstractmethod
    def _merge_pend(self, a: Any, b: Any) -> Any: ...

    @abstractmethod
    def _resolve(self, flag: bool, pend_entry: Any, last: Hashable) -> bool:
        """Fold the forgotten vertex's pending requirements into the flag."""


class EdgeWitnessAutomaton(PendingAutomaton):
    """∃ edge (optionally restricted to edge-set X_e) with one endpoint in
    X_x and the other in X_y (``y=None``: other endpoint unconstrained).

    Implements ``adj``, ``inc``, ``EdgeCross`` uniformly; the flag means
    "witness found".  Pend entries are the sets of bits that, if present on
    the ancestor, complete a witness.
    """

    def __init__(
        self,
        scope: Sequence[Var],
        x: int,
        y: Optional[int],
        edge_filter: Optional[int] = None,
    ):
        super().__init__(scope)
        self._x = x
        self._y = y
        self._edge_filter = edge_filter

    def _leaf_contributions(self, symbol: BaseSymbol):
        flag = False
        contributions: List[Tuple[int, FrozenSet[int]]] = []
        for position, ebits in symbol.ebits:
            if self._edge_filter is not None and self._edge_filter not in ebits:
                continue
            if self._y is None:
                if self._x in symbol.vbits:
                    flag = True
                else:
                    contributions.append((position, frozenset({self._x})))
            else:
                needed = set()
                if self._x in symbol.vbits:
                    needed.add(self._y)
                if self._y in symbol.vbits:
                    needed.add(self._x)
                if needed:
                    contributions.append((position, frozenset(needed)))
        return flag, contributions

    def _last_info(self, symbol: BaseSymbol) -> Hashable:
        relevant = {self._x}
        if self._y is not None:
            relevant.add(self._y)
        return frozenset(symbol.vbits & relevant)

    def _empty_pend(self):
        return frozenset()

    def _merge_pend(self, a, b):
        return a | b

    def _resolve(self, flag, pend_entry, last):
        return flag or bool(pend_entry & last)

    def accepts(self, state: State) -> bool:
        return bool(state[0])


class IncCountsAutomaton(PendingAutomaton):
    """Every vertex (optionally restricted to X_within) has a capped count
    of incident X_e edges inside ``allowed`` (the paper's degree-constraint
    workhorse: matchings, 2-factors, cycle supports, cubic subgraphs)."""

    def __init__(
        self,
        scope: Sequence[Var],
        e: int,
        allowed: FrozenSet[int],
        within: Optional[int],
        cap: int = 3,
    ):
        super().__init__(scope)
        self._e = e
        self._allowed = allowed
        self._within = within
        self._cap = cap

    def _leaf_contributions(self, symbol: BaseSymbol):
        contributions = [
            (position, 1)
            for position, ebits in symbol.ebits
            if self._e in ebits
        ]
        return False, contributions

    def _last_info(self, symbol: BaseSymbol) -> Hashable:
        in_scope = self._within is None or self._within in symbol.vbits
        own = sum(1 for _, ebits in symbol.ebits if self._e in ebits)
        return (in_scope, min(self._cap, own))

    def _empty_pend(self):
        return 0

    def _merge_pend(self, a, b):
        return min(self._cap, a + b)

    def _resolve(self, flag, pend_entry, last):
        in_scope, own = last
        total = min(self._cap, own + pend_entry)
        return flag or (in_scope and total not in self._allowed)

    def accepts(self, state: State) -> bool:
        return not state[0]


class IncParityAutomaton(PendingAutomaton):
    """Every vertex (optionally within X_within) has X_e-degree of the
    given parity — degree sums become XORs, so the pend entries are bits."""

    def __init__(
        self,
        scope: Sequence[Var],
        e: int,
        even: bool,
        within: Optional[int],
    ):
        super().__init__(scope)
        self._e = e
        self._target = 0 if even else 1
        self._within = within

    def _leaf_contributions(self, symbol: BaseSymbol):
        contributions = [
            (position, 1)
            for position, ebits in symbol.ebits
            if self._e in ebits
        ]
        return False, contributions

    def _last_info(self, symbol: BaseSymbol) -> Hashable:
        in_scope = self._within is None or self._within in symbol.vbits
        own = sum(1 for _, ebits in symbol.ebits if self._e in ebits) % 2
        return (in_scope, own)

    def _empty_pend(self):
        return 0

    def _merge_pend(self, a, b):
        return (a + b) % 2

    def _resolve(self, flag, pend_entry, last):
        in_scope, own = last
        return flag or (in_scope and (own + pend_entry) % 2 != self._target)

    def accepts(self, state: State) -> bool:
        return not state[0]


class CliqueAutomaton(PendingAutomaton):
    """X induces a clique.

    On an elimination forest any clique lies on one root path, so it
    suffices to track: (a) at most one subtree chunk may contain an
    interior X-vertex (two incomparable X-vertices are never adjacent);
    (b) an X-vertex must be adjacent to every X-ancestor, enforced with
    "ancestor must not be in X" demands at its non-adjacent positions.

    The base-class flag slot holds ``(violated, has_interior_x)``.
    """

    def __init__(self, scope: Sequence[Var], x: int):
        super().__init__(scope)
        self._x = x

    def _leaf_contributions(self, symbol: BaseSymbol):
        contributions = []
        if self._x in symbol.vbits:
            adjacent = set(symbol.anc_edges)
            for position in range(1, symbol.depth):
                if position not in adjacent:
                    contributions.append((position, True))
        return (False, False), contributions

    def _last_info(self, symbol: BaseSymbol) -> Hashable:
        return self._x in symbol.vbits

    def _empty_pend(self):
        return False

    def _merge_pend(self, a, b):
        return a or b

    def _resolve(self, flag, pend_entry, last):
        violated, has_interior = flag
        if last and pend_entry:
            # This vertex is in X but some X-descendant is not adjacent
            # to it.
            violated = True
        return (violated, has_interior or last)

    # The combined flag is a pair, so the OR-merge of the base class is
    # overridden: two chunks with interior X-vertices are incomparable.
    def _glue(self, boundary: int, s1: State, s2: State) -> State:
        (v1, h1), pend1, last1 = s1
        (v2, h2), pend2, last2 = s2
        if len(pend1) != boundary or len(pend2) != boundary:
            raise ReproError("glue: boundary size mismatch")
        if last1 is not None and last2 is not None:
            raise ReproError("glue: two Base symbols for one boundary vertex")
        violated = v1 or v2 or (h1 and h2)
        pend = tuple(a or b for a, b in zip(pend1, pend2))
        return (
            (violated, h1 or h2),
            pend,
            last1 if last1 is not None else last2,
        )

    def accepts(self, state: State) -> bool:
        return not state[0][0]


class EndpointsInAutomaton(PendingAutomaton):
    """Every edge of X_e has both endpoints in X_x (violation-tracking)."""

    def __init__(self, scope: Sequence[Var], e: int, x: int):
        super().__init__(scope)
        self._e = e
        self._x = x

    def _leaf_contributions(self, symbol: BaseSymbol):
        flag = False
        contributions: List[Tuple[int, bool]] = []
        for position, ebits in symbol.ebits:
            if self._e not in ebits:
                continue
            if self._x not in symbol.vbits:
                flag = True
            contributions.append((position, True))
        return flag, contributions

    def _last_info(self, symbol: BaseSymbol) -> Hashable:
        return self._x in symbol.vbits

    def _empty_pend(self):
        return False

    def _merge_pend(self, a, b):
        return a or b

    def _resolve(self, flag, pend_entry, last):
        return flag or (pend_entry and not last)

    def accepts(self, state: State) -> bool:
        return not state[0]


class GraphDegreesAutomaton(PendingAutomaton):
    """Every vertex's G-degree, capped at ``cap``, lies in ``allowed``.

    Degree of v = (edges from v to ancestors, seen at Base_v) +
    (edges from descendants to v, accumulated as capped pending counts).
    """

    def __init__(self, scope: Sequence[Var], allowed: FrozenSet[int], cap: int):
        super().__init__(scope)
        self._allowed = allowed
        self._cap = cap

    def _leaf_contributions(self, symbol: BaseSymbol):
        return False, [(position, 1) for position in symbol.anc_edges]

    def _last_info(self, symbol: BaseSymbol) -> Hashable:
        return min(self._cap, len(symbol.anc_edges))

    def _empty_pend(self):
        return 0

    def _merge_pend(self, a, b):
        return min(self._cap, a + b)

    def _resolve(self, flag, pend_entry, last):
        total = min(self._cap, last + pend_entry)
        return flag or total not in self._allowed

    def accepts(self, state: State) -> bool:
        return not state[0]


class ContainsPatternAutomaton(TreeAutomaton):
    """G contains a fixed pattern H (optionally induced).

    The state tracks a *found* flag plus a set of partial-embedding items.
    An item is ``(placed, demands)``:

    * ``placed`` — the pattern vertices already embedded into forgotten
      graph vertices (each Base symbol may host at most one pattern vertex,
      so distinctness is automatic);
    * ``demands`` — obligations aimed at boundary positions, each
      ``(position, source, target, positive)``: the Base hosting pattern
      vertex ``source`` promised/forbade pattern vertex ``target`` at that
      ancestor.  Positive demands certify a pattern edge whose graph edge
      (owned by the deeper endpoint) was verified at promise time; negative
      demands encode induced-mode non-edges.

    At ``Forget`` the deepest boundary vertex's own hosting choice (carried
    like the pending automata's ``last`` slot) is checked against all
    demands at its position, and completeness of its pattern neighborhood
    is enforced.  Items violating anything simply die; an item placing all
    of V(H) raises the absorbing ``found`` flag.

    This is the Corollary 7.3 φ_H decided without one projection blowup
    per pattern vertex.
    """

    def __init__(
        self,
        scope: Sequence[Var],
        num_vertices: int,
        edges: FrozenSet[Tuple[int, int]],
        induced: bool,
    ):
        super().__init__(scope)
        self._h_vertices = tuple(range(num_vertices))
        self._h_edges = edges
        self._induced = induced
        self._neighbors: Dict[int, FrozenSet[int]] = {
            a: frozenset(
                b
                for b in self._h_vertices
                if (min(a, b), max(a, b)) in edges and a != b
            )
            for a in self._h_vertices
        }

    # Item = (placed: frozenset[int], demands: frozenset[(pos, src, tgt, pos?)])
    # State = (found: bool, items: frozenset[Item], last: Optional[int|-1])
    # ``last`` = the pattern vertex hosted by the deepest boundary vertex
    # (-1 for "hosts nothing"); None when its Base is not in this chunk.
    # Because hosting is a per-item choice, ``last`` lives inside items:
    # item = (placed, demands, host) with host ∈ {None, -1, 0..n-1}.

    def _leaf(self, symbol: BaseSymbol) -> State:
        items = set()
        positions = symbol.anc_edges
        # Choice: host nothing.
        items.add((frozenset(), frozenset(), -1))
        for b0 in self._h_vertices:
            for promises in self._promise_maps(b0, positions):
                demands = set()
                for target, position in promises:
                    demands.add((position, b0, target, True))
                if self._induced:
                    for position in positions:
                        for other in self._h_vertices:
                            if other == b0 or other in self._neighbors[b0]:
                                continue
                            demands.add((position, b0, other, False))
                items.add((frozenset(), frozenset(demands), b0))
        return (False, frozenset(items), True)

    def _promise_maps(self, b0: int, positions: Tuple[int, ...]):
        """Injective partial maps from N_H(b0) into adjacent positions."""
        neighbors = sorted(self._neighbors[b0])

        def recurse(i: int, used: Tuple[int, ...], acc: Tuple[Tuple[int, int], ...]):
            if i == len(neighbors):
                yield acc
                return
            # Option: do not promise this neighbor here.
            yield from recurse(i + 1, used, acc)
            for position in positions:
                if position not in used:
                    yield from recurse(
                        i + 1, used + (position,), acc + ((neighbors[i], position),)
                    )

        yield from recurse(0, (), ())

    def _glue(self, boundary: int, s1: State, s2: State) -> State:
        found1, items1, base1 = s1
        found2, items2, base2 = s2
        if found1 or found2:
            return (True, frozenset(), False)
        if base1 and base2:
            raise ReproError("glue: two Base symbols for one boundary vertex")
        merged = set()
        for placed1, demands1, host1 in items1:
            for placed2, demands2, host2 in items2:
                if placed1 & placed2:
                    continue  # a pattern vertex embedded twice
                host = host1 if base1 else host2
                merged.add((placed1 | placed2, demands1 | demands2, host))
        return (False, frozenset(merged), base1 or base2)

    def _forget(self, boundary: int, s: State) -> State:
        found, items, has_base = s
        if found:
            return (True, frozenset(), False)
        if not has_base:
            raise ReproError("forget: boundary vertex's Base missing")
        survivors = set()
        for placed, demands, host in items:
            here = [d for d in demands if d[0] == boundary]
            rest = frozenset(d for d in demands if d[0] != boundary)
            b0 = None if host == -1 else host
            ok = True
            sources = set()
            for _, src, tgt, positive in here:
                if positive:
                    if b0 != tgt:
                        ok = False
                        break
                    sources.add(src)
                else:
                    if b0 == tgt:
                        ok = False
                        break
            if not ok:
                continue
            if b0 is None:
                survivors.add((placed, rest, None))
                continue
            if b0 in placed:
                continue  # pattern vertex hosted twice
            promised = {tgt for _, src, tgt, positive in demands
                        if positive and src == b0}
            if not self._neighbors[b0] <= (sources | promised):
                continue  # some pattern edge of b0 can never be realized
            new_placed = placed | {b0}
            if any(
                positive and tgt in new_placed
                for _, _, tgt, positive in rest
            ):
                continue  # a promise names an already-placed vertex: dead
            if len(new_placed) == len(self._h_vertices):
                return (True, frozenset(), False)
            survivors.add((new_placed, rest, None))
        # Re-open the 'host' slot for the next boundary vertex: at this
        # boundary the deeper vertex is gone, its parent's Base is pending.
        return (False, frozenset(survivors), False)

    def accepts(self, state: State) -> bool:
        return bool(state[0])


# ----------------------------------------------------------------------
# Composites
# ----------------------------------------------------------------------

class ProductAutomaton(TreeAutomaton):
    """Componentwise product; acceptance is all/any of the children."""

    def __init__(
        self,
        scope: Sequence[Var],
        children: Sequence[TreeAutomaton],
        conjunctive: bool,
    ):
        super().__init__(scope)
        if not children:
            raise ReproError("product of zero automata")
        self._children = list(children)
        self._conjunctive = conjunctive

    def _leaf(self, symbol: BaseSymbol) -> State:
        return tuple(child.leaf(symbol) for child in self._children)

    def _glue(self, boundary: int, s1: State, s2: State) -> State:
        return tuple(
            child.glue(boundary, a, b)
            for child, a, b in zip(self._children, s1, s2)
        )

    def _forget(self, boundary: int, s: State) -> State:
        return tuple(
            child.forget(boundary, a) for child, a in zip(self._children, s)
        )

    def accepts(self, state: State) -> bool:
        verdicts = (
            child.accepts(a) for child, a in zip(self._children, state)
        )
        return all(verdicts) if self._conjunctive else any(verdicts)


class ComplementAutomaton(TreeAutomaton):
    """Negation: same (deterministic) state space, flipped acceptance."""

    def __init__(self, scope: Sequence[Var], inner: TreeAutomaton):
        super().__init__(scope)
        self._inner = inner

    def _leaf(self, symbol: BaseSymbol) -> State:
        return self._inner.leaf(symbol)

    def _glue(self, boundary: int, s1: State, s2: State) -> State:
        return self._inner.glue(boundary, s1, s2)

    def _forget(self, boundary: int, s: State) -> State:
        return self._inner.forget(boundary, s)

    def accepts(self, state: State) -> bool:
        return not self._inner.accepts(state)


class ProjectionAutomaton(TreeAutomaton):
    """∃X_i: guess the projected variable's bits at each Base symbol and
    re-determinize by the subset construction."""

    def __init__(self, inner: TreeAutomaton, var: Var):
        if not inner.scope or inner.scope[-1] != var:
            raise ReproError("projection must remove the innermost scope variable")
        super().__init__(inner.scope[:-1])
        self._inner = inner
        self._var = var
        self._index = len(self.scope)

    def _leaf(self, symbol: BaseSymbol) -> State:
        return frozenset(
            self._inner.leaf(extended)
            for extended in extend_symbol(symbol, self._index, self._var.sort)
        )

    def _glue(self, boundary: int, s1: State, s2: State) -> State:
        return frozenset(
            self._inner.glue(boundary, a, b) for a in s1 for b in s2
        )

    def _forget(self, boundary: int, s: State) -> State:
        return frozenset(self._inner.forget(boundary, a) for a in s)

    def accepts(self, state: State) -> bool:
        return any(self._inner.accepts(a) for a in state)


def extend_symbol(symbol: BaseSymbol, index: int, sort: Sort) -> Iterator[BaseSymbol]:
    """All extensions of ``symbol`` with membership bits for one new
    variable of the given sort at scope position ``index``."""
    if sort.is_vertex_kind:
        yield BaseSymbol(symbol.structure, symbol.vbits, symbol.ebits)
        yield BaseSymbol(symbol.structure, symbol.vbits | {index}, symbol.ebits)
        return
    positions = [pos for pos, _ in symbol.ebits]
    bits_by_pos = dict(symbol.ebits)
    for mask in range(1 << len(positions)):
        ebits = tuple(
            (
                pos,
                bits_by_pos[pos] | ({index} if mask >> slot & 1 else frozenset()),
            )
            for slot, pos in enumerate(positions)
        )
        yield BaseSymbol(symbol.structure, symbol.vbits, ebits)
