"""Compile-once automaton cache: memoized kernels with on-disk persistence.

Theorem 6.1's round complexity is n-independent because the per-node work
is a constant-size table lookup — the automaton's transition tables and
the class-id codec depend only on (formula, treedepth bound d, label
alphabet), never on the input graph.  This module makes that "compile
once, evaluate everywhere" structure explicit:

* :class:`AutomatonCache` memoizes compiled :class:`TreeAutomaton` objects
  (together with their :class:`~repro.distributed.model_checking.ClassCodec`)
  keyed by a canonical digest of ``(cache version, library version,
  formula, scope, d, labels, singleton flag)``;
* entries persist as pickles under ``~/.cache/repro`` (override with
  ``REPRO_CACHE_DIR``; disable with ``REPRO_NO_CACHE=1``), so a fresh
  process — e.g. each ``python -m repro`` invocation — reuses transition
  tables *warmed by earlier runs* instead of re-deriving every projection
  / subset-construction step from scratch;
* invalidation is explicit (:meth:`AutomatonCache.invalidate`,
  :meth:`AutomatonCache.clear`) and automatic on version bumps: the
  library version and :data:`CACHE_VERSION` are part of every key, so
  stale entries are simply never looked up again.

:func:`transition_table_bytes` canonicalizes an automaton's materialized
tables into process-independent bytes (frozensets are sorted by canonical
repr, so ``PYTHONHASHSEED`` cannot leak in); the cache tests pin that two
independent compilations of the same formula produce identical bytes.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import os
import pickle
import tempfile
from pathlib import Path
from typing import Any, Dict, Iterable, Optional, Sequence, Tuple

from ..mso import syntax as sx
from ..obs.registry import registry as _registry
from .automata import TreeAutomaton
from .compiler import compile_formula, compile_with_singletons

#: Bump to invalidate every on-disk entry after a format/semantics change.
#: 2: entries may carry a pickled TabulatedAutomaton kernel (see
#: :mod:`repro.algebra.tables`) riding on the automaton.
#: 3: entries may carry minimized-kernel wrappers (quotient maps plus
#: before/after state counts, see :mod:`repro.algebra.minimize`) keyed
#: per ``(d, labels)`` on the automaton; memoized budget fallbacks ride
#: along so a failed closure is never retried in a later process.
CACHE_VERSION = 3

__all__ = [
    "CACHE_VERSION",
    "AutomatonCache",
    "cache_key",
    "cached_compile",
    "default_cache",
    "set_default_cache",
    "transition_table_bytes",
]


# ----------------------------------------------------------------------
# Canonicalization (hash-order independent)
# ----------------------------------------------------------------------

def _canon(value: Any) -> Any:
    """A canonical, deterministic structure for hashing and table dumps.

    Frozensets/sets are sorted by the repr of their canonical elements, so
    the result does not depend on hash seeds or insertion order.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return (type(value).__name__,) + tuple(
            (f.name, _canon(getattr(value, f.name)))
            for f in dataclasses.fields(value)
        )
    if isinstance(value, enum.Enum):
        return ("enum", type(value).__name__, value.value)
    if isinstance(value, (frozenset, set)):
        return ("set",) + tuple(sorted((_canon(v) for v in value), key=repr))
    if isinstance(value, (tuple, list)):
        return ("seq",) + tuple(_canon(v) for v in value)
    if isinstance(value, dict):
        return ("map",) + tuple(
            sorted(((repr(_canon(k)), _canon(v)) for k, v in value.items()))
        )
    return value


def cache_key(
    formula: sx.Formula,
    scope: Sequence[sx.Var] = (),
    *,
    d: Optional[int] = None,
    labels: Iterable[str] = (),
    singletons: bool = False,
    version: int = CACHE_VERSION,
) -> str:
    """The canonical digest naming one compiled-automaton cache entry."""
    from .. import __version__

    material = repr((
        "repro-automaton",
        version,
        __version__,
        _canon(formula),
        _canon(tuple(scope)),
        d,
        tuple(sorted(set(labels))),
        bool(singletons),
    ))
    return hashlib.sha256(material.encode()).hexdigest()


# ----------------------------------------------------------------------
# Canonical transition-table serialization
# ----------------------------------------------------------------------

def _canon_str(value: Any, memo: Dict[Any, str]) -> str:
    """Canonical string form of a state/symbol, memoized across calls.

    States are interned and heavily shared (a glue-cache key reuses the
    same frozenset objects thousands of times), so memoizing by the
    hashable value itself turns an otherwise quadratic dump linear.
    """
    if isinstance(value, (frozenset, set, tuple, list, dict)) or (
        dataclasses.is_dataclass(value) and not isinstance(value, type)
    ) or isinstance(value, enum.Enum):
        try:
            cached = memo.get(value)
            hashable = True
        except TypeError:
            cached, hashable = None, False
        if cached is not None:
            return cached
        if dataclasses.is_dataclass(value) and not isinstance(value, type):
            out = "%s(%s)" % (
                type(value).__name__,
                ",".join(
                    f"{f.name}={_canon_str(getattr(value, f.name), memo)}"
                    for f in dataclasses.fields(value)
                ),
            )
        elif isinstance(value, enum.Enum):
            out = f"<{type(value).__name__}.{value.name}>"
        elif isinstance(value, (frozenset, set)):
            out = "{%s}" % ",".join(sorted(_canon_str(v, memo) for v in value))
        elif isinstance(value, dict):
            out = "map{%s}" % ",".join(sorted(
                f"{_canon_str(k, memo)}:{_canon_str(v, memo)}"
                for k, v in value.items()
            ))
        else:
            out = "(%s)" % ",".join(_canon_str(v, memo) for v in value)
        if hashable:
            memo[value] = out
        return out
    return repr(value)


def _component_automata(automaton: TreeAutomaton, _seen=None):
    """Depth-first walk of an automaton and its composite children.

    Shared sub-automata are yielded once (the walk is over a DAG, not a
    tree), in first-encounter order — deterministic for a fixed compile.
    """
    if _seen is None:
        _seen = set()
    if id(automaton) in _seen:
        return
    _seen.add(id(automaton))
    yield automaton
    for child in getattr(automaton, "_children", ()):
        yield from _component_automata(child, _seen)
    inner = getattr(automaton, "_inner", None)
    if isinstance(inner, TreeAutomaton):
        yield from _component_automata(inner, _seen)


def transition_table_bytes(automaton: TreeAutomaton) -> bytes:
    """Canonical bytes of every materialized transition-table entry.

    Covers the leaf / glue / forget caches and the class-id interning of
    the automaton and all its composite components, sorted canonically —
    two automata compiled from the same formula (and warmed on the same
    runs) serialize to identical bytes in any process.
    """
    memo: Dict[Any, str] = {}
    digests: Dict[str, str] = {}

    def tag(value: Any) -> str:
        canonical = _canon_str(value, memo)
        digest = digests.get(canonical)
        if digest is None:
            digest = hashlib.sha256(canonical.encode()).hexdigest()[:16]
            digests[canonical] = digest
        return digest

    lines = []
    for index, component in enumerate(_component_automata(automaton)):
        prefix = f"{index}:{type(component).__name__}"
        for symbol, state in component._leaf_cache.items():
            lines.append(f"{prefix}|leaf|{tag(symbol)}|{tag(state)}")
        for (boundary, s1, s2), state in component._glue_cache.items():
            lines.append(
                f"{prefix}|glue|{boundary}|{tag(s1)}|{tag(s2)}|{tag(state)}"
            )
        for (boundary, s), state in component._forget_cache.items():
            lines.append(f"{prefix}|forget|{boundary}|{tag(s)}|{tag(state)}")
        for state, class_id in component._intern.items():
            lines.append(f"{prefix}|intern|{tag(state)}|{class_id}")
    lines.sort()
    return "\n".join(lines).encode()


def _table_entries(automaton: TreeAutomaton) -> int:
    """Total materialized table entries (a cheap warm-ness measure).

    Includes the dense integer tables of an attached
    :class:`~repro.algebra.tables.TabulatedAutomaton` kernel (stored on
    the automaton by :func:`~repro.algebra.tables.tabulated`) and the
    quotient maps / op caches of any minimized variants (stored by
    :func:`~repro.algebra.minimize.minimized_automaton`), so
    ``save_warm`` re-persists entries whose *kernel* warmed even when the
    state-level caches did not grow.  Memoized minimization fallbacks
    count as one entry each — persisting them is what stops the next
    process from re-running a doomed closure.
    """
    total = 0

    def op_caches(aut: TreeAutomaton) -> int:
        return (
            len(aut._leaf_cache)
            + len(aut._glue_cache)
            + len(aut._forget_cache)
            + len(aut._intern)
        )

    def kernel(aut: TreeAutomaton) -> int:
        wrapper = getattr(aut, "_tabulated_wrapper", None)
        return wrapper.table_entries() if wrapper is not None else 0

    for component in _component_automata(automaton):
        total += op_caches(component) + kernel(component)
        for minimized in getattr(component, "_minimized_variants", {}).values():
            total += 1  # the memoized variant itself (None = fallback)
            if minimized is not None:
                total += op_caches(minimized) + kernel(minimized)
                total += sum(
                    len(table) for table in minimized._quotient.values()
                )
    return total


# ----------------------------------------------------------------------
# The cache proper
# ----------------------------------------------------------------------

def _default_directory() -> Path:
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    return Path(os.path.expanduser("~")) / ".cache" / "repro"


class AutomatonCache:
    """Memoized (automaton, codec) pairs with optional disk persistence.

    In-memory entries are shared within a process; with ``persist=True``
    (default) each entry is also pickled under ``directory`` so later
    processes load transition tables already warmed by earlier runs
    instead of re-deriving them.  Corrupt or unreadable pickles are
    treated as misses, never as errors.
    """

    def __init__(
        self,
        directory: Optional[os.PathLike] = None,
        *,
        persist: bool = True,
        version: int = CACHE_VERSION,
    ):
        if os.environ.get("REPRO_NO_CACHE"):
            persist = False
        self.directory = Path(directory) if directory else _default_directory()
        self.persist = persist
        self.version = version
        self._memory: Dict[str, Tuple[TreeAutomaton, Any]] = {}
        self._loaded_entries: Dict[str, int] = {}
        self.hits = 0
        self.misses = 0
        self.disk_loads = 0

    # -- keys and paths -------------------------------------------------
    def key(
        self,
        formula: sx.Formula,
        scope: Sequence[sx.Var] = (),
        *,
        d: Optional[int] = None,
        labels: Iterable[str] = (),
        singletons: bool = False,
    ) -> str:
        return cache_key(
            formula, scope, d=d, labels=labels, singletons=singletons,
            version=self.version,
        )

    def _path(self, key: str) -> Path:
        return self.directory / f"{key}.pkl"

    # -- lookup ---------------------------------------------------------
    def automaton_with_codec(
        self,
        formula: sx.Formula,
        scope: Sequence[sx.Var] = (),
        *,
        d: Optional[int] = None,
        labels: Iterable[str] = (),
        singletons: bool = False,
    ) -> Tuple[TreeAutomaton, Any]:
        """The compiled automaton and its codec for this key (cached).

        Both objects are shared: every caller with the same key gets the
        same automaton instance, so transition tables warm monotonically
        and class ids stay stable across runs — the distributed protocols'
        common-knowledge assumption, now also stable across processes.
        """
        key = self.key(
            formula, scope, d=d, labels=labels, singletons=singletons
        )
        entry = self._memory.get(key)
        if entry is not None:
            self.hits += 1
            _registry().counter(
                "repro_cache_hits_total", "AutomatonCache lookup hits."
            ).inc()
            return entry
        entry = self._load(key)
        if entry is not None:
            self.hits += 1
            _registry().counter(
                "repro_cache_hits_total", "AutomatonCache lookup hits."
            ).inc()
        if entry is None:
            self.misses += 1
            _registry().counter(
                "repro_cache_misses_total", "AutomatonCache lookup misses."
            ).inc()
            scope = tuple(scope)
            if singletons:
                automaton = compile_with_singletons(formula, scope)
            else:
                automaton = compile_formula(formula, scope)
            from ..distributed.model_checking import ClassCodec

            entry = (automaton, ClassCodec(automaton))
            self._store(key, entry)
        self._memory[key] = entry
        self._loaded_entries[key] = _table_entries(entry[0])
        return entry

    def automaton(self, formula: sx.Formula, scope: Sequence[sx.Var] = (),
                  **kwargs: Any) -> TreeAutomaton:
        """Like :meth:`automaton_with_codec`, returning only the automaton."""
        return self.automaton_with_codec(formula, scope, **kwargs)[0]

    # -- persistence ----------------------------------------------------
    def _load(self, key: str):
        if not self.persist:
            return None
        path = self._path(key)
        try:
            with open(path, "rb") as handle:
                entry = pickle.load(handle)
        except (OSError, pickle.PickleError, EOFError, AttributeError,
                ImportError, IndexError):
            return None
        if (
            not isinstance(entry, tuple)
            or len(entry) != 2
            or not isinstance(entry[0], TreeAutomaton)
        ):
            return None
        self.disk_loads += 1
        _registry().counter(
            "repro_cache_disk_loads_total",
            "AutomatonCache entries loaded from disk persistence.",
        ).inc()
        return entry

    def _store(self, key: str, entry: Tuple[TreeAutomaton, Any]) -> None:
        if not self.persist:
            return
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=self.directory, prefix=f".{key[:16]}-", suffix=".tmp"
            )
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(entry, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, self._path(key))
        except (OSError, pickle.PickleError):
            # A read-only or full cache dir degrades to memory-only.
            pass

    def save_warm(self) -> int:
        """Re-persist every entry whose tables grew since it was loaded.

        Call after a run: transition tables are materialized lazily, so a
        run typically discovers new (symbol, state) entries.  Returns the
        number of entries rewritten.
        """
        if not self.persist:
            return 0
        written = 0
        for key, entry in self._memory.items():
            size = _table_entries(entry[0])
            if size != self._loaded_entries.get(key):
                self._store(key, entry)
                self._loaded_entries[key] = size
                written += 1
        return written

    # -- introspection --------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        """Aggregate statistics backing ``repro cache stats``.

        Covers the in-memory entries (with per-entry table sizes and the
        state counts of any minimized variants), the on-disk footprint,
        and this instance's hit/miss/disk-load counters.  Registry-level
        counters aggregate across *all* caches in the process; these are
        per instance.
        """
        disk_entries = 0
        disk_bytes = 0
        if self.persist:
            try:
                for path in self.directory.glob("*.pkl"):
                    try:
                        disk_bytes += path.stat().st_size
                        disk_entries += 1
                    except OSError:
                        pass
            except OSError:
                pass
        entries = []
        for key in sorted(self._memory):
            automaton = self._memory[key][0]
            minimized = []
            variants = getattr(automaton, "_minimized_variants", {})
            for (vd, vlabels), wrapper in sorted(variants.items()):
                info: Dict[str, Any] = {
                    "d": vd,
                    "labels": list(vlabels),
                    "fallback": wrapper is None,
                }
                if wrapper is not None:
                    info.update(
                        states_total=wrapper.stats.states_total,
                        states_reachable=wrapper.stats.states_reachable,
                        states_minimized=wrapper.stats.states_minimized,
                    )
                minimized.append(info)
            entries.append({
                "key": key,
                "table_entries": _table_entries(automaton),
                "minimized": minimized,
            })
        return {
            "directory": str(self.directory),
            "persist": self.persist,
            "memory_entries": len(self._memory),
            "disk_entries": disk_entries,
            "disk_bytes": disk_bytes,
            "hits": self.hits,
            "misses": self.misses,
            "disk_loads": self.disk_loads,
            "entries": entries,
        }

    # -- invalidation ---------------------------------------------------
    def invalidate(
        self,
        formula: sx.Formula,
        scope: Sequence[sx.Var] = (),
        *,
        d: Optional[int] = None,
        labels: Iterable[str] = (),
        singletons: bool = False,
    ) -> bool:
        """Drop one entry from memory and disk; True if anything existed."""
        key = self.key(
            formula, scope, d=d, labels=labels, singletons=singletons
        )
        existed = self._memory.pop(key, None) is not None
        self._loaded_entries.pop(key, None)
        path = self._path(key)
        try:
            path.unlink()
            existed = True
        except OSError:
            pass
        return existed

    def clear(self) -> int:
        """Drop every entry (memory + this cache's ``*.pkl`` files)."""
        count = len(self._memory)
        self._memory.clear()
        self._loaded_entries.clear()
        try:
            removed = 0
            for path in self.directory.glob("*.pkl"):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
            count = max(count, removed)
        except OSError:
            pass
        return count


_DEFAULT_CACHE: Optional[AutomatonCache] = None


def default_cache() -> AutomatonCache:
    """The process-wide cache (created lazily; honors REPRO_* env vars)."""
    global _DEFAULT_CACHE
    if _DEFAULT_CACHE is None:
        _DEFAULT_CACHE = AutomatonCache()
    return _DEFAULT_CACHE


def set_default_cache(cache: Optional[AutomatonCache]) -> None:
    """Replace the process-wide cache (None resets to lazy default)."""
    global _DEFAULT_CACHE
    _DEFAULT_CACHE = cache


def cached_compile(
    formula: sx.Formula,
    scope: Sequence[sx.Var] = (),
    *,
    d: Optional[int] = None,
    labels: Iterable[str] = (),
    singletons: bool = False,
    cache: Optional[AutomatonCache] = None,
) -> TreeAutomaton:
    """Drop-in cached variant of :func:`repro.algebra.compile_formula`."""
    cache = cache or default_cache()
    return cache.automaton(
        formula, scope, d=d, labels=labels, singletons=singletons
    )
