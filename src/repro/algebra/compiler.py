"""Compile MSO formulas into tree automata (Theorem 4.2, constructive).

The compilation is by structural induction, exactly the Borie-Parker-Tovey
recipe instantiated on the treedepth algebra:

* atoms           → hand-written scan / pending automata,
* ∧ / ∨           → product automata,
* ¬               → complement (sound: every automaton is deterministic),
* ∃X (set sort)   → projection + lazy subset construction,
* ∃x (element)    → projection of (body ∧ "the guessed set is a singleton"),
* ∀ (either sort) → ¬∃¬.

The resulting automaton's interned states are the homomorphism classes 𝒞;
its transitions are the update functions ⊙_f; ``accepts`` marks the
accepting classes.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from ..errors import FormulaError
from ..mso import syntax as sx
from .automata import (
    AllEdgesInAutomaton,
    AllVerticesInAutomaton,
    CliqueAutomaton,
    ComplementAutomaton,
    ConstAutomaton,
    ContainsPatternAutomaton,
    EdgeWitnessAutomaton,
    EndpointsInAutomaton,
    GraphDegreesAutomaton,
    HasLabelAutomaton,
    IncCountsAutomaton,
    IncParityAutomaton,
    IntersectsAutomaton,
    NonEmptyAutomaton,
    ProductAutomaton,
    ProjectionAutomaton,
    SingletonAutomaton,
    SubsetAutomaton,
    TreeAutomaton,
)


def compile_formula(
    formula: sx.Formula, scope: Sequence[sx.Var] = ()
) -> TreeAutomaton:
    """Compile ``formula`` (free variables exactly ``scope``) to an automaton.

    ``scope`` fixes the order of the free variables: membership bits on
    Base symbols are indexed by position in this tuple.
    """
    from ..mso.transform import simplify

    scope = tuple(scope)
    sx.validate(formula, allowed_free=scope)
    return _compile(simplify(formula), scope)


def compile_with_singletons(
    formula: sx.Formula, scope: Sequence[sx.Var]
) -> TreeAutomaton:
    """Like :func:`compile_formula`, but element-sorted free variables are
    constrained to be singletons.

    This is the automaton for counting runs (Section 6): free vertex/edge
    variables must range over single items, not sets.
    """
    scope = tuple(scope)
    base = compile_formula(formula, scope)
    singletons = [
        SingletonAutomaton(scope, i)
        for i, var in enumerate(scope)
        if not var.sort.is_set
    ]
    if not singletons:
        return base
    return ProductAutomaton(scope, [base] + singletons, conjunctive=True)


def _index(scope: Tuple[sx.Var, ...], var: sx.Var) -> int:
    try:
        return scope.index(var)
    except ValueError:
        raise FormulaError(f"variable {var} escaped its scope") from None


def _compile(f: sx.Formula, scope: Tuple[sx.Var, ...]) -> TreeAutomaton:
    if isinstance(f, sx.Truth):
        return ConstAutomaton(scope, f.value)
    if isinstance(f, sx.Adj):
        return EdgeWitnessAutomaton(
            scope, x=_index(scope, f.x), y=_index(scope, f.y)
        )
    if isinstance(f, sx.Inc):
        return EdgeWitnessAutomaton(
            scope, x=_index(scope, f.x), y=None, edge_filter=_index(scope, f.e)
        )
    if isinstance(f, sx.EdgeCross):
        return EdgeWitnessAutomaton(
            scope,
            x=_index(scope, f.x),
            y=_index(scope, f.y) if f.y is not None else None,
            edge_filter=_index(scope, f.e),
        )
    if isinstance(f, sx.Eq):
        # Element variables are singleton sets: equality ⇔ intersection.
        return IntersectsAutomaton(scope, _index(scope, f.x), _index(scope, f.y))
    if isinstance(f, sx.In):
        # x is a singleton: x ∈ S ⇔ {x} ∩ S ≠ ∅.
        return IntersectsAutomaton(scope, _index(scope, f.x), _index(scope, f.s))
    if isinstance(f, sx.Subset):
        return SubsetAutomaton(
            scope, _index(scope, f.a), [_index(scope, b) for b in f.bs]
        )
    if isinstance(f, sx.SetsIntersect):
        return IntersectsAutomaton(scope, _index(scope, f.a), _index(scope, f.b))
    if isinstance(f, sx.AllVerticesIn):
        return AllVerticesInAutomaton(scope, [_index(scope, b) for b in f.bs])
    if isinstance(f, sx.ContainsPattern):
        return ContainsPatternAutomaton(scope, f.num_vertices, f.edges, f.induced)
    if isinstance(f, sx.GraphDegrees):
        return GraphDegreesAutomaton(scope, f.allowed, f.cap)
    if isinstance(f, sx.NonEmpty):
        return NonEmptyAutomaton(scope, _index(scope, f.a))
    if isinstance(f, sx.HasLabel):
        return HasLabelAutomaton(scope, _index(scope, f.a), f.label, universal=False)
    if isinstance(f, sx.AllHaveLabel):
        return HasLabelAutomaton(scope, _index(scope, f.a), f.label, universal=True)
    if isinstance(f, sx.IncCounts):
        return IncCountsAutomaton(
            scope,
            e=_index(scope, f.e),
            allowed=f.allowed,
            within=_index(scope, f.within) if f.within is not None else None,
            cap=f.cap,
        )
    if isinstance(f, sx.IncParity):
        return IncParityAutomaton(
            scope,
            e=_index(scope, f.e),
            even=f.even,
            within=_index(scope, f.within) if f.within is not None else None,
        )
    if isinstance(f, sx.AllEdgesIn):
        return AllEdgesInAutomaton(scope, [_index(scope, b) for b in f.bs])
    if isinstance(f, sx.IsClique):
        return CliqueAutomaton(scope, _index(scope, f.x))
    if isinstance(f, sx.EndpointsIn):
        return EndpointsInAutomaton(scope, _index(scope, f.e), _index(scope, f.x))
    if isinstance(f, sx.Not):
        return ComplementAutomaton(scope, _compile(f.inner, scope))
    if isinstance(f, sx.And):
        return ProductAutomaton(
            scope, [_compile(p, scope) for p in f.parts], conjunctive=True
        )
    if isinstance(f, sx.Or):
        return ProductAutomaton(
            scope, [_compile(p, scope) for p in f.parts], conjunctive=False
        )
    if isinstance(f, sx.Exists):
        return _compile_exists(f.var, f.body, scope)
    if isinstance(f, sx.Forall):
        # ∀v φ  ≡  ¬∃v ¬φ.
        rewritten = sx.Not(sx.Exists(f.var, sx.Not(f.body)))
        return _compile(rewritten, scope)
    raise FormulaError(f"unknown formula node {f!r}")


def _compile_exists(
    var: sx.Var, body: sx.Formula, scope: Tuple[sx.Var, ...]
) -> TreeAutomaton:
    inner_scope = scope + (var,)
    inner = _compile(body, inner_scope)
    if not var.sort.is_set:
        # Element quantification: the guessed set must contain exactly one
        # item of the right kind.
        singleton = SingletonAutomaton(inner_scope, len(scope))
        inner = ProductAutomaton(inner_scope, [inner, singleton], conjunctive=True)
    return ProjectionAutomaton(inner, var)
