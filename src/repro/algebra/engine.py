"""The sequential Courcelle engine (paper Algorithm 1).

Runs a compiled tree automaton bottom-up over an elimination forest:

* :func:`check`            — decision for closed formulas (Lemma 4.3),
* :func:`check_assignment` — decision with fixed free variables
                             (labeled-graph / optmarked building block),
* :func:`optimize`         — max/min-weight free set with the ARGOPT
                             top-down reconstruction (Lemma 4.6),
* :func:`count`            — number of satisfying assignments (Section 6).

The same per-node recurrence is reused verbatim by the CONGEST protocols;
here the "messages" are ordinary function returns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..errors import DecompositionError, ReproError
from ..graph import Graph, Vertex
from ..mso import syntax as sx
from ..obs.profile import profiled
from ..treedepth import EliminationForest
from .automata import State, TreeAutomaton
from .compiler import compile_formula
from .tables import TabulatedAutomaton
from .symbols import (
    BaseStructure,
    SymbolChoice,
    base_structure,
    enumerate_symbol_choices,
    owned_items,
    symbol_for_assignment,
)


def _require_valid(graph: Graph, forest: EliminationForest) -> None:
    if not forest.is_valid_for(graph):
        raise DecompositionError("forest is not an elimination forest of the graph")


# ----------------------------------------------------------------------
# Decision (Lemma 4.3)
# ----------------------------------------------------------------------

def run_states(
    automaton: TreeAutomaton,
    graph: Graph,
    forest: EliminationForest,
    assignment: Optional[Dict[sx.Var, Any]] = None,
) -> State:
    """Bottom-up run; returns the homomorphism class of the whole graph."""
    if graph.num_vertices() == 0:
        raise ReproError("the algebra run needs at least one vertex")
    assignment = assignment or {}
    if isinstance(automaton, TabulatedAutomaton):
        return _run_states_tabulated(automaton, graph, forest, assignment)
    with profiled("algebra.run_states"):
        state_after: Dict[Vertex, State] = {}
        for v in forest.bottom_up_order():
            k = forest.depth_of(v)
            structure = base_structure(graph, forest, v)
            vertex_item, edge_items = owned_items(graph, forest, v)
            symbol = symbol_for_assignment(
                structure, automaton.scope, vertex_item, edge_items, assignment
            )
            state = automaton.leaf(symbol)
            for child in forest.children(v):
                state = automaton.glue(k, state, state_after.pop(child))
            state_after[v] = automaton.forget(k, state)
        total: Optional[State] = None
        for root in forest.roots():
            s = state_after.pop(root)
            total = s if total is None else automaton.glue(0, total, s)
        assert total is not None
        return total


def _run_states_tabulated(
    automaton: TabulatedAutomaton,
    graph: Graph,
    forest: EliminationForest,
    assignment: Dict[sx.Var, Any],
) -> State:
    """Integer-id bottom-up run; whole nodes memoize via ``fold_decide``."""
    with profiled("algebra.run_states"):
        id_after: Dict[Vertex, int] = {}
        for v in forest.bottom_up_order():
            k = forest.depth_of(v)
            structure = base_structure(graph, forest, v)
            vertex_item, edge_items = owned_items(graph, forest, v)
            symbol = symbol_for_assignment(
                structure, automaton.scope, vertex_item, edge_items, assignment
            )
            id_after[v] = automaton.fold_decide(
                k,
                automaton.leaf_id(symbol),
                tuple(id_after.pop(child) for child in forest.children(v)),
            )
        total: Optional[int] = None
        for root in forest.roots():
            sid = id_after.pop(root)
            total = sid if total is None else automaton.glue_id(0, total, sid)
        assert total is not None
        return automaton.state_of(total)


def check(
    formula: sx.Formula,
    graph: Graph,
    forest: EliminationForest,
    automaton: Optional[TreeAutomaton] = None,
) -> bool:
    """Does ``graph`` ⊨ ``formula`` (closed)?  Runs Algorithm 1's decision."""
    _require_valid(graph, forest)
    if graph.num_vertices() == 0:
        from ..mso.semantics import evaluate

        return evaluate(graph, formula)
    automaton = automaton or compile_formula(formula, ())
    return automaton.accepts(run_states(automaton, graph, forest))


def check_assignment(
    formula: sx.Formula,
    graph: Graph,
    forest: EliminationForest,
    assignment: Dict[sx.Var, Any],
    automaton: Optional[TreeAutomaton] = None,
) -> bool:
    """Does ``graph`` ⊨ ``formula(assignment)``?"""
    _require_valid(graph, forest)
    scope = tuple(sorted(assignment, key=lambda v: v.name))
    if graph.num_vertices() == 0:
        from ..mso.semantics import evaluate

        return evaluate(graph, formula, assignment)
    automaton = automaton or compile_formula(formula, scope)
    total = run_states(automaton, graph, forest, assignment)
    return automaton.accepts(total)


# ----------------------------------------------------------------------
# Optimization (Lemma 4.6 + the ARGOPT top-down phase)
# ----------------------------------------------------------------------

@dataclass
class _NodeTrace:
    """Back-pointers for reconstructing the optimal choice at one vertex."""

    leaf_choice: Dict[State, SymbolChoice]
    glue_steps: List[Tuple[Vertex, Dict[State, Tuple[State, State]]]]
    forget_back: Dict[State, State]


@dataclass(frozen=True)
class OptimizationResult:
    """Outcome of max-φ / min-φ: the optimum weight and a witness set."""

    value: int
    witness: FrozenSet[Any]
    classes: int

    def __iter__(self):
        return iter((self.value, self.witness))


def optimize(
    formula: sx.Formula,
    graph: Graph,
    forest: EliminationForest,
    var: sx.Var,
    maximize: bool = True,
    automaton: Optional[TreeAutomaton] = None,
) -> Optional[OptimizationResult]:
    """Solve max-φ (or min-φ) for the free set variable ``var``.

    Item weights come from the graph (``vertex_weight``/``edge_weight``,
    default 1).  Returns ``None`` when no set satisfies φ.
    """
    _require_valid(graph, forest)
    if not var.sort.is_set:
        raise ReproError("optimization requires a free set variable")
    if graph.num_vertices() == 0:
        return None
    automaton = automaton or compile_formula(formula, (var,))
    if automaton.scope != (var,):
        raise ReproError("automaton scope must be exactly (var,)")
    sign = 1 if maximize else -1

    def weight_of(items: Sequence[Any]) -> int:
        total = 0
        for item in items:
            if isinstance(item, tuple):
                total += graph.edge_weight(item[0], item[1])
            else:
                total += graph.vertex_weight(item)
        return total

    tables: Dict[Vertex, Dict[State, int]] = {}
    traces: Dict[Vertex, _NodeTrace] = {}

    def better(candidate: int, incumbent: Optional[int]) -> bool:
        return incumbent is None or sign * candidate > sign * incumbent

    with profiled("algebra.optimize.tables"):
        for v in forest.bottom_up_order():
            k = forest.depth_of(v)
            structure = base_structure(graph, forest, v)
            vertex_item, edge_items = owned_items(graph, forest, v)
            leaf_table: Dict[State, int] = {}
            leaf_choice: Dict[State, SymbolChoice] = {}
            for choice in enumerate_symbol_choices(
                structure, automaton.scope, vertex_item, edge_items
            ):
                state = automaton.leaf(choice.symbol)
                w = weight_of(choice.chosen[0])
                if better(w, leaf_table.get(state)):
                    leaf_table[state] = w
                    leaf_choice[state] = choice
            table = leaf_table
            glue_steps: List[Tuple[Vertex, Dict[State, Tuple[State, State]]]] = []
            for child in forest.children(v):
                child_table = tables.pop(child)
                merged: Dict[State, int] = {}
                back: Dict[State, Tuple[State, State]] = {}
                for s1 in sorted(table, key=automaton.intern):
                    for s2 in sorted(child_table, key=automaton.intern):
                        s = automaton.glue(k, s1, s2)
                        w = table[s1] + child_table[s2]
                        if better(w, merged.get(s)):
                            merged[s] = w
                            back[s] = (s1, s2)
                table = merged
                glue_steps.append((child, back))
            forget_table: Dict[State, int] = {}
            forget_back: Dict[State, State] = {}
            for s in sorted(table, key=automaton.intern):
                fs = automaton.forget(k, s)
                if better(table[s], forget_table.get(fs)):
                    forget_table[fs] = table[s]
                    forget_back[fs] = s
            tables[v] = forget_table
            traces[v] = _NodeTrace(leaf_choice, glue_steps, forget_back)

    # Combine the per-component tables at the empty boundary.
    roots = forest.roots()
    combined: Dict[State, int] = tables[roots[0]]
    combined_back: List[Dict[State, Tuple[State, State]]] = []
    for root in roots[1:]:
        nxt: Dict[State, int] = {}
        back: Dict[State, Tuple[State, State]] = {}
        for s1 in sorted(combined, key=automaton.intern):
            for s2 in sorted(tables[root], key=automaton.intern):
                s = automaton.glue(0, s1, s2)
                w = combined[s1] + tables[root][s2]
                if better(w, nxt.get(s)):
                    nxt[s] = w
                    back[s] = (s1, s2)
        combined = nxt
        combined_back.append(back)

    best_state: Optional[State] = None
    for s in sorted(combined, key=automaton.intern):
        if automaton.accepts(s) and better(combined[s], None if best_state is None else combined[best_state]):
            best_state = s
    if best_state is None:
        return None

    # ARGOPT top-down: peel the component combination, then each tree.
    witness: List[Any] = []
    component_states: Dict[Vertex, State] = {}
    s = best_state
    for root, back in zip(reversed(roots[1:]), reversed(combined_back)):
        left, right = back[s]
        component_states[root] = right
        s = left
    component_states[roots[0]] = s

    def reconstruct(v: Vertex, forget_state: State) -> None:
        trace = traces[v]
        state = trace.forget_back[forget_state]
        for child, back in reversed(trace.glue_steps):
            left, right = back[state]
            reconstruct(child, right)
            state = left
        witness.extend(trace.leaf_choice[state].chosen[0])

    for root, state in component_states.items():
        reconstruct(root, state)
    return OptimizationResult(
        value=combined[best_state],
        witness=frozenset(witness),
        classes=automaton.num_classes(),
    )


# ----------------------------------------------------------------------
# Counting (Section 6, count-φ)
# ----------------------------------------------------------------------

def count(
    formula: sx.Formula,
    graph: Graph,
    forest: EliminationForest,
    variables: Sequence[sx.Var],
    automaton: Optional[TreeAutomaton] = None,
) -> int:
    """Number of assignments of ``variables`` with graph ⊨ φ(assignment).

    Element-sorted variables range over single vertices/edges (a singleton
    constraint is conjoined automatically when no automaton is supplied;
    pass an automaton from :func:`compile_with_singletons` otherwise).
    """
    _require_valid(graph, forest)
    scope = tuple(variables)
    if graph.num_vertices() == 0:
        from ..mso.semantics import count_satisfying_assignments

        return count_satisfying_assignments(graph, formula, scope)
    if automaton is None:
        from .compiler import compile_with_singletons

        automaton = compile_with_singletons(formula, scope)
    if isinstance(automaton, TabulatedAutomaton):
        return _count_tabulated(automaton, graph, forest, scope)

    tables: Dict[Vertex, Dict[State, int]] = {}
    with profiled("algebra.count.tables"):
        for v in forest.bottom_up_order():
            k = forest.depth_of(v)
            structure = base_structure(graph, forest, v)
            vertex_item, edge_items = owned_items(graph, forest, v)
            table: Dict[State, int] = {}
            for choice in enumerate_symbol_choices(
                structure, scope, vertex_item, edge_items
            ):
                state = automaton.leaf(choice.symbol)
                table[state] = table.get(state, 0) + 1
            for child in forest.children(v):
                child_table = tables.pop(child)
                merged: Dict[State, int] = {}
                for s1, c1 in table.items():
                    for s2, c2 in child_table.items():
                        s = automaton.glue(k, s1, s2)
                        merged[s] = merged.get(s, 0) + c1 * c2
                table = merged
            forgotten: Dict[State, int] = {}
            for s, c in table.items():
                fs = automaton.forget(k, s)
                forgotten[fs] = forgotten.get(fs, 0) + c
            tables[v] = forgotten

    roots = forest.roots()
    combined = tables[roots[0]]
    for root in roots[1:]:
        nxt: Dict[State, int] = {}
        for s1, c1 in combined.items():
            for s2, c2 in tables[root].items():
                s = automaton.glue(0, s1, s2)
                nxt[s] = nxt.get(s, 0) + c1 * c2
        combined = nxt
    return sum(c for s, c in combined.items() if automaton.accepts(s))


def _count_tabulated(
    automaton: TabulatedAutomaton,
    graph: Graph,
    forest: EliminationForest,
    scope: Tuple[sx.Var, ...],
) -> int:
    """Integer-id COUNT run through the kernel's digest-memoized joins.

    Counts stay Python big-ints (they routinely exceed ``int64``); the
    kernel only vectorizes state identity.
    """
    tables: Dict[Vertex, Tuple[Tuple[int, int], ...]] = {}
    with profiled("algebra.count.tables"):
        for v in forest.bottom_up_order():
            k = forest.depth_of(v)
            structure = base_structure(graph, forest, v)
            vertex_item, edge_items = owned_items(graph, forest, v)
            leaf: Dict[int, int] = {}
            for choice in enumerate_symbol_choices(
                structure, scope, vertex_item, edge_items
            ):
                sid = automaton.leaf_id(choice.symbol)
                leaf[sid] = leaf.get(sid, 0) + 1
            table = tuple(leaf.items())
            for child in forest.children(v):
                table = automaton.merge_counts(k, table, tables.pop(child))
            tables[v] = automaton.fold_forget_counts(k, table)

    roots = forest.roots()
    combined = tables[roots[0]]
    for root in roots[1:]:
        combined = automaton.merge_counts(0, combined, tables[root])
    return sum(c for sid, c in combined if automaton.accepts_id(sid))
