"""State-space reduction for the treedepth algebra automata.

The paper's round/bit bounds hide a constant that is a tower of
exponentials in the treedepth bound ``d``: the glue/forget update
functions range over every state the subset construction can name, yet
only a sliver of that space is reachable from the Base symbols a real
labeled input can produce, and many reachable states are behaviorally
interchangeable.  This module applies the classic two-pass collapse:

1. **Reachability** — enumerate every Base symbol over the *actual*
   label alphabet (all ancestor-edge patterns up to depth ``d``, all
   label subsets, all free-variable membership bits) and close the
   resulting leaf states under glue/forget, level by level from
   boundary ``d`` down to the root boundary ``0``.  The evaluation
   grammar shared by :mod:`repro.algebra.engine` and the CONGEST
   programs is a left fold: a node starts from its leaf state and glues
   completed child values (the *partners* — forgets of the level below)
   onto its accumulator, so the closure probes exactly
   ``glue(x, partner)`` / ``glue(partner, x)`` pairs instead of the
   quadratically exploding all-pairs space.  ``states_reachable``
   counts the left-fold fragment a real run can produce;
   ``states_total`` the (slightly larger) probe closure.

2. **Quotient** — Moore partition refinement over the closed fragment.
   The initial partition splits by boundary level and (at level 0) by
   acceptance; each round refines by the block of ``forget`` and the
   blocks of ``glue`` against every partner in both argument positions,
   with a distinguished bottom for operations that raise
   :class:`~repro.errors.ReproError`.  Partner states additionally
   carry their full glue *column* (their effect on every accumulator),
   so two child values only merge when they are interchangeable in
   every fold — the stable partition is a congruence for the run
   grammar, and replacing each state by its block representative
   preserves verdicts, counts, optima and witnesses.

The result is a :class:`MinimizedAutomaton` wrapper whose transitions
are ``canon(inner.op(...))``; wrapping it in the
:class:`~repro.algebra.tables.TabulatedAutomaton` kernel yields dense
tables over class representatives only.  All engines share one wrapper
per ``(d, labels)`` (memoized on the compiled automaton, so it rides
:class:`~repro.algebra.cache.AutomatonCache` persistence), which keeps
the CONGEST transcripts byte-identical across engines.

**Soundness is depth-bounded.**  The closure covers boundary levels
``0..d`` only, so the quotient is a congruence exactly for runs whose
elimination forest is at most ``d`` deep (the wrapper's
``closure_depth``).  Algorithm 2 recovers forests up to ``2^d - 1``
deep from a treedepth-``d`` promise — on such a run a level-``d``
state *does* glue against partners from deeper subtrees the closure
never enumerated, and a class merged on shallow evidence can be
distinguishable there.  The pipelines therefore gate per run: the
wrapper is applied only when the recovered forest depth is
``<= closure_depth``, and deeper runs fall back to the raw automaton
(counted in ``repro_minimize_depth_bypass_total``).

Enumerating the alphabet and closing it is exponential in ``d`` and the
number of labels/variables, so every pass is guarded by a
:class:`MinimizationBudget`; blowing the budget falls back to the
unminimized automaton (recorded in the metrics registry), never to an
error.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..errors import ReproError
from ..graph import Graph
from ..mso.syntax import Var
from ..obs.registry import registry as _registry
from .automata import State, TreeAutomaton
from .symbols import BaseStructure, BaseSymbol

__all__ = [
    "DEFAULT_BUDGET",
    "MinimizationBudget",
    "MinimizationStats",
    "MinimizedAutomaton",
    "enumerate_alphabet",
    "graph_label_alphabet",
    "minimization_stats",
    "minimize_automaton",
    "minimized_automaton",
]

#: Attribute on the compiled automaton holding wrappers per (d, labels).
_VARIANTS_ATTR = "_minimized_variants"

#: Local-index sentinel for an operation that raised ReproError.
_BOTTOM = -1

#: Unique sentinel distinguishing "forget raised" from any real state.
_RAISED = object()


@dataclass(frozen=True)
class MinimizationBudget:
    """Hard caps on the closure work; blowing any of them aborts cleanly.

    ``max_symbols`` bounds the enumerated Base alphabet (it grows like
    ``2^(d·(labels + variables))``), ``max_states`` the total closure
    size across all boundary levels (``max_level_states`` the states of
    any single boundary level, the early signal for count explosions),
    and ``max_probes`` the number of leaf/glue/forget evaluations spent
    building the closure tables.  Two caps track the *cost* of those
    probes, which scales with the structural size of the states (nodes
    of their nested tuple/frozenset values): ``max_state_size`` bounds
    any single state — subset-construction towers grow states
    combinatorially under repeated glue — and ``max_work`` bounds the
    running sum of ``size(left) + size(right)`` over all glue probes,
    which tracks wall time closely across the formula catalog.  Every
    cap is a pure function of the automaton and the alphabet — never of
    cache warmth, object identity, or wall time — so the
    minimize-or-fallback decision replays identically everywhere.
    """

    max_symbols: int = 4096
    max_states: int = 2048
    max_level_states: int = 640
    max_probes: int = 120_000
    max_state_size: int = 8192
    max_work: int = 5_000_000


DEFAULT_BUDGET = MinimizationBudget()


@dataclass(frozen=True)
class MinimizationStats:
    """State counts before/after the two passes.

    * ``states_total`` — the full probe closure (leaves of the whole
      alphabet, both-sided glue against every partner, all forgets);
    * ``states_reachable`` — the left-fold fragment (states a real run
      over this alphabet can produce);
    * ``states_minimized`` — equivalence classes covering the
      left-fold fragment after the quotient.
    """

    states_total: int
    states_reachable: int
    states_minimized: int

    @property
    def reduction(self) -> float:
        """Fraction of reachable states removed by the quotient."""
        if self.states_reachable == 0:
            return 0.0
        return 1.0 - self.states_minimized / self.states_reachable


def graph_label_alphabet(graph: Graph) -> Tuple[str, ...]:
    """The sorted label alphabet actually present in ``graph``."""
    labels: Set[str] = set()
    for v in graph.vertices():
        labels.update(graph.vertex_labels(v))
    for u, v in graph.edges():
        labels.update(graph.edge_labels(u, v))
    return tuple(sorted(labels))


def _subsets(items: Sequence) -> List[FrozenSet]:
    """All subsets in deterministic mask order (cf. symbols._subsets_of)."""
    items = list(items)
    return [
        frozenset(items[i] for i in range(len(items)) if mask >> i & 1)
        for mask in range(1 << len(items))
    ]


def enumerate_alphabet(
    scope: Sequence[Var],
    d: int,
    labels: Sequence[str] = (),
    max_symbols: int = DEFAULT_BUDGET.max_symbols,
) -> Optional[List[List[BaseSymbol]]]:
    """Every Base symbol over ``labels``/``scope``, grouped by depth 1..d.

    A depth-``k`` symbol combines an ancestor-edge pattern (any subset
    of positions ``1..k-1``), vertex/edge label subsets, and membership
    bits for every scope variable — the full alphabet a depth-``d``
    elimination forest over this label set can emit.  Returns ``None``
    once more than ``max_symbols`` symbols would be produced.
    """
    vertex_vars = [i for i, var in enumerate(scope) if var.sort.is_vertex_kind]
    edge_vars = [i for i, var in enumerate(scope) if not var.sort.is_vertex_kind]
    label_subsets = _subsets(sorted(labels))
    vbit_subsets = _subsets(vertex_vars)
    ebit_subsets = _subsets(edge_vars)

    per_depth: List[List[BaseSymbol]] = []
    count = 0
    for depth in range(1, d + 1):
        symbols: List[BaseSymbol] = []
        positions = list(range(1, depth))
        for anc_mask in range(1 << len(positions)):
            anc = tuple(
                p for i, p in enumerate(positions) if anc_mask >> i & 1
            )
            for vlabels in label_subsets:
                for elabel_choice in product(label_subsets, repeat=len(anc)):
                    structure = BaseStructure(
                        depth=depth,
                        anc_edges=anc,
                        vlabels=vlabels,
                        elabels=tuple(zip(anc, elabel_choice)),
                    )
                    for vbits in vbit_subsets:
                        for ebit_choice in product(
                            ebit_subsets, repeat=len(anc)
                        ):
                            count += 1
                            if count > max_symbols:
                                return None
                            symbols.append(BaseSymbol(
                                structure=structure,
                                vbits=vbits,
                                ebits=tuple(zip(anc, ebit_choice)),
                            ))
        per_depth.append(symbols)
    return per_depth


class _ClosureOverflow(Exception):
    """Internal: a budget cap was hit mid-closure."""


def _state_size(value: State, cap: int) -> int:
    """Structural node count of ``value``, short-circuited above ``cap``.

    Counts the value as a tree (no sharing detection): object identity
    and interning vary with cache warmth, but tree size is a pure
    function of the value, so the over-``cap`` verdict is reproducible.
    The cap bounds the traversal itself, so an exponentially shared
    value costs O(cap), not O(tree).
    """
    total = 0
    stack = [value]
    while stack:
        item = stack.pop()
        total += 1
        if total > cap:
            return total
        if isinstance(item, (tuple, list, frozenset, set)):
            stack.extend(item)
    return total


class _Closure:
    """The leveled probe closure plus its glue/forget/accept tables.

    Per boundary level ``k`` (processed ``d`` down to ``0``):

    * ``states[k]``   — discovery-ordered closure states;
    * ``partners[k]`` — local indices of the completed child values at
      this boundary (forgets of the level-``k+1`` accumulators; for
      level ``d`` there are none);
    * ``glue[k]``     — ``(left, right) -> result`` local indices for
      every probed ordered pair: ``(x, c)`` and ``(c, x)`` for each
      state ``x`` and partner ``c``;
    * ``forget[k]``   — per state, the local index one level down;
    * ``fold[k]``     — the left-fold (grammar-reachable) accumulators;
    * ``accept``      — per level-0 state, 1/0 (or bottom on raise).
    """

    def __init__(self, automaton: TreeAutomaton, d: int,
                 budget: MinimizationBudget):
        self._automaton = automaton
        self._budget = budget
        self._probes = 0
        self._total = 0
        self._work = 0
        self.d = d
        self.states: List[List[State]] = [[] for _ in range(d + 1)]
        self.sizes: List[List[int]] = [[] for _ in range(d + 1)]
        self.index: List[Dict[State, int]] = [{} for _ in range(d + 1)]
        self.partners: List[List[int]] = [[] for _ in range(d + 1)]
        self.glue: List[Dict[Tuple[int, int], int]] = [
            {} for _ in range(d + 1)
        ]
        self.forget: List[List[int]] = [[] for _ in range(d + 1)]
        self.fold: List[Set[int]] = [set() for _ in range(d + 1)]
        self.accept: List[int] = []
        self.leaf_seeds: List[List[int]] = [[] for _ in range(d + 1)]

    # -- budgeted growth ------------------------------------------------
    def _probe(self) -> None:
        self._probes += 1
        if self._probes > self._budget.max_probes:
            raise _ClosureOverflow

    def _add(self, level: int, state: State) -> int:
        local = self.index[level].get(state)
        if local is None:
            self._total += 1
            if (self._total > self._budget.max_states
                    or len(self.states[level])
                    >= self._budget.max_level_states):
                raise _ClosureOverflow
            cap = self._budget.max_state_size
            size = _state_size(state, cap)
            if size > cap:
                raise _ClosureOverflow
            local = len(self.states[level])
            self.index[level][state] = local
            self.states[level].append(state)
            self.sizes[level].append(size)
        return local

    # -- the reachability pass ------------------------------------------
    def build(self, alphabet: List[List[BaseSymbol]]) -> None:
        partner_states: List[State] = []  # C_k, top-down hand-me-down
        pending: List[State] = []         # all forgets from the level above
        for level in range(self.d, -1, -1):
            if level >= 1:
                for symbol in alphabet[level - 1]:
                    self._probe()
                    try:
                        state = self._automaton.leaf(symbol)
                    except ReproError:
                        continue
                    self.leaf_seeds[level].append(self._add(level, state))
            for state in pending:
                self._add(level, state)
            seen: Set[int] = set()
            self.partners[level] = [
                local for local in (
                    self._add(level, s) for s in partner_states
                ) if local not in seen and not seen.add(local)
            ]
            self._close_level(level)
            self._mark_fold(level)
            if level >= 1:
                partner_states, pending = self._forget_level(level)
        for state in self.states[0]:
            try:
                self.accept.append(1 if self._automaton.accepts(state) else 0)
            except ReproError:
                self.accept.append(_BOTTOM)

    def _close_level(self, level: int) -> None:
        """Close under glue(x, c) and glue(c, x) for every partner c."""
        states = self.states[level]
        sizes = self.sizes[level]
        table = self.glue[level]
        partner_locals = self.partners[level]
        while True:
            n = len(states)
            for i in range(n):
                for c in partner_locals:
                    for a, b in ((i, c), (c, i)):
                        if (a, b) in table:
                            continue
                        self._probe()
                        self._work += sizes[a] + sizes[b]
                        if self._work > self._budget.max_work:
                            raise _ClosureOverflow
                        try:
                            result = self._automaton.glue(
                                level, states[a], states[b]
                            )
                        except ReproError:
                            table[(a, b)] = _BOTTOM
                            continue
                        table[(a, b)] = self._add(level, result)
            if len(states) == n:
                return

    def _mark_fold(self, level: int) -> None:
        """Left-fold reachable accumulators, by pure table lookups."""
        table = self.glue[level]
        partner_locals = self.partners[level]
        seeds = self.leaf_seeds[level] if level >= 1 else partner_locals
        reach: Set[int] = set()
        stack = list(seeds)
        while stack:
            a = stack.pop()
            if a in reach:
                continue
            reach.add(a)
            for c in partner_locals:
                g = table.get((a, c), _BOTTOM)
                if g != _BOTTOM and g not in reach:
                    stack.append(g)
        self.fold[level] = reach

    def _forget_level(self, level: int) -> Tuple[List[State], List[State]]:
        """Forget every closure state; partners-for-below are the fold's."""
        down_partner: List[State] = []
        down_all: List[State] = []
        down_states: List[object] = []
        for local, state in enumerate(self.states[level]):
            self._probe()
            try:
                down = self._automaton.forget(level, state)
            except ReproError:
                down_states.append(_RAISED)
                continue
            down_states.append(down)
            down_all.append(down)
            if local in self.fold[level]:
                down_partner.append(down)
        # Targets become local indices only once the level below admits
        # them; keep the states and resolve in _resolve_forgets.
        self.forget[level] = down_states  # type: ignore[assignment]
        return down_partner, down_all

    def resolve_forgets(self) -> None:
        """Replace stored forget results with local indices one level down."""
        for level in range(self.d, 0, -1):
            self.forget[level] = [
                _BOTTOM if down is _RAISED else self.index[level - 1][down]
                for down in self.forget[level]
            ]

    def reachable(self, level: int) -> Set[int]:
        """Grammar-reachable local indices: fold accumulators + partners."""
        return self.fold[level] | set(self.partners[level])


def _refine(closure: _Closure) -> Tuple[List[int], List[Tuple[int, int]]]:
    """Moore refinement over the closure; returns (block per gid, order).

    ``order`` lists (level, local) in global discovery order, so block
    representatives (the first member of each block) are deterministic.
    """
    order: List[Tuple[int, int]] = []
    gid: List[Dict[int, int]] = [{} for _ in range(closure.d + 1)]
    for level in range(closure.d, -1, -1):
        for local in range(len(closure.states[level])):
            gid[level][local] = len(order)
            order.append((level, local))
    n = len(order)

    # Initial partition: boundary level, plus acceptance at level 0.
    seen: Dict[Tuple[int, int], int] = {}
    block = [0] * n
    for level, local in order:
        key = (level, closure.accept[local] if level == 0 else 0)
        block[gid[level][local]] = seen.setdefault(key, len(seen))
    num_blocks = len(seen)

    # Precompute every probe as a global id (or _BOTTOM).  A state's
    # signature covers forget, glue against each partner in both
    # positions, and — for partners — the full column of their effect on
    # every accumulator, so child values only merge when interchangeable.
    def g(level: int, local: int) -> int:
        return _BOTTOM if local == _BOTTOM else gid[level][local]

    forget_g = [_BOTTOM] * n
    left: List[List[int]] = [[] for _ in range(n)]
    right: List[List[int]] = [[] for _ in range(n)]
    column: List[Optional[List[int]]] = [None] * n
    for level, local in order:
        me = gid[level][local]
        if level >= 1:
            down = closure.forget[level][local]
            if down != _BOTTOM:
                forget_g[me] = gid[level - 1][down]
        table = closure.glue[level]
        partner_locals = closure.partners[level]
        left[me] = [
            g(level, table.get((local, c), _BOTTOM)) for c in partner_locals
        ]
        right[me] = [
            g(level, table.get((c, local), _BOTTOM)) for c in partner_locals
        ]
        if local in set(partner_locals):
            column[me] = [
                g(level, table.get((x, local), _BOTTOM))
                for x in range(len(closure.states[level]))
            ]

    while True:
        sigs: Dict[Tuple, int] = {}
        new = [0] * n
        for me in range(n):
            col = column[me]
            sig = (
                block[me],
                block[forget_g[me]] if forget_g[me] != _BOTTOM else _BOTTOM,
                tuple(block[r] if r != _BOTTOM else _BOTTOM
                      for r in left[me]),
                tuple(block[r] if r != _BOTTOM else _BOTTOM
                      for r in right[me]),
                tuple(block[r] if r != _BOTTOM else _BOTTOM
                      for r in col) if col is not None else None,
            )
            new[me] = sigs.setdefault(sig, len(sigs))
        block = new
        if len(sigs) == num_blocks:
            return block, order
        num_blocks = len(sigs)


class MinimizedAutomaton(TreeAutomaton):
    """The quotient automaton: every transition lands on its class rep.

    Observationally equivalent to ``inner`` on all grammar-reachable
    inputs (acceptance is constant on classes and the quotient is a
    congruence for the left-fold evaluation grammar), but the set of
    distinct states a run materializes shrinks to one representative per
    class — smaller transition tables, smaller counting/optimization
    joins.

    The guarantee only holds for runs over elimination forests at most
    ``closure_depth`` boundary levels deep: the quotient was refined
    against the partner values depth-``closure_depth`` trees can
    produce, and a deeper forest (Algorithm 2 admits up to ``2^d - 1``)
    feeds the canonicalized states contexts the refinement never saw.
    Callers must check ``closure_depth`` against the actual forest
    before substituting the wrapper for ``inner``.
    """

    def __init__(self, inner: TreeAutomaton,
                 quotient: Dict[int, Dict[State, State]],
                 stats: MinimizationStats,
                 closure_depth: int):
        super().__init__(inner.scope)
        self._inner = inner
        self._quotient = quotient
        self.stats = stats
        self.closure_depth = closure_depth

    def canon(self, boundary: int, state: State) -> State:
        """The class representative of ``state`` at ``boundary``.

        The map is per boundary level: the same state *value* can occur
        at several levels (pending tuples and found-flags repeat), and
        its equivalence class depends on which contexts still apply.
        Off-fragment states map to themselves.
        """
        table = self._quotient.get(boundary)
        if table is None:
            return state
        return table.get(state, state)

    def _leaf(self, symbol: BaseSymbol) -> State:
        return self.canon(
            symbol.structure.depth, self._inner.leaf(symbol)
        )

    def _glue(self, boundary: int, s1: State, s2: State) -> State:
        return self.canon(boundary, self._inner.glue(boundary, s1, s2))

    def _forget(self, boundary: int, s: State) -> State:
        return self.canon(boundary - 1, self._inner.forget(boundary, s))

    def accepts(self, state: State) -> bool:
        return self._inner.accepts(state)


def minimize_automaton(
    automaton: TreeAutomaton,
    *,
    d: int,
    labels: Sequence[str] = (),
    budget: MinimizationBudget = DEFAULT_BUDGET,
) -> Optional[MinimizedAutomaton]:
    """Run both passes; ``None`` when a budget cap forces the fallback."""
    alphabet = enumerate_alphabet(
        automaton.scope, d, labels, budget.max_symbols
    )
    if alphabet is None:
        return None
    closure = _Closure(automaton, d, budget)
    try:
        closure.build(alphabet)
    except _ClosureOverflow:
        return None
    closure.resolve_forgets()
    block, order = _refine(closure)

    # Blocks never span boundary levels (the initial partition splits by
    # level), so each block's first-discovered member is a same-level
    # representative; the quotient map is still kept per level because
    # one state value may occur at several levels with distinct classes.
    representatives: Dict[int, State] = {}
    quotient: Dict[int, Dict[State, State]] = {
        level: {} for level in range(d + 1)
    }
    reachable_blocks: Set[int] = set()
    reachable_count = 0
    for me, (level, local) in enumerate(order):
        state = closure.states[level][local]
        rep = representatives.setdefault(block[me], state)
        if rep is not state:
            quotient[level][state] = rep
        if local in closure.reachable(level):
            reachable_blocks.add(block[me])
            reachable_count += 1
    stats = MinimizationStats(
        states_total=len(order),
        states_reachable=reachable_count,
        states_minimized=len(reachable_blocks),
    )
    return MinimizedAutomaton(automaton, quotient, stats, int(d))


def minimized_automaton(
    automaton: TreeAutomaton,
    *,
    d: int,
    labels: Sequence[str] = (),
    budget: MinimizationBudget = DEFAULT_BUDGET,
) -> Optional[MinimizedAutomaton]:
    """The memoized wrapper for ``(automaton, d, labels)``.

    The wrapper is stored on the compiled automaton itself, so it is
    shared by every engine/run using the same cache entry and rides
    :class:`~repro.algebra.cache.AutomatonCache` pickling.  A budget
    fallback is memoized too (as ``None``) — the expensive failed
    closure is not retried on every run.
    """
    key = (int(d), tuple(labels))
    variants = getattr(automaton, _VARIANTS_ATTR, None)
    if variants is None:
        variants = {}
        setattr(automaton, _VARIANTS_ATTR, variants)
    if key not in variants:
        wrapper = minimize_automaton(
            automaton, d=d, labels=labels, budget=budget
        )
        variants[key] = wrapper
        if wrapper is None:
            _registry().counter(
                "repro_minimize_fallback_total",
                "Minimizations abandoned on a budget cap.",
            ).inc()
        else:
            stats = wrapper.stats
            reg = _registry()
            reg.gauge(
                "repro_minimize_states_total",
                "Probe-closure states of the last minimized automaton.",
            ).set(stats.states_total)
            reg.gauge(
                "repro_minimize_states_reachable",
                "Grammar-reachable states of the last minimized automaton.",
            ).set(stats.states_reachable)
            reg.gauge(
                "repro_minimize_states_minimized",
                "Reachable classes after the last quotient pass.",
            ).set(stats.states_minimized)
    return variants[key]


def minimization_stats(
    automaton: TreeAutomaton,
    *,
    d: int,
    labels: Sequence[str] = (),
) -> Optional[MinimizationStats]:
    """Stats of an already-computed wrapper; never triggers the passes."""
    variants = getattr(automaton, _VARIANTS_ATTR, None) or {}
    wrapper = variants.get((int(d), tuple(labels)))
    return wrapper.stats if wrapper is not None else None
