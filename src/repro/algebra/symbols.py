"""Symbols of the treedepth algebra (paper Section 3, specialized).

The canonical tree decomposition of Lemma 2.4 makes the elimination tree
itself the decomposition tree: the bag of vertex v is its root path.  We
evaluate formulas by a single bottom-up sweep in which the w-terminal graph
``G_v`` of the paper (the subgraph hanging below v, with the root path as
terminals) is assembled from three operation kinds:

* ``Base_v`` — a leaf symbol introducing vertex v together with the edges
  from v to its ancestors (paper: the base graph G^base and the gluing
  f_(B_v, B_parent) of Eq. (1), fused);
* ``Glue``  — identity gluing of two graphs with the same boundary
  (paper: f_(B_u, B_u) of Eq. (2));
* ``Forget`` — the deepest terminal becomes interior (paper: implicit in
  moving from G_v with terminals B_v to a child graph of the parent).

**Single-owner encoding.**  Every vertex v is *owned* by its own tree node;
every edge {u, v} (v the deeper endpoint) is owned by v.  The Base_v symbol
is the one and only place where v's free-variable membership bits, labels
and weight — and those of v's ancestor edges — enter the run.  This removes
the double-counting correction the paper needs in Eq. (4).

Boundary positions are 1-based depths along the root path; the automaton
state space never mentions vertex identifiers, only positions — that is
what makes states the paper's *homomorphism classes* (Definition 4.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Dict, FrozenSet, Iterator, List, Sequence, Tuple

from ..graph import Graph, Vertex, canonical_edge
from ..mso.syntax import Var
from ..treedepth import EliminationForest


@dataclass(frozen=True)
class BaseStructure:
    """The assignment-independent part of a Base symbol.

    ``anc_edges`` lists the boundary positions (1-based depths) of the
    ancestors adjacent to the owned vertex; ``elabels`` gives each such
    edge's labels.
    """

    depth: int
    anc_edges: Tuple[int, ...]
    vlabels: FrozenSet[str]
    elabels: Tuple[Tuple[int, FrozenSet[str]], ...]

    def edge_labels_at(self, position: int) -> FrozenSet[str]:
        for pos, labels in self.elabels:
            if pos == position:
                return labels
        return frozenset()


@dataclass(frozen=True)
class BaseSymbol:
    """A Base symbol: structure plus free-variable membership bits.

    ``vbits`` holds scope indices of the variables containing the owned
    vertex; ``ebits`` maps each ancestor-edge position to the scope indices
    of the variables containing that edge.
    """

    structure: BaseStructure
    vbits: FrozenSet[int]
    ebits: Tuple[Tuple[int, FrozenSet[int]], ...]

    @property
    def depth(self) -> int:
        return self.structure.depth

    @property
    def anc_edges(self) -> Tuple[int, ...]:
        return self.structure.anc_edges

    def edge_bits_at(self, position: int) -> FrozenSet[int]:
        for pos, bits in self.ebits:
            if pos == position:
                return bits
        return frozenset()


def base_structure(graph: Graph, forest: EliminationForest, v: Vertex) -> BaseStructure:
    """The Base structure of vertex ``v`` under ``forest``."""
    path = forest.root_path(v)
    depth = len(path)
    positions: List[int] = []
    elabels: List[Tuple[int, FrozenSet[str]]] = []
    for j, ancestor in enumerate(path[:-1], start=1):
        if graph.has_edge(ancestor, v):
            positions.append(j)
            elabels.append((j, graph.edge_labels(ancestor, v)))
    return BaseStructure(
        depth=depth,
        anc_edges=tuple(positions),
        vlabels=graph.vertex_labels(v),
        elabels=tuple(elabels),
    )


def owned_items(
    graph: Graph, forest: EliminationForest, v: Vertex
) -> Tuple[Vertex, List[Tuple[int, Tuple[Vertex, Vertex]]]]:
    """The items owned by v's Base symbol: v itself, and (position, edge)
    for each edge from v to an ancestor."""
    path = forest.root_path(v)
    edges = [
        (j, canonical_edge(ancestor, v))
        for j, ancestor in enumerate(path[:-1], start=1)
        if graph.has_edge(ancestor, v)
    ]
    return v, edges


def symbol_for_assignment(
    structure: BaseStructure,
    scope: Sequence[Var],
    owned_vertex: Vertex,
    owned_edges: Sequence[Tuple[int, Tuple[Vertex, Vertex]]],
    assignment: Dict[Var, object],
) -> BaseSymbol:
    """Build the Base symbol for a *fixed* assignment of the scope variables.

    Element-variable values are treated as singleton sets.
    """
    vbits = frozenset(
        i
        for i, var in enumerate(scope)
        if var.sort.is_vertex_kind and owned_vertex in _as_set(assignment[var])
    )
    ebits = tuple(
        (
            pos,
            frozenset(
                i
                for i, var in enumerate(scope)
                if not var.sort.is_vertex_kind and edge in _as_set(assignment[var])
            ),
        )
        for pos, edge in owned_edges
    )
    return BaseSymbol(structure=structure, vbits=vbits, ebits=ebits)


def _as_set(value: object) -> FrozenSet[object]:
    if isinstance(value, frozenset):
        return value
    return frozenset({value})


@dataclass(frozen=True)
class SymbolChoice:
    """One possible bit assignment at a Base symbol, with the items chosen.

    ``chosen`` maps each scope index to the tuple of items (the vertex
    and/or edges owned here) that the choice puts into that variable.
    """

    symbol: BaseSymbol
    chosen: Tuple[Tuple[object, ...], ...]


def enumerate_symbol_choices(
    structure: BaseStructure,
    scope: Sequence[Var],
    owned_vertex: Vertex,
    owned_edges: Sequence[Tuple[int, Tuple[Vertex, Vertex]]],
) -> Iterator[SymbolChoice]:
    """Enumerate every way the scope variables can intersect the owned items.

    Used by the optimization and counting runs (Lemma 4.6, Section 6),
    where the free variables are not fixed in advance: each choice of bits
    corresponds to one partial assignment restricted to this node, and the
    single-owner encoding guarantees that combining choices across nodes
    enumerates every global assignment exactly once.
    """
    vertex_vars = [i for i, var in enumerate(scope) if var.sort.is_vertex_kind]
    edge_vars = [i for i, var in enumerate(scope) if not var.sort.is_vertex_kind]
    edge_positions = [pos for pos, _ in owned_edges]
    edges_by_pos = dict(owned_edges)

    for vchoice in _subsets_of(vertex_vars):
        for echoices in product(*(_subsets_list(edge_vars) for _ in edge_positions)):
            ebits = tuple(
                (pos, frozenset(bits))
                for pos, bits in zip(edge_positions, echoices)
            )
            chosen: List[Tuple[object, ...]] = []
            for i in range(len(scope)):
                items: List[object] = []
                if i in vchoice:
                    items.append(owned_vertex)
                for pos, bits in ebits:
                    if i in bits:
                        items.append(edges_by_pos[pos])
                chosen.append(tuple(items))
            yield SymbolChoice(
                symbol=BaseSymbol(
                    structure=structure, vbits=frozenset(vchoice), ebits=ebits
                ),
                chosen=tuple(chosen),
            )


def _subsets_of(items: List[int]) -> Iterator[FrozenSet[int]]:
    for mask in range(1 << len(items)):
        yield frozenset(items[i] for i in range(len(items)) if mask >> i & 1)


def _subsets_list(items: List[int]) -> List[FrozenSet[int]]:
    return list(_subsets_of(items))
