"""Dense integer transition tables: the ``vectorized`` automaton kernel.

The compiled automata of :mod:`repro.algebra.automata` are interpreters
over structured states — nested tuples and frozensets produced by the
product / complement / subset constructions.  Every transition-cache hit
re-hashes those structures, and the table-replay loops of the counting
and optimization protocols perform |T₁|·|T₂| such lookups per merge.

:class:`TabulatedAutomaton` removes the structured states from the hot
path:

* every state ever produced is **hash-consed** into a contiguous integer
  id (``id_of`` / ``state_of``), one canonical object per value;
* the glue / forget transition relations are compiled lazily into dense
  per-boundary ``int64`` tables (numpy when available, plain dicts
  otherwise) indexed by those ids — a miss falls through to the wrapped
  automaton exactly once and is a flat array load forever after;
* :meth:`glue_block` gathers a whole |T₁|×|T₂| merge block in one
  vectorized fancy-index, and the table-level joins used by the counting
  and optimization replays (:meth:`merge_counts`, :meth:`merge_opt`,
  :meth:`fold_forget_counts`, :meth:`fold_decide`) are **memoized by
  table digest**, so identical subtree joins — ubiquitous in elimination
  forests with repeated shapes — cost one dictionary hit.

The kernel is *observationally transparent*: every operation produces
states value-equal to the wrapped automaton's, interning falls through to
the wrapped automaton in the same first-production order, and the join
helpers reproduce the exact iteration/insertion order of the state-level
loops they replace.  That is what keeps ``engine="vectorized"``
byte-identical to ``engine="batched"`` at the CONGEST layer — same
messages, same class-id assignment, same rounds — with only the local
compute changed (see ``docs/engines.md``).

numpy is optional (the ``repro[fast]`` extra): when absent — or when a
pickled kernel is loaded on a numpy-less host — every table degrades to a
plain dict keyed by id tuples, with identical results.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..errors import ReproError
from .automata import State, TreeAutomaton
from .symbols import BaseSymbol

try:  # gated dependency: the pure-python fallback must stay exercisable
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via monkeypatching
    _np = None

__all__ = ["TabulatedAutomaton", "tabulated"]

_MISSING = -1
_MIN_CAPACITY = 64

#: |T₁|·|T₂| below which the scalar loop beats a numpy gather.
_BLOCK_THRESHOLD = 16


def _capacity_for(n: int) -> int:
    cap = _MIN_CAPACITY
    while cap < n:
        cap *= 2
    return cap


class TabulatedAutomaton(TreeAutomaton):
    """A :class:`TreeAutomaton` wrapper evaluating over dense int tables.

    Wraps (never copies) ``inner``: transitions the kernel has not seen
    yet are computed by ``inner`` — warming its state-level caches and
    interning exactly as a direct run would — and recorded in the id
    tables.  The wrapper therefore *accelerates monotonically* and can be
    pickled (arrays degrade to lists) and reloaded with its tables warm;
    :class:`~repro.algebra.cache.AutomatonCache` persists it alongside
    the wrapped automaton.
    """

    def __init__(self, inner: TreeAutomaton):
        if isinstance(inner, TabulatedAutomaton):
            raise ReproError("refusing to tabulate a TabulatedAutomaton")
        super().__init__(inner.scope)
        self._inner = inner
        self._np = _np  # instance-held so tests can simulate absence
        self._states: List[State] = []  # id -> canonical state object
        self._ids: Dict[State, int] = {}  # value-equal state -> id
        self._leaf_ids: Dict[BaseSymbol, int] = {}
        self._glue_tables: Dict[int, Any] = {}  # boundary -> 2D id table
        self._forget_tables: Dict[int, Any] = {}  # boundary -> 1D id table
        self._accept_memo: Dict[int, bool] = {}
        self._digests: Dict[Any, int] = {}  # table tuple -> small digest id
        self._join_memo: Dict[Any, Any] = {}

    # -- id management ---------------------------------------------------

    def id_of(self, state: State) -> int:
        """The contiguous id of ``state`` (hash-consed; registers new)."""
        sid = self._ids.get(state)
        if sid is None:
            sid = len(self._states)
            self._states.append(state)
            self._ids[state] = sid
        return sid

    def state_of(self, sid: int) -> State:
        """The canonical state object behind id ``sid``."""
        return self._states[sid]

    def num_ids(self) -> int:
        return len(self._states)

    # -- id-level kernel -------------------------------------------------

    def leaf_id(self, symbol: BaseSymbol) -> int:
        sid = self._leaf_ids.get(symbol)
        if sid is None:
            sid = self.id_of(self._inner.leaf(symbol))
            self._leaf_ids[symbol] = sid
        return sid

    def _glue_table(self, boundary: int):
        table = self._glue_tables.get(boundary)
        if self._np is None:
            if table is None:
                table = self._glue_tables[boundary] = {}
            return table
        n = len(self._states)
        if table is None or table.shape[0] < n:
            cap = _capacity_for(n)
            fresh = self._np.full((cap, cap), _MISSING, dtype=self._np.int64)
            if table is not None:
                fresh[: table.shape[0], : table.shape[1]] = table
            table = self._glue_tables[boundary] = fresh
        return table

    def _forget_table(self, boundary: int):
        table = self._forget_tables.get(boundary)
        if self._np is None:
            if table is None:
                table = self._forget_tables[boundary] = {}
            return table
        n = len(self._states)
        if table is None or table.shape[0] < n:
            cap = _capacity_for(n)
            fresh = self._np.full(cap, _MISSING, dtype=self._np.int64)
            if table is not None:
                fresh[: table.shape[0]] = table
            table = self._forget_tables[boundary] = fresh
        return table

    def glue_id(self, boundary: int, i: int, j: int) -> int:
        table = self._glue_table(boundary)
        if self._np is None:
            sid = table.get((i, j), _MISSING)
        else:
            sid = int(table[i, j]) if i < table.shape[0] and j < table.shape[1] else _MISSING
        if sid == _MISSING:
            state = self._inner.glue(boundary, self._states[i], self._states[j])
            sid = self.id_of(state)
            # id_of may have grown/replaced the array — re-fetch before writing.
            table = self._glue_table(boundary)
            if self._np is None:
                table[(i, j)] = sid
            else:
                table[i, j] = sid
        return sid

    def forget_id(self, boundary: int, i: int) -> int:
        table = self._forget_table(boundary)
        if self._np is None:
            sid = table.get(i, _MISSING)
        else:
            sid = int(table[i]) if i < table.shape[0] else _MISSING
        if sid == _MISSING:
            state = self._inner.forget(boundary, self._states[i])
            sid = self.id_of(state)
            table = self._forget_table(boundary)
            if self._np is None:
                table[i] = sid
            else:
                table[i] = sid
        return sid

    def accepts_id(self, sid: int) -> bool:
        verdict = self._accept_memo.get(sid)
        if verdict is None:
            verdict = bool(self._inner.accepts(self._states[sid]))
            self._accept_memo[sid] = verdict
        return verdict

    def glue_block(
        self, boundary: int, ids1: Sequence[int], ids2: Sequence[int]
    ) -> List[List[int]]:
        """Row-major ids of ``glue(boundary, s_i, s_j)`` for every pair.

        One fancy-index gather when numpy is available and the block is
        big enough to amortize it; misses are filled scalar-wise (each
        miss is a one-time inner-automaton computation).
        """
        np = self._np
        if np is None or len(ids1) * len(ids2) < _BLOCK_THRESHOLD:
            return [
                [self.glue_id(boundary, i, j) for j in ids2] for i in ids1
            ]
        table = self._glue_table(boundary)
        block = table[np.ix_(ids1, ids2)]
        if (block == _MISSING).any():
            rows = block.tolist()
            for a, i in enumerate(ids1):
                row = rows[a]
                for b, j in enumerate(ids2):
                    if row[b] == _MISSING:
                        row[b] = self.glue_id(boundary, i, j)
            return rows
        return block.tolist()

    # -- digest-memoized table joins --------------------------------------
    #
    # Each helper reproduces the exact production order of the state-level
    # loop it replaces, so dict insertion order — and with it the order of
    # first ClassCodec.encode calls downstream — is unchanged.  Memoized
    # results were produced by that same loop, so a memo hit is
    # indistinguishable from a recomputation.

    def table_digest(self, pairs: Tuple[Tuple[int, Any], ...]) -> int:
        """A small interned id naming one exact (state id, value) table."""
        digest = self._digests.get(pairs)
        if digest is None:
            digest = len(self._digests)
            self._digests[pairs] = digest
        return digest

    def merge_counts(
        self,
        boundary: int,
        table: Tuple[Tuple[int, int], ...],
        child: Tuple[Tuple[int, int], ...],
    ) -> Tuple[Tuple[int, int], ...]:
        """COUNT-table merge: ``merged[glue(s1,s2)] += c1*c2`` over ids."""
        key = ("cnt", boundary, self.table_digest(table), self.table_digest(child))
        hit = self._join_memo.get(key)
        if hit is not None:
            return hit
        ids2 = [j for j, _ in child]
        block = self.glue_block(boundary, [i for i, _ in table], ids2)
        merged: Dict[int, int] = {}
        get = merged.get
        for a, (_, c1) in enumerate(table):
            row = block[a]
            for b, (_, c2) in enumerate(child):
                s = row[b]
                merged[s] = get(s, 0) + c1 * c2
        out = tuple(merged.items())
        self._join_memo[key] = out
        return out

    def fold_forget_counts(
        self, boundary: int, table: Tuple[Tuple[int, int], ...]
    ) -> Tuple[Tuple[int, int], ...]:
        """COUNT-table forget: ``forgotten[forget(s)] += c`` over ids."""
        key = ("fcnt", boundary, self.table_digest(table))
        hit = self._join_memo.get(key)
        if hit is not None:
            return hit
        forgotten: Dict[int, int] = {}
        get = forgotten.get
        for s, c in table:
            fs = self.forget_id(boundary, s)
            forgotten[fs] = get(fs, 0) + c
        out = tuple(forgotten.items())
        self._join_memo[key] = out
        return out

    def merge_opt(
        self,
        boundary: int,
        table: Tuple[Tuple[int, int], ...],
        child: Tuple[Tuple[int, int], ...],
        sign: int,
    ) -> Tuple[Tuple[Tuple[int, int], ...], Tuple[Tuple[int, Tuple[int, int]], ...]]:
        """OPT-table merge with back-pointers, first-strictly-better ties.

        ``table`` / ``child`` must already be in the caller's iteration
        order (the protocols sort by codec id, the sequential engine by
        intern id) — the memo key is the exact ordered content, so the
        tie-breaking winner is reproduced bit-for-bit.
        """
        key = ("opt", sign, boundary, self.table_digest(table), self.table_digest(child))
        hit = self._join_memo.get(key)
        if hit is not None:
            return hit
        ids2 = [j for j, _ in child]
        block = self.glue_block(boundary, [i for i, _ in table], ids2)
        merged: Dict[int, int] = {}
        back: Dict[int, Tuple[int, int]] = {}
        for a, (s1, w1) in enumerate(table):
            row = block[a]
            for b, (s2, w2) in enumerate(child):
                s = row[b]
                w = w1 + w2
                incumbent = merged.get(s)
                if incumbent is None or sign * w > sign * incumbent:
                    merged[s] = w
                    back[s] = (s1, s2)
        out = (tuple(merged.items()), tuple(back.items()))
        self._join_memo[key] = out
        return out

    def fold_forget_opt(
        self, boundary: int, table: Tuple[Tuple[int, int], ...], sign: int
    ) -> Tuple[Tuple[Tuple[int, int], ...], Tuple[Tuple[int, int], ...]]:
        """OPT-table forget with back-pointers (same tie rule as merge)."""
        key = ("fopt", sign, boundary, self.table_digest(table))
        hit = self._join_memo.get(key)
        if hit is not None:
            return hit
        forgotten: Dict[int, int] = {}
        back: Dict[int, int] = {}
        for s, w in table:
            fs = self.forget_id(boundary, s)
            incumbent = forgotten.get(fs)
            if incumbent is None or sign * w > sign * incumbent:
                forgotten[fs] = w
                back[fs] = s
        out = (tuple(forgotten.items()), tuple(back.items()))
        self._join_memo[key] = out
        return out

    def fold_decide(
        self, boundary: int, leaf: int, child_ids: Tuple[int, ...]
    ) -> int:
        """Forget(Glue-chain(leaf, children)): one decision node's replay."""
        key = ("dec", boundary, leaf, child_ids)
        hit = self._join_memo.get(key)
        if hit is not None:
            return hit
        sid = leaf
        for cid in child_ids:
            sid = self.glue_id(boundary, sid, cid)
        sid = self.forget_id(boundary, sid)
        self._join_memo[key] = sid
        return sid

    # -- TreeAutomaton surface (state-level, value-identical) --------------

    def leaf(self, symbol: BaseSymbol) -> State:
        return self._states[self.leaf_id(symbol)]

    def glue(self, boundary: int, s1: State, s2: State) -> State:
        return self._states[
            self.glue_id(boundary, self.id_of(s1), self.id_of(s2))
        ]

    def forget(self, boundary: int, s: State) -> State:
        return self._states[self.forget_id(boundary, self.id_of(s))]

    def intern(self, state: State) -> int:
        return self._inner.intern(state)

    def num_classes(self) -> int:
        return self._inner.num_classes()

    def accepts(self, state: State) -> bool:
        return self.accepts_id(self.id_of(state))

    def _leaf(self, symbol: BaseSymbol) -> State:
        return self._inner.leaf(symbol)

    def _glue(self, boundary: int, s1: State, s2: State) -> State:
        return self._inner.glue(boundary, s1, s2)

    def _forget(self, boundary: int, s: State) -> State:
        return self._inner.forget(boundary, s)

    # -- introspection / persistence ---------------------------------------

    def table_entries(self) -> int:
        """Materialized kernel entries (cache warm-ness measure)."""
        total = len(self._leaf_ids) + len(self._states) + len(self._join_memo)
        for table in self._glue_tables.values():
            if self._np is None:
                total += len(table)
            else:
                total += int((table != _MISSING).sum())
        for table in self._forget_tables.values():
            if self._np is None:
                total += len(table)
            else:
                total += int((table != _MISSING).sum())
        return total

    def __getstate__(self):
        state = dict(self.__dict__)
        state["_np"] = None  # resolved again in __setstate__
        if self._np is not None:
            state["_glue_tables"] = {
                k: ("array", v.tolist()) for k, v in self._glue_tables.items()
            }
            state["_forget_tables"] = {
                k: ("array", v.tolist()) for k, v in self._forget_tables.items()
            }
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._np = _np
        glue = {}
        for k, v in self._glue_tables.items():
            if isinstance(v, tuple) and v and v[0] == "array":
                rows = v[1]
                if _np is not None:
                    glue[k] = _np.array(rows, dtype=_np.int64)
                else:  # degrade a persisted array to the dict backend
                    glue[k] = {
                        (i, j): sid
                        for i, row in enumerate(rows)
                        for j, sid in enumerate(row)
                        if sid != _MISSING
                    }
            elif _np is not None and isinstance(v, dict):
                # Persisted by a numpy-less process: upgrade to arrays.
                top = max((max(i, j) for i, j in v), default=0) + 1
                cap = _capacity_for(top)
                fresh = _np.full((cap, cap), _MISSING, dtype=_np.int64)
                for (i, j), sid in v.items():
                    fresh[i, j] = sid
                glue[k] = fresh
            else:
                glue[k] = v
        self._glue_tables = glue
        forget = {}
        for k, v in self._forget_tables.items():
            if isinstance(v, tuple) and v and v[0] == "array":
                flat = v[1]
                if _np is not None:
                    forget[k] = _np.array(flat, dtype=_np.int64)
                else:
                    forget[k] = {
                        i: sid for i, sid in enumerate(flat) if sid != _MISSING
                    }
            elif _np is not None and isinstance(v, dict):
                top = max(v, default=0) + 1
                cap = _capacity_for(top)
                fresh = _np.full(cap, _MISSING, dtype=_np.int64)
                for i, sid in v.items():
                    fresh[i] = sid
                forget[k] = fresh
            else:
                forget[k] = v
        self._forget_tables = forget


def tabulated(automaton: TreeAutomaton) -> TabulatedAutomaton:
    """The (shared, idempotent) tabulated kernel for ``automaton``.

    The wrapper is stored on the wrapped automaton, so repeated calls —
    and cache reloads, which pickle the attribute along — keep
    accumulating warmth in one kernel instead of re-deriving tables.
    """
    if isinstance(automaton, TabulatedAutomaton):
        return automaton
    wrapper = getattr(automaton, "_tabulated_wrapper", None)
    if wrapper is None:
        wrapper = TabulatedAutomaton(automaton)
        automaton._tabulated_wrapper = wrapper
    return wrapper
