"""The high-level facade: one ``Session``, four workloads, one ``Result``.

Everything the paper's pipeline can do — decide a closed MSO formula
(Theorem 6.1), optimize max-φ/min-φ, count satisfying assignments (§6),
and certify via the PODC'22 proof-labeling baseline — is reachable from a
:class:`Session` bound to a graph and a treedepth promise ``d``::

    from repro.api import Session
    from repro.graph import generators
    from repro.mso import formulas

    session = Session(generators.cycle(8), d=3)
    result = session.decide(formulas.triangle_free())
    assert result.verdict is True

Every workload returns the same frozen :class:`Result`, whose
``replay_args`` reproduce the run exactly::

    replay = Session(graph, d, **result.replay_args).decide(phi)

A session compiles formulas through the process-wide
:class:`~repro.algebra.cache.AutomatonCache` (transition tables and class
ids persist across processes) and runs protocols on the batched engine by
default — both differentially identical to the cold, naive baseline.
The legacy PR-4 entry points (``repro.distributed.decide``,
``optimize_distributed``, ``count_distributed``) are gone; every caller
goes through a Session or a ``*_pipeline`` function.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, Mapping, Optional, Tuple, Union

from .algebra.cache import AutomatonCache, default_cache
from .algebra.minimize import minimization_stats
from .certification import prove, verify
from .distributed.counting import count_pipeline
from .distributed.model_checking import decide_pipeline
from .distributed.optimization import optimize_pipeline
from .errors import ReproError
from .graph import Graph
from .mso import parse
from .mso.syntax import Formula, Var, free_variables
from .obs import Tracer
from .obs.export import phase_table_rows
from .obs.registry import collect_run
from .obs.reports import RunReport, RunStore, build_report
from .runconfig import RunConfig

__all__ = ["Result", "RunConfig", "Session"]

#: Workload names as they appear in :attr:`Result.workload`.
WORKLOADS = ("decide", "optimize", "count", "certify")


@dataclass(frozen=True)
class Result:
    """The common outcome shape of every :class:`Session` workload.

    ``verdict`` is the workload's boolean headline — the decision for
    ``decide``, feasibility for ``optimize``, "a count was produced" for
    ``count``, verification acceptance for ``certify`` — and ``None`` when
    the treedepth promise failed (``treedepth_exceeded=True``), in which
    case no verdict about φ was computed at all.

    ``replay_args`` are :class:`Session` keyword arguments:
    ``Session(graph, d, **result.replay_args)`` re-runs the same schedule,
    faults, retry policy, and engine, reproducing the run exactly.

    ``cache_hits`` / ``cache_misses`` are the
    :class:`~repro.algebra.cache.AutomatonCache` deltas attributable to
    this call (compiling the formula is the dominant sequential cost, so
    a miss here usually dwarfs the simulation itself).  ``report`` is the
    full :class:`~repro.obs.reports.RunReport` artifact — excluded from
    equality so two replayed Results still compare equal even though
    their reports differ in wall-clock.
    """

    workload: str
    verdict: Optional[bool]
    rounds: int
    messages: int
    max_payload_bits: int
    replay_args: Mapping[str, Any]
    treedepth_exceeded: bool = False
    value: Optional[int] = None
    witness: FrozenSet[Any] = frozenset()
    count: Optional[int] = None
    num_classes: int = 0
    phase_rounds: Mapping[str, int] = field(default_factory=dict)
    cache_hits: int = 0
    cache_misses: int = 0
    report: Optional[RunReport] = field(
        default=None, compare=False, repr=False
    )


class _Observation:
    """One workload call's measurement window.

    Entered before formula compilation so the cache delta includes the
    compile, and wrapped around the simulations via
    :func:`~repro.obs.registry.collect_run` so the collector sees every
    per-round profile.  :meth:`result` closes the window: it assembles
    the :class:`Result` (cache deltas included), builds the content-
    addressed :class:`~repro.obs.reports.RunReport`, and appends it to
    the run store when the session was built with ``record``.
    """

    def __init__(self, session: "Session", workload: str):
        self.session = session
        self.workload = workload

    def __enter__(self) -> "_Observation":
        cache = self.session.cache
        self._cache_before = (cache.hits, cache.misses, cache.disk_loads)
        self._collect = collect_run()
        self.collector = self._collect.__enter__()
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc) -> Any:
        return self._collect.__exit__(*exc)

    def result(self, formula: Formula, **fields: Any) -> Result:
        wall = time.perf_counter() - self._started
        session = self.session
        cache = session.cache
        states = fields.pop("states", None)
        cache_delta = {
            "hits": cache.hits - self._cache_before[0],
            "misses": cache.misses - self._cache_before[1],
            "disk_loads": cache.disk_loads - self._cache_before[2],
        }
        phases = (
            phase_table_rows(session.tracer)
            if session.tracer is not None else None
        )
        report = build_report(
            workload=self.workload,
            formula=str(formula),
            graph=session.graph,
            d=session.d,
            engine=session.engine,
            verdict=fields.get("verdict"),
            treedepth_exceeded=fields.get("treedepth_exceeded", False),
            value=fields.get("value"),
            count=fields.get("count"),
            num_classes=fields.get("num_classes", 0),
            witness_size=len(fields.get("witness", ())),
            collector=self.collector,
            phase_rounds=fields.get("phase_rounds", {}),
            phases=phases,
            cache=cache_delta,
            replay=session._replay_json(),
            wall_seconds=wall,
            states_total=states.states_total if states else 0,
            states_reachable=states.states_reachable if states else 0,
            states_minimized=states.states_minimized if states else 0,
        )
        if session.record:
            store = RunStore(
                None if session.record is True else session.record
            )
            store.save(report)
        return Result(
            workload=self.workload,
            replay_args=session.replay_args,
            cache_hits=cache_delta["hits"],
            cache_misses=cache_delta["misses"],
            report=report,
            **fields,
        )


class Session:
    """A graph + treedepth promise + execution knobs, ready to run workloads.

    Parameters
    ----------
    graph:
        The network (must be connected for the CONGEST protocols).
    d:
        The treedepth promise handed to Algorithm 2.
    faults / retry:
        A :class:`repro.faults.FaultPlan` adversary and/or a
        :class:`repro.faults.RetryPolicy` reliability layer, applied to
        every protocol phase (ignored by ``certify``, whose prover is
        centralized and whose verifier is a single round).
    trace:
        ``True`` to record a fresh :class:`repro.obs.Tracer` (exposed as
        ``session.tracer``), or a Tracer instance to record into.
    seed / inbox_order:
        The simulator's adversarial delivery knobs (see
        :class:`repro.congest.Simulation`).
    budget:
        Per-edge per-round bit budget override (default O(log n)).
    engine:
        ``"batched"`` (default) or ``"naive"`` — differentially identical
        schedulers; batched is the fast one.
    minimize:
        ``False`` opts out of the kernel state-space reduction passes
        (:mod:`repro.algebra.minimize`).  The default ``None`` applies
        them on every engine; when they succeed the per-workload
        :class:`~repro.obs.reports.RunReport` carries the before/after
        state counts.
    cache:
        An :class:`~repro.algebra.cache.AutomatonCache`; defaults to the
        process-wide persistent cache.  Compiled automata and class ids
        are shared across sessions and processes.
    record:
        ``True`` to append each workload's
        :class:`~repro.obs.reports.RunReport` to the default run store
        (``REPRO_RUN_DIR`` or ``.repro/runs``), or a directory path to
        record there.  Reports are built either way and attached to
        ``Result.report``; ``record`` only controls persistence.
    """

    def __init__(
        self,
        graph: Graph,
        d: int,
        *,
        faults: Optional[Any] = None,
        retry: Optional[Any] = None,
        trace: Union[Tracer, bool, None] = None,
        seed: Optional[int] = None,
        inbox_order: Optional[str] = None,
        budget: Optional[int] = None,
        engine: Optional[str] = None,
        minimize: Optional[bool] = None,
        cache: Optional[AutomatonCache] = None,
        record: Union[bool, str, None] = False,
        config: Optional[RunConfig] = None,
    ):
        self.config = RunConfig.from_kwargs(
            config,
            faults=faults,
            retry=retry,
            trace=trace or None,
            seed=seed,
            inbox_order=inbox_order,
            budget=budget,
            engine=engine,
            minimize=minimize,
            cache=cache,
        )
        self.graph = graph
        self.d = d
        self.faults = self.config.faults
        self.retry = self.config.retry
        self.seed = self.config.seed
        self.inbox_order = self.config.inbox_order
        self.budget = self.config.budget
        self.engine = self.config.engine
        self.minimize = self.config.minimize
        self.cache = (
            self.config.cache if self.config.cache is not None
            else default_cache()
        )
        self.record = record
        if self.config.trace is True:
            self.tracer: Optional[Tracer] = Tracer()
        elif isinstance(self.config.trace, Tracer):
            self.tracer = self.config.trace
        else:
            self.tracer = None

    # -- shared plumbing -------------------------------------------------

    @property
    def replay_args(self) -> Dict[str, Any]:
        """Session kwargs reproducing this session's executions exactly."""
        return self.config.replay_args()

    def _replay_json(self) -> Dict[str, Any]:
        """``replay_args`` reduced to JSON-native values for RunReports.

        Delegates to :meth:`RunConfig.to_json` — the inverse of
        :meth:`from_replay`: every value is a JSON scalar or dict, so a
        stored report (or a ``repro fuzz`` replay file) can reconstruct
        the session without evaluating reprs.
        """
        return self.config.to_json()

    @classmethod
    def from_replay(
        cls, graph: Graph, d: int, replay: Mapping[str, Any], **overrides: Any
    ) -> "Session":
        """Rebuild a session from JSON-native replay arguments.

        Accepts both the live :attr:`replay_args` mapping (FaultPlan /
        RetryPolicy instances pass through) and its
        :meth:`RunConfig.to_json` encoding as stored in run reports and
        fuzz replay files, where ``faults`` is a
        :meth:`~repro.faults.FaultPlan.to_dict` dict and ``retry`` is
        ``{"attempts": n}``.  ``overrides`` win over the replayed values
        (e.g. ``cache=...`` for an isolated rerun).
        """
        cfg = RunConfig.from_json(replay)
        kwargs: Dict[str, Any] = cfg.replay_args()
        kwargs.update(overrides)
        return cls(graph, d, **kwargs)

    def _observe(self, workload: str) -> _Observation:
        return _Observation(self, workload)

    def _formula(self, phi: Union[Formula, str]) -> Formula:
        if isinstance(phi, str):
            return parse(phi)
        return phi

    def _labels(self) -> Tuple[str, ...]:
        labels = set()
        for v in self.graph.vertices():
            labels |= self.graph.vertex_labels(v)
        for u, v in self.graph.edges():
            labels |= self.graph.edge_labels(u, v)
        return tuple(sorted(labels))

    def _compiled(self, phi: Formula, scope: Tuple[Var, ...],
                  singletons: bool = False):
        return self.cache.automaton_with_codec(
            phi, scope, d=self.d, labels=self._labels(), singletons=singletons,
        )

    def _run_config(self, codec: Any = None) -> RunConfig:
        """The pipeline-facing config: session knobs + resolved tracer."""
        return self.config.with_overrides(
            trace=self.tracer, codec=codec, cache=None
        )

    def _minimize_stats(self, automaton: Any, out: Any) -> Optional[Any]:
        """The state-reduction counts of the pipeline call that just ran.

        Peek-only, and gated on the pipeline's own ``minimized`` flag:
        when minimization is off, the budgeted passes fell back to the
        raw kernel, or the recovered elimination forest was deeper than
        the closure (so the run bypassed the wrapper), there is nothing
        to report — even if an earlier run on another graph warmed the
        memo.
        """
        if not getattr(out, "minimized", False):
            return None
        return minimization_stats(
            automaton, d=self.d, labels=self._labels()
        )

    # -- workloads -------------------------------------------------------

    def decide(self, phi: Union[Formula, str]) -> Result:
        """Decide the closed formula ``phi`` (Theorem 6.1)."""
        phi = self._formula(phi)
        if free_variables(phi):
            raise ReproError(
                "decide needs a closed formula; use optimize/count for "
                "formulas with free variables"
            )
        with self._observe("decide") as obs:
            automaton, codec = self._compiled(phi, ())
            out = decide_pipeline(
                automaton, self.graph, self.d,
                config=self._run_config(codec),
            )
            self.cache.save_warm()
            return obs.result(
                phi,
                verdict=None if out.treedepth_exceeded else out.accepted,
                rounds=out.total_rounds,
                messages=out.total_messages,
                max_payload_bits=out.max_message_bits,
                treedepth_exceeded=out.treedepth_exceeded,
                num_classes=out.num_classes,
                phase_rounds={
                    "elimination": out.elimination_rounds,
                    "checking": out.checking_rounds,
                },
                states=self._minimize_stats(automaton, out),
            )

    def optimize(
        self,
        phi: Union[Formula, str],
        weights: Optional[Mapping[Any, int]] = None,
        sense: str = "max",
    ) -> Result:
        """Solve max-φ / min-φ for ``phi`` with one free set variable.

        ``weights`` optionally overrides item weights: vertex keys set
        vertex weights, ``(u, v)`` tuple keys set edge weights (on a copy
        of the session graph; the original is untouched).  ``sense`` is
        ``"max"`` or ``"min"``.
        """
        if sense not in ("max", "min"):
            raise ReproError(f"sense must be 'max' or 'min', not {sense!r}")
        phi = self._formula(phi)
        scope = tuple(sorted(free_variables(phi), key=lambda v: v.name))
        if len(scope) != 1 or not scope[0].sort.is_set:
            raise ReproError(
                "optimize needs exactly one free set variable in phi"
            )
        graph = self.graph
        if weights:
            graph = graph.copy()
            for key, weight in weights.items():
                if isinstance(key, tuple) and len(key) == 2 \
                        and graph.has_edge(*key):
                    graph.set_edge_weight(key[0], key[1], weight)
                elif graph.has_vertex(key):
                    graph.set_vertex_weight(key, weight)
                else:
                    raise ReproError(
                        f"weight key {key!r} is neither a vertex nor an "
                        "edge of the session graph"
                    )
        with self._observe("optimize") as obs:
            automaton, codec = self._compiled(phi, scope)
            out = optimize_pipeline(
                automaton, graph, self.d, maximize=(sense == "max"),
                config=self._run_config(codec),
            )
            self.cache.save_warm()
            return obs.result(
                phi,
                verdict=None if out.treedepth_exceeded else out.feasible,
                rounds=out.total_rounds,
                messages=out.total_messages,
                max_payload_bits=out.max_message_bits,
                treedepth_exceeded=out.treedepth_exceeded,
                value=out.value,
                witness=out.witness,
                num_classes=out.num_classes,
                phase_rounds={
                    "elimination": out.elimination_rounds,
                    "optimization": out.optimization_rounds,
                },
                states=self._minimize_stats(automaton, out),
            )

    def count(self, phi: Union[Formula, str]) -> Result:
        """Count satisfying assignments of ``phi``'s free variables (§6)."""
        phi = self._formula(phi)
        scope = tuple(sorted(free_variables(phi), key=lambda v: v.name))
        if not scope:
            raise ReproError("count needs at least one free variable in phi")
        singletons = any(not v.sort.is_set for v in scope)
        with self._observe("count") as obs:
            automaton, codec = self._compiled(phi, scope,
                                              singletons=singletons)
            out = count_pipeline(
                automaton, self.graph, self.d,
                config=self._run_config(codec),
            )
            self.cache.save_warm()
            return obs.result(
                phi,
                verdict=None if out.treedepth_exceeded else True,
                rounds=out.total_rounds,
                messages=out.total_messages,
                max_payload_bits=out.max_message_bits,
                treedepth_exceeded=out.treedepth_exceeded,
                count=out.count,
                num_classes=out.num_classes,
                phase_rounds={
                    "elimination": out.elimination_rounds,
                    "counting": out.counting_rounds,
                },
                states=self._minimize_stats(automaton, out),
            )

    def certify(self, phi: Union[Formula, str]) -> Result:
        """Prove + verify ``phi`` via the PODC'22 certification baseline.

        Raises :class:`repro.errors.CertificationError` when the graph
        does not satisfy ``phi`` (a prover cannot certify a false
        statement).  Fault/retry session knobs do not apply: the prover is
        centralized and the verifier runs a single round.
        """
        phi = self._formula(phi)
        if free_variables(phi):
            raise ReproError("certify needs a closed formula")
        with self._observe("certify") as obs:
            automaton, _codec = self._compiled(phi, ())
            instance = prove(self.graph, automaton)
            audit = verify(self.graph, automaton, instance,
                           engine=self.engine)
            self.cache.save_warm()
            return obs.result(
                phi,
                verdict=audit.accepted,
                rounds=audit.rounds,
                messages=audit.total_messages,
                max_payload_bits=instance.max_certificate_bits,
                num_classes=instance.codec.num_classes,
                phase_rounds={"verification": audit.rounds},
            )
