"""Distributed certification baseline (Bousquet-Feuilloley-Pierron style)."""

from .scheme import (
    Certificate,
    CertifiedInstance,
    VerificationResult,
    prove,
    verifier_program,
    verify,
)

__all__ = [
    "Certificate",
    "CertifiedInstance",
    "VerificationResult",
    "prove",
    "verifier_program",
    "verify",
]
