"""Distributed certification of MSO properties on bounded treedepth.

The Bousquet–Feuilloley–Pierron scheme (PODC 2022) that this paper
"significantly enhances": a centralized prover assigns each node an
O_d(log n)-bit certificate; a 1-round verifier checks it.  Our certificate
for node v is::

    (parent id, depth, bag = root path ids, class id of v's subtree)

Verification (each node sees its own and all neighbors' certificates):

* structural: the parent is a neighbor one level up; the bag extends the
  parent's bag by v; every incident edge joins an ancestor/descendant pair
  (the shallower endpoint appears in the deeper endpoint's bag);
* semantic: v recomputes its subtree's homomorphism class from its
  children's certified classes and its own Base symbol, and compares;
  the root additionally checks the class is accepting.

Completeness: honest certificates from a valid elimination forest are
accepted everywhere.  Soundness: if G ⊭ φ, any certificate assignment is
rejected by some node — the structural checks force the bags to describe a
genuine elimination forest, and then the class recomputation forces the
root's class to be the true one, which is rejecting.  (Both directions are
exercised by the test-suite's corruption fuzzing.)

Complexity contrast with Theorem 6.1 (benchmark E8): verification is a
single round but needs certificates of Θ(td(G) · log n) bits, while the
decision protocol needs O(2^{2d}) rounds but only O(log |𝒞|)-bit messages.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Generator, Optional, Tuple

from ..algebra import TreeAutomaton
from ..algebra.symbols import base_structure, owned_items, symbol_for_assignment
from ..congest import Inbox, NodeContext, payload_bits, run_protocol
from ..errors import CertificationError, ReproError
from ..graph import Graph, Vertex
from ..treedepth import EliminationForest, dfs_elimination_forest
from ..distributed.model_checking import ClassCodec


Certificate = Tuple[Any, int, Tuple[Vertex, ...], int]  # parent, depth, bag, class


@dataclass
class CertifiedInstance:
    """Prover output: per-node certificates plus size accounting."""

    certificates: Dict[Vertex, Certificate]
    max_certificate_bits: int
    codec: ClassCodec


def prove(
    graph: Graph,
    automaton: TreeAutomaton,
    forest: Optional[EliminationForest] = None,
) -> CertifiedInstance:
    """The centralized prover (complete knowledge of G, closed formula).

    Raises :class:`CertificationError` if G does not satisfy the property —
    a prover cannot certify a false statement.
    """
    if automaton.scope:
        raise CertificationError("certification works on closed formulas")
    if forest is None:
        forest = dfs_elimination_forest(graph)
    forest.validate_for(graph)
    if not forest.is_subforest_of(graph):
        # The 1-round verifier reads children's certificates from physical
        # neighbors, so tree edges must be graph edges (the DFS forest
        # always qualifies; depth <= 2^td by Lemma 2.5).
        raise CertificationError("prover forest must be a subforest of the graph")
    codec = ClassCodec(automaton)
    state_after: Dict[Vertex, Any] = {}
    for v in forest.bottom_up_order():
        k = forest.depth_of(v)
        structure = base_structure(graph, forest, v)
        vertex_item, edge_items = owned_items(graph, forest, v)
        symbol = symbol_for_assignment(structure, (), vertex_item, edge_items, {})
        state = automaton.leaf(symbol)
        for child in forest.children(v):
            state = automaton.glue(k, state, state_after[child])
        state_after[v] = automaton.forget(k, state)
    for root in forest.roots():
        if not automaton.accepts(state_after[root]):
            raise CertificationError("instance does not satisfy the property")
    certificates = {}
    max_bits = 0
    for v in forest.vertices():
        parent = forest.parent(v)
        cert: Certificate = (
            parent if parent is not None else v,  # roots point to themselves
            forest.depth_of(v),
            tuple(forest.root_path(v)),
            codec.encode(state_after[v]),
        )
        certificates[v] = cert
        max_bits = max(max_bits, payload_bits(cert))
    return CertifiedInstance(
        certificates=certificates, max_certificate_bits=max_bits, codec=codec
    )


def verifier_program(automaton: TreeAutomaton, codec: ClassCodec):
    """The 1-round verifier: exchange certificates, check locally."""

    def program(ctx: NodeContext) -> Generator[None, Inbox, bool]:
        cert: Certificate = ctx.input["certificate"]
        parent, depth, bag, class_id = cert
        ctx.send_all(("cert", cert))
        inbox = yield

        # -- structural checks -----------------------------------------
        if len(bag) != depth or not bag or bag[-1] != ctx.node:
            return False
        if len(set(bag)) != depth:
            return False
        if depth == 1:
            if parent != ctx.node:
                return False
        else:
            if parent not in ctx.neighbors or bag[-2] != parent:
                return False
        neighbor_certs: Dict[Vertex, Certificate] = {}
        for sender, payload in inbox.items():
            if isinstance(payload, tuple) and payload and payload[0] == "cert":
                neighbor_certs[sender] = payload[1]
        if set(neighbor_certs) != set(ctx.neighbors):
            return False
        if not (0 <= class_id < codec.num_classes):
            return False
        if any(
            not (0 <= c[3] < codec.num_classes) for c in neighbor_certs.values()
        ):
            return False
        if depth > 1:
            p_parent, p_depth, p_bag, _ = neighbor_certs[parent]
            if p_depth != depth - 1 or p_bag != bag[:-1]:
                return False
        for u, (_, u_depth, u_bag, _) in neighbor_certs.items():
            if u_depth == depth:
                return False  # adjacent siblings: ancestry violated
            if u_depth < depth and u not in bag:
                return False
            if u_depth > depth and ctx.node not in u_bag:
                return False

        # -- semantic check: recompute the subtree class ------------------
        from ..algebra.symbols import BaseStructure, BaseSymbol

        positions = tuple(
            pos for pos, ancestor in enumerate(bag[:-1], start=1)
            if ancestor in ctx.neighbors
        )
        structure = BaseStructure(
            depth=depth,
            anc_edges=positions,
            vlabels=frozenset(ctx.input.get("labels", ())),
            elabels=tuple(
                (pos, frozenset(ctx.input.get("edge_labels", {}).get(pos, ())))
                for pos in positions
            ),
        )
        symbol = BaseSymbol(structure=structure, vbits=frozenset(), ebits=tuple(
            (pos, frozenset()) for pos in positions
        ))
        children = sorted(
            u
            for u, (u_parent, u_depth, _, _) in neighbor_certs.items()
            if u_parent == ctx.node and u_depth == depth + 1
        )
        try:
            state = automaton.leaf(symbol)
            for child in children:
                state = automaton.glue(
                    depth, state, codec.decode(neighbor_certs[child][3])
                )
            state = automaton.forget(depth, state)
        except ReproError:
            # Forged certificates can make the recomputation structurally
            # impossible (e.g. a child class from the wrong boundary size);
            # that is a rejection, not a crash.
            return False
        if codec.encode(state) != class_id:
            return False
        if depth == 1 and not automaton.accepts(state):
            return False
        return True

    return program


@dataclass
class VerificationResult:
    """Outcome of one verification round."""

    accepted: bool  # all nodes accepted
    rejecting_nodes: Tuple[Vertex, ...]
    rounds: int
    max_certificate_bits: int
    total_messages: int = 0


def verify(
    graph: Graph,
    automaton: TreeAutomaton,
    instance: CertifiedInstance,
    engine: str = "naive",
) -> VerificationResult:
    """Run the 1-round verifier on the given certificate assignment.

    The message budget for the verification round equals the certificate
    size (the proof-labeling-scheme convention: the verifier exchanges
    certificates with its neighbors, and certificate size *is* the
    complexity measure).
    """
    inputs: Dict[Vertex, Dict[str, Any]] = {}
    for v in graph.vertices():
        edge_labels = {}
        cert = instance.certificates[v]
        bag = cert[2]
        for pos, ancestor in enumerate(bag[:-1], start=1):
            if graph.has_edge(ancestor, v):
                edge_labels[pos] = tuple(sorted(graph.edge_labels(ancestor, v)))
        inputs[v] = {
            "certificate": cert,
            "labels": tuple(sorted(graph.vertex_labels(v))),
            "edge_labels": edge_labels,
        }
    budget = max(
        64,
        max(payload_bits(("cert", c)) for c in instance.certificates.values()),
    )
    result = run_protocol(
        graph,
        verifier_program(automaton, instance.codec),
        inputs=inputs,
        budget=budget,
        max_rounds=10,
        engine=engine,
    )
    rejecting = tuple(sorted(v for v, ok in result.outputs.items() if not ok))
    return VerificationResult(
        accepted=not rejecting,
        rejecting_nodes=rejecting,
        rounds=result.rounds,
        max_certificate_bits=instance.max_certificate_bits,
        total_messages=result.metrics.total_messages,
    )
