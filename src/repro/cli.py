"""Command-line interface: ``python -m repro <command> ...``.

Commands
--------
``check``     decide a closed MSO formula on a graph (sequential or CONGEST)
``optimize``  solve max-φ / min-φ for a formula with one free set variable
``count``     count satisfying assignments of free variables
``treedepth`` compute exact or heuristic treedepth / elimination forests
``certify``   produce and verify certification (proof labeling)
``catalog``   list the built-in formula catalog
``trace``     run any command above with instrumentation enabled
``faults``    replay a fault-injection plan against the CONGEST pipeline
``fuzz``      run the metamorphic conformance harness (``repro.testkit``)
``lint``      CONGEST-conformance static analysis of node programs
``report``    list / render / diff persisted RunReports
``bench``     gate fresh benchmark results against committed baselines
``cache``     automaton-cache statistics (entries, bytes, state counts)

Graphs are given either as a generator spec (``path:20``, ``cycle:8``,
``grid:4x6``, ``clique:5``, ``star:7``, ``bounded:24:3:0.5:42`` for
(n, depth, edge-prob, seed)) or as ``file:PATH`` in the
:mod:`repro.graph.io` text format.  Every command accepts the graph
either positionally or via ``--graph SPEC``.

Setting ``REPRO_TRACE=1`` traces any command without the ``trace``
prefix (phase table on stderr); ``REPRO_TRACE=PATH`` additionally
writes the JSON-lines trace to ``PATH``.  ``REPRO_METRICS=PATH`` dumps
the process-wide metrics registry in Prometheus text format to ``PATH``
after any command (``REPRO_METRICS=1`` prints it to stderr instead).
Workload commands accept ``--record [DIR]`` to persist their RunReport
to the run store (default ``REPRO_RUN_DIR`` or ``.repro/runs``).
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import sys
from typing import Optional, Sequence

from .algebra import compile_formula
from .algebra import check as sequential_check
from .algebra import count as sequential_count
from .algebra import optimize as sequential_optimize
from .api import Session
from .runconfig import RunConfig
from .errors import ReproError
from .graph import Graph, generators
from .graph.io import read_graph
from .mso import Sort, Var, formulas, parse
from .obs import (
    Tracer,
    render_phase_table,
    use_tracer,
    write_chrome_trace,
    write_jsonl,
)
from .treedepth import (
    best_heuristic_forest,
    dfs_elimination_forest,
    treedepth,
    treedepth_lower_bound,
)

_SORTS = {"V": Sort.VERTEX, "E": Sort.EDGE, "VS": Sort.VERTEX_SET, "ES": Sort.EDGE_SET}

_CATALOG = {
    "triangle-free": lambda: formulas.triangle_free(),
    "acyclic": lambda: formulas.acyclic(),
    "connected": lambda: formulas.connected(),
    "2-colorable": lambda: formulas.k_colorable(2),
    "3-colorable": lambda: formulas.k_colorable(3),
    "non-3-colorable": lambda: formulas.not_k_colorable(3),
    "hamiltonian": lambda: formulas.hamiltonian_cycle_exists(),
    "perfect-matching": lambda: formulas.has_perfect_matching(),
    "c4-free": lambda: formulas.h_free(generators.cycle(4)),
    "claw-free": lambda: formulas.h_free(generators.claw()),
    "edge-3-colorable": lambda: formulas.edge_k_colorable(3),
    "two-clique-cover": lambda: formulas.partition_into_k_cliques(2),
    "has-even-subgraph": lambda: formulas.has_even_subgraph(),
    "has-cubic-subgraph": lambda: formulas.has_cubic_subgraph(),
}

_OPT_CATALOG = {
    "independent-set": (formulas.independent_set, "VS", True),
    "vertex-cover": (formulas.vertex_cover, "VS", False),
    "dominating-set": (formulas.dominating_set, "VS", False),
    "feedback-vertex-set": (formulas.feedback_vertex_set, "VS", False),
    "matching": (formulas.matching, "ES", True),
    "spanning-tree": (formulas.spanning_tree, "ES", False),
    "clique": (formulas.max_clique_set, "VS", True),
    "induced-forest": (formulas.induced_forest, "VS", True),
}


def parse_graph_spec(spec: str) -> Graph:
    """Turn a generator spec or ``file:PATH`` into a graph."""
    kind, _, rest = spec.partition(":")
    args = rest.split(":") if rest else []
    try:
        if kind == "file":
            with open(rest, encoding="utf-8") as handle:
                return read_graph(handle)
        if kind == "path":
            return generators.path(int(args[0]))
        if kind == "cycle":
            return generators.cycle(int(args[0]))
        if kind == "clique":
            return generators.clique(int(args[0]))
        if kind == "star":
            return generators.star(int(args[0]))
        if kind == "caterpillar":
            return generators.caterpillar(int(args[0]), int(args[1]))
        if kind == "grid":
            rows, cols = args[0].split("x")
            return generators.grid(int(rows), int(cols))
        if kind == "bounded":
            n = int(args[0])
            depth = int(args[1])
            prob = float(args[2]) if len(args) > 2 else 0.5
            seed = int(args[3]) if len(args) > 3 else 0
            return generators.random_bounded_treedepth(n, depth, prob, seed)
    except (IndexError, ValueError) as exc:
        raise ReproError(f"malformed graph spec {spec!r}: {exc}") from exc
    raise ReproError(
        f"unknown graph spec {spec!r} (try path:N, cycle:N, grid:RxC, "
        "clique:N, star:N, caterpillar:S:L, bounded:N:D[:P[:SEED]], file:PATH)"
    )


def _graph_spec(args: argparse.Namespace) -> str:
    spec = getattr(args, "graph_opt", None) or args.graph
    if spec is None:
        raise ReproError("provide a graph spec (positionally or via --graph)")
    return spec


def _resolve_formula(args: argparse.Namespace):
    if args.catalog:
        if args.catalog not in _CATALOG:
            raise ReproError(
                f"unknown catalog formula {args.catalog!r}; run 'catalog'"
            )
        return _CATALOG[args.catalog]()
    if args.formula:
        # A bare catalog name is accepted through --formula too, so that
        # ``--formula triangle-free`` does the obvious thing.
        if not args.free and args.formula in _CATALOG:
            return _CATALOG[args.formula]()
        free = {}
        for decl in args.free or []:
            name, _, sort = decl.partition(":")
            if sort not in _SORTS:
                raise ReproError(f"free variable {decl!r} needs a sort V/E/VS/ES")
            free[name] = _SORTS[sort]
        return parse(args.formula, free=free)
    raise ReproError("provide --catalog NAME or --formula TEXT")


def _session(graph: Graph, args: argparse.Namespace, **kwargs) -> Session:
    kwargs.setdefault("record", getattr(args, "record", False))
    config_path = getattr(args, "config", None)
    if config_path:
        import json

        with open(config_path) as handle:
            config = RunConfig.from_json(json.load(handle))
        return Session(graph, args.d, config=config, **kwargs)
    engine = getattr(args, "engine", None)
    return Session(graph, args.d, engine=engine or "batched", **kwargs)


def _cmd_check(args: argparse.Namespace) -> int:
    graph = parse_graph_spec(_graph_spec(args))
    formula = _resolve_formula(args)
    if args.congest:
        result = _session(graph, args).decide(formula)
        if result.treedepth_exceeded:
            print(f"treedepth exceeded: td(G) > {args.d}")
            return 2
        print(f"result: {result.verdict}")
        print(f"rounds: {result.rounds} "
              f"(tree {result.phase_rounds['elimination']} "
              f"+ check {result.phase_rounds['checking']})")
        print(f"max message bits: {result.max_payload_bits}")
        print(f"classes: {result.num_classes}")
        return 0 if result.verdict else 1
    automaton = compile_formula(formula, ())
    forest = best_heuristic_forest(graph)
    verdict = sequential_check(formula, graph, forest, automaton)
    print(f"result: {verdict}")
    print(f"classes: {automaton.num_classes()}")
    return 0 if verdict else 1


def _cmd_optimize(args: argparse.Namespace) -> int:
    graph = parse_graph_spec(_graph_spec(args))
    if args.problem not in _OPT_CATALOG:
        raise ReproError(
            f"unknown problem {args.problem!r}; choose from {sorted(_OPT_CATALOG)}"
        )
    factory, sort_name, default_maximize = _OPT_CATALOG[args.problem]
    maximize = default_maximize if args.direction == "auto" else args.direction == "max"
    var = Var("S", _SORTS[sort_name])
    formula = factory(var)
    if args.congest:
        result = _session(graph, args).optimize(
            formula, sense="max" if maximize else "min"
        )
        if result.treedepth_exceeded:
            print(f"treedepth exceeded: td(G) > {args.d}")
            return 2
        if not result.verdict:
            print("infeasible")
            return 1
        print(f"optimum: {result.value}")
        print(f"witness: {sorted(result.witness)}")
        print(f"rounds: {result.rounds}")
        return 0
    automaton = compile_formula(formula, (var,))
    forest = best_heuristic_forest(graph)
    result = sequential_optimize(formula, graph, forest, var, maximize=maximize,
                                 automaton=automaton)
    if result is None:
        print("infeasible")
        return 1
    print(f"optimum: {result.value}")
    print(f"witness: {sorted(result.witness)}")
    return 0


def _cmd_count(args: argparse.Namespace) -> int:
    graph = parse_graph_spec(_graph_spec(args))
    if args.triangles:
        formula, variables = formulas.triangle_assignment()
        if args.congest:
            result = _session(graph, args).count(formula)
            if result.treedepth_exceeded:
                print(f"treedepth exceeded: td(G) > {args.d}")
                return 2
            print(f"triangles: {result.count // 6}")
            print(f"rounds: {result.rounds}")
            return 0
        from .algebra import compile_with_singletons

        automaton = compile_with_singletons(formula, variables)
        forest = best_heuristic_forest(graph)
        total = sequential_count(formula, graph, forest, variables, automaton)
        print(f"triangles: {total // 6}")
        return 0
    raise ReproError("count currently exposes --triangles")


def _cmd_treedepth(args: argparse.Namespace) -> int:
    graph = parse_graph_spec(_graph_spec(args))
    if args.exact:
        if graph.num_vertices() > 18:
            raise ReproError("exact treedepth is exponential; use <= 18 vertices")
        print(f"treedepth: {treedepth(graph)}")
    else:
        forest = best_heuristic_forest(graph)
        dfs = dfs_elimination_forest(graph)
        print(f"lower bound:      {treedepth_lower_bound(graph)}")
        print(f"heuristic depth:  {forest.depth()}")
        print(f"DFS forest depth: {dfs.depth()}")
    return 0


def _cmd_certify(args: argparse.Namespace) -> int:
    graph = parse_graph_spec(_graph_spec(args))
    formula = _resolve_formula(args)
    result = _session(graph, args).certify(formula)
    print(f"certificates: max {result.max_payload_bits} bits, "
          f"{result.num_classes} classes")
    print(f"verification: accepted={result.verdict} in {result.rounds} rounds")
    return 0 if result.verdict else 1


def _cmd_trace(args: argparse.Namespace) -> int:
    from .algebra.cache import default_cache

    inner = build_parser().parse_args([args.traced, *args.rest])
    tracer = Tracer(max_events=args.max_events,
                    capture_payloads=not args.no_payloads)
    cache = default_cache()
    cache_before = (cache.hits, cache.misses, cache.disk_loads)
    with use_tracer(tracer):
        code = inner.func(inner)
    tracer.finish()
    print()
    print(render_phase_table(tracer))
    print(f"automaton cache: {cache.hits - cache_before[0]} hits, "
          f"{cache.misses - cache_before[1]} misses, "
          f"{cache.disk_loads - cache_before[2]} disk loads")
    if args.jsonl and args.jsonl != "none":
        with open(args.jsonl, "w", encoding="utf-8") as handle:
            written = write_jsonl(tracer, handle)
        print(f"trace: {written} events -> {args.jsonl}")
    if args.chrome:
        with open(args.chrome, "w", encoding="utf-8") as handle:
            write_chrome_trace(tracer, handle)
        print(f"trace: chrome trace -> {args.chrome}")
    return code


def _cmd_lint(args: argparse.Namespace) -> int:
    from .lint import RULES, LintError, check_paths
    from .lint.conformance import RL009_NAME, RL009_SUMMARY

    if args.list_rules:
        for rule in RULES.values():
            print(f"{rule.code}  {rule.name:16} {rule.summary}")
        # RL009 needs run artifacts, so it lives outside the per-program
        # rule registry — list it all the same.
        print(f"RL009  {RL009_NAME:16} {RL009_SUMMARY}")
        return 0

    if args.verify_runs:
        from .lint.conformance import verify_runs

        result = verify_runs(args.verify_runs)
        if args.format == "json":
            print(json.dumps(
                {
                    "findings": [f.to_dict() for f in result.findings],
                    "count": len(result.findings),
                    "checked": result.checked,
                    "skipped": result.skipped,
                },
                indent=2,
            ))
        else:
            for finding in result.findings:
                print(finding.format())
            print(
                f"repro lint: verified {result.checked} run report(s) "
                f"({result.skipped} skipped), "
                f"{len(result.findings)} finding(s)"
            )
        return 1 if result.findings else 0

    if not args.paths:
        print("repro lint: no paths given (try: repro lint src/repro)",
              file=sys.stderr)
        return 2
    select = None
    if args.select:
        select = [c for chunk in args.select for c in chunk.split(",") if c]

    if args.show_unused_noqa:
        from .lint import find_unused_noqa

        try:
            unused = find_unused_noqa(args.paths)
        except LintError as exc:
            print(f"repro lint: {exc}", file=sys.stderr)
            return 2
        for item in unused:
            print(item.format())
        noun = "suppression" if len(unused) == 1 else "suppressions"
        print(f"repro lint: {len(unused)} unused {noun}")
        return 1 if unused else 0

    try:
        findings = check_paths(args.paths, select=select)
    except LintError as exc:
        print(f"repro lint: {exc}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(json.dumps(
            {
                "findings": [f.to_dict() for f in findings],
                "count": len(findings),
            },
            indent=2,
        ))
    elif args.format == "sarif":
        from .lint.findings import to_sarif

        meta = {
            code: {"name": r.name, "summary": r.summary}
            for code, r in RULES.items()
        }
        print(json.dumps(to_sarif(findings, meta), indent=2, sort_keys=True))
    else:
        for finding in findings:
            print(finding.format())
        noun = "finding" if len(findings) == 1 else "findings"
        print(f"repro lint: {len(findings)} {noun}")
    return 1 if findings else 0


def _cmd_faults(args: argparse.Namespace) -> int:
    from .errors import FaultToleranceExceeded
    from .faults import FaultPlan, RetryPolicy

    graph = parse_graph_spec(_graph_spec(args))
    if args.plan:
        with open(args.plan, encoding="utf-8") as handle:
            plan = FaultPlan.from_json(handle.read())
    else:
        plan = FaultPlan(seed=args.fault_seed, drop_rate=args.drop_rate)
    if args.formula:
        args.catalog = None  # an explicit formula beats the catalog default
    formula = _resolve_formula(args)
    retry = RetryPolicy(attempts=args.retries) if args.retries > 0 else None
    tracer = Tracer() if args.jsonl else None
    print(f"plan: {plan.describe()}")
    if retry is not None:
        print(f"retry: {retry.attempts} copies per logical round")
    session = _session(graph, args, seed=args.seed, faults=plan, retry=retry,
                       trace=tracer)
    try:
        result = session.decide(formula)
    except FaultToleranceExceeded as exc:
        print(f"fault tolerance exceeded: {exc}")
        _write_fault_trace(tracer, args.jsonl)
        return 3
    _write_fault_trace(tracer, args.jsonl)
    if result.treedepth_exceeded:
        print(f"treedepth exceeded: td(G) > {args.d}")
        return 2
    print(f"result: {result.verdict}")
    print(f"rounds: {result.rounds} "
          f"(tree {result.phase_rounds['elimination']} "
          f"+ check {result.phase_rounds['checking']})")
    print(f"max message bits: {result.max_payload_bits}")
    return 0 if result.verdict else 1


def _cmd_fuzz(args: argparse.Namespace) -> int:
    from .algebra.cache import AutomatonCache
    from .testkit import (
        FuzzConfig,
        check_metamorphic,
        differential_check,
        load_case,
        replay_roundtrip_check,
        run_fuzz,
    )

    if args.replay:
        case, meta = load_case(args.replay)
        print(f"replay: {case.describe()}")
        if meta.get("kinds"):
            print(f"pinned kinds: {', '.join(meta['kinds'])}")
        cache = AutomatonCache(persist=False)
        found = differential_check(case, cache=cache)
        if case.workload != "certify":
            found.extend(check_metamorphic(case, cache=cache))
            found.extend(replay_roundtrip_check(case, cache=cache))
        for disc in found:
            print(f"FAIL {disc.format()}")
        if not found:
            print("replay: conformant (0 discrepancies)")
            return 0
        if any(d.kind == "treedepth" for d in found):
            return 2
        return 1

    config = FuzzConfig(
        cases=args.cases,
        seed=args.seed,
        corpus_dir=args.corpus,
        max_vertices=args.max_vertices,
        metamorphic_every=args.metamorphic_every,
        max_shrinks=args.max_shrinks,
    )
    report = run_fuzz(config, log=print)
    for path in report.replay_files:
        print(f"replay file: {path}")
    if report.errors:
        for line in report.errors:
            print(f"harness error: {line}", file=sys.stderr)
        return 3
    if any(d.kind == "treedepth" for d in report.discrepancies):
        return 2
    return 1 if report.discrepancies else 0


def _write_fault_trace(tracer: Optional[Tracer], path: Optional[str]) -> None:
    if tracer is None or not path:
        return
    tracer.finish()
    with open(path, "w", encoding="utf-8") as handle:
        written = write_jsonl(tracer, handle)
    print(f"trace: {written} events -> {path}")
    if tracer.fault_counts:
        injected = ", ".join(
            f"{kind}:{count}"
            for kind, count in sorted(tracer.fault_counts.items())
        )
        print(f"injected: {injected}")


def _cmd_report(args: argparse.Namespace) -> int:
    from .obs.reports import (
        DEFAULT_DIFF_THRESHOLDS,
        RunStore,
        diff_reports,
        render_html,
        render_markdown,
    )

    store = RunStore(args.dir)
    if args.report_cmd == "list":
        reports = store.list()
        if not reports:
            print(f"no runs recorded in {store.path}")
            return 0
        for r in reports:
            print(f"{r.run_id[:12]}  {r.workload:<8}  "
                  f"n={r.graph['n']} d={r.d} engine={r.engine}  "
                  f"rounds={r.metrics['rounds']} "
                  f"messages={r.metrics['messages']}  "
                  f"verdict={r.verdict}")
        return 0
    if args.report_cmd == "show":
        try:
            report = store.load(args.id)
        except KeyError as exc:
            raise ReproError(str(exc)) from exc
        if args.format == "html":
            text = render_html(report)
        else:
            text = render_markdown(report)
        if args.out:
            with open(args.out, "w", encoding="utf-8") as handle:
                handle.write(text)
            print(f"report {report.run_id[:12]} -> {args.out}")
        else:
            print(text)
        return 0
    # diff
    try:
        a = store.load(args.a)
        b = store.load(args.b)
    except KeyError as exc:
        raise ReproError(str(exc)) from exc
    thresholds = dict(DEFAULT_DIFF_THRESHOLDS)
    for spec in args.tolerance or []:
        name, sep, value = spec.partition("=")
        if not sep:
            raise ReproError(
                f"malformed --tolerance {spec!r}; expected METRIC=REL "
                "(e.g. rounds=0.1)"
            )
        try:
            thresholds[name] = float(value)
        except ValueError as exc:
            raise ReproError(
                f"malformed --tolerance {spec!r}: {exc}"
            ) from exc
    diff = diff_reports(a, b, thresholds)
    print(diff.render(wall=args.wall))
    return 0 if diff.ok else 1


def _cmd_bench(args: argparse.Namespace) -> int:
    from .obs.benchgate import check_bench

    fresh = args.fresh or sorted(glob.glob("BENCH_*.json"))
    result = check_bench(
        fresh,
        args.baselines,
        speedup_tolerance=args.speedup_tolerance,
        speedup_floor=args.speedup_floor,
        time_tolerance=args.time_tolerance,
    )
    print(result.render())
    return 0 if result.ok else 1


def _cmd_cache(args: argparse.Namespace) -> int:
    from .algebra.cache import default_cache
    from .obs.registry import registry

    cache = default_cache()
    stats = cache.stats()
    if args.json:
        print(json.dumps(stats, indent=2, sort_keys=True, default=repr))
        return 0
    print(f"automaton cache: {stats['directory']} "
          f"(persist={'on' if stats['persist'] else 'off'})")
    print(f"  entries: {stats['memory_entries']} in memory, "
          f"{stats['disk_entries']} on disk "
          f"({stats['disk_bytes']} bytes)")
    print(f"  counters: {stats['hits']} hits, {stats['misses']} misses, "
          f"{stats['disk_loads']} disk loads")
    fallbacks = registry().counter(
        "repro_minimize_fallback_total",
        "Minimization attempts that fell back to the raw automaton.",
    ).total()
    print(f"  minimize fallbacks (process-wide): {int(fallbacks)}")
    for entry in stats["entries"]:
        print(f"  - {entry['key']!r}: "
              f"{entry['table_entries']} table entries")
        for info in entry["minimized"]:
            labels = ",".join(info["labels"]) or "-"
            if info["fallback"]:
                print(f"      minimized d={info['d']} labels={labels}: "
                      "fallback (budget exceeded)")
            else:
                print(f"      minimized d={info['d']} labels={labels}: "
                      f"{info['states_total']} states, "
                      f"{info['states_reachable']} reachable, "
                      f"{info['states_minimized']} after quotient")
    return 0


def _cmd_catalog(_args: argparse.Namespace) -> int:
    print("decision formulas:")
    for name in sorted(_CATALOG):
        print(f"  {name}")
    print("optimization problems:")
    for name in sorted(_OPT_CATALOG):
        factory, sort_name, maximize = _OPT_CATALOG[name]
        print(f"  {name} ({'max' if maximize else 'min'}, {sort_name})")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Distributed MSO model checking on bounded treedepth",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_graph(p):
        p.add_argument("graph", nargs="?", default=None,
                       help="graph spec (e.g. path:20, bounded:24:3)")
        p.add_argument("--graph", dest="graph_opt", default=None,
                       metavar="SPEC", help="graph spec (alternative to the "
                       "positional argument)")

    def add_common(p, formula=True):
        add_graph(p)
        p.add_argument("--congest", action="store_true",
                       help="run the distributed protocol instead of Algorithm 1")
        p.add_argument("--d", type=int, default=3,
                       help="treedepth promise for CONGEST runs (default 3)")
        p.add_argument("--engine", choices=["batched", "naive", "vectorized"],
                       default=None,
                       help="execution engine for CONGEST runs "
                       "(differentially identical; vectorized is the fast "
                       "one — see docs/engines.md)")
        p.add_argument("--config", metavar="FILE", default=None,
                       help="JSON RunConfig replay file (seed/inbox_order/"
                       "engine/faults/retry/budget); mutually exclusive "
                       "with --engine")
        p.add_argument("--record", nargs="?", const=True, default=False,
                       metavar="DIR",
                       help="persist the RunReport to the run store "
                       "(default dir: REPRO_RUN_DIR or .repro/runs)")
        if formula:
            p.add_argument("--catalog", help="a catalog formula name")
            p.add_argument("--formula", help="an MSO formula in text syntax")
            p.add_argument("--free", nargs="*",
                           help="free variable declarations name:SORT")

    p_check = sub.add_parser("check", help="decide a closed formula")
    add_common(p_check)
    p_check.set_defaults(func=_cmd_check)

    p_opt = sub.add_parser("optimize", help="solve max-φ / min-φ")
    add_common(p_opt, formula=False)
    p_opt.add_argument("--problem", required=True,
                       help="optimization problem name (see catalog)")
    p_opt.add_argument("--direction", choices=["auto", "max", "min"],
                       default="auto")
    p_opt.set_defaults(func=_cmd_optimize)

    p_count = sub.add_parser("count", help="count satisfying assignments")
    add_common(p_count, formula=False)
    p_count.add_argument("--triangles", action="store_true",
                         help="count triangles")
    p_count.set_defaults(func=_cmd_count)

    p_td = sub.add_parser("treedepth", help="treedepth of a graph")
    add_graph(p_td)
    p_td.add_argument("--exact", action="store_true")
    p_td.set_defaults(func=_cmd_treedepth)

    p_cert = sub.add_parser("certify", help="prove + verify certification")
    add_common(p_cert)
    p_cert.set_defaults(func=_cmd_certify)

    p_cat = sub.add_parser("catalog", help="list built-in formulas")
    p_cat.set_defaults(func=_cmd_catalog)

    p_lint = sub.add_parser(
        "lint",
        help="CONGEST-conformance static analysis of node programs",
        description="Statically checks node programs for locality (RL001), "
        "determinism (RL002), round-structure (RL003), payload-typing "
        "(RL004), unbounded-retry (RL005), bit-budget (RL006), "
        "round-bound (RL007), and nondeterminism-taint (RL008) "
        "violations; rules see through project-local helper calls.  "
        "Suppress a finding with '# repro: noqa[RL00x]' on the offending "
        "line (or at the call site of an inlined helper).  Exits 1 if any "
        "finding remains.",
    )
    p_lint.add_argument("paths", nargs="*",
                        help="files or directories to analyze")
    p_lint.add_argument("--format", choices=["text", "json", "sarif"],
                        default="text",
                        help="output format (default text)")
    p_lint.add_argument("--select", action="append", metavar="CODES",
                        help="only run these rule codes (comma-separated, "
                        "repeatable)")
    p_lint.add_argument("--list-rules", action="store_true",
                        help="print the rule table and exit")
    p_lint.add_argument("--show-unused-noqa", action="store_true",
                        help="report '# repro: noqa' suppressions that no "
                        "longer suppress anything (exit 1 if any)")
    p_lint.add_argument("--verify-runs", metavar="DIR",
                        help="RL009: check stored RunReports in DIR against "
                        "the statically certified bit/round bounds "
                        "(exit 1 on any exceedance)")
    p_lint.set_defaults(func=_cmd_lint)

    p_faults = sub.add_parser(
        "faults",
        help="replay a fault plan against the distributed decision pipeline",
        description="Runs the full CONGEST decision pipeline (Algorithm 2 + "
        "the decision convergecast) under a seeded fault plan.  Exit codes: "
        "0 accepted, 1 rejected, 2 treedepth exceeded, 3 fault tolerance "
        "exceeded (the run failed closed).  Replays are deterministic: the "
        "same plan JSON, graph, seed, and retry policy reproduce the same "
        "faults and the same outcome.",
    )
    add_graph(p_faults)
    p_faults.add_argument("--plan", default=None, metavar="PATH",
                          help="fault plan JSON (see FaultPlan.to_json); "
                          "omit to build one from --drop-rate/--fault-seed")
    p_faults.add_argument("--drop-rate", type=float, default=0.0,
                          help="ad-hoc plan: per-message drop probability "
                          "(ignored when --plan is given)")
    p_faults.add_argument("--fault-seed", type=int, default=0,
                          help="ad-hoc plan: injector seed (default 0)")
    p_faults.add_argument("--retries", type=int, default=0, metavar="N",
                          help="wrap protocols in the redundancy-lockstep "
                          "synchronizer with N copies per logical round "
                          "(0 = no reliability layer)")
    p_faults.add_argument("--d", type=int, default=3,
                          help="treedepth promise (default 3)")
    p_faults.add_argument("--engine", choices=["batched", "naive", "vectorized"],
                          default="batched",
                          help="execution engine (differentially identical)")
    p_faults.add_argument("--seed", type=int, default=None,
                          help="inbox-order seed for the simulator")
    p_faults.add_argument("--catalog", default="triangle-free",
                          help="catalog formula name (default triangle-free)")
    p_faults.add_argument("--formula", help="an MSO formula in text syntax")
    p_faults.add_argument("--free", nargs="*",
                          help="free variable declarations name:SORT")
    p_faults.add_argument("--jsonl", default=None, metavar="PATH",
                          help="write the fault-event trace as JSON lines")
    p_faults.set_defaults(func=_cmd_faults)

    p_fuzz = sub.add_parser(
        "fuzz",
        help="run the metamorphic conformance harness",
        description="Generates seeded conformance cases and checks the "
        "CONGEST pipeline against sequential semantics (differential "
        "matrix over engines, inbox orders, and fault plans, plus "
        "metamorphic relations).  Failing cases are shrunk and written "
        "to the corpus as content-addressed replay files.  Exit codes "
        "mirror `repro faults`: 0 conformant, 1 discrepancies, 2 "
        "treedepth-promise violations, 3 harness errors.",
    )
    p_fuzz.add_argument("--cases", type=int, default=100, metavar="N",
                        help="number of fresh cases to generate "
                        "(default 100)")
    p_fuzz.add_argument("--seed", type=int, default=0,
                        help="generator seed (default 0); the (seed, "
                        "cases) pair names a reproducible suite")
    p_fuzz.add_argument("--corpus", default=None, metavar="DIR",
                        help="replay every case in DIR first, and write "
                        "shrunk failures there")
    p_fuzz.add_argument("--replay", default=None, metavar="FILE",
                        help="re-run one replay file through the full "
                        "oracle instead of fuzzing")
    p_fuzz.add_argument("--max-vertices", type=int, default=12,
                        metavar="N",
                        help="bound on generated graph sizes (default 12)")
    p_fuzz.add_argument("--metamorphic-every", type=int, default=5,
                        metavar="K",
                        help="run metamorphic + replay round-trip checks "
                        "on every K-th case (default 5; 0 disables)")
    p_fuzz.add_argument("--max-shrinks", type=int, default=3, metavar="N",
                        help="failing cases to minimize per run "
                        "(default 3)")
    p_fuzz.set_defaults(func=_cmd_fuzz)

    p_trace = sub.add_parser(
        "trace",
        help="run another command with the instrumentation layer on",
        description="Runs the wrapped command under a Tracer and reports a "
        "per-phase breakdown (rounds / messages / bits) plus sequential "
        "wall-clock profiles.  Trace options go BEFORE the wrapped command: "
        "repro trace --jsonl t.jsonl check --formula triangle-free "
        "--graph cycle:8 --congest",
    )
    p_trace.add_argument("--jsonl", default="repro-trace.jsonl", metavar="PATH",
                         help="JSON-lines trace output (default "
                         "repro-trace.jsonl; 'none' to skip)")
    p_trace.add_argument("--chrome", default=None, metavar="PATH",
                         help="also write a Chrome-trace-format file "
                         "(chrome://tracing / Perfetto)")
    p_trace.add_argument("--max-events", type=int, default=200_000,
                         help="event buffer cap (default 200000)")
    p_trace.add_argument("--no-payloads", action="store_true",
                         help="do not record message payload reprs")
    p_trace.add_argument("traced", choices=["check", "optimize", "count",
                                            "treedepth", "certify"],
                         help="the command to run under tracing")
    p_trace.add_argument("rest", nargs=argparse.REMAINDER,
                         help="arguments for the wrapped command")
    p_trace.set_defaults(func=_cmd_trace)

    p_report = sub.add_parser(
        "report",
        help="list, render, and diff persisted RunReports",
        description="Operates on the run store written by --record "
        "(an append-only runs.jsonl under .repro/runs, or REPRO_RUN_DIR, "
        "or --dir).  Run ids are content-addressed; unique prefixes and "
        "'latest' are accepted wherever an id is expected.",
    )
    p_report.add_argument("--dir", default=None, metavar="DIR",
                          help="run store directory (default: REPRO_RUN_DIR "
                          "or .repro/runs)")
    report_sub = p_report.add_subparsers(dest="report_cmd", required=True)
    report_sub.add_parser("list", help="one line per stored run")
    p_show = report_sub.add_parser("show", help="render one report")
    p_show.add_argument("id", help="run id (prefix) or 'latest'")
    p_show.add_argument("--format", choices=["md", "html"], default="md",
                        help="markdown (default) or self-contained HTML")
    p_show.add_argument("--out", default=None, metavar="PATH",
                        help="write to PATH instead of stdout")
    p_diff = report_sub.add_parser(
        "diff",
        help="deterministic phase-by-phase delta of two runs",
        description="Prints the metric/phase/cache/fault delta table for "
        "runs A and B and exits 1 when B regresses past a threshold "
        "(default: any increase in rounds/messages/bits/max_message_bits, "
        "or a verdict disagreement).  The table is byte-deterministic for "
        "fixed stored reports; --wall appends the non-deterministic "
        "wall-clock row.",
    )
    p_diff.add_argument("a", help="run id of the baseline run A")
    p_diff.add_argument("b", help="run id of the candidate run B")
    p_diff.add_argument("--tolerance", action="append", metavar="METRIC=REL",
                        help="override a gate tolerance, e.g. rounds=0.1 "
                        "(repeatable; REL is relative, 0.1 = +10%%)")
    p_diff.add_argument("--wall", action="store_true",
                        help="include the wall-clock row in the table")
    p_report.set_defaults(func=_cmd_report)

    p_bench = sub.add_parser(
        "bench",
        help="benchmark regression gate",
        description="Compares fresh BENCH_*.json results (benchmarks/"
        "bench_engine.py --out) against committed baselines matched by "
        "(benchmark, mode).  Exits 1 on any regression: changed "
        "verdicts/rounds on a matching grid, or a speedup below both the "
        "relative tolerance and the absolute floor.",
    )
    bench_sub = p_bench.add_subparsers(dest="bench_cmd", required=True)
    p_bcheck = bench_sub.add_parser("check", help="gate fresh results")
    p_bcheck.add_argument("--fresh", nargs="*", default=None, metavar="PATH",
                          help="fresh result files (default: BENCH_*.json "
                          "in the current directory)")
    p_bcheck.add_argument("--baselines", default="benchmarks/baselines",
                          metavar="DIR",
                          help="baseline directory (default "
                          "benchmarks/baselines)")
    p_bcheck.add_argument("--speedup-tolerance", type=float, default=0.5,
                          help="allowed relative speedup drop (default 0.5 "
                          "= may fall to 50%% of baseline)")
    p_bcheck.add_argument("--speedup-floor", type=float, default=1.0,
                          help="absolute speedup that always passes "
                          "(default 1.0)")
    p_bcheck.add_argument("--time-tolerance", type=float, default=None,
                          help="also gate raw seconds within this relative "
                          "tolerance (off by default: machine-dependent)")
    p_bench.set_defaults(func=_cmd_bench)

    p_cache = sub.add_parser(
        "cache",
        help="automaton cache introspection",
        description="Statistics for the process-wide persistent "
        "AutomatonCache: entry and on-disk byte counts, per-entry "
        "transition-table sizes, minimized-kernel state counts, and "
        "hit/miss/disk-load counters.",
    )
    cache_sub = p_cache.add_subparsers(dest="cache_cmd", required=True)
    p_cstats = cache_sub.add_parser("stats", help="print cache statistics")
    p_cstats.add_argument("--json", action="store_true",
                          help="machine-readable output")
    p_cache.set_defaults(func=_cmd_cache)
    return parser


def _dump_metrics() -> None:
    """Honor ``REPRO_METRICS``: Prometheus text to a path (or stderr)."""
    target = os.environ.get("REPRO_METRICS", "")
    if not target or target == "0":
        return
    from .obs.registry import registry

    text = registry().render_prometheus()
    if target.lower() in ("1", "true", "yes", "on"):
        print(text, file=sys.stderr, end="")
        return
    with open(target, "w", encoding="utf-8") as handle:
        handle.write(text)
    print(f"metrics: registry -> {target}", file=sys.stderr)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    env_trace = os.environ.get("REPRO_TRACE", "")
    try:
        if env_trace and env_trace != "0" and args.command != "trace":
            tracer = Tracer()
            with use_tracer(tracer):
                code = args.func(args)
            tracer.finish()
            print(render_phase_table(tracer), file=sys.stderr)
            if env_trace.lower() not in ("1", "true", "yes", "on"):
                with open(env_trace, "w", encoding="utf-8") as handle:
                    write_jsonl(tracer, handle)
                print(f"trace: events -> {env_trace}", file=sys.stderr)
            return code
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 64
    finally:
        _dump_metrics()


if __name__ == "__main__":
    sys.exit(main())
