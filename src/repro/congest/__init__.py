"""Round-synchronous CONGEST simulator with strict message accounting."""

from .messages import Payload, check_payload, fragment_payload, int_bits, payload_bits
from .metrics import RoundMetrics
from .primitives import (
    ItemCollector,
    broadcast_from_root,
    exchange_with_neighbors,
    flood_value,
    idle,
    leader_election,
    ordered_inbox,
    reliable_recv,
    reliable_send,
    send_items_to,
)
from .parallel import Shard, ShardResult, merge_metrics, run_sweep, shard_seed
from .registry import iter_registered, node_program, registered_programs
from .runtime import (
    ENGINES,
    INBOX_ORDERS,
    Inbox,
    NodeContext,
    NodeProgram,
    Simulation,
    SimulationResult,
    default_budget,
    run_protocol,
)

__all__ = [
    "ENGINES", "INBOX_ORDERS", "Inbox", "ItemCollector", "NodeContext",
    "NodeProgram", "Payload", "RoundMetrics", "Shard", "ShardResult",
    "Simulation", "SimulationResult", "broadcast_from_root", "check_payload",
    "default_budget", "exchange_with_neighbors", "flood_value",
    "fragment_payload", "idle", "int_bits", "iter_registered",
    "leader_election", "merge_metrics", "node_program", "ordered_inbox",
    "payload_bits", "registered_programs", "reliable_recv", "reliable_send",
    "run_protocol", "run_sweep", "send_items_to", "shard_seed",
]
