"""Round-synchronous CONGEST simulator with strict message accounting."""

from .messages import Payload, check_payload, fragment_payload, int_bits, payload_bits
from .metrics import RoundMetrics
from .primitives import (
    ItemCollector,
    broadcast_from_root,
    exchange_with_neighbors,
    flood_value,
    idle,
    leader_election,
    send_items_to,
)
from .runtime import (
    Inbox,
    NodeContext,
    NodeProgram,
    Simulation,
    SimulationResult,
    default_budget,
    run_protocol,
)

__all__ = [
    "Inbox", "ItemCollector", "NodeContext", "NodeProgram", "Payload",
    "RoundMetrics", "Simulation", "SimulationResult", "broadcast_from_root",
    "check_payload", "default_budget", "exchange_with_neighbors",
    "flood_value", "fragment_payload", "idle", "int_bits", "leader_election",
    "payload_bits", "run_protocol", "send_items_to",
]
