"""Round-synchronous CONGEST simulator with strict message accounting."""

from .messages import Payload, check_payload, fragment_payload, int_bits, payload_bits
from .metrics import RoundMetrics
from .primitives import (
    ItemCollector,
    broadcast_from_root,
    exchange_with_neighbors,
    flood_value,
    idle,
    leader_election,
    ordered_inbox,
    reliable_recv,
    reliable_send,
    send_items_to,
)
from .registry import iter_registered, node_program, registered_programs
from .runtime import (
    INBOX_ORDERS,
    Inbox,
    NodeContext,
    NodeProgram,
    Simulation,
    SimulationResult,
    default_budget,
    run_protocol,
)

__all__ = [
    "INBOX_ORDERS", "Inbox", "ItemCollector", "NodeContext", "NodeProgram",
    "Payload", "RoundMetrics", "Simulation", "SimulationResult",
    "broadcast_from_root", "check_payload", "default_budget",
    "exchange_with_neighbors", "flood_value", "fragment_payload", "idle",
    "int_bits", "iter_registered", "leader_election", "node_program",
    "ordered_inbox", "payload_bits", "registered_programs", "reliable_recv",
    "reliable_send", "run_protocol", "send_items_to",
]
