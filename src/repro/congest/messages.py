"""Message encoding and bit accounting for the CONGEST simulator.

The CONGEST model's entire point is the O(log n)-bit per-edge per-round
budget, so the simulator *actually serializes* every payload and counts
bits.  Payloads are restricted to a small algebraic datatype (ints, bools,
None, strings, and nested tuples/frozensets thereof) with a deterministic,
self-delimiting encoding; the measured size is what the round scheduler
charges against the budget.
"""

from __future__ import annotations

from typing import FrozenSet, Tuple, Union

from ..errors import PayloadTypeError

Payload = Union[int, bool, None, str, Tuple["Payload", ...], FrozenSet["Payload"]]

# Targeted repair hints for the common wrong types, surfaced in the
# PayloadTypeError so protocol authors see the fix, not just the rejection.
_TYPE_HINTS = {
    "list": "use a tuple",
    "dict": "use a tuple of (key, value) pairs",
    "set": "use a frozenset",
    "float": "scale to an integer; floats have no canonical bit encoding",
    "bytes": "encode as a tuple of ints",
    "bytearray": "encode as a tuple of ints",
}


def int_bits(value: int) -> int:
    """Bits to encode a signed integer (sign bit + magnitude)."""
    return 1 + max(1, abs(value).bit_length())


def _bits(payload: Payload, path: str) -> int:
    tag = 2
    if payload is None:
        return tag
    if isinstance(payload, bool):
        return tag + 1
    if isinstance(payload, int):
        return tag + int_bits(payload)
    if isinstance(payload, str):
        return tag + 6
    if isinstance(payload, tuple):
        return (
            tag
            + int_bits(len(payload))
            + sum(_bits(item, f"{path}[{i}]") for i, item in enumerate(payload))
        )
    if isinstance(payload, frozenset):
        return (
            tag
            + int_bits(len(payload))
            + sum(
                _bits(item, f"{path}{{{i}}}")
                for i, item in enumerate(sorted(payload, key=repr))
            )
        )
    name = type(payload).__name__
    raise PayloadTypeError(path, name, _TYPE_HINTS.get(name, ""))


def payload_bits(payload: Payload) -> int:
    """Size in bits of the canonical encoding of ``payload``.

    Every value pays a 2-bit type tag; containers pay a length field.
    Strings are flat 6 bits: in every protocol here they are *message-type
    tags* drawn from a constant per-algorithm alphabet, so a real encoding
    would use O(1) bits for them — variable data must travel as integers
    or containers, whose cost is Θ(information content).

    Unsupported values raise :class:`~repro.errors.PayloadTypeError` naming
    the offending sub-value path (e.g. ``payload[2][0]: float``), so nested
    mistakes are rejected before any part of the message is charged.
    """
    return _bits(payload, "payload")


def check_payload(payload: Payload) -> int:
    """Validate and measure a payload; raises on non-serializable values."""
    return payload_bits(payload)


def fragment_payload(payload: Payload, budget: int) -> Tuple[int, int]:
    """How many rounds does sending ``payload`` cost under ``budget``?

    Returns ``(bits, rounds)`` where rounds = ceil(bits / budget), i.e. the
    Θ(k / log n) cost of a k-bit message stated in the paper's introduction.
    """
    bits = payload_bits(payload)
    rounds = max(1, -(-bits // budget))
    return bits, rounds
