"""Message encoding and bit accounting for the CONGEST simulator.

The CONGEST model's entire point is the O(log n)-bit per-edge per-round
budget, so the simulator *actually serializes* every payload and counts
bits.  Payloads are restricted to a small algebraic datatype (ints, bools,
None, strings, and nested tuples/frozensets thereof) with a deterministic,
self-delimiting encoding; the measured size is what the round scheduler
charges against the budget.
"""

from __future__ import annotations

from typing import FrozenSet, Tuple, Union

from ..errors import CongestError

Payload = Union[int, bool, None, str, Tuple["Payload", ...], FrozenSet["Payload"]]


def int_bits(value: int) -> int:
    """Bits to encode a signed integer (sign bit + magnitude)."""
    return 1 + max(1, abs(value).bit_length())


def payload_bits(payload: Payload) -> int:
    """Size in bits of the canonical encoding of ``payload``.

    Every value pays a 2-bit type tag; containers pay a length field.
    Strings are flat 6 bits: in every protocol here they are *message-type
    tags* drawn from a constant per-algorithm alphabet, so a real encoding
    would use O(1) bits for them — variable data must travel as integers
    or containers, whose cost is Θ(information content).
    """
    tag = 2
    if payload is None:
        return tag
    if isinstance(payload, bool):
        return tag + 1
    if isinstance(payload, int):
        return tag + int_bits(payload)
    if isinstance(payload, str):
        return tag + 6
    if isinstance(payload, tuple):
        return (
            tag
            + int_bits(len(payload))
            + sum(payload_bits(item) for item in payload)
        )
    if isinstance(payload, frozenset):
        return (
            tag
            + int_bits(len(payload))
            + sum(payload_bits(item) for item in sorted(payload, key=repr))
        )
    raise CongestError(
        f"payload type {type(payload).__name__} is not CONGEST-serializable"
    )


def check_payload(payload: Payload) -> int:
    """Validate and measure a payload; raises on non-serializable values."""
    return payload_bits(payload)


def fragment_payload(payload: Payload, budget: int) -> Tuple[int, int]:
    """How many rounds does sending ``payload`` cost under ``budget``?

    Returns ``(bits, rounds)`` where rounds = ceil(bits / budget), i.e. the
    Θ(k / log n) cost of a k-bit message stated in the paper's introduction.
    """
    bits = payload_bits(payload)
    rounds = max(1, -(-bits // budget))
    return bits, rounds
