"""Round/message/bit accounting for CONGEST executions."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple


@dataclass
class RoundMetrics:
    """Aggregate statistics of one simulated execution.

    ``max_message_bits`` is the headline CONGEST-legality figure: it must
    stay within the per-edge budget (O(log n)) for the execution to be a
    valid CONGEST run.  ``per_round_messages`` / ``per_round_bits`` track
    the load profile round by round; ``trace_truncated`` flags that the
    simulation's legacy trace list hit its cap and silently dropped
    entries (see :class:`~repro.congest.runtime.Simulation`).
    ``undelivered_messages`` counts messages queued in the final sweep
    after every node had halted — a send no receiver could ever observe,
    i.e. a round-structure bug in the protocol (lint rule RL003).

    Fault-injection bookkeeping (see :mod:`repro.faults`):
    ``faults_injected`` counts injected faults by trace-event kind (e.g.
    ``fault-drop``); ``retransmissions`` counts redundant copies sent by
    the reliability layer (:func:`repro.faults.reliable_program` and
    :func:`repro.congest.primitives.reliable_send`) — zero on faultless
    runs without a reliability wrapper.
    """

    budget_bits: int
    rounds: int = 0
    total_messages: int = 0
    total_bits: int = 0
    max_message_bits: int = 0
    per_round_messages: List[int] = field(default_factory=list)
    per_round_bits: List[int] = field(default_factory=list)
    trace_truncated: bool = False
    undelivered_messages: int = 0
    faults_injected: Dict[str, int] = field(default_factory=dict)
    retransmissions: int = 0

    def record_round(self) -> None:
        self.rounds += 1
        self.per_round_messages.append(0)
        self.per_round_bits.append(0)

    def record_fault(self, kind: str) -> None:
        self.faults_injected[kind] = self.faults_injected.get(kind, 0) + 1

    def record_retry(self, count: int = 1) -> None:
        self.retransmissions += count

    @property
    def total_faults(self) -> int:
        return sum(self.faults_injected.values())

    def record_message(self, bits: int) -> None:
        self.total_messages += 1
        self.total_bits += bits
        self.max_message_bits = max(self.max_message_bits, bits)
        if self.per_round_messages:
            self.per_round_messages[-1] += 1
            self.per_round_bits[-1] += bits

    def record_message_batch(self, count: int, bits: int, max_bits: int) -> None:
        """Fold one round's accumulated message counters in at once.

        Used by the batched engine (array-backed accumulation): ``count``
        messages totalling ``bits`` bits, the largest being ``max_bits``,
        all sent in the current round.  The resulting metrics state is
        identical to ``count`` individual :meth:`record_message` calls.
        """
        self.total_messages += count
        self.total_bits += bits
        if max_bits > self.max_message_bits:
            self.max_message_bits = max_bits
        if self.per_round_messages:
            self.per_round_messages[-1] += count
            self.per_round_bits[-1] += bits

    def peak_round_messages(self) -> Tuple[int, int]:
        """(1-based round, message count) of the busiest round by messages."""
        if not self.per_round_messages:
            return (0, 0)
        count = max(self.per_round_messages)
        return (self.per_round_messages.index(count) + 1, count)

    def peak_round_bits(self) -> Tuple[int, int]:
        """(1-based round, bits) of the busiest round by bits."""
        if not self.per_round_bits:
            return (0, 0)
        bits = max(self.per_round_bits)
        return (self.per_round_bits.index(bits) + 1, bits)

    def summary(self) -> str:
        peak_r, peak_m = self.peak_round_messages()
        _, peak_b = self.peak_round_bits()
        text = (
            f"rounds={self.rounds} messages={self.total_messages} "
            f"bits={self.total_bits} max_message_bits={self.max_message_bits} "
            f"peak_round={peak_r} peak_round_messages={peak_m} "
            f"peak_round_bits={peak_b} budget={self.budget_bits}"
        )
        if self.trace_truncated:
            text += " trace_truncated=True"
        if self.undelivered_messages:
            text += f" undelivered={self.undelivered_messages}"
        if self.faults_injected:
            text += " faults=" + ",".join(
                f"{kind}:{count}"
                for kind, count in sorted(self.faults_injected.items())
            )
        if self.retransmissions:
            text += f" retransmissions={self.retransmissions}"
        return text
