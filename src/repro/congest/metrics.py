"""Round/message/bit accounting for CONGEST executions."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List


@dataclass
class RoundMetrics:
    """Aggregate statistics of one simulated execution.

    ``max_message_bits`` is the headline CONGEST-legality figure: it must
    stay within the per-edge budget (O(log n)) for the execution to be a
    valid CONGEST run.
    """

    budget_bits: int
    rounds: int = 0
    total_messages: int = 0
    total_bits: int = 0
    max_message_bits: int = 0
    per_round_messages: List[int] = field(default_factory=list)

    def record_round(self) -> None:
        self.rounds += 1
        self.per_round_messages.append(0)

    def record_message(self, bits: int) -> None:
        self.total_messages += 1
        self.total_bits += bits
        self.max_message_bits = max(self.max_message_bits, bits)
        if self.per_round_messages:
            self.per_round_messages[-1] += 1

    def summary(self) -> str:
        return (
            f"rounds={self.rounds} messages={self.total_messages} "
            f"bits={self.total_bits} max_message_bits={self.max_message_bits} "
            f"budget={self.budget_bits}"
        )
