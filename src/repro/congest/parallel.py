"""Shard-parallel sweep runner for benchmark and experiment grids.

A *sweep* runs one worker function over a grid of parameter points
(dictionaries).  Each point becomes a :class:`Shard` carrying a
deterministic seed derived from the sweep's base seed and the shard index
— the same grid and base seed always reproduce the same per-shard seeds,
whether the sweep runs serially or fanned out across ``multiprocessing``
workers.  Results come back in grid order regardless of completion order.

The worker receives the parameter dict (with ``seed`` and ``shard``
injected) and returns any picklable value; by convention workers return a
dict with a ``metrics`` entry (``RoundMetrics`` fields or a
``Tracer.phase_table_rows()``-shaped summary) so the existing
:mod:`repro.obs` exporters can consume merged sweep output via
:func:`merge_metrics`.

Workers must be module-level functions (the usual ``multiprocessing``
picklability rule).  ``processes=0`` or a single-point grid runs serially
in-process, which is also the fallback wherever ``multiprocessing`` is
unavailable.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from ..errors import CongestError
from ..obs.registry import registry as _registry

__all__ = ["Shard", "ShardResult", "shard_seed", "run_sweep", "merge_metrics"]


def shard_seed(base_seed: int, index: int) -> int:
    """Deterministic 32-bit seed for shard ``index`` of a sweep.

    Derived by hashing (not by ``base_seed + index``) so that neighboring
    shards get statistically unrelated streams and nested sweeps with
    shifted base seeds cannot collide shard-for-shard.
    """
    digest = hashlib.sha256(f"repro-shard:{base_seed}:{index}".encode()).digest()
    return int.from_bytes(digest[:4], "big")


@dataclass(frozen=True)
class Shard:
    """One grid point of a sweep: its index, derived seed, and params."""

    index: int
    seed: int
    params: Dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class ShardResult:
    """A shard's outcome: the worker's return value or its error repr."""

    shard: Shard
    value: Any = None
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.error is None


def _call_worker(args):
    worker, shard = args
    params = dict(shard.params)
    params.setdefault("seed", shard.seed)
    params.setdefault("shard", shard.index)
    try:
        return ShardResult(shard=shard, value=worker(params))
    except Exception as exc:  # surfaced to the caller, never swallowed
        return ShardResult(
            shard=shard,
            error=f"shard {shard.index}: {type(exc).__name__}: {exc}",
        )


def run_sweep(
    worker: Callable[[Dict[str, Any]], Any],
    grid: Sequence[Dict[str, Any]],
    *,
    processes: int = 0,
    seed: int = 0,
    strict: bool = True,
) -> List[ShardResult]:
    """Run ``worker`` over every point of ``grid``; results in grid order.

    ``processes=0`` (default) runs serially in-process; ``processes=N``
    fans shards across N ``multiprocessing`` workers.  Each shard's params
    are augmented with deterministic ``seed`` (via :func:`shard_seed`,
    unless the point already pins one) and its ``shard`` index, so a
    sharded sweep is replayable point-by-point.

    With ``strict`` (default) a failing shard raises :class:`CongestError`
    naming the shard; with ``strict=False`` failures are returned as
    :class:`ShardResult` values with ``ok=False``.
    """
    shards = [
        Shard(index=i, seed=shard_seed(seed, i), params=dict(point))
        for i, point in enumerate(grid)
    ]
    reg = _registry()
    reg.counter("repro_sweeps_total", "Parameter sweeps launched.").inc()
    reg.counter("repro_sweep_shards_total",
                "Shards executed across all sweeps.").inc(len(shards))
    jobs = [(worker, shard) for shard in shards]
    if processes and len(shards) > 1:
        import multiprocessing

        with multiprocessing.Pool(processes=processes) as pool:
            results = pool.map(_call_worker, jobs)
    else:
        results = [_call_worker(job) for job in jobs]
    if strict:
        for result in results:
            if not result.ok:
                raise CongestError(
                    f"sweep shard {result.shard.index} "
                    f"(params {result.shard.params!r}) failed: {result.error}"
                )
    return results


def merge_metrics(results: Sequence[ShardResult]) -> Dict[str, int]:
    """Sum the additive metrics fields across shard results.

    Looks for a ``metrics`` dict in each shard value (as produced by
    workers that report ``rounds`` / ``total_messages`` / ``total_bits`` /
    ``max_message_bits`` figures) and merges them: counters add,
    ``max_message_bits`` takes the maximum.  Shards without a metrics
    dict are skipped.
    """
    merged: Dict[str, int] = {}
    for result in results:
        if not result.ok or not isinstance(result.value, dict):
            continue
        metrics = result.value.get("metrics")
        if not isinstance(metrics, dict):
            continue
        for key, value in metrics.items():
            if not isinstance(value, (int, float)):
                continue
            if key == "max_message_bits":
                merged[key] = max(merged.get(key, 0), value)
            else:
                merged[key] = merged.get(key, 0) + value
    return merged
