"""Reusable CONGEST sub-protocols (generator style, composed via yield from).

The key primitive is :func:`leader_election` — the paper's Algorithm 2 line
1 subroutine: min-id flooding restricted to a set U of participating nodes,
running for a fixed number of rounds so all nodes stay in lockstep, with
the paper's early-abort behavior obtained by passing a 2^d round bound.
"""

from __future__ import annotations

from typing import Dict, Generator, Iterable, List, Optional, Tuple

from ..errors import FaultToleranceExceeded, ProtocolError
from ..graph import Vertex
from .messages import Payload
from .runtime import Inbox, NodeContext


def ordered_inbox(inbox: Inbox) -> List[Tuple[Vertex, Payload]]:
    """The inbox as (sender, payload) pairs in a canonical sender order.

    The CONGEST model gives inboxes no ordering guarantee (and the
    simulator's ``inbox_order="shuffle"`` mode actively adversarializes
    it), so any protocol whose result could depend on iteration order must
    consume its inbox through this helper — the lint rule RL002 flags
    order-sensitive raw iteration.
    """
    return sorted(inbox.items(), key=lambda kv: repr(kv[0]))


def idle(ctx: NodeContext, rounds: int) -> Generator[None, Inbox, None]:
    """Stay silent for ``rounds`` rounds (keeps phases aligned)."""
    for _ in range(rounds):
        yield


def leader_election(
    ctx: NodeContext, participating: bool, rounds: int
) -> Generator[None, Inbox, Optional[Vertex]]:
    """Min-id flooding among participating nodes for exactly ``rounds`` rounds.

    Returns the minimum id seen, i.e. the leader of the participant's
    component of G[U] (provided ``rounds`` is at least that component's
    diameter); ``None`` for non-participants.  Only participants emit
    ``("lead", id)`` messages, so floods cannot leak across components of
    G[U] even though the physical network is connected.
    """
    best: Optional[Vertex] = ctx.node if participating else None
    with ctx.phase("leader-election"):
        for _ in range(rounds):
            if participating:
                ctx.send_all(("lead", best))
            inbox = yield
            if participating:
                for payload in inbox.values():
                    if isinstance(payload, tuple) and payload and payload[0] == "lead":
                        candidate = payload[1]
                        if candidate is not None and candidate < best:
                            best = candidate
    return best


def flood_value(
    ctx: NodeContext, value: Optional[Payload], rounds: int
) -> Generator[None, Inbox, List[Payload]]:
    """Flood ``value`` (if any) network-wide for ``rounds`` rounds.

    Returns every distinct flooded value seen.  Values must be small
    (budget-sized); with rounds >= diameter every node sees every value.
    """
    known: Dict[str, Payload] = {}
    if value is not None:
        known[repr(value)] = value
    fresh = list(known.values())
    for _ in range(rounds):
        if fresh:
            # One new value per neighbor per round (pipelined).
            ctx.send_all(("flood", fresh[0]))
            fresh = fresh[1:]
        inbox = yield
        # Canonical sender order: the relay queue (and hence every later
        # message and the return value) must not depend on inbox order.
        for _, payload in ordered_inbox(inbox):
            if isinstance(payload, tuple) and payload and payload[0] == "flood":
                key = repr(payload[1])
                if key not in known:
                    known[key] = payload[1]
                    fresh.append(payload[1])
    return list(known.values())


def broadcast_from_root(
    ctx: NodeContext,
    is_root: bool,
    value: Optional[Payload],
    rounds: int,
) -> Generator[None, Inbox, Optional[Payload]]:
    """Flood a single value from one root for ``rounds`` rounds; everyone
    returns the value (or None if it did not arrive in time)."""
    current: Optional[Payload] = value if is_root else None
    sent = False
    for _ in range(rounds):
        if current is not None and not sent:
            ctx.send_all(("bcast", current))
            sent = True
        inbox = yield
        if current is None:
            # First match in canonical sender order: with a single root all
            # copies agree, but a misused double-root broadcast must still
            # resolve identically under any delivery order.
            for _, payload in ordered_inbox(inbox):
                if isinstance(payload, tuple) and payload and payload[0] == "bcast":
                    current = payload[1]
                    break
    return current


def exchange_with_neighbors(
    ctx: NodeContext, payload: Payload
) -> Generator[None, Inbox, Inbox]:
    """One round: send ``payload`` to every neighbor, return the inbox."""
    ctx.send_all(payload)
    inbox = yield
    return inbox


def send_items_to(
    ctx: NodeContext,
    target: Vertex,
    items: List[Payload],
    tag: str,
) -> Generator[None, Inbox, List[Inbox]]:
    """Stream ``items`` to ``target`` one per round, then an end marker.

    This is how protocols pay the Θ(k / log n) price of large logical
    payloads (e.g. the OPT tables of Lemma 4.6): each item must fit the
    budget on its own.  Returns the inboxes observed while streaming, so
    callers can keep processing concurrent traffic.
    """
    observed: List[Inbox] = []
    for item in items:
        ctx.send(target, (tag, item))
        observed.append((yield))
    ctx.send(target, (tag + "/end", None))
    observed.append((yield))
    return observed


def reliable_send(
    ctx: NodeContext,
    target: Vertex,
    payload: Payload,
    tag: str = "rel",
    max_retries: Optional[int] = None,
    backoff: int = 2,
) -> Generator[None, Inbox, int]:
    """Send ``payload`` to ``target``, retransmitting until acknowledged.

    The point-to-point reliability primitive for lossy substrates (see
    :mod:`repro.faults`): transmit ``(tag, payload)``, wait an
    exponentially growing window of rounds for ``(tag + "/ack",)`` from
    ``target`` (the partner runs :func:`reliable_recv`), and retransmit on
    timeout.  The first window is 2 rounds — the minimum round trip — and
    each retry multiplies it by ``backoff``.  Returns the number of
    retransmissions (0 on a clean first delivery), each also counted in
    ``metrics.retransmissions`` via ``ctx.record_retry``.

    ``max_retries=None`` waits forever: under persistent loss (or a crashed
    partner) the node — and with it the whole synchronous network — stalls
    until ``max_rounds``.  Lint rule RL005 flags such unbounded calls;
    pass a finite bound to fail closed with
    :class:`~repro.errors.FaultToleranceExceeded` instead.
    """
    if backoff < 1:
        raise ProtocolError("reliable_send backoff must be >= 1")
    ack = tag + "/ack"
    retries = 0
    window = 2
    while True:
        ctx.send(target, (tag, payload))
        if retries:
            ctx.record_retry()
        for _ in range(window):
            inbox = yield
            got = inbox.get(target)
            if isinstance(got, tuple) and got and got[0] == ack:
                return retries
        if max_retries is not None and retries >= max_retries:
            raise FaultToleranceExceeded(
                f"node {ctx.node!r}: no ack from {target!r} after "
                f"{retries} retransmissions (tag {tag!r})",
                node=ctx.node,
                round=ctx.round_number,
            )
        retries += 1
        window *= backoff


def reliable_recv(
    ctx: NodeContext,
    source: Vertex,
    tag: str = "rel",
    max_rounds: Optional[int] = None,
    linger: int = 0,
) -> Generator[None, Inbox, Payload]:
    """Receive one :func:`reliable_send` payload from ``source``, acking it.

    Waits for ``(tag, payload)``, answers ``(tag + "/ack",)``, and returns
    the payload.  ``linger`` extra rounds re-ack late retransmitted copies
    (an ack can itself be lost); ``max_rounds`` bounds the wait, failing
    closed with :class:`~repro.errors.FaultToleranceExceeded` when the
    sender never gets through.
    """
    ack = tag + "/ack"
    waited = 0
    while True:
        inbox = yield
        waited += 1
        got = inbox.get(source)
        if isinstance(got, tuple) and len(got) == 2 and got[0] == tag:
            break
        if max_rounds is not None and waited >= max_rounds:
            raise FaultToleranceExceeded(
                f"node {ctx.node!r}: nothing from {source!r} within "
                f"{max_rounds} rounds (tag {tag!r})",
                node=ctx.node,
                round=ctx.round_number,
            )
    payload = got[1]
    ctx.send(source, (ack,))
    for _ in range(linger):
        inbox = yield
        late = inbox.get(source)
        if isinstance(late, tuple) and len(late) == 2 and late[0] == tag:
            ctx.send(source, (ack,))
    return payload


class ItemCollector:
    """Accumulates streamed items (see :func:`send_items_to`) per sender."""

    def __init__(self, tag: str, senders: Iterable[Vertex]):
        self._tag = tag
        self._items: Dict[Vertex, List[Payload]] = {v: [] for v in senders}
        self._done: Dict[Vertex, bool] = {v: False for v in self._items}

    def absorb(self, inbox: Inbox) -> None:
        for sender, payload in inbox.items():
            if sender not in self._items:
                continue
            if not isinstance(payload, tuple) or not payload:
                continue
            if payload[0] == self._tag:
                if self._done[sender]:
                    raise ProtocolError(f"item from {sender!r} after end marker")
                self._items[sender].append(payload[1])
            elif payload[0] == self._tag + "/end":
                self._done[sender] = True

    @property
    def complete(self) -> bool:
        return all(self._done.values())

    def items_from(self, sender: Vertex) -> List[Payload]:
        return list(self._items[sender])
