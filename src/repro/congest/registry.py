"""Registry of node programs, for discovery by tooling.

Decorating a node program (or the inner ``program`` closure returned by a
program *factory*) with :func:`node_program` records it under its qualified
name.  The runtime does not require registration — any generator function
works as a :data:`~repro.congest.runtime.NodeProgram` — but registered
programs are discoverable by ``repro lint`` (:func:`repro.lint.check_registered`)
and by anything else that wants to enumerate the protocols a process knows
about.

Registration is idempotent per qualified name: re-invoking a factory
re-registers the same qualname rather than growing the table, so factories
may decorate their closures freely.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, Optional, Tuple

_REGISTRY: Dict[str, Callable] = {}


def node_program(
    func: Optional[Callable] = None,
    *,
    name: Optional[str] = None,
    bits: str = "O(log n)",
    rounds: Optional[str] = None,
) -> Callable:
    """Register ``func`` as a CONGEST node program (usable as a decorator).

    The program is stored under ``name`` or its ``module:qualname``.  The
    function itself is returned unchanged, with a ``__repro_node_program__``
    marker attribute so tooling can recognize it without importing this
    module.

    ``bits`` declares the program's per-message CONGEST budget family —
    one of ``"O(1)"``, ``"O(log n)"`` (the default, the paper's regime),
    or ``"O(d log n)"``.  ``rounds``, when given, is an arithmetic
    expression over ``n`` and ``d`` (e.g. ``"20 + 6*2**d + 2*n"``)
    bounding the number of communication rounds.  Both declarations are
    certified statically by ``repro lint`` (RL006) and checked against
    observed run metrics by ``repro lint --verify-runs`` (RL009).
    """

    def register(target: Callable) -> Callable:
        key = name or f"{target.__module__}:{target.__qualname__}"
        target.__repro_node_program__ = True
        target.__repro_bits__ = bits
        target.__repro_rounds__ = rounds
        _REGISTRY[key] = target
        return target

    if func is not None:
        return register(func)
    return register


def registered_programs() -> Dict[str, Callable]:
    """A snapshot of the registry: qualified name -> program function."""
    return dict(_REGISTRY)


def iter_registered() -> Iterator[Tuple[str, Callable]]:
    """Iterate (name, program) pairs in deterministic (sorted) order."""
    for key in sorted(_REGISTRY):
        yield key, _REGISTRY[key]
