"""Registry of node programs, for discovery by tooling.

Decorating a node program (or the inner ``program`` closure returned by a
program *factory*) with :func:`node_program` records it under its qualified
name.  The runtime does not require registration — any generator function
works as a :data:`~repro.congest.runtime.NodeProgram` — but registered
programs are discoverable by ``repro lint`` (:func:`repro.lint.check_registered`)
and by anything else that wants to enumerate the protocols a process knows
about.

Registration is idempotent per qualified name: re-invoking a factory
re-registers the same qualname rather than growing the table, so factories
may decorate their closures freely.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, Optional, Tuple

_REGISTRY: Dict[str, Callable] = {}


def node_program(
    func: Optional[Callable] = None, *, name: Optional[str] = None
) -> Callable:
    """Register ``func`` as a CONGEST node program (usable as a decorator).

    The program is stored under ``name`` or its ``module:qualname``.  The
    function itself is returned unchanged, with a ``__repro_node_program__``
    marker attribute so tooling can recognize it without importing this
    module.
    """

    def register(target: Callable) -> Callable:
        key = name or f"{target.__module__}:{target.__qualname__}"
        target.__repro_node_program__ = True
        _REGISTRY[key] = target
        return target

    if func is not None:
        return register(func)
    return register


def registered_programs() -> Dict[str, Callable]:
    """A snapshot of the registry: qualified name -> program function."""
    return dict(_REGISTRY)


def iter_registered() -> Iterator[Tuple[str, Callable]]:
    """Iterate (name, program) pairs in deterministic (sorted) order."""
    for key in sorted(_REGISTRY):
        yield key, _REGISTRY[key]
