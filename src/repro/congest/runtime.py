"""Round-synchronous CONGEST simulator.

The model (paper Section 1): a network is a connected simple graph; each
node knows its own O(log n)-bit identifier; computation proceeds in
synchronous rounds; in every round each node may send one message of at
most B = Θ(log n) bits to each neighbor, receives its neighbors' messages,
and computes.

Node programs are written as *generators*: ``run(ctx)`` sends messages via
``ctx.send`` and executes ``inbox = yield`` to end the round; messages sent
in round r are delivered at the start of round r+1.  Returning from the
generator halts the node with its return value as output.  The generator
style makes sub-protocols composable with ``yield from`` (see
:mod:`repro.congest.primitives`).

The simulator *enforces* the model: at most one message per neighbor per
round, every payload serialized and measured, and any message above the bit
budget raises :class:`MessageTooLargeError` — protocols must fragment big
payloads across rounds themselves, paying the Θ(k / log n) cost the paper
describes.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generator, List, Optional, Tuple

from ..errors import (
    CongestError,
    FaultToleranceExceeded,
    MessageTooLargeError,
    ProtocolError,
    UnknownEngineError,
)
from ..graph import Graph, Vertex
from ..obs import NULL_SPAN, Tracer, current_tracer
from ..obs.registry import note_simulation
from .messages import Payload, payload_bits
from .metrics import RoundMetrics

Inbox = Dict[Vertex, Payload]
NodeProgram = Callable[["NodeContext"], Generator[None, Inbox, Any]]


def default_budget(n: int, multiplier: int = 4) -> int:
    """The per-edge per-round budget B = max(48, multiplier * ceil(log2 n)).

    The floor of 48 bits keeps tiny test networks usable; asymptotically
    the budget is Θ(log n), the CONGEST definition.
    """
    if n <= 1:
        return 48
    return max(48, multiplier * math.ceil(math.log2(n)))


class NodeContext:
    """What a node knows and can do.

    Knowledge: its id, its neighbors' ids (the usual KT1 assumption — one
    round of id exchange would provide them anyway), the network size n,
    and its local input dictionary (labels, weights, parameters).
    """

    def __init__(
        self,
        node: Vertex,
        neighbors: List[Vertex],
        n: int,
        input_data: Dict[str, Any],
        simulation: "Simulation",
    ):
        self.node = node
        self.neighbors = list(neighbors)
        self.n = n
        self.input = input_data
        self._simulation = simulation

    @property
    def degree(self) -> int:
        return len(self.neighbors)

    @property
    def round_number(self) -> int:
        """The current round (1-based once the first round starts)."""
        return self._simulation.metrics.rounds

    @property
    def budget(self) -> int:
        """This round's effective per-edge budget.

        Equal to the simulation-wide budget unless a fault plan with
        ``budget_jitter`` is active, in which case it is what
        :meth:`send` will actually enforce this round.
        """
        return self._simulation._round_budget

    def record_retry(self, count: int = 1) -> None:
        """Count ``count`` redundant transmissions in the run's metrics.

        Used by reliability layers (:func:`repro.faults.reliable_program`,
        :func:`repro.congest.primitives.reliable_send`) so retransmission
        overhead is visible in :class:`~repro.congest.metrics.RoundMetrics`.
        """
        self._simulation.metrics.record_retry(count)

    def phase(self, name: str):
        """Open a named per-node phase span on the simulation's tracer.

        Rounds, messages, and bits recorded while the span is open are
        attributed to the phase (hierarchically: nested spans join their
        names with ``/``).  Returns a shared no-op context manager when
        tracing is disabled, so protocols can phase unconditionally.
        """
        tracer = self._simulation.tracer
        if tracer is None:
            return NULL_SPAN
        return tracer.phase(name, node=self.node)

    def send(self, neighbor: Vertex, payload: Payload) -> None:
        """Queue a message for delivery to ``neighbor`` next round."""
        self._simulation._queue_message(self.node, neighbor, payload)

    def send_all(self, payload: Payload) -> None:
        """Broadcast the same message to every neighbor."""
        for neighbor in self.neighbors:
            self.send(neighbor, payload)


@dataclass
class SimulationResult:
    """Final outputs and metrics of a run, plus what it takes to replay it.

    ``seed``, ``inbox_order``, and ``fault_plan`` echo the knobs that (with
    the graph, program, and inputs) fully determine the execution —
    :meth:`replay_args` packages them for a reproducing ``Simulation``.
    ``crashed`` maps each node killed by fault injection to the round its
    crash fired in (empty without faults); crashed nodes never appear in
    ``outputs``.
    """

    outputs: Dict[Vertex, Any]
    metrics: RoundMetrics
    seed: Optional[int] = None
    inbox_order: str = "arrival"
    fault_plan: Optional[Any] = None
    crashed: Dict[Vertex, int] = field(default_factory=dict)
    engine: str = "naive"

    @property
    def rounds(self) -> int:
        return self.metrics.rounds

    def replay_args(self) -> Dict[str, Any]:
        """Keyword arguments reproducing this run's schedule and faults.

        Includes ``engine``: a replay must use the scheduler of the
        original run — the engines are differentially identical, but a
        replay that silently switched scheduler would not be a replay.
        """
        return {
            "seed": self.seed,
            "inbox_order": self.inbox_order,
            "faults": self.fault_plan,
            "engine": self.engine,
        }

    @property
    def undelivered(self) -> int:
        """Messages queued in the final round that no node lived to receive."""
        return self.metrics.undelivered_messages

    def unanimous(self) -> Any:
        """The common output if all nodes agree; raises otherwise.

        Outputs are compared with ``==`` (not their reprs), so e.g. equal
        dicts with different insertion orders still count as agreement.
        """
        values = list(self.outputs.values())
        if not values:
            raise ProtocolError("no outputs recorded")
        first = values[0]
        if any(value != first for value in values[1:]):
            raise ProtocolError(f"outputs disagree: {self.outputs}")
        return first


#: Accepted inbox delivery orders (see :class:`Simulation`).
INBOX_ORDERS = ("arrival", "shuffle", "sorted", "reversed")

#: Accepted round schedulers (see :class:`Simulation`).
ENGINES = ("naive", "batched", "vectorized")


class Simulation:
    """One synchronous execution of a node program on a network graph.

    ``inbox_order`` controls the iteration order of each node's inbox dict:

    * ``"arrival"`` (default) — the order senders were stepped by the
      scheduler, the historical behavior;
    * ``"shuffle"`` — a seeded adversarial permutation per inbox per round
      (``seed`` makes it reproducible).  The CONGEST model gives inboxes no
      canonical order, so a correct protocol must produce identical outputs
      under any of these; ``shuffle`` is the dynamic cross-check for the
      ``repro lint`` RL002 determinism rule;
    * ``"sorted"`` / ``"reversed"`` — deterministic extreme orders, cheap
      adversaries that need no seed.

    ``faults`` accepts a :class:`repro.faults.FaultPlan`: a seeded
    adversary that drops / duplicates / delays / truncates queued messages,
    jitters the per-round budget, and crashes (optionally restarts) nodes
    on schedule.  Every injected fault is counted in
    ``metrics.faults_injected`` and emitted as a typed trace event.  A null
    plan (all rates zero, no crashes) is byte-for-byte transparent.

    ``engine`` selects the round scheduler:

    * ``"naive"`` (default) — the historical reference loop: per-round
      ``sorted()`` scheduling, fresh inbox dicts, per-message metric
      updates;
    * ``"batched"`` — a single dispatch loop that advances all runnable
      programs through preallocated per-node inbox buffers, memoizes
      payload bit-measurement (payloads are hashable by construction),
      caches adjacency sets, and flushes message metrics once per round
      instead of once per message.  The observable execution — outputs,
      trace events, metrics, round/message/bit counts — is byte-identical
      to ``"naive"``; only the wall clock differs.  Because inbox buffers
      are reused, a node program must not retain its inbox dict across
      ``yield`` boundaries (none of the shipped protocols do; the
      ``repro lint`` rules already discourage it).
    """

    def __init__(
        self,
        graph: Graph,
        program: NodeProgram,
        inputs: Optional[Dict[Vertex, Dict[str, Any]]] = None,
        budget: Optional[int] = None,
        max_rounds: int = 10_000,
        trace: bool = False,
        trace_limit: int = 100_000,
        tracer: Optional[Tracer] = None,
        inbox_order: str = "arrival",
        seed: Optional[int] = None,
        faults: Optional[Any] = None,
        engine: str = "naive",
    ):
        if graph.num_vertices() == 0:
            raise CongestError("CONGEST needs at least one node")
        if inbox_order not in INBOX_ORDERS:
            raise CongestError(
                f"unknown inbox_order {inbox_order!r}; choose from {INBOX_ORDERS}"
            )
        if engine not in ENGINES:
            raise UnknownEngineError(engine, ENGINES)
        self._graph = graph
        self._program = program
        self._inputs = inputs or {}
        self._max_rounds = max_rounds
        n = graph.num_vertices()
        self.metrics = RoundMetrics(budget_bits=budget or default_budget(n))
        self._outgoing: Dict[Tuple[Vertex, Vertex], Payload] = {}
        self._sending_open = False
        self._inbox_order = inbox_order
        self._seed = seed
        self._rng = random.Random(0 if seed is None else seed)
        self._ran = False
        self._fault_plan = faults
        self._injector = None
        if faults is not None:
            # Lazy import: repro.faults depends on this module for types.
            from ..faults.injector import FaultInjector

            self._injector = FaultInjector(faults)
        self._round_budget = self.metrics.budget_bits
        self.crashed: Dict[Vertex, int] = {}
        self._trace_enabled = trace
        self._trace_limit = trace_limit
        self.trace: List[Tuple[int, Vertex, Vertex, Payload]] = []
        # Explicit tracer wins; otherwise pick up a process-installed one
        # (the REPRO_TRACE / ``repro trace`` path).  None = fully disabled.
        self.tracer = tracer if tracer is not None else current_tracer()
        self.engine = engine
        # "vectorized" changes only node-local automaton compute (see
        # repro.algebra.tables); at the CONGEST layer it IS the batched
        # scheduler, which is what keeps the two engines byte-identical.
        self._batched = engine in ("batched", "vectorized")
        # Batched-engine kernels: payload-size memo (payloads are hashable
        # algebraic values), cached adjacency sets, and per-round message
        # accumulators flushed into the metrics arrays once per round.
        self._bits_memo: Dict[Payload, int] = {}
        self._adjacency: Dict[Vertex, frozenset] = {}
        self._acc_msgs = 0
        self._acc_bits = 0
        self._acc_max = 0

    # -- internal -------------------------------------------------------
    def _queue_message(self, sender: Vertex, receiver: Vertex, payload: Payload) -> None:
        if not self._sending_open:
            raise CongestError("send outside of a round")
        if self._batched:
            self._queue_message_batched(sender, receiver, payload)
            return
        if not self._graph.has_edge(sender, receiver):
            raise CongestError(f"{sender!r} is not adjacent to {receiver!r}")
        key = (sender, receiver)
        if key in self._outgoing:
            raise CongestError(
                f"node {sender!r} already sent to {receiver!r} this round"
            )
        bits = payload_bits(payload)
        if bits > self._round_budget:
            raise MessageTooLargeError(bits, self._round_budget)
        self._outgoing[key] = payload
        self.metrics.record_message(bits)
        if self.tracer is not None:
            self.tracer.on_send(sender, receiver, bits, payload)
        if self._trace_enabled:
            if len(self.trace) < self._trace_limit:
                self.trace.append(
                    (self.metrics.rounds, sender, receiver, payload)
                )
            else:
                self.metrics.trace_truncated = True

    def _queue_message_batched(
        self, sender: Vertex, receiver: Vertex, payload: Payload
    ) -> None:
        """Fast-path send: memoized sizes, cached adjacency, batched metrics.

        Raises exactly the same errors with exactly the same messages as
        the naive path; the only difference is where the cycles go.
        """
        if receiver not in self._adjacency[sender]:
            raise CongestError(f"{sender!r} is not adjacent to {receiver!r}")
        key = (sender, receiver)
        if key in self._outgoing:
            raise CongestError(
                f"node {sender!r} already sent to {receiver!r} this round"
            )
        memo = self._bits_memo
        try:
            bits = memo.get(payload)
        except TypeError:
            # Unhashable values are never valid payloads; let the measuring
            # path raise the canonical PayloadTypeError.
            bits = None
            memo = None
        if bits is None:
            bits = payload_bits(payload)
            if memo is not None:
                memo[payload] = bits
        if bits > self._round_budget:
            raise MessageTooLargeError(bits, self._round_budget)
        self._outgoing[key] = payload
        self._acc_msgs += 1
        self._acc_bits += bits
        if bits > self._acc_max:
            self._acc_max = bits
        if self.tracer is not None:
            self.tracer.on_send(sender, receiver, bits, payload)
        if self._trace_enabled:
            if len(self.trace) < self._trace_limit:
                self.trace.append(
                    (self.metrics.rounds, sender, receiver, payload)
                )
            else:
                self.metrics.trace_truncated = True

    def _flush_round_metrics(self) -> None:
        """Fold the batched engine's per-round accumulators into metrics."""
        if self._acc_msgs:
            self.metrics.record_message_batch(
                self._acc_msgs, self._acc_bits, self._acc_max
            )
            self._acc_msgs = 0
            self._acc_bits = 0
            self._acc_max = 0

    def _arrange_inbox(self, inbox: Inbox) -> Inbox:
        """Apply the configured adversarial inbox iteration order."""
        if self._inbox_order == "arrival":
            return inbox
        items = sorted(inbox.items(), key=lambda kv: repr(kv[0]))
        if self._inbox_order == "reversed":
            items.reverse()
        elif self._inbox_order == "shuffle":
            self._rng.shuffle(items)
        return dict(items)

    # -- fault helpers --------------------------------------------------
    def _apply_crashes(
        self,
        round: int,
        generators: Dict[Vertex, Generator[None, Inbox, Any]],
    ) -> None:
        """Kill nodes whose crash fires at the start of ``round``."""
        injector = self._injector
        for node in injector.crashes_at(round):
            if node in self.crashed:
                continue
            gen = generators.pop(node, None)
            if gen is not None:
                gen.close()
            self.crashed[node] = round
            injector.note_crash(round, node, self.metrics, self.tracer)

    def _apply_restarts(self, round: int) -> List[Vertex]:
        """Reboot crashed nodes scheduled for ``round``; returns them."""
        injector = self._injector
        restarted = []
        for node in injector.restarts_at(round):
            if node not in self.crashed:
                continue
            del self.crashed[node]
            injector.note_restart(round, node, self.metrics, self.tracer)
            restarted.append(node)
        return restarted

    def _has_pending_restart(self) -> bool:
        if self._injector is None:
            return False
        return self._injector.has_pending_restart(self.metrics.rounds)

    # -- execution ------------------------------------------------------
    def run(self) -> SimulationResult:
        if self._ran:
            raise CongestError(
                "a Simulation can only be run once; construct a new one "
                "(metrics and node state would otherwise double-count)"
            )
        self._ran = True
        if self._batched:
            return self._run_batched()
        return self._run_naive()

    def _run_naive(self) -> SimulationResult:
        n = self._graph.num_vertices()
        contexts = {
            v: NodeContext(
                node=v,
                neighbors=self._graph.neighbors(v),
                n=n,
                input_data=dict(self._inputs.get(v, {})),
                simulation=self,
            )
            for v in self._graph.vertices()
        }
        generators: Dict[Vertex, Generator[None, Inbox, Any]] = {}
        outputs: Dict[Vertex, Any] = {}

        tracer = self.tracer
        injector = self._injector

        # Round 1: local computation + first sends.
        self.metrics.record_round()
        if tracer is not None:
            tracer.on_round_start()
        if injector is not None:
            for node in injector.crashes_at(1):
                self.crashed[node] = 1
                injector.note_crash(1, node, self.metrics, tracer)
            self._round_budget = injector.budget_for(
                1, self.metrics.budget_bits, self.metrics, tracer
            )
        self._sending_open = True
        for v in self._graph.vertices():
            if v in self.crashed:
                continue
            gen = self._program(contexts[v])
            try:
                next(gen)
                generators[v] = gen
            except StopIteration as stop:
                outputs[v] = stop.value
                if tracer is not None:
                    tracer.on_halt(v, stop.value)
        self._sending_open = False

        while generators or self._has_pending_restart():
            if self.metrics.rounds >= self._max_rounds:
                if injector is not None and self.metrics.total_faults > 0:
                    raise FaultToleranceExceeded(
                        f"exceeded max_rounds={self._max_rounds} under fault "
                        "injection; the protocol did not terminate within "
                        "its tolerance envelope",
                        round=self.metrics.rounds,
                    )
                raise ProtocolError(
                    f"exceeded max_rounds={self._max_rounds}; "
                    "protocol is not terminating"
                )
            delivery = self._outgoing
            self._outgoing = {}
            self.metrics.record_round()
            rnd = self.metrics.rounds
            if tracer is not None:
                tracer.on_round_start()

            restarted: List[Vertex] = []
            if injector is not None:
                self._apply_crashes(rnd, generators)
                restarted.extend(self._apply_restarts(rnd))
                self._round_budget = injector.budget_for(
                    rnd, self.metrics.budget_bits, self.metrics, tracer
                )
                items: List[Tuple[Tuple[Vertex, Vertex], Payload]] = []
                for (sender, receiver), payload in delivery.items():
                    if receiver in self.crashed:
                        injector.drop_for_crashed(
                            rnd, sender, receiver, payload, self.metrics,
                            tracer,
                        )
                        continue
                    items.append(((sender, receiver), payload))
                survivors = injector.process(rnd, items, self.metrics, tracer)
            else:
                survivors = [
                    (sender, receiver, payload)
                    for (sender, receiver), payload in delivery.items()
                ]
            by_receiver: Dict[Vertex, Inbox] = {}
            for sender, receiver, payload in survivors:
                by_receiver.setdefault(receiver, {})[sender] = payload
            if tracer is not None:
                for sender, receiver, payload in survivors:
                    tracer.on_deliver(sender, receiver, payload_bits(payload))

            self._sending_open = True
            for v in restarted:
                gen = self._program(contexts[v])
                try:
                    next(gen)
                    generators[v] = gen
                except StopIteration as stop:
                    outputs[v] = stop.value
                    if tracer is not None:
                        tracer.on_halt(v, stop.value)
            for v in sorted(generators):
                if v in restarted:
                    continue  # a rebooted program starts fresh this round
                inbox: Inbox = self._arrange_inbox(by_receiver.get(v, {}))
                gen = generators[v]
                try:
                    gen.send(inbox)
                except StopIteration as stop:
                    outputs[v] = stop.value
                    del generators[v]
                    if tracer is not None:
                        tracer.on_halt(v, stop.value)
            self._sending_open = False
            if not self._outgoing and not generators \
                    and not self._has_pending_restart():
                break
        return self._finish(outputs)

    def _finish(self, outputs: Dict[Vertex, Any]) -> SimulationResult:
        # Messages queued in the sweep where the last generators halted
        # have no living receiver to ever observe them.  Count them so
        # harnesses (and tests) can detect silently dropped final sends —
        # the dynamic face of the RL003 lint rule.  In-flight delayed or
        # duplicated fault copies that never matured count too.
        self.metrics.undelivered_messages = len(self._outgoing)
        if self._injector is not None:
            self.metrics.undelivered_messages += self._injector.pending_copies
        if self.tracer is not None:
            self.tracer.finish()
        note_simulation(self.metrics, engine=self.engine)
        return SimulationResult(
            outputs=outputs,
            metrics=self.metrics,
            seed=self._seed,
            inbox_order=self._inbox_order,
            fault_plan=self._fault_plan,
            crashed=dict(self.crashed),
            engine=self.engine,
        )

    def _run_batched(self) -> SimulationResult:
        """The batched round scheduler (``engine="batched"``).

        One dispatch loop advances every runnable program per round.  The
        hot-path differences from :meth:`_run_naive` — and nothing else:

        * the scheduling order is a cached sorted snapshot, re-sorted only
          when membership changes (halt / crash / restart) instead of every
          round;
        * inboxes are preallocated per-node buffers, cleared and refilled
          in place instead of allocated per round;
        * payload sizes come from a memo table (payloads are hashable
          values measured by a pure function);
        * adjacency checks hit cached neighbor sets;
        * message metrics accumulate in plain counters and are flushed
          into the per-round arrays once per round.

        Every observable artifact (outputs, metrics, trace, tracer events,
        errors) is byte-identical to the naive engine; the differential
        test in ``tests/test_engine_batched.py`` pins this.
        """
        graph = self._graph
        n = graph.num_vertices()
        self._adjacency = {
            v: frozenset(graph.neighbors(v)) for v in graph.vertices()
        }
        contexts = {
            v: NodeContext(
                node=v,
                neighbors=graph.neighbors(v),
                n=n,
                input_data=dict(self._inputs.get(v, {})),
                simulation=self,
            )
            for v in graph.vertices()
        }
        generators: Dict[Vertex, Generator[None, Inbox, Any]] = {}
        outputs: Dict[Vertex, Any] = {}

        tracer = self.tracer
        injector = self._injector
        metrics = self.metrics
        bits_memo = self._bits_memo
        arrival = self._inbox_order == "arrival"

        # Preallocated inbox buffers, reused round over round.  ``touched``
        # remembers which buffers hold data so only those are cleared.
        inboxes: Dict[Vertex, Inbox] = {v: {} for v in graph.vertices()}
        touched: List[Vertex] = []

        # Round 1: local computation + first sends (same as naive).
        metrics.record_round()
        if tracer is not None:
            tracer.on_round_start()
        if injector is not None:
            for node in injector.crashes_at(1):
                self.crashed[node] = 1
                injector.note_crash(1, node, metrics, tracer)
            self._round_budget = injector.budget_for(
                1, metrics.budget_bits, metrics, tracer
            )
        self._sending_open = True
        for v in graph.vertices():
            if v in self.crashed:
                continue
            gen = self._program(contexts[v])
            try:
                next(gen)
                generators[v] = gen
            except StopIteration as stop:
                outputs[v] = stop.value
                if tracer is not None:
                    tracer.on_halt(v, stop.value)
        self._sending_open = False
        self._flush_round_metrics()

        order: List[Vertex] = sorted(generators)
        order_dirty = False

        while generators or self._has_pending_restart():
            if metrics.rounds >= self._max_rounds:
                if injector is not None and metrics.total_faults > 0:
                    raise FaultToleranceExceeded(
                        f"exceeded max_rounds={self._max_rounds} under fault "
                        "injection; the protocol did not terminate within "
                        "its tolerance envelope",
                        round=metrics.rounds,
                    )
                raise ProtocolError(
                    f"exceeded max_rounds={self._max_rounds}; "
                    "protocol is not terminating"
                )
            delivery = self._outgoing
            self._outgoing = {}
            metrics.record_round()
            rnd = metrics.rounds
            if tracer is not None:
                tracer.on_round_start()

            restarted: List[Vertex] = []
            if injector is not None:
                before = len(generators)
                self._apply_crashes(rnd, generators)
                restarted.extend(self._apply_restarts(rnd))
                if restarted or len(generators) != before:
                    order_dirty = True
                self._round_budget = injector.budget_for(
                    rnd, metrics.budget_bits, metrics, tracer
                )
                items: List[Tuple[Tuple[Vertex, Vertex], Payload]] = []
                for (sender, receiver), payload in delivery.items():
                    if receiver in self.crashed:
                        injector.drop_for_crashed(
                            rnd, sender, receiver, payload, metrics, tracer,
                        )
                        continue
                    items.append(((sender, receiver), payload))
                survivors = injector.process(rnd, items, metrics, tracer)
            else:
                survivors = [
                    (sender, receiver, payload)
                    for (sender, receiver), payload in delivery.items()
                ]

            for v in touched:
                inboxes[v].clear()
            touched = []
            for sender, receiver, payload in survivors:
                box = inboxes[receiver]
                if not box:
                    touched.append(receiver)
                box[sender] = payload
            if tracer is not None:
                for sender, receiver, payload in survivors:
                    try:
                        bits = bits_memo[payload]
                    except KeyError:
                        bits = payload_bits(payload)
                        bits_memo[payload] = bits
                    except TypeError:
                        bits = payload_bits(payload)
                    tracer.on_deliver(sender, receiver, bits)

            self._sending_open = True
            for v in restarted:
                gen = self._program(contexts[v])
                try:
                    next(gen)
                    generators[v] = gen
                except StopIteration as stop:
                    outputs[v] = stop.value
                    if tracer is not None:
                        tracer.on_halt(v, stop.value)
            if order_dirty:
                order = sorted(generators)
                order_dirty = False
            for v in order:
                if v in restarted:
                    continue  # a rebooted program starts fresh this round
                inbox: Inbox = (
                    inboxes[v] if arrival else self._arrange_inbox(inboxes[v])
                )
                gen = generators[v]
                try:
                    gen.send(inbox)
                except StopIteration as stop:
                    outputs[v] = stop.value
                    del generators[v]
                    order_dirty = True
                    if tracer is not None:
                        tracer.on_halt(v, stop.value)
            self._sending_open = False
            self._flush_round_metrics()
            if not self._outgoing and not generators \
                    and not self._has_pending_restart():
                break
        return self._finish(outputs)


def run_protocol(
    graph: Graph,
    program: NodeProgram,
    inputs: Optional[Dict[Vertex, Dict[str, Any]]] = None,
    budget: Optional[int] = None,
    max_rounds: int = 10_000,
    tracer: Optional[Tracer] = None,
    inbox_order: str = "arrival",
    seed: Optional[int] = None,
    faults: Optional[Any] = None,
    engine: str = "naive",
) -> SimulationResult:
    """Convenience wrapper: build a Simulation and run it."""
    return Simulation(
        graph, program, inputs=inputs, budget=budget, max_rounds=max_rounds,
        tracer=tracer, inbox_order=inbox_order, seed=seed, faults=faults,
        engine=engine,
    ).run()
