"""Round-synchronous CONGEST simulator.

The model (paper Section 1): a network is a connected simple graph; each
node knows its own O(log n)-bit identifier; computation proceeds in
synchronous rounds; in every round each node may send one message of at
most B = Θ(log n) bits to each neighbor, receives its neighbors' messages,
and computes.

Node programs are written as *generators*: ``run(ctx)`` sends messages via
``ctx.send`` and executes ``inbox = yield`` to end the round; messages sent
in round r are delivered at the start of round r+1.  Returning from the
generator halts the node with its return value as output.  The generator
style makes sub-protocols composable with ``yield from`` (see
:mod:`repro.congest.primitives`).

The simulator *enforces* the model: at most one message per neighbor per
round, every payload serialized and measured, and any message above the bit
budget raises :class:`MessageTooLargeError` — protocols must fragment big
payloads across rounds themselves, paying the Θ(k / log n) cost the paper
describes.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generator, List, Optional, Tuple

from ..errors import (
    CongestError,
    FaultToleranceExceeded,
    MessageTooLargeError,
    ProtocolError,
)
from ..graph import Graph, Vertex
from ..obs import NULL_SPAN, Tracer, current_tracer
from .messages import Payload, payload_bits
from .metrics import RoundMetrics

Inbox = Dict[Vertex, Payload]
NodeProgram = Callable[["NodeContext"], Generator[None, Inbox, Any]]


def default_budget(n: int, multiplier: int = 4) -> int:
    """The per-edge per-round budget B = max(48, multiplier * ceil(log2 n)).

    The floor of 48 bits keeps tiny test networks usable; asymptotically
    the budget is Θ(log n), the CONGEST definition.
    """
    if n <= 1:
        return 48
    return max(48, multiplier * math.ceil(math.log2(n)))


class NodeContext:
    """What a node knows and can do.

    Knowledge: its id, its neighbors' ids (the usual KT1 assumption — one
    round of id exchange would provide them anyway), the network size n,
    and its local input dictionary (labels, weights, parameters).
    """

    def __init__(
        self,
        node: Vertex,
        neighbors: List[Vertex],
        n: int,
        input_data: Dict[str, Any],
        simulation: "Simulation",
    ):
        self.node = node
        self.neighbors = list(neighbors)
        self.n = n
        self.input = input_data
        self._simulation = simulation

    @property
    def degree(self) -> int:
        return len(self.neighbors)

    @property
    def round_number(self) -> int:
        """The current round (1-based once the first round starts)."""
        return self._simulation.metrics.rounds

    @property
    def budget(self) -> int:
        """This round's effective per-edge budget.

        Equal to the simulation-wide budget unless a fault plan with
        ``budget_jitter`` is active, in which case it is what
        :meth:`send` will actually enforce this round.
        """
        return self._simulation._round_budget

    def record_retry(self, count: int = 1) -> None:
        """Count ``count`` redundant transmissions in the run's metrics.

        Used by reliability layers (:func:`repro.faults.reliable_program`,
        :func:`repro.congest.primitives.reliable_send`) so retransmission
        overhead is visible in :class:`~repro.congest.metrics.RoundMetrics`.
        """
        self._simulation.metrics.record_retry(count)

    def phase(self, name: str):
        """Open a named per-node phase span on the simulation's tracer.

        Rounds, messages, and bits recorded while the span is open are
        attributed to the phase (hierarchically: nested spans join their
        names with ``/``).  Returns a shared no-op context manager when
        tracing is disabled, so protocols can phase unconditionally.
        """
        tracer = self._simulation.tracer
        if tracer is None:
            return NULL_SPAN
        return tracer.phase(name, node=self.node)

    def send(self, neighbor: Vertex, payload: Payload) -> None:
        """Queue a message for delivery to ``neighbor`` next round."""
        self._simulation._queue_message(self.node, neighbor, payload)

    def send_all(self, payload: Payload) -> None:
        """Broadcast the same message to every neighbor."""
        for neighbor in self.neighbors:
            self.send(neighbor, payload)


@dataclass
class SimulationResult:
    """Final outputs and metrics of a run, plus what it takes to replay it.

    ``seed``, ``inbox_order``, and ``fault_plan`` echo the knobs that (with
    the graph, program, and inputs) fully determine the execution —
    :meth:`replay_args` packages them for a reproducing ``Simulation``.
    ``crashed`` maps each node killed by fault injection to the round its
    crash fired in (empty without faults); crashed nodes never appear in
    ``outputs``.
    """

    outputs: Dict[Vertex, Any]
    metrics: RoundMetrics
    seed: Optional[int] = None
    inbox_order: str = "arrival"
    fault_plan: Optional[Any] = None
    crashed: Dict[Vertex, int] = field(default_factory=dict)

    @property
    def rounds(self) -> int:
        return self.metrics.rounds

    def replay_args(self) -> Dict[str, Any]:
        """Keyword arguments reproducing this run's schedule and faults."""
        return {
            "seed": self.seed,
            "inbox_order": self.inbox_order,
            "faults": self.fault_plan,
        }

    @property
    def undelivered(self) -> int:
        """Messages queued in the final round that no node lived to receive."""
        return self.metrics.undelivered_messages

    def unanimous(self) -> Any:
        """The common output if all nodes agree; raises otherwise.

        Outputs are compared with ``==`` (not their reprs), so e.g. equal
        dicts with different insertion orders still count as agreement.
        """
        values = list(self.outputs.values())
        if not values:
            raise ProtocolError("no outputs recorded")
        first = values[0]
        if any(value != first for value in values[1:]):
            raise ProtocolError(f"outputs disagree: {self.outputs}")
        return first


#: Accepted inbox delivery orders (see :class:`Simulation`).
INBOX_ORDERS = ("arrival", "shuffle", "sorted", "reversed")


class Simulation:
    """One synchronous execution of a node program on a network graph.

    ``inbox_order`` controls the iteration order of each node's inbox dict:

    * ``"arrival"`` (default) — the order senders were stepped by the
      scheduler, the historical behavior;
    * ``"shuffle"`` — a seeded adversarial permutation per inbox per round
      (``seed`` makes it reproducible).  The CONGEST model gives inboxes no
      canonical order, so a correct protocol must produce identical outputs
      under any of these; ``shuffle`` is the dynamic cross-check for the
      ``repro lint`` RL002 determinism rule;
    * ``"sorted"`` / ``"reversed"`` — deterministic extreme orders, cheap
      adversaries that need no seed.

    ``faults`` accepts a :class:`repro.faults.FaultPlan`: a seeded
    adversary that drops / duplicates / delays / truncates queued messages,
    jitters the per-round budget, and crashes (optionally restarts) nodes
    on schedule.  Every injected fault is counted in
    ``metrics.faults_injected`` and emitted as a typed trace event.  A null
    plan (all rates zero, no crashes) is byte-for-byte transparent.
    """

    def __init__(
        self,
        graph: Graph,
        program: NodeProgram,
        inputs: Optional[Dict[Vertex, Dict[str, Any]]] = None,
        budget: Optional[int] = None,
        max_rounds: int = 10_000,
        trace: bool = False,
        trace_limit: int = 100_000,
        tracer: Optional[Tracer] = None,
        inbox_order: str = "arrival",
        seed: Optional[int] = None,
        faults: Optional[Any] = None,
    ):
        if graph.num_vertices() == 0:
            raise CongestError("CONGEST needs at least one node")
        if inbox_order not in INBOX_ORDERS:
            raise CongestError(
                f"unknown inbox_order {inbox_order!r}; choose from {INBOX_ORDERS}"
            )
        self._graph = graph
        self._program = program
        self._inputs = inputs or {}
        self._max_rounds = max_rounds
        n = graph.num_vertices()
        self.metrics = RoundMetrics(budget_bits=budget or default_budget(n))
        self._outgoing: Dict[Tuple[Vertex, Vertex], Payload] = {}
        self._sending_open = False
        self._inbox_order = inbox_order
        self._seed = seed
        self._rng = random.Random(0 if seed is None else seed)
        self._ran = False
        self._fault_plan = faults
        self._injector = None
        if faults is not None:
            # Lazy import: repro.faults depends on this module for types.
            from ..faults.injector import FaultInjector

            self._injector = FaultInjector(faults)
        self._round_budget = self.metrics.budget_bits
        self.crashed: Dict[Vertex, int] = {}
        self._trace_enabled = trace
        self._trace_limit = trace_limit
        self.trace: List[Tuple[int, Vertex, Vertex, Payload]] = []
        # Explicit tracer wins; otherwise pick up a process-installed one
        # (the REPRO_TRACE / ``repro trace`` path).  None = fully disabled.
        self.tracer = tracer if tracer is not None else current_tracer()

    # -- internal -------------------------------------------------------
    def _queue_message(self, sender: Vertex, receiver: Vertex, payload: Payload) -> None:
        if not self._sending_open:
            raise CongestError("send outside of a round")
        if not self._graph.has_edge(sender, receiver):
            raise CongestError(f"{sender!r} is not adjacent to {receiver!r}")
        key = (sender, receiver)
        if key in self._outgoing:
            raise CongestError(
                f"node {sender!r} already sent to {receiver!r} this round"
            )
        bits = payload_bits(payload)
        if bits > self._round_budget:
            raise MessageTooLargeError(bits, self._round_budget)
        self._outgoing[key] = payload
        self.metrics.record_message(bits)
        if self.tracer is not None:
            self.tracer.on_send(sender, receiver, bits, payload)
        if self._trace_enabled:
            if len(self.trace) < self._trace_limit:
                self.trace.append(
                    (self.metrics.rounds, sender, receiver, payload)
                )
            else:
                self.metrics.trace_truncated = True

    def _arrange_inbox(self, inbox: Inbox) -> Inbox:
        """Apply the configured adversarial inbox iteration order."""
        if self._inbox_order == "arrival":
            return inbox
        items = sorted(inbox.items(), key=lambda kv: repr(kv[0]))
        if self._inbox_order == "reversed":
            items.reverse()
        elif self._inbox_order == "shuffle":
            self._rng.shuffle(items)
        return dict(items)

    # -- fault helpers --------------------------------------------------
    def _apply_crashes(
        self,
        round: int,
        generators: Dict[Vertex, Generator[None, Inbox, Any]],
    ) -> None:
        """Kill nodes whose crash fires at the start of ``round``."""
        injector = self._injector
        for node in injector.crashes_at(round):
            if node in self.crashed:
                continue
            gen = generators.pop(node, None)
            if gen is not None:
                gen.close()
            self.crashed[node] = round
            injector.note_crash(round, node, self.metrics, self.tracer)

    def _apply_restarts(self, round: int) -> List[Vertex]:
        """Reboot crashed nodes scheduled for ``round``; returns them."""
        injector = self._injector
        restarted = []
        for node in injector.restarts_at(round):
            if node not in self.crashed:
                continue
            del self.crashed[node]
            injector.note_restart(round, node, self.metrics, self.tracer)
            restarted.append(node)
        return restarted

    def _has_pending_restart(self) -> bool:
        if self._injector is None:
            return False
        return self._injector.has_pending_restart(self.metrics.rounds)

    # -- execution ------------------------------------------------------
    def run(self) -> SimulationResult:
        if self._ran:
            raise CongestError(
                "a Simulation can only be run once; construct a new one "
                "(metrics and node state would otherwise double-count)"
            )
        self._ran = True
        n = self._graph.num_vertices()
        contexts = {
            v: NodeContext(
                node=v,
                neighbors=self._graph.neighbors(v),
                n=n,
                input_data=dict(self._inputs.get(v, {})),
                simulation=self,
            )
            for v in self._graph.vertices()
        }
        generators: Dict[Vertex, Generator[None, Inbox, Any]] = {}
        outputs: Dict[Vertex, Any] = {}

        tracer = self.tracer
        injector = self._injector

        # Round 1: local computation + first sends.
        self.metrics.record_round()
        if tracer is not None:
            tracer.on_round_start()
        if injector is not None:
            for node in injector.crashes_at(1):
                self.crashed[node] = 1
                injector.note_crash(1, node, self.metrics, tracer)
            self._round_budget = injector.budget_for(
                1, self.metrics.budget_bits, self.metrics, tracer
            )
        self._sending_open = True
        for v in self._graph.vertices():
            if v in self.crashed:
                continue
            gen = self._program(contexts[v])
            try:
                next(gen)
                generators[v] = gen
            except StopIteration as stop:
                outputs[v] = stop.value
                if tracer is not None:
                    tracer.on_halt(v, stop.value)
        self._sending_open = False

        while generators or self._has_pending_restart():
            if self.metrics.rounds >= self._max_rounds:
                if injector is not None and self.metrics.total_faults > 0:
                    raise FaultToleranceExceeded(
                        f"exceeded max_rounds={self._max_rounds} under fault "
                        "injection; the protocol did not terminate within "
                        "its tolerance envelope",
                        round=self.metrics.rounds,
                    )
                raise ProtocolError(
                    f"exceeded max_rounds={self._max_rounds}; "
                    "protocol is not terminating"
                )
            delivery = self._outgoing
            self._outgoing = {}
            self.metrics.record_round()
            rnd = self.metrics.rounds
            if tracer is not None:
                tracer.on_round_start()

            restarted: List[Vertex] = []
            if injector is not None:
                self._apply_crashes(rnd, generators)
                restarted.extend(self._apply_restarts(rnd))
                self._round_budget = injector.budget_for(
                    rnd, self.metrics.budget_bits, self.metrics, tracer
                )
                items: List[Tuple[Tuple[Vertex, Vertex], Payload]] = []
                for (sender, receiver), payload in delivery.items():
                    if receiver in self.crashed:
                        injector.drop_for_crashed(
                            rnd, sender, receiver, payload, self.metrics,
                            tracer,
                        )
                        continue
                    items.append(((sender, receiver), payload))
                survivors = injector.process(rnd, items, self.metrics, tracer)
            else:
                survivors = [
                    (sender, receiver, payload)
                    for (sender, receiver), payload in delivery.items()
                ]
            by_receiver: Dict[Vertex, Inbox] = {}
            for sender, receiver, payload in survivors:
                by_receiver.setdefault(receiver, {})[sender] = payload
            if tracer is not None:
                for sender, receiver, payload in survivors:
                    tracer.on_deliver(sender, receiver, payload_bits(payload))

            self._sending_open = True
            for v in restarted:
                gen = self._program(contexts[v])
                try:
                    next(gen)
                    generators[v] = gen
                except StopIteration as stop:
                    outputs[v] = stop.value
                    if tracer is not None:
                        tracer.on_halt(v, stop.value)
            for v in sorted(generators):
                if v in restarted:
                    continue  # a rebooted program starts fresh this round
                inbox: Inbox = self._arrange_inbox(by_receiver.get(v, {}))
                gen = generators[v]
                try:
                    gen.send(inbox)
                except StopIteration as stop:
                    outputs[v] = stop.value
                    del generators[v]
                    if tracer is not None:
                        tracer.on_halt(v, stop.value)
            self._sending_open = False
            if not self._outgoing and not generators \
                    and not self._has_pending_restart():
                break
        # Messages queued in the sweep where the last generators halted
        # have no living receiver to ever observe them.  Count them so
        # harnesses (and tests) can detect silently dropped final sends —
        # the dynamic face of the RL003 lint rule.  In-flight delayed or
        # duplicated fault copies that never matured count too.
        self.metrics.undelivered_messages = len(self._outgoing)
        if injector is not None:
            self.metrics.undelivered_messages += injector.pending_copies
        if tracer is not None:
            tracer.finish()
        return SimulationResult(
            outputs=outputs,
            metrics=self.metrics,
            seed=self._seed,
            inbox_order=self._inbox_order,
            fault_plan=self._fault_plan,
            crashed=dict(self.crashed),
        )


def run_protocol(
    graph: Graph,
    program: NodeProgram,
    inputs: Optional[Dict[Vertex, Dict[str, Any]]] = None,
    budget: Optional[int] = None,
    max_rounds: int = 10_000,
    tracer: Optional[Tracer] = None,
    inbox_order: str = "arrival",
    seed: Optional[int] = None,
    faults: Optional[Any] = None,
) -> SimulationResult:
    """Convenience wrapper: build a Simulation and run it."""
    return Simulation(
        graph, program, inputs=inputs, budget=budget, max_rounds=max_rounds,
        tracer=tracer, inbox_order=inbox_order, seed=seed, faults=faults,
    ).run()
