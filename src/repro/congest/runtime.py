"""Round-synchronous CONGEST simulator.

The model (paper Section 1): a network is a connected simple graph; each
node knows its own O(log n)-bit identifier; computation proceeds in
synchronous rounds; in every round each node may send one message of at
most B = Θ(log n) bits to each neighbor, receives its neighbors' messages,
and computes.

Node programs are written as *generators*: ``run(ctx)`` sends messages via
``ctx.send`` and executes ``inbox = yield`` to end the round; messages sent
in round r are delivered at the start of round r+1.  Returning from the
generator halts the node with its return value as output.  The generator
style makes sub-protocols composable with ``yield from`` (see
:mod:`repro.congest.primitives`).

The simulator *enforces* the model: at most one message per neighbor per
round, every payload serialized and measured, and any message above the bit
budget raises :class:`MessageTooLargeError` — protocols must fragment big
payloads across rounds themselves, paying the Θ(k / log n) cost the paper
describes.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Any, Callable, Dict, Generator, List, Optional, Tuple

from ..errors import CongestError, MessageTooLargeError, ProtocolError
from ..graph import Graph, Vertex
from ..obs import NULL_SPAN, Tracer, current_tracer
from .messages import Payload, payload_bits
from .metrics import RoundMetrics

Inbox = Dict[Vertex, Payload]
NodeProgram = Callable[["NodeContext"], Generator[None, Inbox, Any]]


def default_budget(n: int, multiplier: int = 4) -> int:
    """The per-edge per-round budget B = max(48, multiplier * ceil(log2 n)).

    The floor of 48 bits keeps tiny test networks usable; asymptotically
    the budget is Θ(log n), the CONGEST definition.
    """
    if n <= 1:
        return 48
    return max(48, multiplier * math.ceil(math.log2(n)))


class NodeContext:
    """What a node knows and can do.

    Knowledge: its id, its neighbors' ids (the usual KT1 assumption — one
    round of id exchange would provide them anyway), the network size n,
    and its local input dictionary (labels, weights, parameters).
    """

    def __init__(
        self,
        node: Vertex,
        neighbors: List[Vertex],
        n: int,
        input_data: Dict[str, Any],
        simulation: "Simulation",
    ):
        self.node = node
        self.neighbors = list(neighbors)
        self.n = n
        self.input = input_data
        self._simulation = simulation

    @property
    def degree(self) -> int:
        return len(self.neighbors)

    @property
    def round_number(self) -> int:
        """The current round (1-based once the first round starts)."""
        return self._simulation.metrics.rounds

    @property
    def budget(self) -> int:
        return self._simulation.metrics.budget_bits

    def phase(self, name: str):
        """Open a named per-node phase span on the simulation's tracer.

        Rounds, messages, and bits recorded while the span is open are
        attributed to the phase (hierarchically: nested spans join their
        names with ``/``).  Returns a shared no-op context manager when
        tracing is disabled, so protocols can phase unconditionally.
        """
        tracer = self._simulation.tracer
        if tracer is None:
            return NULL_SPAN
        return tracer.phase(name, node=self.node)

    def send(self, neighbor: Vertex, payload: Payload) -> None:
        """Queue a message for delivery to ``neighbor`` next round."""
        self._simulation._queue_message(self.node, neighbor, payload)

    def send_all(self, payload: Payload) -> None:
        """Broadcast the same message to every neighbor."""
        for neighbor in self.neighbors:
            self.send(neighbor, payload)


@dataclass
class SimulationResult:
    """Final outputs and metrics of a run."""

    outputs: Dict[Vertex, Any]
    metrics: RoundMetrics

    @property
    def rounds(self) -> int:
        return self.metrics.rounds

    @property
    def undelivered(self) -> int:
        """Messages queued in the final round that no node lived to receive."""
        return self.metrics.undelivered_messages

    def unanimous(self) -> Any:
        """The common output if all nodes agree; raises otherwise.

        Outputs are compared with ``==`` (not their reprs), so e.g. equal
        dicts with different insertion orders still count as agreement.
        """
        values = list(self.outputs.values())
        if not values:
            raise ProtocolError("no outputs recorded")
        first = values[0]
        if any(value != first for value in values[1:]):
            raise ProtocolError(f"outputs disagree: {self.outputs}")
        return first


#: Accepted inbox delivery orders (see :class:`Simulation`).
INBOX_ORDERS = ("arrival", "shuffle", "sorted", "reversed")


class Simulation:
    """One synchronous execution of a node program on a network graph.

    ``inbox_order`` controls the iteration order of each node's inbox dict:

    * ``"arrival"`` (default) — the order senders were stepped by the
      scheduler, the historical behavior;
    * ``"shuffle"`` — a seeded adversarial permutation per inbox per round
      (``seed`` makes it reproducible).  The CONGEST model gives inboxes no
      canonical order, so a correct protocol must produce identical outputs
      under any of these; ``shuffle`` is the dynamic cross-check for the
      ``repro lint`` RL002 determinism rule;
    * ``"sorted"`` / ``"reversed"`` — deterministic extreme orders, cheap
      adversaries that need no seed.
    """

    def __init__(
        self,
        graph: Graph,
        program: NodeProgram,
        inputs: Optional[Dict[Vertex, Dict[str, Any]]] = None,
        budget: Optional[int] = None,
        max_rounds: int = 10_000,
        trace: bool = False,
        trace_limit: int = 100_000,
        tracer: Optional[Tracer] = None,
        inbox_order: str = "arrival",
        seed: Optional[int] = None,
    ):
        if graph.num_vertices() == 0:
            raise CongestError("CONGEST needs at least one node")
        if inbox_order not in INBOX_ORDERS:
            raise CongestError(
                f"unknown inbox_order {inbox_order!r}; choose from {INBOX_ORDERS}"
            )
        self._graph = graph
        self._program = program
        self._inputs = inputs or {}
        self._max_rounds = max_rounds
        n = graph.num_vertices()
        self.metrics = RoundMetrics(budget_bits=budget or default_budget(n))
        self._outgoing: Dict[Tuple[Vertex, Vertex], Payload] = {}
        self._sending_open = False
        self._inbox_order = inbox_order
        self._rng = random.Random(0 if seed is None else seed)
        self._ran = False
        self._trace_enabled = trace
        self._trace_limit = trace_limit
        self.trace: List[Tuple[int, Vertex, Vertex, Payload]] = []
        # Explicit tracer wins; otherwise pick up a process-installed one
        # (the REPRO_TRACE / ``repro trace`` path).  None = fully disabled.
        self.tracer = tracer if tracer is not None else current_tracer()

    # -- internal -------------------------------------------------------
    def _queue_message(self, sender: Vertex, receiver: Vertex, payload: Payload) -> None:
        if not self._sending_open:
            raise CongestError("send outside of a round")
        if not self._graph.has_edge(sender, receiver):
            raise CongestError(f"{sender!r} is not adjacent to {receiver!r}")
        key = (sender, receiver)
        if key in self._outgoing:
            raise CongestError(
                f"node {sender!r} already sent to {receiver!r} this round"
            )
        bits = payload_bits(payload)
        if bits > self.metrics.budget_bits:
            raise MessageTooLargeError(bits, self.metrics.budget_bits)
        self._outgoing[key] = payload
        self.metrics.record_message(bits)
        if self.tracer is not None:
            self.tracer.on_send(sender, receiver, bits, payload)
        if self._trace_enabled:
            if len(self.trace) < self._trace_limit:
                self.trace.append(
                    (self.metrics.rounds, sender, receiver, payload)
                )
            else:
                self.metrics.trace_truncated = True

    def _arrange_inbox(self, inbox: Inbox) -> Inbox:
        """Apply the configured adversarial inbox iteration order."""
        if self._inbox_order == "arrival":
            return inbox
        items = sorted(inbox.items(), key=lambda kv: repr(kv[0]))
        if self._inbox_order == "reversed":
            items.reverse()
        elif self._inbox_order == "shuffle":
            self._rng.shuffle(items)
        return dict(items)

    # -- execution ------------------------------------------------------
    def run(self) -> SimulationResult:
        if self._ran:
            raise CongestError(
                "Simulation.run() called twice; metrics would double-count "
                "— build a fresh Simulation per execution"
            )
        self._ran = True
        n = self._graph.num_vertices()
        contexts = {
            v: NodeContext(
                node=v,
                neighbors=self._graph.neighbors(v),
                n=n,
                input_data=dict(self._inputs.get(v, {})),
                simulation=self,
            )
            for v in self._graph.vertices()
        }
        generators: Dict[Vertex, Generator[None, Inbox, Any]] = {}
        outputs: Dict[Vertex, Any] = {}

        tracer = self.tracer

        # Round 1: local computation + first sends.
        self.metrics.record_round()
        if tracer is not None:
            tracer.on_round_start()
        self._sending_open = True
        for v in self._graph.vertices():
            gen = self._program(contexts[v])
            try:
                next(gen)
                generators[v] = gen
            except StopIteration as stop:
                outputs[v] = stop.value
                if tracer is not None:
                    tracer.on_halt(v, stop.value)
        self._sending_open = False

        while generators:
            if self.metrics.rounds >= self._max_rounds:
                raise ProtocolError(
                    f"exceeded max_rounds={self._max_rounds}; "
                    "protocol is not terminating"
                )
            delivery = self._outgoing
            self._outgoing = {}
            by_receiver: Dict[Vertex, Inbox] = {}
            for (sender, receiver), payload in delivery.items():
                by_receiver.setdefault(receiver, {})[sender] = payload
            self.metrics.record_round()
            if tracer is not None:
                tracer.on_round_start()
                for (sender, receiver), payload in delivery.items():
                    tracer.on_deliver(sender, receiver, payload_bits(payload))
            self._sending_open = True
            for v in sorted(generators):
                inbox: Inbox = self._arrange_inbox(by_receiver.get(v, {}))
                gen = generators[v]
                try:
                    gen.send(inbox)
                except StopIteration as stop:
                    outputs[v] = stop.value
                    del generators[v]
                    if tracer is not None:
                        tracer.on_halt(v, stop.value)
            self._sending_open = False
            if not self._outgoing and not generators:
                break
        # Messages queued in the sweep where the last generators halted
        # have no living receiver to ever observe them.  Count them so
        # harnesses (and tests) can detect silently dropped final sends —
        # the dynamic face of the RL003 lint rule.
        self.metrics.undelivered_messages = len(self._outgoing)
        if tracer is not None:
            tracer.finish()
        return SimulationResult(outputs=outputs, metrics=self.metrics)


def run_protocol(
    graph: Graph,
    program: NodeProgram,
    inputs: Optional[Dict[Vertex, Dict[str, Any]]] = None,
    budget: Optional[int] = None,
    max_rounds: int = 10_000,
    tracer: Optional[Tracer] = None,
    inbox_order: str = "arrival",
    seed: Optional[int] = None,
) -> SimulationResult:
    """Convenience wrapper: build a Simulation and run it."""
    return Simulation(
        graph, program, inputs=inputs, budget=budget, max_rounds=max_rounds,
        tracer=tracer, inbox_order=inbox_order, seed=seed,
    ).run()
