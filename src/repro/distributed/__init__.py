"""The paper's distributed protocols (Algorithm 2, Theorem 6.1, §6-7).

The deprecated PR-4 aliases (``decide``, ``optimize_distributed``,
``count_distributed``) are gone; use :class:`repro.api.Session` or the
``*_pipeline`` functions (see ``docs/api.md``).
"""

from .baselines import BaselineDecision, gather_decide
from .counting import DistributedCount, count_pipeline
from .decomposition import (
    DistributedDecompositionResult,
    grid_coloring_program,
    grid_decomposition_distributed,
)
from .elimination import (
    DistributedEliminationResult,
    EliminationOutput,
    build_elimination_tree,
    elimination_tree_program,
)
from .hfree import HFreenessResult, decide_h_freeness
from .marked import DistributedOptMarked, optmarked_distributed
from .model_checking import (
    ClassCodec,
    DistributedDecision,
    decide_pipeline,
    node_inputs_from_elimination,
)
from .optimization import (
    DistributedOptimization,
    NodeSelection,
    optimize_pipeline,
)

__all__ = [
    "BaselineDecision",
    "ClassCodec",
    "DistributedCount",
    "DistributedDecision",
    "DistributedDecompositionResult",
    "DistributedEliminationResult",
    "grid_coloring_program",
    "grid_decomposition_distributed",
    "DistributedOptMarked",
    "DistributedOptimization",
    "EliminationOutput",
    "HFreenessResult",
    "NodeSelection",
    "build_elimination_tree",
    "count_pipeline",
    "decide_h_freeness",
    "decide_pipeline",
    "elimination_tree_program",
    "gather_decide",
    "node_inputs_from_elimination",
    "optimize_pipeline",
    "optmarked_distributed",
]
