"""The paper's distributed protocols (Algorithm 2, Theorem 6.1, §6-7)."""

from .baselines import BaselineDecision, gather_decide
from .counting import DistributedCount, count_distributed
from .decomposition import (
    DistributedDecompositionResult,
    grid_coloring_program,
    grid_decomposition_distributed,
)
from .elimination import (
    DistributedEliminationResult,
    EliminationOutput,
    build_elimination_tree,
    elimination_tree_program,
)
from .hfree import HFreenessResult, decide_h_freeness
from .marked import DistributedOptMarked, optmarked_distributed
from .model_checking import (
    ClassCodec,
    DistributedDecision,
    decide,
    node_inputs_from_elimination,
)
from .optimization import (
    DistributedOptimization,
    NodeSelection,
    optimize_distributed,
)

__all__ = [
    "BaselineDecision",
    "ClassCodec",
    "DistributedCount",
    "DistributedDecision",
    "DistributedDecompositionResult",
    "DistributedEliminationResult",
    "grid_coloring_program",
    "grid_decomposition_distributed",
    "DistributedOptMarked",
    "DistributedOptimization",
    "EliminationOutput",
    "HFreenessResult",
    "NodeSelection",
    "build_elimination_tree",
    "count_distributed",
    "decide",
    "decide_h_freeness",
    "elimination_tree_program",
    "gather_decide",
    "node_inputs_from_elimination",
    "optimize_distributed",
    "optmarked_distributed",
]
