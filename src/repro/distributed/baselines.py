"""Baseline CONGEST algorithm: gather the whole graph, decide centrally.

This is the generic strategy the meta-theorem competes against: every node
floods every edge it knows; once a node has collected all m edges it can
evaluate *any* predicate locally.  Round complexity is Θ(m + diam) with
O(log n)-bit messages (one edge id per edge per round, pipelined) — the
benchmark E4 contrasts this linear-in-m growth with the treedepth
algorithm's n-independent round count.

Knowledge assumption: nodes are given m (the number of edges) so they can
detect completion; this only *helps* the baseline, making the comparison
conservative.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Generator, List, Optional, Set, Tuple

from ..congest import Inbox, NodeContext, node_program, ordered_inbox, run_protocol
from ..errors import ProtocolError
from ..graph import Graph, Vertex, canonical_edge


def gather_and_decide_program(decide: Callable[[Graph], bool]):
    """Node program: flood all edges, rebuild G locally, apply ``decide``."""

    @node_program
    def program(ctx: NodeContext) -> Generator[None, Inbox, bool]:
        m_total = int(ctx.input["m"])
        known: Set[Tuple[Vertex, Vertex]] = {
            canonical_edge(ctx.node, u) for u in ctx.neighbors
        }
        # Per-neighbor send queues (pipelined flooding: one edge per
        # neighbor per round).
        queues: Dict[Vertex, List[Tuple[Vertex, Vertex]]] = {
            u: sorted(known) for u in ctx.neighbors
        }
        while True:
            progress = False
            for u in ctx.neighbors:
                if queues[u]:
                    ctx.send(u, ("edge", queues[u].pop(0)))
                    progress = True
            if len(known) == m_total and not progress:
                # Everything known and flushed: rebuild and decide.
                graph = Graph()
                graph.add_vertex(ctx.node)
                for a, b in known:
                    graph.add_edge(a, b)
                return decide(graph)
            inbox = yield
            # Canonical sender order: the relay queues must grow in an
            # order independent of message delivery order.
            for _, payload in ordered_inbox(inbox):
                if isinstance(payload, tuple) and payload and payload[0] == "edge":
                    edge = (payload[1][0], payload[1][1])
                    if edge not in known:
                        known.add(edge)
                        for u in ctx.neighbors:
                            queues[u].append(edge)

    return program


@dataclass
class BaselineDecision:
    """Result of the gather-everything baseline."""

    accepted: bool
    rounds: int
    max_message_bits: int
    total_bits: int


def gather_decide(
    graph: Graph,
    decide: Callable[[Graph], bool],
    budget: Optional[int] = None,
) -> BaselineDecision:
    """Run the baseline on ``graph`` with local decision rule ``decide``."""
    if not graph.is_connected():
        raise ProtocolError("CONGEST requires a connected network")
    inputs = {v: {"m": graph.num_edges()} for v in graph.vertices()}
    result = run_protocol(
        graph,
        gather_and_decide_program(decide),
        inputs=inputs,
        budget=budget,
        max_rounds=50 + 4 * graph.num_edges() + 2 * graph.num_vertices(),
    )
    verdicts = set(result.outputs.values())
    if len(verdicts) != 1:
        raise ProtocolError(f"baseline verdicts disagree: {result.outputs}")
    return BaselineDecision(
        accepted=bool(verdicts.pop()),
        rounds=result.rounds,
        max_message_bits=result.metrics.max_message_bits,
        total_bits=result.metrics.total_bits,
    )
