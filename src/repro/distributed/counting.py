"""Section 6 (counting): distributed count-φ in CONGEST.

Same convergecast shape as the optimization protocol, with COUNT tables
(class → number of partial assignments) in place of OPT tables.  Counts
can exceed the message budget (e.g. #independent-sets is exponential), so
each count is streamed in base-2^CHUNK digits — the honest Θ(k / log n)
cost of a k-bit value.  For the paper's headline examples (triangles,
perfect matchings on sparse graphs) counts are polynomial and fit in one
or two chunks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Generator, List, Optional, Tuple

from ..algebra import TreeAutomaton
from ..algebra.symbols import enumerate_symbol_choices
from ..algebra.tables import TabulatedAutomaton
from ..congest import Inbox, ItemCollector, NodeContext, node_program, run_protocol
from ..errors import FaultToleranceExceeded, ProtocolError
from ..graph import Graph, Vertex, canonical_edge
from ..obs import Tracer, maybe_phase
from ..runconfig import RunConfig
from .elimination import build_elimination_tree
from .model_checking import (
    PIPELINE_DEFAULTS,
    ClassCodec,
    _IdCodec,
    elimination_forest_depth,
    engine_automaton,
    graph_label_alphabet,
    local_base_symbol,
    minimization_stats,
    node_inputs_from_elimination,
    resolve_tracer,
)

_CHUNK_BITS = 8


def _count_to_digits(count: int) -> List[int]:
    if count == 0:
        return [0]
    digits = []
    while count:
        digits.append(count & ((1 << _CHUNK_BITS) - 1))
        count >>= _CHUNK_BITS
    return digits


def _digits_to_count(digits: List[int]) -> int:
    total = 0
    for i, digit in enumerate(digits):
        total |= digit << (_CHUNK_BITS * i)
    return total


def counting_program(automaton: TreeAutomaton, codec: ClassCodec):
    """Node program factory for the counting convergecast.

    With a :class:`TabulatedAutomaton` (``engine="vectorized"``) the
    COUNT tables are kept as integer-id pairs and merged through the
    kernel's digest-memoized :meth:`~TabulatedAutomaton.merge_counts` /
    :meth:`~TabulatedAutomaton.fold_forget_counts` joins — identical
    subtree merges collapse to one dictionary hit.  Counts stay Python
    big-ints throughout; only state identity is vectorized.
    """
    tab = automaton if isinstance(automaton, TabulatedAutomaton) else None
    ids = _IdCodec(tab, codec) if tab is not None else None

    @node_program
    def program(ctx: NodeContext) -> Generator[None, Inbox, Optional[int]]:
        depth: int = ctx.input["depth"]
        children: Tuple[Vertex, ...] = tuple(ctx.input["children"])
        parent: Optional[Vertex] = ctx.input["parent"]
        bag: Tuple[Vertex, ...] = tuple(ctx.input["bag"])
        positions: Tuple[int, ...] = tuple(ctx.input["anc_edge_positions"])

        base = local_base_symbol(ctx, automaton.scope)
        owned_edges = [
            (pos, canonical_edge(bag[pos - 1], ctx.node)) for pos in positions
        ]
        table: Dict[Any, int] = {}
        if tab is not None:
            for choice in enumerate_symbol_choices(
                base.structure, automaton.scope, ctx.node, owned_edges
            ):
                sid = tab.leaf_id(choice.symbol)
                table[sid] = table.get(sid, 0) + 1
        else:
            for choice in enumerate_symbol_choices(
                base.structure, automaton.scope, ctx.node, owned_edges
            ):
                state = automaton.leaf(choice.symbol)
                table[state] = table.get(state, 0) + 1

        with ctx.phase("count-streaming"):
            collector = ItemCollector("cnt", children)
            while not collector.complete:
                inbox = yield
                collector.absorb(inbox)
            for child in children:
                # Entries are framed as a header item (0, class_id) followed by
                # digit items (1, digit) in little-endian order — each message
                # stays small even when |C_reachable| is large.
                child_table: Dict[Any, int] = {}
                current_state = None
                digit_index = 0
                for kind, value in collector.items_from(child):
                    if kind == 0:
                        current_state = (
                            ids.decode(value) if tab is not None
                            else codec.decode(value)
                        )
                        digit_index = 0
                    else:
                        if current_state is None:
                            raise ProtocolError("count digit before its header")
                        child_table[current_state] = child_table.get(
                            current_state, 0
                        ) | (value << (_CHUNK_BITS * digit_index))
                        digit_index += 1
                if tab is not None:
                    table = dict(
                        tab.merge_counts(
                            depth,
                            tuple(table.items()),
                            tuple(child_table.items()),
                        )
                    )
                else:
                    merged: Dict[Any, int] = {}
                    for s1, c1 in table.items():
                        for s2, c2 in child_table.items():
                            s = automaton.glue(depth, s1, s2)
                            merged[s] = merged.get(s, 0) + c1 * c2
                    table = merged
            if tab is not None:
                forgotten: Dict[Any, int] = dict(
                    tab.fold_forget_counts(depth, tuple(table.items()))
                )
            else:
                forgotten = {}
                for s, c in table.items():
                    fs = automaton.forget(depth, s)
                    forgotten[fs] = forgotten.get(fs, 0) + c

            if parent is not None:
                encode = ids.encode if tab is not None else codec.encode
                for s in sorted(forgotten, key=encode):
                    ctx.send(parent, ("cnt", (0, encode(s))))
                    yield
                    for digit in _count_to_digits(forgotten[s]):
                        ctx.send(parent, ("cnt", (1, digit)))
                        yield
                # Parent still yields awaiting cnt/end, so this delivers.
                ctx.send(parent, ("cnt/end", None))  # repro: noqa[RL003]
                return None
        if tab is not None:
            return sum(c for s, c in forgotten.items() if tab.accepts_id(s))
        return sum(c for s, c in forgotten.items() if automaton.accepts(s))

    return program


@dataclass
class DistributedCount:
    """Outcome of the counting pipeline (count known at the root)."""

    count: Optional[int]
    treedepth_exceeded: bool
    total_rounds: int
    elimination_rounds: int
    counting_rounds: int
    max_message_bits: int
    num_classes: int
    total_messages: int = 0
    minimized: bool = False


def count_pipeline(
    automaton: TreeAutomaton,
    graph: Graph,
    d: int,
    budget: Optional[int] = None,
    tracer: Optional[Tracer] = None,
    inbox_order: Optional[str] = None,
    seed: Optional[int] = None,
    faults=None,
    retry=None,
    engine: Optional[str] = None,
    minimize: Optional[bool] = None,
    codec: Optional[ClassCodec] = None,
    config: Optional[RunConfig] = None,
) -> DistributedCount:
    """Run Algorithm 2 followed by the counting convergecast.

    ``inbox_order`` / ``seed`` / ``faults`` / ``retry`` / ``engine`` have
    the same semantics as in :func:`.model_checking.decide_pipeline`; any
    crash raises :class:`~repro.errors.FaultToleranceExceeded` — a count
    over a partial network is not the count.  All knobs may instead come
    as one ``config=`` :class:`~repro.runconfig.RunConfig`.
    """
    if not automaton.scope:
        raise ProtocolError("counting needs at least one free variable")
    cfg = RunConfig.from_kwargs(
        config,
        defaults=PIPELINE_DEFAULTS,
        budget=budget,
        trace=tracer,
        inbox_order=inbox_order,
        seed=seed,
        faults=faults,
        retry=retry,
        engine=engine,
        minimize=minimize,
        codec=codec,
    )
    tracer = resolve_tracer(cfg.trace)
    elim = build_elimination_tree(
        graph, d, budget=cfg.budget, tracer=tracer,
        inbox_order=cfg.inbox_order, seed=cfg.seed, faults=cfg.faults,
        retry=cfg.retry, engine=cfg.engine,
    )
    if elim.crashed:
        raise FaultToleranceExceeded(
            f"nodes {sorted(map(repr, elim.crashed))} crashed during "
            "elimination; a count needs the whole network",
            round=elim.rounds,
        )
    if not elim.accepted:
        return DistributedCount(
            count=None,
            treedepth_exceeded=True,
            total_rounds=elim.rounds,
            elimination_rounds=elim.rounds,
            counting_rounds=0,
            max_message_bits=elim.max_message_bits,
            num_classes=0,
            total_messages=elim.total_messages,
        )
    inputs = node_inputs_from_elimination(graph, elim)
    codec = cfg.codec if cfg.codec is not None else ClassCodec(automaton)
    labels = graph_label_alphabet(graph)
    forest_depth = elimination_forest_depth(elim)
    program = counting_program(
        engine_automaton(
            automaton, cfg.engine,
            minimize=cfg.minimize_enabled, d=d,
            labels=labels, forest_depth=forest_depth,
        ),
        codec,
    )
    minimized = (
        cfg.minimize_enabled and forest_depth <= d
        and minimization_stats(automaton, d=d, labels=labels) is not None
    )
    run_budget = cfg.budget
    max_rounds = 500_000
    if cfg.retry is not None:
        from ..congest import default_budget
        from ..faults import reliable_program

        program = reliable_program(program, cfg.retry)
        if run_budget is None:
            run_budget = default_budget(graph.num_vertices())
        run_budget = cfg.retry.physical_budget(run_budget)
        max_rounds = cfg.retry.physical_max_rounds(max_rounds)
    with maybe_phase(tracer, "counting"):
        result = run_protocol(
            graph,
            program,
            inputs=inputs,
            budget=run_budget,
            max_rounds=max_rounds,
            tracer=tracer,
            inbox_order=cfg.inbox_order,
            seed=cfg.seed,
            faults=cfg.faults,
            engine=cfg.engine,
        )
    if result.crashed:
        raise FaultToleranceExceeded(
            f"nodes {sorted(map(repr, result.crashed))} crashed during the "
            "counting convergecast; the count cannot be trusted",
            round=result.rounds,
        )
    counts = [c for c in result.outputs.values() if c is not None]
    if len(counts) != 1:
        raise ProtocolError("exactly one node (the root) should hold the count")
    return DistributedCount(
        count=counts[0],
        treedepth_exceeded=False,
        total_rounds=elim.rounds + result.rounds,
        elimination_rounds=elim.rounds,
        counting_rounds=result.rounds,
        max_message_bits=max(elim.max_message_bits, result.metrics.max_message_bits),
        num_classes=codec.num_classes,
        total_messages=elim.total_messages + result.metrics.total_messages,
        minimized=minimized,
    )

