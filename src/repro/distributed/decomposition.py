"""Distributed low-treedepth decomposition for grid networks.

Theorem 7.2's general algorithm (Nešetřil–Ossona de Mendez) is simulated
per DESIGN §4; for the grid family used by the E7 benchmark and the mesh
example we additionally provide an honest *distributed* construction: a
grid node that knows its own coordinates computes its residue color in
zero communication, and one verification round lets every node check its
neighbors' coordinates are consistent (adjacent nodes differ by one in
exactly one coordinate) — so corrupted inputs are detected rather than
silently producing an invalid decomposition.

This instantiates the Corollary 7.3 pipeline fully in the CONGEST model
for grids: O(1) rounds for the decomposition instead of the charged
O(log n) of the general theorem.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, Optional

from ..congest import Inbox, NodeContext, node_program, run_protocol
from ..errors import ProtocolError
from ..expansion import LowTreedepthDecomposition
from ..graph import Graph, Vertex
from ..obs import Tracer, current_tracer, maybe_phase


@node_program(rounds="10")
def grid_coloring_program(ctx: NodeContext) -> Generator[None, Inbox, Optional[int]]:
    """Compute the residue color locally; verify neighbor coordinates.

    Inputs: ``row``, ``col``, ``p``.  Output: the part index, or ``None``
    if a neighbor's announced coordinates are inconsistent with adjacency.
    """
    row = int(ctx.input["row"])
    col = int(ctx.input["col"])
    p = int(ctx.input["p"])
    period = p + 1
    color = (row % period) * period + (col % period)
    with ctx.phase("coordinate-verification"):
        ctx.send_all(("coord", row, col))
        inbox = yield
    if set(inbox) != set(ctx.neighbors):
        return None  # a neighbor's announcement never arrived (lost/crashed)
    for payload in inbox.values():
        if not (isinstance(payload, tuple) and payload and payload[0] == "coord"):
            return None
        n_row, n_col = payload[1], payload[2]
        if abs(n_row - row) + abs(n_col - col) != 1:
            return None  # not a grid neighbor: coordinates are forged
    return color


@dataclass
class DistributedDecompositionResult:
    """Outcome of the distributed grid decomposition."""

    decomposition: Optional[LowTreedepthDecomposition]
    accepted: bool
    rounds: int
    max_message_bits: int


def grid_decomposition_distributed(
    graph: Graph,
    rows: int,
    cols: int,
    p: int,
    budget: Optional[int] = None,
    tracer: Optional[Tracer] = None,
    inbox_order: str = "arrival",
    seed: Optional[int] = None,
    faults=None,
) -> DistributedDecompositionResult:
    """Run the O(1)-round distributed residue coloring on a grid network.

    ``graph`` must be the rows x cols grid with vertex ids r*cols + c (the
    :func:`repro.graph.generators.grid` convention, which fixes each node's
    coordinates as its local input).  ``inbox_order`` / ``seed`` /
    ``faults`` select an adversarial delivery order and fault plan (see
    :class:`~repro.congest.runtime.Simulation`); a node whose verification
    inbox was corrupted or depleted by faults reports ``None`` and the
    decomposition is rejected rather than silently wrong.
    """
    if graph.num_vertices() != rows * cols:
        raise ProtocolError("graph does not match the announced grid shape")
    inputs: Dict[Vertex, Dict[str, int]] = {
        r * cols + c: {"row": r, "col": c, "p": p}
        for r in range(rows)
        for c in range(cols)
    }
    tracer = tracer if tracer is not None else current_tracer()
    with maybe_phase(tracer, "decomposition"):
        result = run_protocol(
            graph,
            grid_coloring_program,
            inputs=inputs,
            budget=budget,
            max_rounds=10,
            tracer=tracer,
            inbox_order=inbox_order,
            seed=seed,
            faults=faults,
        )
    if result.crashed or any(
        color is None for color in result.outputs.values()
    ):
        return DistributedDecompositionResult(
            decomposition=None,
            accepted=False,
            rounds=result.rounds,
            max_message_bits=result.metrics.max_message_bits,
        )
    decomposition = LowTreedepthDecomposition(
        p=p,
        part_of=dict(result.outputs),
        num_parts=(p + 1) ** 2,
        bound_kind="window",
    )
    return DistributedDecompositionResult(
        decomposition=decomposition,
        accepted=True,
        rounds=result.rounds,
        max_message_bits=result.metrics.max_message_bits,
    )
