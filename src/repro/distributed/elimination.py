"""Algorithm 2 + Lemma 5.3 in CONGEST: distributed elimination tree and bags.

Phase structure (per node, lockstep):

1. Global leader election (min id), ``2^d`` rounds — the root r (line 2-6).
2. For step i = 2 .. 2^d - 1 (line 7):
   a. leader election among *unmarked* vertices, ``2^d`` rounds (line 9);
   b. one round: unmarked vertices broadcast (leader, id) (line 10);
   c. one round: each marked vertex of depth i-1 adopts, per distinct
      leader value heard, the minimum-id broadcaster as a child and tells
      it (lines 11-17); the adoptee marks itself with depth i (lines 18-20).
3. Bags (Lemma 5.3): pipelined top-down streaming of root paths — each
   node forwards its parent's bag ids to its children one per round, then
   appends its own id.
4. Verification sweep: every edge checks the ancestry condition (the
   shallower endpoint must appear in the deeper endpoint's bag).  This
   makes the protocol sound even when td(G) > d in ways the marking
   counter alone would not detect (paper line 22's check, strengthened).

If verification fails or some vertex is never marked, that vertex outputs
``status="treedepth_exceeded"`` (the paper's "reports td(G) > d"); under
the distributed-decision semantics a single rejecting node rejects.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional, Tuple

from ..congest import (
    Inbox,
    NodeContext,
    default_budget,
    leader_election,
    node_program,
    run_protocol,
)
from ..errors import DecompositionError, FaultToleranceExceeded, ProtocolError
from ..graph import Graph, Vertex
from ..obs import Tracer, current_tracer, maybe_phase
from ..treedepth import EliminationForest


@dataclass
class EliminationOutput:
    """Per-node result of the distributed elimination-tree construction."""

    status: str  # "ok" or "treedepth_exceeded"
    parent: Optional[Vertex] = None
    children: Tuple[Vertex, ...] = ()
    depth: int = 0
    bag: Tuple[Vertex, ...] = ()
    anc_edge_positions: Tuple[int, ...] = ()


@node_program(rounds="200 + 40*4**d + 4*n")
def elimination_tree_program(
    ctx: NodeContext,
) -> Generator[None, Inbox, EliminationOutput]:
    """The node program (parameter d in ``ctx.input['d']``)."""
    d = int(ctx.input["d"])
    horizon = 2 ** d  # rounds per leader election; also the depth budget
    max_depth = 2 ** d - 1  # paper's D

    # -- line 2-6: global leader election, root marks itself ------------
    with ctx.phase("root-election"):
        leader = yield from leader_election(
            ctx, participating=True, rounds=horizon
        )
    marked = leader == ctx.node
    depth = 1 if marked else 0
    parent: Optional[Vertex] = None
    children: List[Vertex] = []

    # -- line 7-21: one adoption step per depth --------------------------
    for step in range(2, max_depth + 1):
        with ctx.phase("adoption"):
            component_leader = yield from leader_election(
                ctx, participating=not marked, rounds=horizon
            )
            # (b) unmarked vertices broadcast (leader, id).
            if not marked:
                ctx.send_all(("cand", component_leader, ctx.node))
            inbox = yield
            # (c) marked vertices of depth step-1 adopt one child per leader.
            adopted: Dict[Vertex, Vertex] = {}
            if marked and depth == step - 1:
                for payload in sorted(inbox.values(), key=repr):
                    if isinstance(payload, tuple) and payload and payload[0] == "cand":
                        _, lead, cand = payload
                        if lead not in adopted or cand < adopted[lead]:
                            adopted[lead] = cand
                for child in adopted.values():
                    ctx.send(child, ("adopt",))
                    children.append(child)
            inbox = yield
            if not marked:
                adopters = [
                    sender
                    for sender, payload in inbox.items()
                    if isinstance(payload, tuple) and payload and payload[0] == "adopt"
                ]
                if adopters:
                    # The invariant guarantees a unique adopter; tolerate (and
                    # later reject via verification) violations of it.
                    parent = min(adopters)
                    depth = step
                    marked = True

    if not marked:
        # Line 22: still unmarked after 2^d - 1 steps -> td(G) > d.
        return EliminationOutput(status="treedepth_exceeded")

    # -- Lemma 5.3: pipelined bag streaming ------------------------------
    # Each node emits its root path to its children, one id per round:
    # first the ids relayed from its parent, then its own id, then "end".
    bag: List[Vertex] = []
    with ctx.phase("bag-streaming"):
        incoming_done = parent is None
        outgoing: List[Tuple[str, Optional[Vertex]]] = []
        if parent is None:
            outgoing = [("bagid", ctx.node), ("bagend", None)]
        sent_own = parent is None
        # The pipeline needs at most max_depth + depth rounds; add slack for
        # the end markers.
        for _ in range(2 * max_depth + 2):
            if outgoing:
                kind, value = outgoing.pop(0)
                for child in children:
                    ctx.send(child, (kind, value))
            inbox = yield
            if not incoming_done and parent in inbox:
                payload = inbox[parent]
                if isinstance(payload, tuple) and payload:
                    if payload[0] == "bagid":
                        bag.append(payload[1])
                        outgoing.append(("bagid", payload[1]))
                    elif payload[0] == "bagend":
                        incoming_done = True
                        if not sent_own:
                            outgoing.append(("bagid", ctx.node))
                            outgoing.append(("bagend", None))
                            sent_own = True
    bag_full = tuple(bag) + (ctx.node,)
    if len(bag_full) != depth:
        return EliminationOutput(status="treedepth_exceeded")

    # -- Verification sweep ----------------------------------------------
    # Every node announces (id, depth); every edge then checks ancestry:
    # the deeper endpoint must have the shallower one in its bag.
    with ctx.phase("verification"):
        ctx.send_all(("meta", depth))
        inbox = yield
    ok = True
    for neighbor, payload in inbox.items():
        if not (isinstance(payload, tuple) and payload and payload[0] == "meta"):
            ok = False
            continue
        neighbor_depth = payload[1]
        if neighbor_depth == depth:
            ok = False  # siblings joined by an edge: not ancestor-related
        elif neighbor_depth < depth and neighbor not in bag_full:
            ok = False
    # Any local violation is seen by an endpoint of the offending edge,
    # which rejects; under distributed-decision semantics that suffices
    # (the paper's model, Section 1).
    if not ok:
        return EliminationOutput(status="treedepth_exceeded")

    positions = tuple(
        pos
        for pos, ancestor in enumerate(bag_full[:-1], start=1)
        if ancestor in ctx.neighbors
    )
    return EliminationOutput(
        status="ok",
        parent=parent,
        children=tuple(sorted(children)),
        depth=depth,
        bag=bag_full,
        anc_edge_positions=positions,
    )


@dataclass
class DistributedEliminationResult:
    """Harness-side view of one Algorithm 2 execution.

    ``crashed`` maps fault-injected dead nodes to their crash round (empty
    on faultless runs); ``retransmissions`` counts redundant copies sent by
    the reliability layer when ``retry`` was used.  When crashes occurred
    and the survivors accepted, ``forest`` is the elimination tree of the
    *surviving induced subgraph* — validated against it, or the run fails
    with :class:`~repro.errors.FaultToleranceExceeded` rather than
    returning a silently wrong decomposition.
    """

    accepted: bool
    forest: Optional[EliminationForest]
    outputs: Dict[Vertex, EliminationOutput]
    rounds: int
    max_message_bits: int
    crashed: Dict[Vertex, int] = field(default_factory=dict)
    retransmissions: int = 0
    total_messages: int = 0


def _elimination_max_rounds(graph: Graph, d: int) -> int:
    return 200 + 40 * (4 ** d) + 4 * graph.num_vertices()


def build_elimination_tree(
    graph: Graph,
    d: int,
    budget: Optional[int] = None,
    tracer: Optional[Tracer] = None,
    inbox_order: Optional[str] = None,
    seed: Optional[int] = None,
    faults=None,
    retry=None,
    engine: Optional[str] = None,
    config=None,
) -> DistributedEliminationResult:
    """Run Algorithm 2 on ``graph`` with treedepth bound ``d``.

    Returns the assembled elimination tree (validated against the graph)
    when every node accepted, or ``accepted=False`` when some node reported
    td(G) > d.  Rounds and traffic land under the ``elimination`` phase of
    ``tracer`` (explicit or process-installed) when tracing is on.
    ``inbox_order`` / ``seed`` select an adversarial message delivery order
    (see :class:`~repro.congest.runtime.Simulation`).

    ``faults`` accepts a :class:`repro.faults.FaultPlan`; ``retry`` a
    :class:`repro.faults.RetryPolicy`, wrapping the protocol in the
    redundancy-lockstep synchronizer (budget and round caps are scaled
    automatically).  Under faults the result is never silently wrong: the
    protocol either yields a decomposition that *validates* against the
    surviving induced subgraph, or raises
    :class:`~repro.errors.FaultToleranceExceeded`.

    All execution knobs may instead arrive as one ``config=``
    :class:`~repro.runconfig.RunConfig` (mutually exclusive with the
    individual keywords).
    """
    from ..runconfig import RunConfig, resolve_tracer

    if not graph.is_connected():
        raise ProtocolError("CONGEST requires a connected network")
    cfg = RunConfig.from_kwargs(
        config,
        defaults={"engine": "naive"},
        budget=budget,
        trace=tracer,
        inbox_order=inbox_order,
        seed=seed,
        faults=faults,
        retry=retry,
        engine=engine,
    )
    tracer = resolve_tracer(cfg.trace)
    inputs = {v: {"d": d} for v in graph.vertices()}
    program = elimination_tree_program
    run_budget = cfg.budget if cfg.budget is not None else default_budget(
        graph.num_vertices()
    )
    max_rounds = _elimination_max_rounds(graph, d)
    if cfg.retry is not None:
        from ..faults import reliable_program

        program = reliable_program(elimination_tree_program, cfg.retry)
        run_budget = cfg.retry.physical_budget(run_budget)
        max_rounds = cfg.retry.physical_max_rounds(max_rounds)
    with maybe_phase(tracer, "elimination"):
        result = run_protocol(
            graph,
            program,
            inputs=inputs,
            budget=run_budget,
            max_rounds=max_rounds,
            tracer=tracer,
            inbox_order=cfg.inbox_order,
            seed=cfg.seed,
            faults=cfg.faults,
            engine=cfg.engine,
        )
    outputs: Dict[Vertex, EliminationOutput] = result.outputs
    accepted = all(out.status == "ok" for out in outputs.values())
    forest: Optional[EliminationForest] = None
    if result.crashed:
        if not accepted:
            # A rejection computed on fault-corrupted state proves nothing
            # about the surviving graph: fail closed, don't report td > d.
            raise FaultToleranceExceeded(
                f"nodes {sorted(map(repr, result.crashed))} crashed and the "
                "survivors did not assemble a tree; the elimination outcome "
                "is unreliable",
                round=result.rounds,
            )
        survivors = graph.induced_subgraph(set(outputs))
        forest = EliminationForest(
            {v: out.parent for v, out in outputs.items()}
        )
        try:
            forest.validate_for(survivors)
        except DecompositionError as exc:
            raise FaultToleranceExceeded(
                "survivors report 'ok' but their tree does not validate "
                f"against the surviving subgraph: {exc}",
                round=result.rounds,
            ) from exc
    elif accepted:
        forest = EliminationForest(
            {v: out.parent for v, out in outputs.items()}
        )
        forest.validate_for(graph)  # harness-side sanity check
    return DistributedEliminationResult(
        accepted=accepted,
        forest=forest,
        outputs=outputs,
        rounds=result.rounds,
        max_message_bits=result.metrics.max_message_bits,
        crashed=dict(result.crashed),
        retransmissions=result.metrics.retransmissions,
        total_messages=result.metrics.total_messages,
    )
