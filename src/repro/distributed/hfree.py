"""Corollary 7.3: H-freeness on bounded expansion in O(log n) rounds.

Pipeline (the paper's proof, executable):

1. a low treedepth decomposition with parameter p = |V(H)| (Theorem 7.2;
   simulated per DESIGN §4 — we charge the O(log n) rounds its distributed
   construction costs, with the constant configurable);
2. for every index set I of at most p parts, decide H-freeness of
   G_I = G[∪_{i∈I} V_i] with the Theorem 6.1 machinery — every connected
   component of G_I has treedepth at most the decomposition's bound, and
   any copy of connected H lies inside one component of one G_I;
3. reject iff some run finds a copy.

Round accounting: runs for different components of one G_I are genuinely
parallel (disjoint vertex sets), so one I costs the max over its
components; the (f(p) choose <=p) = O_p(1) index sets are multiplexed
sequentially, so the total is their sum — still O_p(log n).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from ..algebra import compile_formula
from ..errors import ProtocolError
from ..expansion import LowTreedepthDecomposition, union_graph
from ..graph import Graph
from ..mso import formulas
from .model_checking import decide_pipeline


@dataclass
class HFreenessResult:
    """Outcome of the Corollary 7.3 pipeline."""

    h_free: bool
    decomposition_rounds: int
    checking_rounds: int
    subsets_checked: int
    runs: int
    max_message_bits: int

    @property
    def total_rounds(self) -> int:
        return self.decomposition_rounds + self.checking_rounds


def decide_h_freeness(
    graph: Graph,
    pattern: Graph,
    decomposition: LowTreedepthDecomposition,
    decomposition_round_constant: int = 1,
    budget: Optional[int] = None,
) -> HFreenessResult:
    """Decide whether ``graph`` is ``pattern``-free using ``decomposition``.

    ``pattern`` must be connected (the corollary's hypothesis).
    ``decomposition_round_constant`` scales the charged O(log n) cost of
    the distributed decomposition (Theorem 7.2's hidden constant).
    """
    if not pattern.is_connected():
        raise ProtocolError("Corollary 7.3 requires a connected pattern H")
    p = pattern.num_vertices()
    if decomposition.p < p:
        raise ProtocolError(
            f"decomposition parameter {decomposition.p} < |V(H)| = {p}"
        )
    n = graph.num_vertices()
    decomposition_rounds = decomposition_round_constant * max(
        1, math.ceil(math.log2(max(2, n)))
    )
    formula = formulas.contains_subgraph(pattern)
    automaton = compile_formula(formula, ())

    # Treedepth budget for the per-union runs: the elimination-tree
    # protocol needs d with 2^d >= depth; td(G_I) <= bound, so d = bound
    # always suffices (Algorithm 2's d is a promise, not a measurement).
    checking_rounds = 0
    runs = 0
    max_bits = 0
    found = False
    for index_set in decomposition.union_subsets(p):
        sub = union_graph(graph, decomposition, index_set)
        if sub.num_vertices() == 0:
            continue
        bound = decomposition.treedepth_bound(len(index_set))
        subset_rounds = 0
        for component in sub.connected_components():
            piece = sub.induced_subgraph(component)
            if piece.num_vertices() < p:
                continue  # too small to host H; a real run would accept
            # Doubling search on the promise d: Algorithm 2 costs O(4^d)
            # rounds, so starting at d=1 and growing until the protocol
            # stops reporting "td > d" keeps the cost O(4^{td}) instead of
            # O(4^{bound}); the failed attempts' rounds are charged too.
            outcome = None
            attempt_rounds = 0
            for d in range(1, bound + 1):
                outcome = decide_pipeline(automaton, piece, d=d, budget=budget)
                attempt_rounds += outcome.total_rounds
                if not outcome.treedepth_exceeded:
                    break
            runs += 1
            assert outcome is not None
            if outcome.treedepth_exceeded:
                raise ProtocolError(
                    "low treedepth decomposition guarantee violated: "
                    f"component of parts {index_set} has treedepth > {bound}"
                )
            subset_rounds = max(subset_rounds, attempt_rounds)
            max_bits = max(max_bits, outcome.max_message_bits)
            if outcome.accepted:  # the automaton decides contains-H
                found = True
        checking_rounds += subset_rounds
    return HFreenessResult(
        h_free=not found,
        decomposition_rounds=decomposition_rounds,
        checking_rounds=checking_rounds,
        subsets_checked=sum(1 for _ in decomposition.union_subsets(p)),
        runs=runs,
        max_message_bits=max_bits,
    )
