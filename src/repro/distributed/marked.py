"""Section 6 (optmarked-φ): is the marked set an optimum solution?

The paper's recipe, implemented verbatim: the root collects

1. the OPT table for φ(S) (the optimization bottom-up phase),
2. the homomorphism class of the *closed* formula ψ = φ[S := Mark] — here
   realized by running the same automaton with the marked set's membership
   bits fixed on each Base symbol (labeled-graph semantics),
3. the total weight of the marked set (a sum convergecast),

and accepts iff ψ holds and the marked weight equals the optimum.
All three ride the same single convergecast wave.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, Generator, Optional, Tuple

from ..algebra import TreeAutomaton
from ..algebra.symbols import enumerate_symbol_choices
from ..congest import Inbox, ItemCollector, NodeContext, node_program, run_protocol
from ..errors import ProtocolError
from ..graph import Graph, Vertex, canonical_edge
from ..mso import syntax as sx
from .elimination import build_elimination_tree
from .model_checking import ClassCodec, local_base_symbol, node_inputs_from_elimination


def optmarked_program(
    automaton: TreeAutomaton, codec: ClassCodec, maximize: bool
):
    """Node program: joint OPT-table / marked-class / marked-weight wave."""
    sign = 1 if maximize else -1

    @node_program
    def program(ctx: NodeContext) -> Generator[None, Inbox, bool]:
        depth: int = ctx.input["depth"]
        children: Tuple[Vertex, ...] = tuple(ctx.input["children"])
        parent: Optional[Vertex] = ctx.input["parent"]
        bag: Tuple[Vertex, ...] = tuple(ctx.input["bag"])
        positions: Tuple[int, ...] = tuple(ctx.input["anc_edge_positions"])

        base_marked = local_base_symbol(ctx, automaton.scope)  # vbits/ebits = marks
        owned_edges = [
            (pos, canonical_edge(bag[pos - 1], ctx.node)) for pos in positions
        ]
        edge_weights: Dict[int, int] = dict(ctx.input.get("edge_weights", {}))

        def better(candidate: int, incumbent: Optional[int]) -> bool:
            return incumbent is None or sign * candidate > sign * incumbent

        # (1) OPT table over all local choices.
        table: Dict[Any, int] = {}
        for choice in enumerate_symbol_choices(
            base_marked.structure, automaton.scope, ctx.node, owned_edges
        ):
            state = automaton.leaf(choice.symbol)
            w = 0
            for item in choice.chosen[0]:
                if isinstance(item, tuple):
                    pos = next(p for p, e in owned_edges if e == item)
                    w += edge_weights.get(pos, 1)
                else:
                    w += ctx.input.get("weight", 1)
            if better(w, table.get(state)):
                table[state] = w
        # (2) class of the marked assignment; (3) local marked weight.
        marked_state = automaton.leaf(base_marked)
        marked_weight = 0
        if 0 in base_marked.vbits:
            marked_weight += ctx.input.get("weight", 1)
        for pos, bits in base_marked.ebits:
            if 0 in bits:
                marked_weight += edge_weights.get(pos, 1)

        collector = ItemCollector("mk", children)
        while not collector.complete:
            inbox = yield
            collector.absorb(inbox)
        for child in children:
            items = collector.items_from(child)
            header = items[0]
            child_marked_state = codec.decode(header[0])
            marked_weight += header[1]
            marked_state = automaton.glue(depth, marked_state, child_marked_state)
            child_table = {
                codec.decode(class_id): weight for class_id, weight in items[1:]
            }
            merged: Dict[Any, int] = {}
            for s1, w1 in table.items():
                for s2, w2 in child_table.items():
                    s = automaton.glue(depth, s1, s2)
                    if better(w1 + w2, merged.get(s)):
                        merged[s] = w1 + w2
            table = merged
        marked_state = automaton.forget(depth, marked_state)
        table = _forget_table(automaton, depth, table, better)

        if parent is not None:
            ctx.send(parent, ("mk", (codec.encode(marked_state), marked_weight)))
            yield
            for s in sorted(table, key=codec.encode):
                ctx.send(parent, ("mk", (codec.encode(s), table[s])))
                yield
            ctx.send(parent, ("mk/end", None))
            # Wait for the verdict flood.
            while True:
                inbox = yield
                if parent in inbox:
                    payload = inbox[parent]
                    if isinstance(payload, tuple) and payload and payload[0] == "verdict":
                        verdict = payload[1]
                        for child in children:
                            ctx.send(child, ("verdict", verdict))
                        return verdict
        # Root: combine the three ingredients.
        optimum: Optional[int] = None
        for s, w in table.items():
            if automaton.accepts(s) and better(w, optimum):
                optimum = w
        verdict = (
            automaton.accepts(marked_state)
            and optimum is not None
            and marked_weight == optimum
        )
        for child in children:
            # Children still yield awaiting the verdict, so this delivers.
            ctx.send(child, ("verdict", verdict))  # repro: noqa[RL003]
        return verdict

    return program


def _forget_table(automaton, depth, table, better):
    out: Dict[Any, int] = {}
    for s, w in table.items():
        fs = automaton.forget(depth, s)
        if better(w, out.get(fs)):
            out[fs] = w
    return out


@dataclass
class DistributedOptMarked:
    """Outcome of optmarked-φ."""

    accepted: bool
    treedepth_exceeded: bool
    total_rounds: int
    max_message_bits: int


def optmarked_distributed(
    automaton: TreeAutomaton,
    graph: Graph,
    d: int,
    marked: FrozenSet[Any],
    maximize: bool = True,
    budget: Optional[int] = None,
) -> DistributedOptMarked:
    """Is ``marked`` an optimum solution of φ(S)?  (automaton scope = (S,))"""
    if len(automaton.scope) != 1 or not automaton.scope[0].sort.is_set:
        raise ProtocolError("optmarked needs scope = one free set variable")
    elim = build_elimination_tree(graph, d, budget=budget)
    if not elim.accepted:
        return DistributedOptMarked(
            accepted=False,
            treedepth_exceeded=True,
            total_rounds=elim.rounds,
            max_message_bits=elim.max_message_bits,
        )
    var = automaton.scope[0]
    inputs = node_inputs_from_elimination(
        graph, elim, assignment={var: frozenset(marked)}, scope=(var,)
    )
    codec = ClassCodec(automaton)
    result = run_protocol(
        graph,
        optmarked_program(automaton, codec, maximize),
        inputs=inputs,
        budget=budget,
        max_rounds=500_000,
    )
    verdicts = set(result.outputs.values())
    if len(verdicts) != 1:
        raise ProtocolError(f"verdicts disagree: {result.outputs}")
    return DistributedOptMarked(
        accepted=bool(verdicts.pop()),
        treedepth_exceeded=False,
        total_rounds=elim.rounds + result.rounds,
        max_message_bits=max(elim.max_message_bits, result.metrics.max_message_bits),
    )
