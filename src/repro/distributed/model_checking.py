"""Theorem 6.1 (decision): distributed MSO model checking in CONGEST.

Given the elimination tree from Algorithm 2 (each node knows parent,
children, depth, bag, and which ancestors it is adjacent to), the bottom-up
phase of Algorithm 1 is executed as a convergecast:

* every node builds its Base symbol locally (its depth, its ancestor-edge
  positions, its own labels — all local knowledge),
* a leaf sends the class of Forget(Glue-chain(Base)) to its parent,
* an internal node waits for the classes of all children, glues them with
  its Base symbol, forgets itself, and forwards one class id,
* the root applies the acceptance predicate and floods the verdict down.

Each message is a single class id: log₂|𝒞| bits, a constant for fixed
(φ, d) — the O(log |𝒞|)-bit messages of the paper's proof.  The protocol
is data-driven, so it takes depth(T) + depth(T) ≤ 2·2^d rounds after the
tree is built.

The shared automaton object plays the role of the common-knowledge
"algorithm": both endpoints of an edge use the same class-id table, the
distributed analogue of hard-coding 𝒞 and ⊙_f into every node.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Generator, List, Optional, Tuple

from ..algebra import TreeAutomaton
from ..algebra.minimize import (
    graph_label_alphabet,
    minimization_stats,
    minimized_automaton,
)
from ..algebra.symbols import BaseStructure, BaseSymbol
from ..algebra.tables import TabulatedAutomaton, tabulated
from ..congest import Inbox, NodeContext, default_budget, node_program, run_protocol
from ..errors import FaultToleranceExceeded, ProtocolError
from ..graph import Graph, Vertex, canonical_edge
from ..mso import syntax as sx
from ..obs import Tracer, maybe_phase
from ..obs.registry import registry as _registry
from ..runconfig import RunConfig, resolve_tracer
from .elimination import DistributedEliminationResult, build_elimination_tree

#: Pipelines historically default to the cold reference scheduler.
PIPELINE_DEFAULTS = {"engine": "naive"}


def elimination_forest_depth(elim: "DistributedEliminationResult") -> int:
    """The deepest node of the recovered elimination forest.

    Algorithm 2 proves treedepth ``<= d`` with a forest up to
    ``2^d - 1`` deep (the paper's ``D``) — the recovered depth, not the
    promise, is what bounds the boundary levels a run touches.
    """
    return max((out.depth for out in elim.outputs.values()), default=0)


def engine_automaton(
    automaton: TreeAutomaton,
    engine: str,
    *,
    minimize: bool = False,
    d: Optional[int] = None,
    labels: Tuple[str, ...] = (),
    forest_depth: Optional[int] = None,
) -> TreeAutomaton:
    """The automaton a node program should evaluate under ``engine``.

    With ``minimize`` (and a depth bound ``d``), the state-space
    reduction passes of :mod:`repro.algebra.minimize` are applied first:
    every transition lands on its equivalence-class representative, so
    all engines — and hence all CONGEST transcripts — see the same
    canonical states and the wire format stays byte-identical across
    engines.  A blown minimization budget silently falls back to the
    unminimized automaton (the fallback is memoized and counted in the
    metrics registry).

    ``forest_depth`` is the recovered elimination forest's depth
    (:func:`elimination_forest_depth`); the quotient closure only covers
    boundary levels ``0..d``, so a deeper forest — Algorithm 2 admits up
    to ``2^d - 1`` — bypasses the wrapper (counted in
    ``repro_minimize_depth_bypass_total``): its runs glue against
    partner values the refinement never saw, and applying the quotient
    there can change answers.

    ``vectorized`` additionally swaps in the shared
    :class:`TabulatedAutomaton` kernel — value-identical transitions, so
    the CONGEST layer cannot tell the difference; the other engines run
    the (possibly minimized) automaton as-is.
    """
    base = automaton
    if minimize and d is not None:
        if forest_depth is not None and forest_depth > d:
            _registry().counter(
                "repro_minimize_depth_bypass_total",
                "Runs whose elimination forest outgrew the minimization "
                "closure.",
            ).inc()
        else:
            wrapper = minimized_automaton(automaton, d=d, labels=labels)
            if wrapper is not None:
                base = wrapper
    if engine == "vectorized":
        return tabulated(base)
    return base


class _IdCodec:
    """Per-program bridge between kernel state ids and codec class ids.

    Memoizes both directions so the hot loops never re-hash structured
    states; ``encode`` still reaches :meth:`ClassCodec.encode` on each
    id's *first* use, preserving the first-encounter class-id assignment
    order of the state-level code paths.
    """

    def __init__(self, automaton: TabulatedAutomaton, codec: "ClassCodec"):
        self._automaton = automaton
        self._codec = codec
        self._classes: Dict[int, int] = {}
        self._ids: Dict[int, int] = {}

    def encode(self, sid: int) -> int:
        class_id = self._classes.get(sid)
        if class_id is None:
            class_id = self._codec.encode(self._automaton.state_of(sid))
            self._classes[sid] = class_id
        return class_id

    def decode(self, class_id: int) -> int:
        sid = self._ids.get(class_id)
        if sid is None:
            sid = self._automaton.id_of(self._codec.decode(class_id))
            self._ids[class_id] = sid
        return sid


class ClassCodec:
    """Shared class-id table: the simulated 'constant-size' 𝒞 encoding."""

    def __init__(self, automaton: TreeAutomaton):
        self._automaton = automaton
        self._by_id: List[Any] = []
        self._ids: Dict[Any, int] = {}

    def encode(self, state: Any) -> int:
        if state not in self._ids:
            self._ids[state] = len(self._by_id)
            self._by_id.append(state)
        return self._ids[state]

    def decode(self, class_id: int) -> Any:
        return self._by_id[class_id]

    @property
    def num_classes(self) -> int:
        return len(self._by_id)


def local_base_symbol(ctx: NodeContext, scope: Tuple[sx.Var, ...]) -> BaseSymbol:
    """Build the node's Base symbol from purely local inputs.

    ``ctx.input`` carries: depth, bag, anc_edge_positions, labels,
    edge_labels (ancestor position -> labels), and per-variable membership
    bits when the run checks a fixed assignment (optmarked / labeled runs).
    """
    depth = ctx.input["depth"]
    positions = tuple(ctx.input["anc_edge_positions"])
    elabels = tuple(
        (pos, frozenset(ctx.input.get("edge_labels", {}).get(pos, ())))
        for pos in positions
    )
    structure = BaseStructure(
        depth=depth,
        anc_edges=positions,
        vlabels=frozenset(ctx.input.get("labels", ())),
        elabels=elabels,
    )
    vbits = frozenset(ctx.input.get("vbits", ()))
    ebits = tuple(
        (pos, frozenset(ctx.input.get("ebits", {}).get(pos, ())))
        for pos in positions
    )
    return BaseSymbol(structure=structure, vbits=vbits, ebits=ebits)


def decision_program(automaton: TreeAutomaton, codec: ClassCodec):
    """Node program factory for the bottom-up decision convergecast.

    When handed a :class:`TabulatedAutomaton` (``engine="vectorized"``),
    the per-node Forget(Glue-chain(·)) replay runs over integer state ids
    with whole-node join memoization; the messages carry the same codec
    class ids either way.
    """
    tab = automaton if isinstance(automaton, TabulatedAutomaton) else None
    ids = _IdCodec(tab, codec) if tab is not None else None

    @node_program(rounds="20 + 6*2**d + 2*n")
    def program(ctx: NodeContext) -> Generator[None, Inbox, bool]:
        depth: int = ctx.input["depth"]
        children: Tuple[Vertex, ...] = tuple(ctx.input["children"])
        parent: Optional[Vertex] = ctx.input["parent"]

        symbol = local_base_symbol(ctx, automaton.scope)
        if tab is not None:
            sid = tab.leaf_id(symbol)
        else:
            state = automaton.leaf(symbol)
        pending = set(children)
        child_states: Dict[Vertex, Any] = {}
        # Bottom-up phase: wait for every child's class.
        with ctx.phase("convergecast"):
            while pending:
                inbox = yield
                for sender, payload in inbox.items():
                    if (
                        sender in pending
                        and isinstance(payload, tuple)
                        and payload
                        and payload[0] == "class"
                    ):
                        child_states[sender] = (
                            ids.decode(payload[1])
                            if tab is not None
                            else codec.decode(payload[1])
                        )
                        pending.discard(sender)
            if tab is not None:
                sid = tab.fold_decide(
                    depth, sid, tuple(child_states[c] for c in children)
                )
                if parent is not None:
                    ctx.send(parent, ("class", ids.encode(sid)))
            else:
                for child in children:
                    state = automaton.glue(depth, state, child_states[child])
                state = automaton.forget(depth, state)
                if parent is not None:
                    ctx.send(parent, ("class", codec.encode(state)))
        # Top-down verdict flood.
        with ctx.phase("verdict-flood"):
            if parent is None:
                verdict = (
                    tab.accepts_id(sid) if tab is not None
                    else automaton.accepts(state)
                )
                for child in children:
                    # Children still yield awaiting the verdict flood.
                    ctx.send(child, ("verdict", verdict))  # repro: noqa[RL003]
                return verdict
            while True:
                inbox = yield
                if parent in inbox:
                    payload = inbox[parent]
                    if isinstance(payload, tuple) and payload and payload[0] == "verdict":
                        verdict = payload[1]
                        for child in children:
                            ctx.send(child, ("verdict", verdict))
                        return verdict

    return program


@dataclass
class DistributedDecision:
    """Result of the full Theorem 6.1 decision pipeline."""

    accepted: bool
    treedepth_exceeded: bool
    total_rounds: int
    elimination_rounds: int
    checking_rounds: int
    max_message_bits: int
    num_classes: int
    total_messages: int = 0
    minimized: bool = False


def node_inputs_from_elimination(
    graph: Graph,
    elim: DistributedEliminationResult,
    assignment: Optional[Dict[sx.Var, Any]] = None,
    scope: Tuple[sx.Var, ...] = (),
) -> Dict[Vertex, Dict[str, Any]]:
    """Package each node's local knowledge for the checking protocols."""
    inputs: Dict[Vertex, Dict[str, Any]] = {}
    assignment = assignment or {}
    for v, out in elim.outputs.items():
        edge_labels = {}
        weights_edges = {}
        for pos in out.anc_edge_positions:
            ancestor = out.bag[pos - 1]
            edge_labels[pos] = tuple(sorted(graph.edge_labels(ancestor, v)))
            weights_edges[pos] = graph.edge_weight(ancestor, v)
        vbits = frozenset(
            i
            for i, var in enumerate(scope)
            if var.sort.is_vertex_kind and v in _as_set(assignment.get(var, frozenset()))
        )
        ebits = {
            pos: frozenset(
                i
                for i, var in enumerate(scope)
                if not var.sort.is_vertex_kind
                and canonical_edge(out.bag[pos - 1], v)
                in _as_set(assignment.get(var, frozenset()))
            )
            for pos in out.anc_edge_positions
        }
        inputs[v] = {
            "depth": out.depth,
            "parent": out.parent,
            "children": out.children,
            "bag": out.bag,
            "anc_edge_positions": out.anc_edge_positions,
            "labels": tuple(sorted(graph.vertex_labels(v))),
            "edge_labels": edge_labels,
            "weight": graph.vertex_weight(v),
            "edge_weights": weights_edges,
            "vbits": vbits,
            "ebits": ebits,
        }
    return inputs


def _as_set(value: Any):
    if isinstance(value, frozenset):
        return value
    return frozenset({value})


def decide_pipeline(
    formula_automaton: TreeAutomaton,
    graph: Graph,
    d: int,
    assignment: Optional[Dict[sx.Var, Any]] = None,
    budget: Optional[int] = None,
    tracer: Optional[Tracer] = None,
    inbox_order: Optional[str] = None,
    seed: Optional[int] = None,
    faults=None,
    retry=None,
    engine: Optional[str] = None,
    minimize: Optional[bool] = None,
    codec: Optional[ClassCodec] = None,
    config: Optional[RunConfig] = None,
) -> DistributedDecision:
    """Run the full pipeline: Algorithm 2, then the decision convergecast.

    ``formula_automaton`` must be compiled for the scope matching
    ``assignment`` (empty scope for closed formulas).  When a tracer is
    given (or installed), the run is attributed to the ``elimination`` and
    ``decision`` harness phases with the protocols' finer spans nested
    inside.  ``inbox_order`` / ``seed`` select an adversarial delivery
    order for both phases (see :class:`~repro.congest.runtime.Simulation`).

    ``faults`` (a :class:`repro.faults.FaultPlan`) subjects *both* phases
    to the same adversary; ``retry`` (a :class:`repro.faults.RetryPolicy`)
    wraps both protocols in the redundancy-lockstep synchronizer.  The
    decision requires every node alive end to end: any crash raises
    :class:`~repro.errors.FaultToleranceExceeded` — a verdict must never
    be computed on a partial network, and with bounded transient loss plus
    ``retry`` the returned verdict equals the faultless one or the run
    fails closed.

    All execution knobs may instead be supplied as one validated
    ``config=`` :class:`~repro.runconfig.RunConfig` (mutually exclusive
    with the individual keywords).
    """
    cfg = RunConfig.from_kwargs(
        config,
        defaults=PIPELINE_DEFAULTS,
        budget=budget,
        trace=tracer,
        inbox_order=inbox_order,
        seed=seed,
        faults=faults,
        retry=retry,
        engine=engine,
        minimize=minimize,
        codec=codec,
    )
    tracer = resolve_tracer(cfg.trace)
    elim = build_elimination_tree(
        graph, d, budget=cfg.budget, tracer=tracer,
        inbox_order=cfg.inbox_order, seed=cfg.seed, faults=cfg.faults,
        retry=cfg.retry, engine=cfg.engine,
    )
    if elim.crashed:
        raise FaultToleranceExceeded(
            f"nodes {sorted(map(repr, elim.crashed))} crashed during "
            "elimination; a model-checking verdict needs the whole network",
            round=elim.rounds,
        )
    if not elim.accepted:
        return DistributedDecision(
            accepted=False,
            treedepth_exceeded=True,
            total_rounds=elim.rounds,
            elimination_rounds=elim.rounds,
            checking_rounds=0,
            max_message_bits=elim.max_message_bits,
            num_classes=0,
            total_messages=elim.total_messages,
        )
    scope = formula_automaton.scope
    inputs = node_inputs_from_elimination(graph, elim, assignment, scope)
    codec = cfg.codec if cfg.codec is not None else ClassCodec(formula_automaton)
    labels = graph_label_alphabet(graph)
    forest_depth = elimination_forest_depth(elim)
    program = decision_program(
        engine_automaton(
            formula_automaton, cfg.engine,
            minimize=cfg.minimize_enabled, d=d,
            labels=labels, forest_depth=forest_depth,
        ),
        codec,
    )
    minimized = (
        cfg.minimize_enabled and forest_depth <= d
        and minimization_stats(formula_automaton, d=d, labels=labels)
        is not None
    )
    run_budget = cfg.budget if cfg.budget is not None else default_budget(
        graph.num_vertices()
    )
    max_rounds = 20 + 6 * (2 ** d) + 2 * graph.num_vertices()
    if cfg.retry is not None:
        from ..faults import reliable_program

        program = reliable_program(program, cfg.retry)
        run_budget = cfg.retry.physical_budget(run_budget)
        max_rounds = cfg.retry.physical_max_rounds(max_rounds)
    with maybe_phase(tracer, "decision"):
        result = run_protocol(
            graph,
            program,
            inputs=inputs,
            budget=run_budget,
            max_rounds=max_rounds,
            tracer=tracer,
            inbox_order=cfg.inbox_order,
            seed=cfg.seed,
            faults=cfg.faults,
            engine=cfg.engine,
        )
    if result.crashed:
        raise FaultToleranceExceeded(
            f"nodes {sorted(map(repr, result.crashed))} crashed during the "
            "decision convergecast; the verdict cannot be trusted",
            round=result.rounds,
        )
    outputs = result.outputs
    if len(set(outputs.values())) != 1:
        raise ProtocolError(f"verdicts disagree: {outputs}")
    accepted = next(iter(outputs.values()))
    return DistributedDecision(
        accepted=bool(accepted),
        treedepth_exceeded=False,
        total_rounds=elim.rounds + result.rounds,
        elimination_rounds=elim.rounds,
        checking_rounds=result.rounds,
        max_message_bits=max(elim.max_message_bits, result.metrics.max_message_bits),
        num_classes=codec.num_classes,
        total_messages=elim.total_messages + result.metrics.total_messages,
        minimized=minimized,
    )
