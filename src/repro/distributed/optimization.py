"""Theorem 6.1 (optimization): distributed max-φ / min-φ in CONGEST.

Bottom-up phase (Lemma 4.6): every node enumerates the intersections of
the free set variable with its *owned* items (itself + its ancestor
edges), builds its leaf OPT table, merges its children's tables, and
streams the forgotten table to its parent **one (class id, weight) entry
per round** — this is exactly the paper's "each step requires |𝒞| rounds"
accounting, realized by the CONGEST budget instead of assumed.

Top-down phase (the ARGOPT walk of Algorithm 1, lines 11-26): the root
picks the best accepting class; every node, told its subtree's optimal
class, replays its locally stored back-pointers to recover which of its
owned items are selected and which class each child must realize.

Every node ends up knowing exactly its own part of the optimum solution —
the "S is selected" output format of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, Generator, List, Optional, Tuple

from ..algebra import TreeAutomaton
from ..algebra.symbols import SymbolChoice, enumerate_symbol_choices
from ..algebra.tables import TabulatedAutomaton
from ..congest import Inbox, ItemCollector, NodeContext, node_program, run_protocol
from ..errors import FaultToleranceExceeded, ProtocolError
from ..graph import Graph, Vertex, canonical_edge
from ..mso import syntax as sx
from ..obs import Tracer, maybe_phase
from ..runconfig import RunConfig
from .elimination import build_elimination_tree
from .model_checking import (
    PIPELINE_DEFAULTS,
    ClassCodec,
    _IdCodec,
    elimination_forest_depth,
    engine_automaton,
    graph_label_alphabet,
    local_base_symbol,
    minimization_stats,
    node_inputs_from_elimination,
    resolve_tracer,
)


@dataclass
class NodeSelection:
    """A node's local slice of the optimal solution."""

    feasible: bool
    vertex_selected: bool = False
    edge_positions: Tuple[int, ...] = ()
    optimum: Optional[int] = None  # set at the root only


def optimization_program(
    automaton: TreeAutomaton,
    codec: ClassCodec,
    maximize: bool,
):
    """Node program factory for the optimization protocol.

    With a :class:`TabulatedAutomaton` (``engine="vectorized"``) the OPT
    tables are merged through the kernel's digest-memoized
    :meth:`~TabulatedAutomaton.merge_opt` / :meth:`~TabulatedAutomaton.fold_forget_opt`
    joins over integer ids; back-pointers and the ARGOPT walk operate on
    the same ids, and the streamed (class id, weight) entries are
    unchanged.
    """
    sign = 1 if maximize else -1
    var = automaton.scope[0]
    tab = automaton if isinstance(automaton, TabulatedAutomaton) else None
    ids = _IdCodec(tab, codec) if tab is not None else None

    @node_program
    def program(ctx: NodeContext) -> Generator[None, Inbox, NodeSelection]:
        depth: int = ctx.input["depth"]
        children: Tuple[Vertex, ...] = tuple(ctx.input["children"])
        parent: Optional[Vertex] = ctx.input["parent"]
        bag: Tuple[Vertex, ...] = tuple(ctx.input["bag"])
        positions: Tuple[int, ...] = tuple(ctx.input["anc_edge_positions"])

        # -- local leaf table over owned-item choices ---------------------
        base = local_base_symbol(ctx, automaton.scope)
        owned_edges = [
            (pos, canonical_edge(bag[pos - 1], ctx.node)) for pos in positions
        ]
        edge_weights: Dict[int, int] = dict(ctx.input.get("edge_weights", {}))

        def weight_of(chosen: Tuple[Any, ...]) -> int:
            total = 0
            for item in chosen:
                if isinstance(item, tuple):
                    pos = next(p for p, e in owned_edges if e == item)
                    total += edge_weights.get(pos, 1)
                else:
                    total += ctx.input.get("weight", 1)
            return total

        def better(candidate: int, incumbent: Optional[int]) -> bool:
            return incumbent is None or sign * candidate > sign * incumbent

        encode = ids.encode if tab is not None else codec.encode
        decode = ids.decode if tab is not None else codec.decode
        table: Dict[Any, int] = {}
        leaf_choice: Dict[Any, SymbolChoice] = {}
        for choice in enumerate_symbol_choices(
            base.structure, automaton.scope, ctx.node, owned_edges
        ):
            state = (
                tab.leaf_id(choice.symbol) if tab is not None
                else automaton.leaf(choice.symbol)
            )
            w = weight_of(choice.chosen[0])
            if better(w, table.get(state)):
                table[state] = w
                leaf_choice[state] = choice

        # -- receive children's tables (streamed) -------------------------
        with ctx.phase("table-streaming"):
            collector = ItemCollector("opt", children)
            while not collector.complete:
                inbox = yield
                collector.absorb(inbox)
            glue_back: List[Tuple[Vertex, Dict[Any, Tuple[Any, Any]]]] = []
            for child in children:
                child_table = {
                    decode(class_id): weight
                    for class_id, weight in collector.items_from(child)
                }
                if tab is not None:
                    merged_pairs, back_pairs = tab.merge_opt(
                        depth,
                        tuple(
                            (s1, table[s1])
                            for s1 in sorted(table, key=encode)
                        ),
                        tuple(
                            (s2, child_table[s2])
                            for s2 in sorted(child_table, key=encode)
                        ),
                        sign,
                    )
                    table = dict(merged_pairs)
                    back = dict(back_pairs)
                else:
                    merged: Dict[Any, int] = {}
                    back = {}
                    for s1 in sorted(table, key=codec.encode):
                        for s2 in sorted(child_table, key=codec.encode):
                            s = automaton.glue(depth, s1, s2)
                            w = table[s1] + child_table[s2]
                            if better(w, merged.get(s)):
                                merged[s] = w
                                back[s] = (s1, s2)
                    table = merged
                glue_back.append((child, back))

            if tab is not None:
                forget_pairs, fback_pairs = tab.fold_forget_opt(
                    depth,
                    tuple((s, table[s]) for s in sorted(table, key=encode)),
                    sign,
                )
                forget_table: Dict[Any, int] = dict(forget_pairs)
                forget_back: Dict[Any, Any] = dict(fback_pairs)
            else:
                forget_table = {}
                forget_back = {}
                for s in sorted(table, key=codec.encode):
                    fs = automaton.forget(depth, s)
                    if better(table[s], forget_table.get(fs)):
                        forget_table[fs] = table[s]
                        forget_back[fs] = s

            # -- stream the forgotten table up ------------------------------
            if parent is not None:
                entries = [
                    (encode(s), w)
                    for s, w in sorted(
                        forget_table.items(), key=lambda kv: encode(kv[0])
                    )
                ]
                for class_id, weight in entries:
                    ctx.send(parent, ("opt", (class_id, weight)))
                    yield
                ctx.send(parent, ("opt/end", None))

        # -- ARGOPT: top-down class pick + back-pointer replay -------------
        with ctx.phase("argopt"):
            optimum: Optional[int] = None
            if parent is not None:
                my_class: Optional[Any] = None
                infeasible = False
                while my_class is None and not infeasible:
                    inbox = yield
                    if parent in inbox:
                        payload = inbox[parent]
                        if isinstance(payload, tuple) and payload:
                            if payload[0] == "pick":
                                my_class = decode(payload[1])
                            elif payload[0] == "infeasible":
                                infeasible = True
                if infeasible:
                    for child in children:
                        # Children still yield awaiting pick/infeasible.
                        ctx.send(child, ("infeasible", None))  # repro: noqa[RL003]
                    return NodeSelection(feasible=False)
            else:
                best: Optional[Any] = None
                for s in sorted(forget_table, key=encode):
                    accepted = (
                        tab.accepts_id(s) if tab is not None
                        else automaton.accepts(s)
                    )
                    if accepted and better(
                        forget_table[s], None if best is None else forget_table[best]
                    ):
                        best = s
                if best is None:
                    for child in children:
                        # Children still yield awaiting pick/infeasible.
                        ctx.send(child, ("infeasible", None))  # repro: noqa[RL003]
                    return NodeSelection(feasible=False)
                my_class = best
                optimum = forget_table[best]

            # -- replay local back-pointers, inform children ---------------
            state = forget_back[my_class]
            child_picks: Dict[Vertex, Any] = {}
            for child, back in reversed(glue_back):
                left, right = back[state]
                child_picks[child] = right
                state = left
            for child in children:
                # Children still yield awaiting their pick, so this delivers.
                ctx.send(child, ("pick", encode(child_picks[child])))  # repro: noqa[RL003]
        choice = leaf_choice[state]
        selected = choice.chosen[0]
        vertex_selected = any(not isinstance(item, tuple) for item in selected)
        selected_positions = tuple(
            pos
            for pos, e in owned_edges
            if any(isinstance(item, tuple) and item == e for item in selected)
        )
        return NodeSelection(
            feasible=True,
            vertex_selected=vertex_selected,
            edge_positions=selected_positions,
            optimum=optimum,
        )

    return program


@dataclass
class DistributedOptimization:
    """Outcome of the full optimization pipeline."""

    feasible: bool
    treedepth_exceeded: bool
    value: Optional[int]
    witness: FrozenSet[Any]
    total_rounds: int
    elimination_rounds: int
    optimization_rounds: int
    max_message_bits: int
    num_classes: int
    total_messages: int = 0
    minimized: bool = False


def optimize_pipeline(
    automaton: TreeAutomaton,
    graph: Graph,
    d: int,
    maximize: bool = True,
    budget: Optional[int] = None,
    tracer: Optional[Tracer] = None,
    inbox_order: Optional[str] = None,
    seed: Optional[int] = None,
    faults=None,
    retry=None,
    engine: Optional[str] = None,
    minimize: Optional[bool] = None,
    codec: Optional[ClassCodec] = None,
    config: Optional[RunConfig] = None,
) -> DistributedOptimization:
    """Run Algorithm 2 followed by the optimization protocol.

    ``automaton`` must be compiled with scope = (S,), the free set variable.
    ``inbox_order`` / ``seed`` / ``faults`` / ``retry`` / ``engine`` have
    the same semantics as in :func:`.model_checking.decide_pipeline`: both
    phases share the adversary, and any crash raises
    :class:`~repro.errors.FaultToleranceExceeded` — an optimum computed on
    a partial network proves nothing about the whole one.  All knobs may
    instead come as one ``config=`` :class:`~repro.runconfig.RunConfig`.
    """
    if len(automaton.scope) != 1 or not automaton.scope[0].sort.is_set:
        raise ProtocolError("optimization needs scope = one free set variable")
    cfg = RunConfig.from_kwargs(
        config,
        defaults=PIPELINE_DEFAULTS,
        budget=budget,
        trace=tracer,
        inbox_order=inbox_order,
        seed=seed,
        faults=faults,
        retry=retry,
        engine=engine,
        minimize=minimize,
        codec=codec,
    )
    tracer = resolve_tracer(cfg.trace)
    elim = build_elimination_tree(
        graph, d, budget=cfg.budget, tracer=tracer,
        inbox_order=cfg.inbox_order, seed=cfg.seed, faults=cfg.faults,
        retry=cfg.retry, engine=cfg.engine,
    )
    if elim.crashed:
        raise FaultToleranceExceeded(
            f"nodes {sorted(map(repr, elim.crashed))} crashed during "
            "elimination; an optimum needs the whole network",
            round=elim.rounds,
        )
    if not elim.accepted:
        return DistributedOptimization(
            feasible=False,
            treedepth_exceeded=True,
            value=None,
            witness=frozenset(),
            total_rounds=elim.rounds,
            elimination_rounds=elim.rounds,
            optimization_rounds=0,
            max_message_bits=elim.max_message_bits,
            num_classes=0,
            total_messages=elim.total_messages,
        )
    inputs = node_inputs_from_elimination(graph, elim)
    codec = cfg.codec if cfg.codec is not None else ClassCodec(automaton)
    labels = graph_label_alphabet(graph)
    forest_depth = elimination_forest_depth(elim)
    program = optimization_program(
        engine_automaton(
            automaton, cfg.engine,
            minimize=cfg.minimize_enabled, d=d,
            labels=labels, forest_depth=forest_depth,
        ),
        codec,
        maximize,
    )
    minimized = (
        cfg.minimize_enabled and forest_depth <= d
        and minimization_stats(automaton, d=d, labels=labels) is not None
    )
    run_budget = cfg.budget
    max_rounds = 500_000  # runaway guard only; progression is data-driven
    if cfg.retry is not None:
        from ..congest import default_budget
        from ..faults import reliable_program

        program = reliable_program(program, cfg.retry)
        if run_budget is None:
            run_budget = default_budget(graph.num_vertices())
        run_budget = cfg.retry.physical_budget(run_budget)
        max_rounds = cfg.retry.physical_max_rounds(max_rounds)
    with maybe_phase(tracer, "optimization"):
        result = run_protocol(
            graph,
            program,
            inputs=inputs,
            budget=run_budget,
            max_rounds=max_rounds,
            tracer=tracer,
            inbox_order=cfg.inbox_order,
            seed=cfg.seed,
            faults=cfg.faults,
            engine=cfg.engine,
        )
    if result.crashed:
        raise FaultToleranceExceeded(
            f"nodes {sorted(map(repr, result.crashed))} crashed during the "
            "optimization convergecast; the optimum cannot be trusted",
            round=result.rounds,
        )
    selections: Dict[Vertex, NodeSelection] = result.outputs
    feasible = all(sel.feasible for sel in selections.values())
    witness: set = set()
    value: Optional[int] = None
    if feasible:
        for v, sel in selections.items():
            if sel.optimum is not None:
                value = sel.optimum
            var = automaton.scope[0]
            if var.sort.is_vertex_kind and sel.vertex_selected:
                witness.add(v)
            if not var.sort.is_vertex_kind:
                bag = elim.outputs[v].bag
                for pos in sel.edge_positions:
                    witness.add(canonical_edge(bag[pos - 1], v))
    return DistributedOptimization(
        feasible=feasible,
        treedepth_exceeded=False,
        value=value,
        witness=frozenset(witness),
        total_rounds=elim.rounds + result.rounds,
        elimination_rounds=elim.rounds,
        optimization_rounds=result.rounds,
        max_message_bits=max(elim.max_message_bits, result.metrics.max_message_bits),
        num_classes=codec.num_classes,
        total_messages=elim.total_messages + result.metrics.total_messages,
        minimized=minimized,
    )

