"""Exception hierarchy for the repro package.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class GraphError(ReproError):
    """Invalid graph construction or query (unknown vertex, loop, ...)."""


class DecompositionError(ReproError):
    """An elimination forest or tree decomposition is invalid."""


class TreedepthExceededError(ReproError):
    """The input graph has treedepth larger than the promised bound.

    Distributed protocols report this instead of silently mis-deciding,
    mirroring the paper's "reports td(G) > d" outcome (Theorem 6.1).
    """

    def __init__(self, bound: int, message: str = ""):
        self.bound = bound
        super().__init__(message or f"graph has treedepth > {bound}")


class FormulaError(ReproError):
    """Malformed MSO formula (unbound variable, sort mismatch, parse error)."""


class CongestError(ReproError):
    """CONGEST model violation or simulator misuse."""


class PayloadTypeError(CongestError):
    """A message payload contains a value outside the Payload algebra.

    ``path`` names the offending sub-value (e.g. ``payload[2][0]``) so the
    error points at the exact culprit inside a nested container.
    """

    def __init__(self, path: str, type_name: str, hint: str = ""):
        self.path = path
        self.type_name = type_name
        message = f"{path}: {type_name} is not CONGEST-serializable"
        if hint:
            message += f" ({hint})"
        super().__init__(message)


class MessageTooLargeError(CongestError):
    """A single-round message exceeded the per-edge bit budget."""

    def __init__(self, bits: int, budget: int):
        self.bits = bits
        self.budget = budget
        super().__init__(f"message of {bits} bits exceeds CONGEST budget of {budget} bits")


class ProtocolError(CongestError):
    """A distributed protocol reached an inconsistent state."""


class FaultToleranceExceeded(CongestError):
    """Injected faults exceeded what the protocol can provably tolerate.

    Raised instead of returning a possibly-wrong answer: a retry bound ran
    out, a neighbor went silent past the retransmission window, or a crash
    left the surviving nodes with an inconsistent result.  ``node`` and
    ``round`` (when known) locate the first detection point.
    """

    def __init__(self, message: str, node=None, round: int = 0):
        self.node = node
        self.round = round
        super().__init__(message)


class CertificationError(ReproError):
    """Raised by the certification prover on unsatisfiable instances."""


class UnknownEngineError(CongestError):
    """An ``engine=`` value that names no registered round scheduler.

    Raised at configuration time (:class:`repro.api.RunConfig`,
    :class:`repro.api.Session`) and by the simulator itself, so a typo
    fails fast with the list of valid engines instead of surfacing as a
    late ``KeyError`` inside the runtime.
    """

    def __init__(self, engine, valid=()):
        self.engine = engine
        self.valid = tuple(valid)
        choices = ", ".join(repr(name) for name in self.valid)
        super().__init__(
            f"unknown engine {engine!r}; valid engines: {choices}"
        )
