"""Bounded expansion: degeneracy, low treedepth decompositions (paper §7)."""

from .degeneracy import degeneracy_ordering
from .low_treedepth import (
    LowTreedepthDecomposition,
    depth_coloring_decomposition,
    grid_residue_decomposition,
    union_graph,
    verify_decomposition,
)

__all__ = [
    "LowTreedepthDecomposition",
    "degeneracy_ordering",
    "depth_coloring_decomposition",
    "grid_residue_decomposition",
    "union_graph",
    "verify_decomposition",
]
