"""Degeneracy orderings.

Graphs of bounded expansion have bounded degeneracy; the N-OdM distributed
low-treedepth decomposition is built on distributed degeneracy
approximation (Theorem 7.2's proof sketch).  We provide the sequential
ordering both as a building block and as a test oracle.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..graph import Graph, Vertex


def degeneracy_ordering(graph: Graph) -> Tuple[List[Vertex], int]:
    """Return (ordering, degeneracy).

    The ordering repeatedly removes a minimum-degree vertex; the degeneracy
    is the largest degree seen at removal time.  Every vertex has at most
    ``degeneracy`` neighbors *later* in the ordering.
    """
    degrees: Dict[Vertex, int] = {v: graph.degree(v) for v in graph.vertices()}
    adjacency = {v: set(graph.neighbors(v)) for v in graph.vertices()}
    remaining = set(degrees)
    order: List[Vertex] = []
    degeneracy = 0
    while remaining:
        v = min(remaining, key=lambda u: (degrees[u], u))
        degeneracy = max(degeneracy, degrees[v])
        order.append(v)
        remaining.discard(v)
        for u in adjacency[v]:
            if u in remaining:
                degrees[u] -= 1
                adjacency[u].discard(v)
    return order, degeneracy
