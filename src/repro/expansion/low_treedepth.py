"""Low treedepth decompositions (Theorems 7.1 / 7.2, simulated per DESIGN §4).

A *low treedepth decomposition with parameter p* partitions V(G) so that
the union of any q <= p parts induces a subgraph of bounded treedepth.
The Nešetřil–Ossona de Mendez construction (transitive fraternal
augmentations, O(log n) CONGEST rounds) is replaced by two concrete
constructions with *verified* guarantees:

* :func:`depth_coloring_decomposition` — color by depth in an elimination
  forest.  Any q parts induce treedepth <= q (a root path meets each depth
  class once).  The number of parts equals the forest depth, which is
  bounded for bounded-treedepth inputs and Θ(√n) on grids — documented as
  the price of the substitution.
* :func:`grid_residue_decomposition` — the (x mod p+1, y mod p+1) residue
  coloring of a grid: (p+1)² parts regardless of n (the "constant f(p)" of
  Theorem 7.1), and the union of any q <= p parts has components confined
  to a (p+1) × (p+1) window, hence treedepth <= (p+1)².

Corollary 7.3 only needs (i) f(p) parts so every p-vertex subgraph lies in
some union of <= p parts and (ii) a treedepth bound for those unions, so
either construction slots into the H-freeness pipeline unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Dict, Iterator, List, Optional, Tuple

from ..errors import DecompositionError
from ..graph import Graph, Vertex
from ..treedepth import best_heuristic_forest, treedepth


@dataclass(frozen=True)
class LowTreedepthDecomposition:
    """A vertex partition with a per-union treedepth guarantee.

    ``treedepth_bound(q)`` bounds td(G[union of any q <= p parts]).
    """

    p: int
    part_of: Dict[Vertex, int]
    num_parts: int
    bound_kind: str  # "linear" (bound = q) or "window" (bound = (p+1)^2)

    def parts(self) -> Dict[int, List[Vertex]]:
        out: Dict[int, List[Vertex]] = {}
        for v, i in self.part_of.items():
            out.setdefault(i, []).append(v)
        return {i: sorted(vs) for i, vs in out.items()}

    def treedepth_bound(self, q: int) -> int:
        if self.bound_kind == "linear":
            return q
        return (self.p + 1) ** 2

    def union_subsets(self, q: int) -> Iterator[Tuple[int, ...]]:
        """All index sets of at most q parts (the I of Corollary 7.3)."""
        indices = sorted({i for i in self.part_of.values()})
        for size in range(1, min(q, len(indices)) + 1):
            yield from combinations(indices, size)


def depth_coloring_decomposition(graph: Graph, p: int) -> LowTreedepthDecomposition:
    """Partition by elimination-forest depth.

    Correctness: every edge of G joins an ancestor-descendant pair in the
    forest, a root path contains one vertex per depth, so the union of q
    depth classes inherits an elimination forest of depth <= q.
    """
    forest = best_heuristic_forest(graph)
    part_of = {v: forest.depth_of(v) - 1 for v in graph.vertices()}
    return LowTreedepthDecomposition(
        p=p,
        part_of=part_of,
        num_parts=forest.depth(),
        bound_kind="linear",
    )


def grid_residue_decomposition(
    rows: int, cols: int, p: int
) -> LowTreedepthDecomposition:
    """The residue coloring of the rows x cols grid (vertex r*cols + c).

    Part of (r, c) is (r mod p+1, c mod p+1), flattened.  A connected
    subgraph using at most p parts cannot cross p+1 consecutive rows or
    columns (that would require all p+1 residues of that axis), so its
    components fit in a (p+1) x (p+1) window.
    """
    if rows < 1 or cols < 1 or p < 1:
        raise DecompositionError("grid_residue_decomposition needs rows, cols, p >= 1")
    period = p + 1
    part_of = {
        r * cols + c: (r % period) * period + (c % period)
        for r in range(rows)
        for c in range(cols)
    }
    return LowTreedepthDecomposition(
        p=p,
        part_of=part_of,
        num_parts=period * period,
        bound_kind="window",
    )


def union_graph(
    graph: Graph, decomposition: LowTreedepthDecomposition, index_set: Tuple[int, ...]
) -> Graph:
    """The subgraph G_I induced by the selected parts."""
    chosen = {
        v for v, i in decomposition.part_of.items() if i in set(index_set)
    }
    return graph.induced_subgraph(chosen)


def verify_decomposition(
    graph: Graph,
    decomposition: LowTreedepthDecomposition,
    q: Optional[int] = None,
    exact_limit: int = 14,
) -> None:
    """Check the treedepth guarantee on every union of <= q parts.

    Uses the exact solver per connected component (skipping components
    larger than ``exact_limit`` vertices, where we fall back to the
    heuristic upper bound).  Test/benchmark helper, not part of the
    pipeline.
    """
    q = q or decomposition.p
    for index_set in decomposition.union_subsets(q):
        sub = union_graph(graph, decomposition, index_set)
        bound = decomposition.treedepth_bound(len(index_set))
        for component in sub.connected_components():
            piece = sub.induced_subgraph(component)
            if len(component) <= exact_limit:
                td = treedepth(piece)
            else:
                td = best_heuristic_forest(piece).depth()
            if td > bound:
                raise DecompositionError(
                    f"parts {index_set}: component of treedepth {td} > bound {bound}"
                )
