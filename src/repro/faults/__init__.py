"""repro.faults — seeded fault injection for the CONGEST simulator.

Three layers (see ``docs/fault-injection.md``):

* :class:`FaultPlan` / :class:`CrashFault` — a declarative, JSON-
  serializable description of what the adversary does (message drop /
  duplication / delay / truncation rates, budget jitter, crash and
  crash-restart schedules), seeded for exact replay;
* :class:`FaultInjector` — the runtime that applies a plan inside
  :class:`~repro.congest.runtime.Simulation` (pass ``faults=plan``),
  emitting a typed trace event and a metrics count per injected fault;
* :func:`reliable_program` / :class:`RetryPolicy` — a redundancy-lockstep
  round synchronizer making protocols survive bounded transient loss or
  fail closed with :class:`~repro.errors.FaultToleranceExceeded`, never
  run on silently missing data.

``python -m repro faults --plan plan.json <graph>`` replays a plan from
disk against the distributed model checker.
"""

from .plan import CrashFault, FaultPlan
from .injector import FaultInjector
from .sync import SYNC_OVERHEAD_BITS, RetryPolicy, reliable_program

__all__ = [
    "CrashFault",
    "FaultInjector",
    "FaultPlan",
    "RetryPolicy",
    "SYNC_OVERHEAD_BITS",
    "reliable_program",
]
