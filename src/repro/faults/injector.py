"""The runtime half of fault injection: a seeded message/process adversary.

:class:`FaultInjector` sits between the simulator's outgoing queue and the
per-node inboxes.  Once per round the simulator hands it the queued
``(sender, receiver) -> payload`` deliveries; the injector draws from its
private :class:`random.Random` (seeded by the plan, independent of the
simulator's inbox-shuffling RNG) and returns the surviving delivery list,
emitting one typed trace event per injected fault and counting it in
:class:`~repro.congest.metrics.RoundMetrics`.

Determinism contract: for a fixed plan, graph, program, inputs, and
simulation seed, the sequence of RNG draws — and therefore every injected
fault — is identical across runs.  A plan with all rates at zero and no
crashes never touches the RNG at all, so a null plan is byte-for-byte
transparent: same outputs, same metrics, same trace.
"""

from __future__ import annotations

import random
from typing import Any, Dict, Iterable, List, Optional, Tuple

from ..congest.messages import Payload, payload_bits
from ..congest.metrics import RoundMetrics
from ..obs.registry import registry as _registry
from ..obs.events import (
    BudgetJittered,
    MessageDelayed,
    MessageDropped,
    MessageDuplicated,
    NodeCrashed,
    NodeRestarted,
    PayloadTruncated,
)
from .plan import FaultPlan

Edge = Tuple[Any, Any]


def _count_fault(kind: str) -> None:
    """Count one injected fault in the process-wide metrics registry.

    Live (at injection time, not at simulation end), so a long faulty run
    is observable mid-flight; :func:`repro.obs.registry.note_simulation`
    deliberately does *not* fold ``faults_injected`` to avoid
    double-counting.
    """
    _registry().counter(
        "repro_faults_injected_total", "Injected faults by trace-event kind.",
        ("kind",),
    ).inc(kind=kind)


def _truncate(payload: Payload) -> Payload:
    """Drop the payload's tail: tuples lose their last element, scalars
    collapse to None — the shape a message takes when cut mid-flight."""
    if isinstance(payload, tuple) and payload:
        return payload[:-1]
    return None


class FaultInjector:
    """Applies a :class:`~repro.faults.plan.FaultPlan` to one simulation.

    Stateful (it tracks in-flight delayed copies and which crashes have
    fired), so build a fresh injector per :class:`Simulation` — reusing
    one across runs would desynchronize the RNG stream from the plan.
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self.rng = random.Random(plan.seed)
        # deliver_round -> list of (sender, receiver, payload) copies in
        # the order their faults were drawn (deterministic iteration).
        self._pending: Dict[int, List[Tuple[Any, Any, Payload]]] = {}
        self._crashed: Dict[Any, int] = {}

    # -- process faults -------------------------------------------------
    def crashes_at(self, round: int) -> List[Any]:
        """Nodes whose crash fires at the start of ``round`` (each once)."""
        nodes = []
        for crash in self.plan.crashes:
            if crash.at_round == round and crash.node not in self._crashed:
                self._crashed[crash.node] = round
                nodes.append(crash.node)
        return nodes

    def restarts_at(self, round: int) -> List[Any]:
        """Crashed nodes scheduled to reboot at the start of ``round``."""
        nodes = []
        for crash in self.plan.crashes:
            if (
                crash.restart_round == round
                and self._crashed.get(crash.node) == crash.at_round
            ):
                del self._crashed[crash.node]
                nodes.append(crash.node)
        return nodes

    def is_crashed(self, node: Any) -> bool:
        return node in self._crashed

    def has_pending_restart(self, after_round: int) -> bool:
        """Is any currently-crashed node scheduled to reboot later?

        Keeps the simulator's round loop alive through a window where every
        program is dead but a restart is still due.
        """
        for crash in self.plan.crashes:
            if (
                crash.restart_round is not None
                and crash.restart_round > after_round
                and self._crashed.get(crash.node) == crash.at_round
            ):
                return True
        return False

    # -- per-round budget -----------------------------------------------
    def budget_for(self, round: int, base: int, metrics: RoundMetrics,
                   tracer=None) -> int:
        """The effective per-edge budget for ``round`` (>= 1 always)."""
        if self.plan.budget_jitter == 0 or not self.plan.active_in(round):
            return base
        offset = self.rng.randint(
            -self.plan.budget_jitter, self.plan.budget_jitter
        )
        budget = max(1, base + offset)
        if budget != base:
            metrics.record_fault(BudgetJittered.kind)
            _count_fault(BudgetJittered.kind)
            if tracer is not None:
                tracer.on_fault(BudgetJittered(round=round, budget=budget,
                                               base=base))
        return budget

    # -- message faults -------------------------------------------------
    def process(
        self,
        round: int,
        deliveries: Iterable[Tuple[Edge, Payload]],
        metrics: RoundMetrics,
        tracer=None,
    ) -> List[Tuple[Any, Any, Payload]]:
        """Filter one round's deliveries through the adversary.

        ``round`` is the round the messages arrive in.  Returns the
        surviving ``(sender, receiver, payload)`` list in deterministic
        order: fresh messages first (queue order), then matured
        delayed/duplicated copies (injection order).  A matured copy is
        discarded if a fresh message already occupies its directed edge.
        """
        plan = self.plan
        active = plan.active_in(round)
        out: List[Tuple[Any, Any, Payload]] = []
        seen: set = set()

        def emit(event) -> None:
            metrics.record_fault(event.kind)
            _count_fault(event.kind)
            if tracer is not None:
                tracer.on_fault(event)

        for (sender, receiver), payload in deliveries:
            if active and plan.drop_rate > 0.0 \
                    and self.rng.random() < plan.drop_rate:
                emit(MessageDropped(round=round, sender=sender,
                                    receiver=receiver,
                                    bits=payload_bits(payload)))
                continue
            if active and plan.truncate_rate > 0.0 \
                    and self.rng.random() < plan.truncate_rate:
                original = payload_bits(payload)
                payload = _truncate(payload)
                emit(PayloadTruncated(round=round, sender=sender,
                                      receiver=receiver,
                                      original_bits=original,
                                      bits=payload_bits(payload)))
            if active and plan.delay_rate > 0.0 \
                    and self.rng.random() < plan.delay_rate:
                delay = self.rng.randint(1, plan.max_delay)
                emit(MessageDelayed(round=round, sender=sender,
                                    receiver=receiver, delay=delay))
                self._pending.setdefault(round + delay, []).append(
                    (sender, receiver, payload)
                )
                continue
            if active and plan.duplicate_rate > 0.0 \
                    and self.rng.random() < plan.duplicate_rate:
                deliver = round + self.rng.randint(1, plan.max_delay)
                emit(MessageDuplicated(round=round, sender=sender,
                                       receiver=receiver,
                                       deliver_round=deliver))
                self._pending.setdefault(deliver, []).append(
                    (sender, receiver, payload)
                )
            out.append((sender, receiver, payload))
            seen.add((sender, receiver))

        for sender, receiver, payload in self._pending.pop(round, ()):
            if (sender, receiver) in seen:
                continue  # fresh traffic owns the edge this round
            out.append((sender, receiver, payload))
            seen.add((sender, receiver))
        return out

    def drop_for_crashed(self, round: int, sender: Any, receiver: Any,
                         payload: Payload, metrics: RoundMetrics,
                         tracer=None) -> None:
        """Record the loss of a message addressed to a crashed node."""
        event = MessageDropped(round=round, sender=sender, receiver=receiver,
                               bits=payload_bits(payload),
                               reason="receiver-crashed")
        metrics.record_fault(event.kind)
        _count_fault(event.kind)
        if tracer is not None:
            tracer.on_fault(event)

    def note_crash(self, round: int, node: Any, metrics: RoundMetrics,
                   tracer=None) -> None:
        event = NodeCrashed(round=round, node=node)
        metrics.record_fault(event.kind)
        _count_fault(event.kind)
        if tracer is not None:
            tracer.on_fault(event)

    def note_restart(self, round: int, node: Any, metrics: RoundMetrics,
                     tracer=None) -> None:
        event = NodeRestarted(round=round, node=node)
        metrics.record_fault(event.kind)
        _count_fault(event.kind)
        if tracer is not None:
            tracer.on_fault(event)

    @property
    def pending_copies(self) -> int:
        """Delayed/duplicated copies still in flight (lost if the run ends)."""
        return sum(len(copies) for copies in self._pending.values())
