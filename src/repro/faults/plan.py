"""Declarative, seeded fault plans for the CONGEST simulator.

A :class:`FaultPlan` is a pure value: probabilities, bounds, and crash
schedules.  Handing the same plan (and the same simulation seed, graph,
program, and inputs) to :class:`~repro.congest.runtime.Simulation` always
reproduces the same execution fault-for-fault — the injector draws from
``random.Random(plan.seed)`` in a deterministic order, so a failing
property-test case can be replayed from its captured plan alone.

Plans serialize to plain JSON (:meth:`FaultPlan.to_json` /
:meth:`FaultPlan.from_json`); ``python -m repro faults --plan plan.json``
replays one from disk.  Crash schedules name vertices directly, so JSON
plans require JSON-native vertex ids (ints or strings) — which every
built-in generator produces.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, fields, replace
from typing import Any, Dict, Optional, Tuple

from ..errors import CongestError

_RATE_FIELDS = ("drop_rate", "duplicate_rate", "delay_rate", "truncate_rate")


@dataclass(frozen=True)
class CrashFault:
    """Kill ``node`` at the start of ``at_round``; optionally reboot it.

    A restarted node runs its program from scratch (crash-restart loses all
    volatile state), re-entering the network at ``restart_round``.
    """

    node: Any
    at_round: int
    restart_round: Optional[int] = None

    def __post_init__(self) -> None:
        if self.at_round < 1:
            raise CongestError("crash at_round must be >= 1")
        if self.restart_round is not None and self.restart_round <= self.at_round:
            raise CongestError("restart_round must be after at_round")

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {"node": self.node, "at_round": self.at_round}
        if self.restart_round is not None:
            data["restart_round"] = self.restart_round
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CrashFault":
        return cls(
            node=data["node"],
            at_round=int(data["at_round"]),
            restart_round=(
                None if data.get("restart_round") is None
                else int(data["restart_round"])
            ),
        )


@dataclass(frozen=True)
class FaultPlan:
    """What the adversarial substrate does, and when.

    Message faults are drawn per queued message (per edge-round) in the
    window ``[first_round, last_round]`` (``last_round=None`` = forever):

    * ``drop_rate`` — the message is destroyed;
    * ``duplicate_rate`` — an extra copy is delivered 1..``max_delay``
      rounds after the original;
    * ``delay_rate`` — delivery is postponed by 1..``max_delay`` rounds;
    * ``truncate_rate`` — the payload loses its tail (a tuple drops its
      last element; scalars collapse to ``None``), modeling a message cut
      to a smaller budget mid-flight.

    A duplicated or delayed copy that matures in a round where a *fresh*
    message occupies the same directed edge is discarded (the CONGEST
    inbox holds one message per neighbor per round; fresh traffic wins).

    ``budget_jitter`` draws a per-round budget offset in
    ``[-budget_jitter, +budget_jitter]`` bits, stressing protocols whose
    payloads sail close to the limit.  ``crashes`` is an explicit schedule
    of :class:`CrashFault` entries.  Rounds are counted per
    :class:`~repro.congest.runtime.Simulation` — a pipeline of several
    simulations applies the plan to each run independently.
    """

    seed: int = 0
    drop_rate: float = 0.0
    duplicate_rate: float = 0.0
    delay_rate: float = 0.0
    max_delay: int = 3
    truncate_rate: float = 0.0
    budget_jitter: int = 0
    crashes: Tuple[CrashFault, ...] = ()
    first_round: int = 1
    last_round: Optional[int] = None

    def __post_init__(self) -> None:
        for name in _RATE_FIELDS:
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise CongestError(f"{name} must be in [0, 1], got {rate!r}")
        if self.max_delay < 1:
            raise CongestError("max_delay must be >= 1")
        if self.budget_jitter < 0:
            raise CongestError("budget_jitter must be >= 0")
        if self.first_round < 1:
            raise CongestError("first_round must be >= 1")
        if self.last_round is not None and self.last_round < self.first_round:
            raise CongestError("last_round must be >= first_round")
        if not isinstance(self.crashes, tuple):
            object.__setattr__(self, "crashes", tuple(self.crashes))

    # -- queries --------------------------------------------------------
    def is_null(self) -> bool:
        """Can this plan never inject anything?  (Pass-through guarantee.)"""
        return (
            all(getattr(self, name) == 0.0 for name in _RATE_FIELDS)
            and self.budget_jitter == 0
            and not self.crashes
        )

    def active_in(self, round: int) -> bool:
        if round < self.first_round:
            return False
        return self.last_round is None or round <= self.last_round

    def with_seed(self, seed: int) -> "FaultPlan":
        """The same plan with a different fault-schedule seed."""
        return replace(self, seed=seed)

    def describe(self) -> str:
        parts = [f"seed={self.seed}"]
        for name in _RATE_FIELDS:
            rate = getattr(self, name)
            if rate:
                parts.append(f"{name.removesuffix('_rate')}={rate:g}")
        if self.delay_rate or self.duplicate_rate:
            parts.append(f"max_delay={self.max_delay}")
        if self.budget_jitter:
            parts.append(f"budget_jitter=±{self.budget_jitter}")
        for crash in self.crashes:
            text = f"crash({crash.node!r}@r{crash.at_round}"
            if crash.restart_round is not None:
                text += f", restart r{crash.restart_round}"
            parts.append(text + ")")
        if self.first_round != 1 or self.last_round is not None:
            parts.append(
                f"rounds {self.first_round}..{self.last_round or 'end'}"
            )
        return "FaultPlan(" + ", ".join(parts) + ")"

    # -- serialization --------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {}
        for f in fields(self):
            value = getattr(self, f.name)
            if f.name == "crashes":
                value = [crash.to_dict() for crash in value]
            data[f.name] = value
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultPlan":
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise CongestError(
                f"unknown fault-plan field(s): {', '.join(sorted(unknown))}"
            )
        kwargs = dict(data)
        kwargs["crashes"] = tuple(
            CrashFault.from_dict(crash) for crash in data.get("crashes", ())
        )
        return cls(**kwargs)

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise CongestError(f"malformed fault plan JSON: {exc}") from exc
        if not isinstance(data, dict):
            raise CongestError("fault plan JSON must be an object")
        return cls.from_dict(data)
