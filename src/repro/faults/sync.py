"""Round synchronizer: run a CONGEST program over a lossy substrate.

:func:`reliable_program` wraps any node program in a *redundancy-lockstep*
synchronizer: logical round ``t`` of the inner protocol is stretched over
``attempts`` physical rounds, during which each node transmits ``attempts``
identical copies of its round-``t`` bundle to every live neighbor.  One
surviving copy per (neighbor, round) suffices, so under independent
per-edge-round message loss with probability ``p`` a logical round-edge
fails with probability ``p**attempts``.

Why redundancy rather than acknowledgments: an ack-based synchronizer hits
the two-generals problem at protocol termination — a halting node cannot
know its final acks arrived, so either it waits forever or its neighbors
may time out spuriously.  Blind redundancy has deterministic phase
boundaries (phase ``t`` occupies physical rounds ``(t-1)*K+1 .. t*K``), no
acks, and a clean fail-closed rule: if after a phase's full window a bundle
from a live neighbor never arrived (all ``K`` copies lost, or the neighbor
crashed), the wrapper raises
:class:`~repro.errors.FaultToleranceExceeded` — the protocol never
continues on silently missing data.

Bundles are ``("syn", t, fin, slot)`` where ``slot`` is ``None`` (beacon:
alive but no message for you this round) or ``("m", payload)``; ``fin``
marks the sender's final logical round so receivers stop expecting it.
The framing costs at most :data:`SYNC_OVERHEAD_BITS` on top of the inner
payload — harnesses grant the wrapper ``budget + SYNC_OVERHEAD_BITS`` and
the proxy context re-imposes the *logical* budget on inner sends, so the
wrapped protocol's CONGEST discipline is unchanged.

Every redundant copy (all but the first per phase) is counted via
``ctx.record_retry`` into ``metrics.retransmissions``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..congest.messages import Payload, payload_bits
from ..congest.runtime import Inbox, NodeContext, NodeProgram
from ..errors import CongestError, FaultToleranceExceeded, MessageTooLargeError

#: Worst-case framing cost of a synchronizer bundle beyond the inner
#: payload: "syn" tag + phase counter + fin flag + slot wrapper, with
#: headroom for phase counters into the billions.
SYNC_OVERHEAD_BITS = 64

_ABSENT = object()


@dataclass(frozen=True)
class RetryPolicy:
    """How hard the synchronizer fights message loss.

    ``attempts`` is the number of identical copies of each logical-round
    bundle (and the physical-round stretch factor).  ``attempts=1`` is
    plain framing with no redundancy — any loss fails closed immediately.
    """

    attempts: int = 3

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise CongestError("RetryPolicy.attempts must be >= 1")

    def physical_budget(self, logical_budget: int) -> int:
        """The per-edge budget the wrapped simulation needs."""
        return logical_budget + SYNC_OVERHEAD_BITS

    def physical_max_rounds(self, logical_max_rounds: int) -> int:
        """A round cap for the wrapped run (stretch factor + slack)."""
        return logical_max_rounds * self.attempts + self.attempts + 1


def _parse_bundle(bundle: Payload) -> Optional[Tuple[int, bool, Any]]:
    """Decode a synchronizer bundle; None for garbled/truncated copies.

    Truncation faults shorten the tuple or mangle the slot — such a copy
    is indistinguishable from a lost one and is treated exactly that way.
    """
    if (
        not isinstance(bundle, tuple)
        or len(bundle) != 4
        or bundle[0] != "syn"
        or isinstance(bundle[1], bool)
        or not isinstance(bundle[1], int)
        or not isinstance(bundle[2], bool)
    ):
        return None
    slot = bundle[3]
    if slot is not None and (
        not isinstance(slot, tuple) or len(slot) != 2 or slot[0] != "m"
    ):
        return None
    return bundle[1], bundle[2], slot


class _LogicalContext:
    """The :class:`NodeContext` surface the inner program sees.

    Sends are buffered into a per-logical-round outbox (the wrapper
    transmits them as bundle copies) and validated against the *logical*
    budget — the physical budget minus the synchronizer's framing
    allowance — so a protocol that is CONGEST-legal unwrapped stays legal
    wrapped.
    """

    def __init__(self, ctx: NodeContext):
        self._ctx = ctx
        self.node = ctx.node
        self.neighbors = list(ctx.neighbors)
        self.n = ctx.n
        self.input = ctx.input
        self._outbox: Dict[Any, Payload] = {}
        self._logical_round = 1

    @property
    def degree(self) -> int:
        return len(self.neighbors)

    @property
    def round_number(self) -> int:
        """The inner protocol's round counter (logical, not physical)."""
        return self._logical_round

    @property
    def budget(self) -> int:
        return self._ctx.budget - SYNC_OVERHEAD_BITS

    def phase(self, name: str):
        return self._ctx.phase(name)

    def record_retry(self, count: int = 1) -> None:
        self._ctx.record_retry(count)

    def send(self, neighbor: Any, payload: Payload) -> None:
        if neighbor not in self.neighbors:
            raise CongestError(
                f"{self.node!r} is not adjacent to {neighbor!r}"
            )
        if neighbor in self._outbox:
            raise CongestError(
                f"node {self.node!r} already sent to {neighbor!r} this round"
            )
        bits = payload_bits(payload)
        if bits > self.budget:
            raise MessageTooLargeError(bits, self.budget)
        self._outbox[neighbor] = payload

    def send_all(self, payload: Payload) -> None:
        for neighbor in self.neighbors:
            self.send(neighbor, payload)

    def _take_outbox(self) -> Dict[Any, Payload]:
        outbox, self._outbox = self._outbox, {}
        return outbox


def reliable_program(program: NodeProgram,
                     policy: RetryPolicy = RetryPolicy()) -> NodeProgram:
    """Wrap ``program`` in the redundancy-lockstep synchronizer.

    The wrapped program tolerates up to ``policy.attempts - 1`` lost copies
    per (edge, logical round); beyond that it raises
    :class:`~repro.errors.FaultToleranceExceeded` rather than running the
    inner protocol on an incomplete inbox.  Run it with
    ``budget=policy.physical_budget(b)`` and
    ``max_rounds=policy.physical_max_rounds(r)``.
    """
    attempts = policy.attempts

    def wrapped(ctx: NodeContext):
        inner_ctx = _LogicalContext(ctx)
        inner = program(inner_ctx)
        # (neighbor, phase) -> slot; first surviving copy wins.
        buffers: Dict[Tuple[Any, int], Any] = {}
        fin_at: Dict[Any, int] = {}

        def absorb(physical_inbox: Inbox) -> None:
            for neighbor, bundle in physical_inbox.items():
                parsed = _parse_bundle(bundle)
                if parsed is None:
                    continue
                phase, fin, slot = parsed
                key = (neighbor, phase)
                if key not in buffers:
                    buffers[key] = slot
                    if fin and neighbor not in fin_at:
                        fin_at[neighbor] = phase

        t = 1
        halted = False
        value: Any = None
        try:
            next(inner)
        except StopIteration as stop:
            halted, value = True, stop.value

        while True:
            inner_ctx._logical_round = t
            outbox = inner_ctx._take_outbox()
            targets = [
                nb for nb in inner_ctx.neighbors
                if fin_at.get(nb, t) >= t
            ]
            for copy in range(attempts):
                for nb in targets:
                    slot = ("m", outbox[nb]) if nb in outbox else None
                    ctx.send(nb, ("syn", t, halted, slot))
                if copy > 0 and targets:
                    ctx.record_retry(len(targets))
                if copy < attempts - 1:
                    absorb((yield))
            if halted:
                # Final copies are queued; sends before return are
                # delivered, so neighbors still complete this phase.
                return value
            # First physical round of phase t+1: carries copy #attempts
            # of phase t, completing its delivery window.
            absorb((yield))
            logical_inbox: Dict[Any, Payload] = {}
            missing: List[Any] = []
            for nb in inner_ctx.neighbors:
                if fin_at.get(nb, t) < t:
                    continue  # halted before this phase; nothing expected
                slot = buffers.pop((nb, t), _ABSENT)
                if slot is _ABSENT:
                    missing.append(nb)
                elif slot is not None:
                    logical_inbox[nb] = slot[1]
            if missing:
                raise FaultToleranceExceeded(
                    f"node {ctx.node!r}: no round-{t} bundle from "
                    f"{sorted(map(repr, missing))} after {attempts} "
                    "copies — neighbor crashed or all copies lost",
                    node=ctx.node,
                    round=t,
                )
            t += 1
            inner_ctx._logical_round = t
            ordered = dict(
                sorted(logical_inbox.items(), key=lambda kv: repr(kv[0]))
            )
            try:
                inner.send(ordered)
            except StopIteration as stop:
                halted, value = True, stop.value

    wrapped.__name__ = f"reliable[{getattr(program, '__name__', 'program')}]"
    return wrapped
