"""Graph substrate: simple labeled weighted graphs, generators, oracles."""

from .graph import Edge, Graph, Vertex, canonical_edge, disjoint_union, relabeled
from . import generators, interop, io, operations, properties

__all__ = [
    "Edge",
    "Graph",
    "Vertex",
    "canonical_edge",
    "disjoint_union",
    "relabeled",
    "generators",
    "interop",
    "io",
    "operations",
    "properties",
]
