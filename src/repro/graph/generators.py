"""Graph generators for tests, examples, and benchmarks.

The families below cover everything the paper reasons about:

* low-treedepth families (paths, stars, caterpillars, tree closures,
  random bounded-treedepth graphs) for the meta-theorem itself,
* the ``path + claw`` family from Section 1.1 that witnesses the Ω(n)
  lower bound (the class 𝒫 ∪ ℬ on which O(1)-round decision is impossible),
* bounded-expansion families (grids, outerplanar fans) for Corollary 7.3,
* small pattern graphs H for H-freeness formulas.

All generators are deterministic: randomized ones take an explicit ``seed``.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from ..errors import GraphError
from .graph import Graph


def path(n: int) -> Graph:
    """The path P_n on vertices 0..n-1.  td(P_n) = ceil(log2(n + 1))."""
    if n < 1:
        raise GraphError("path requires n >= 1")
    return Graph(range(n), [(i, i + 1) for i in range(n - 1)])


def cycle(n: int) -> Graph:
    """The cycle C_n on vertices 0..n-1 (n >= 3)."""
    if n < 3:
        raise GraphError("cycle requires n >= 3")
    g = path(n)
    g.add_edge(n - 1, 0)
    return g


def star(leaves: int) -> Graph:
    """A star: center 0 joined to leaves 1..leaves.  Treedepth 2."""
    if leaves < 0:
        raise GraphError("star requires leaves >= 0")
    return Graph(range(leaves + 1), [(0, i) for i in range(1, leaves + 1)])


def clique(n: int) -> Graph:
    """The complete graph K_n.  Treedepth n."""
    if n < 1:
        raise GraphError("clique requires n >= 1")
    return Graph(range(n), [(i, j) for i in range(n) for j in range(i + 1, n)])


def complete_bipartite(a: int, b: int) -> Graph:
    """K_{a,b} with sides 0..a-1 and a..a+b-1.  Treedepth min(a, b) + 1."""
    if a < 1 or b < 1:
        raise GraphError("complete_bipartite requires a, b >= 1")
    return Graph(range(a + b), [(i, a + j) for i in range(a) for j in range(b)])


def grid(rows: int, cols: int) -> Graph:
    """The rows x cols grid graph (planar, hence bounded expansion)."""
    if rows < 1 or cols < 1:
        raise GraphError("grid requires rows, cols >= 1")
    g = Graph(range(rows * cols))
    for r in range(rows):
        for c in range(cols):
            v = r * cols + c
            if c + 1 < cols:
                g.add_edge(v, v + 1)
            if r + 1 < rows:
                g.add_edge(v, v + cols)
    return g


def complete_binary_tree(depth: int) -> Graph:
    """Complete binary tree with ``depth`` levels (root alone at depth 1).

    Its treedepth equals ``depth`` and it has 2^depth - 1 vertices.
    """
    if depth < 1:
        raise GraphError("complete_binary_tree requires depth >= 1")
    n = 2 ** depth - 1
    return Graph(range(n), [((i - 1) // 2, i) for i in range(1, n)])


def caterpillar(spine: int, legs: int) -> Graph:
    """A caterpillar: path of ``spine`` vertices, each with ``legs`` leaves.

    Treedepth is Θ(log spine); a classic sparse low-treedepth family.
    """
    if spine < 1 or legs < 0:
        raise GraphError("caterpillar requires spine >= 1 and legs >= 0")
    g = path(spine)
    nxt = spine
    for s in range(spine):
        for _ in range(legs):
            g.add_edge(s, nxt)
            nxt += 1
    return g


def path_with_claw(path_len: int) -> Graph:
    """The Section 1.1 lower-bound family ℬ: a path with a claw at one end.

    Vertices 0..path_len-1 form a path; vertices path_len..path_len+2 are
    three claw leaves attached to vertex 0.  The class {paths} ∪ {these}
    has unbounded treedepth, and deciding "there is a vertex of degree > 2"
    on it requires Ω(n) rounds (the claw can be n hops away).
    """
    if path_len < 1:
        raise GraphError("path_with_claw requires path_len >= 1")
    g = path(path_len)
    for i in range(3):
        g.add_edge(0, path_len + i)
    return g


def fan(n: int) -> Graph:
    """Outerplanar fan: path 1..n-1 plus apex 0 joined to every path vertex.

    Outerplanar, hence bounded expansion; treedepth Θ(log n).
    """
    if n < 2:
        raise GraphError("fan requires n >= 2")
    g = Graph(range(n), [(i, i + 1) for i in range(1, n - 1)])
    for i in range(1, n):
        g.add_edge(0, i)
    return g


def random_tree(n: int, seed: int = 0) -> Graph:
    """Uniform-ish random tree: vertex i attaches to a random earlier vertex."""
    if n < 1:
        raise GraphError("random_tree requires n >= 1")
    rng = random.Random(seed)
    g = Graph([0])
    for v in range(1, n):
        g.add_edge(rng.randrange(v), v)
    return g


def random_elimination_forest(
    n: int, depth: int, seed: int = 0, connected: bool = True
) -> Dict[int, Optional[int]]:
    """Random parent map of a forest on 0..n-1 with depth <= ``depth``.

    Returns ``parent[v]`` (``None`` for roots).  If ``connected`` the forest
    is a single tree rooted at 0.
    """
    if n < 1 or depth < 1:
        raise GraphError("need n >= 1 and depth >= 1")
    rng = random.Random(seed)
    parent: Dict[int, Optional[int]] = {0: None}
    level = {0: 1}
    for v in range(1, n):
        if not connected and rng.random() < 0.05:
            parent[v] = None
            level[v] = 1
            continue
        candidates = [u for u in range(v) if level[u] < depth]
        if not candidates:
            parent[v] = None
            level[v] = 1
            continue
        p = rng.choice(candidates)
        parent[v] = p
        level[v] = level[p] + 1
    return parent


def random_bounded_treedepth(
    n: int, depth: int, edge_prob: float = 0.5, seed: int = 0
) -> Graph:
    """Random connected graph whose treedepth is at most ``depth``.

    Construction: draw a random rooted tree on 0..n-1 of depth <= ``depth``,
    keep every tree edge (so the tree is an elimination tree *and* a
    subgraph, guaranteeing connectivity), and add each other
    ancestor-descendant pair as an edge with probability ``edge_prob``.
    Every edge of the result respects the ancestry relation, so the tree is
    an elimination forest and td(G) <= depth.
    """
    parent = random_elimination_forest(n, depth, seed=seed, connected=True)
    rng = random.Random(seed + 0x9E3779B9)
    g = Graph(range(n))
    ancestors: Dict[int, List[int]] = {}
    for v in range(n):
        chain: List[int] = []
        p = parent[v]
        while p is not None:
            chain.append(p)
            p = parent[p]
        ancestors[v] = chain
    for v in range(n):
        if parent[v] is not None:
            g.add_edge(parent[v], v)
        for a in ancestors[v][1:]:
            if rng.random() < edge_prob:
                g.add_edge(a, v)
    return g


def tree_closure(parent: Dict[int, Optional[int]]) -> Graph:
    """The ancestor closure of a rooted forest: join v to all its ancestors.

    The closure of a depth-d forest has treedepth exactly d.
    """
    g = Graph(parent.keys())
    for v in parent:
        a = parent[v]
        while a is not None:
            g.add_edge(a, v)
            a = parent[a]
    return g


def random_connected_graph(n: int, extra_edges: int, seed: int = 0) -> Graph:
    """Random connected graph: random tree plus ``extra_edges`` chords."""
    rng = random.Random(seed)
    g = random_tree(n, seed=seed)
    attempts = 0
    added = 0
    while added < extra_edges and attempts < 50 * (extra_edges + 1):
        attempts += 1
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v and not g.has_edge(u, v):
            g.add_edge(u, v)
            added += 1
    return g


def random_maximal_outerplanar(n: int, seed: int = 0) -> Graph:
    """A random maximal outerplanar graph: a triangulated n-gon.

    Outerplanar graphs are planar, hence of bounded expansion — a second
    family (besides grids) for the Corollary 7.3 experiments.  Built by
    recursively splitting the polygon with random chords.
    """
    if n < 3:
        raise GraphError("outerplanar triangulation requires n >= 3")
    rng = random.Random(seed)
    g = cycle(n)

    def triangulate(lo: int, hi: int) -> None:
        # Triangulate the polygon arc lo..hi (indices along the cycle,
        # chord lo-hi already present).
        if hi - lo < 2:
            return
        mid = rng.randrange(lo + 1, hi)
        if (lo, mid) != (lo, lo + 1) and mid - lo >= 2:
            g.add_edge(lo, mid)
        if hi - mid >= 2:
            g.add_edge(mid, hi)
        triangulate(lo, mid)
        triangulate(mid, hi)

    triangulate(0, n - 1)
    return g


def random_apex_tree(n: int, seed: int = 0) -> Graph:
    """A random tree plus one apex vertex joined to every tree vertex.

    Treedepth is O(log n) + 1; a dense-ish low-treedepth family.
    """
    if n < 1:
        raise GraphError("random_apex_tree requires n >= 1")
    g = random_tree(n, seed=seed)
    apex = n
    for v in range(n):
        g.add_edge(apex, v)
    return g


# ----------------------------------------------------------------------
# Small pattern graphs (the H in H-freeness)
# ----------------------------------------------------------------------

def triangle() -> Graph:
    """K3."""
    return clique(3)


def claw() -> Graph:
    """K_{1,3}: the claw."""
    return star(3)


def paw() -> Graph:
    """Triangle with a pendant vertex."""
    g = clique(3)
    g.add_edge(0, 3)
    return g


def diamond() -> Graph:
    """K4 minus one edge."""
    g = clique(4)
    g.remove_edge(0, 1)
    return g


def named_pattern(name: str) -> Graph:
    """Look up a small pattern graph by name (for CLI-ish convenience)."""
    patterns = {
        "triangle": triangle,
        "claw": claw,
        "paw": paw,
        "diamond": diamond,
        "p3": lambda: path(3),
        "p4": lambda: path(4),
        "c4": lambda: cycle(4),
        "c5": lambda: cycle(5),
        "k4": lambda: clique(4),
    }
    if name not in patterns:
        raise GraphError(f"unknown pattern {name!r}; choose from {sorted(patterns)}")
    return patterns[name]()
