"""Simple undirected graphs with optional labels and weights.

This is the common substrate for the whole package: the sequential
model-checking engine, the treedepth toolkit, and the CONGEST simulator all
operate on :class:`Graph`.

Design choices
--------------
* Vertices are arbitrary hashable, mutually comparable identifiers
  (typically ``int``).  The CONGEST model gives every node a unique id;
  we reuse the vertex identifier for that purpose.
* Edges are canonicalized to ``(min(u, v), max(u, v))`` tuples, so an edge
  can be used as a dictionary key and compared for equality regardless of
  endpoint order.
* Labels model the paper's unary predicates on labeled graphs (Section 6):
  each vertex and each edge carries a (possibly empty) set of string labels.
* Weights model the paper's polynomially-bounded weight assignment
  ``w : V ∪ E → Z`` used by the optimization variants (Section 4).
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, Iterable, Iterator, List, Optional, Set, Tuple

from ..errors import GraphError

Vertex = Any
Edge = Tuple[Any, Any]


def canonical_edge(u: Vertex, v: Vertex) -> Edge:
    """Return the canonical (sorted) representation of the edge {u, v}.

    Vertices of mixed incomparable types (e.g. ints and tuples, as produced
    by :func:`~repro.graph.operations.subdivision`) are ordered by
    ``(type name, repr)`` as a total fallback.
    """
    if u == v:
        raise GraphError(f"self-loops are not allowed: {u!r}")
    try:
        return (u, v) if u < v else (v, u)
    except TypeError:
        return (u, v) if _fallback_key(u) < _fallback_key(v) else (v, u)


def _fallback_key(v: Vertex):
    """A total order key: nested (type name, repr) pairs.

    Comparisons only descend into the second component when type names
    match, so mixed-type collections always sort without TypeError.
    """
    if isinstance(v, tuple):
        return ("tuple", tuple(_fallback_key(item) for item in v))
    return (type(v).__name__, repr(v))


def sorted_vertices(items: Iterable) -> List:
    """Deterministically sort possibly mixed-type vertices/edges."""
    items = list(items)
    try:
        return sorted(items)
    except TypeError:
        return sorted(items, key=_fallback_key)


class Graph:
    """A finite simple undirected graph with labels and integer weights."""

    def __init__(self, vertices: Iterable[Vertex] = (), edges: Iterable[Edge] = ()):
        self._adj: Dict[Vertex, Set[Vertex]] = {}
        self._vertex_labels: Dict[Vertex, Set[str]] = {}
        self._edge_labels: Dict[Edge, Set[str]] = {}
        self._vertex_weights: Dict[Vertex, int] = {}
        self._edge_weights: Dict[Edge, int] = {}
        for v in vertices:
            self.add_vertex(v)
        for u, v in edges:
            self.add_edge(u, v)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_vertex(self, v: Vertex) -> None:
        """Add vertex ``v``; adding an existing vertex is a no-op."""
        if v not in self._adj:
            self._adj[v] = set()
            self._vertex_labels[v] = set()

    def add_edge(self, u: Vertex, v: Vertex) -> None:
        """Add edge {u, v}, creating missing endpoints.  Idempotent."""
        e = canonical_edge(u, v)
        self.add_vertex(u)
        self.add_vertex(v)
        if v not in self._adj[u]:
            self._adj[u].add(v)
            self._adj[v].add(u)
            self._edge_labels[e] = set()

    def remove_vertex(self, v: Vertex) -> None:
        """Remove ``v`` and all incident edges."""
        if v not in self._adj:
            raise GraphError(f"unknown vertex {v!r}")
        for u in list(self._adj[v]):
            self.remove_edge(u, v)
        del self._adj[v]
        del self._vertex_labels[v]
        self._vertex_weights.pop(v, None)

    def remove_edge(self, u: Vertex, v: Vertex) -> None:
        e = canonical_edge(u, v)
        if not self.has_edge(u, v):
            raise GraphError(f"unknown edge {e!r}")
        self._adj[u].discard(v)
        self._adj[v].discard(u)
        del self._edge_labels[e]
        self._edge_weights.pop(e, None)

    # ------------------------------------------------------------------
    # Labels and weights
    # ------------------------------------------------------------------
    def add_vertex_label(self, v: Vertex, label: str) -> None:
        self._require_vertex(v)
        self._vertex_labels[v].add(label)

    def add_edge_label(self, u: Vertex, v: Vertex, label: str) -> None:
        e = self._require_edge(u, v)
        self._edge_labels[e].add(label)

    def vertex_labels(self, v: Vertex) -> FrozenSet[str]:
        self._require_vertex(v)
        return frozenset(self._vertex_labels[v])

    def edge_labels(self, u: Vertex, v: Vertex) -> FrozenSet[str]:
        e = self._require_edge(u, v)
        return frozenset(self._edge_labels[e])

    def has_vertex_label(self, v: Vertex, label: str) -> bool:
        self._require_vertex(v)
        return label in self._vertex_labels[v]

    def has_edge_label(self, u: Vertex, v: Vertex, label: str) -> bool:
        e = self._require_edge(u, v)
        return label in self._edge_labels[e]

    def set_vertex_weight(self, v: Vertex, weight: int) -> None:
        self._require_vertex(v)
        self._vertex_weights[v] = int(weight)

    def set_edge_weight(self, u: Vertex, v: Vertex, weight: int) -> None:
        e = self._require_edge(u, v)
        self._edge_weights[e] = int(weight)

    def vertex_weight(self, v: Vertex, default: int = 1) -> int:
        """Weight of ``v`` (defaults to 1, i.e. cardinality optimization)."""
        self._require_vertex(v)
        return self._vertex_weights.get(v, default)

    def edge_weight(self, u: Vertex, v: Vertex, default: int = 1) -> int:
        e = self._require_edge(u, v)
        return self._edge_weights.get(e, default)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def vertices(self) -> List[Vertex]:
        """All vertices, sorted for deterministic iteration."""
        return sorted_vertices(self._adj)

    def edges(self) -> List[Edge]:
        """All edges in canonical form, sorted for deterministic iteration."""
        return sorted_vertices(self._edge_labels)

    def has_vertex(self, v: Vertex) -> bool:
        return v in self._adj

    def has_edge(self, u: Vertex, v: Vertex) -> bool:
        return u in self._adj and v in self._adj[u]

    def neighbors(self, v: Vertex) -> List[Vertex]:
        self._require_vertex(v)
        return sorted_vertices(self._adj[v])

    def degree(self, v: Vertex) -> int:
        self._require_vertex(v)
        return len(self._adj[v])

    def num_vertices(self) -> int:
        return len(self._adj)

    def num_edges(self) -> int:
        return len(self._edge_labels)

    def incident_edges(self, v: Vertex) -> List[Edge]:
        """All edges incident to ``v``, in canonical form."""
        self._require_vertex(v)
        return sorted_vertices(canonical_edge(v, u) for u in self._adj[v])

    def __contains__(self, v: Vertex) -> bool:
        return v in self._adj

    def __iter__(self) -> Iterator[Vertex]:
        return iter(self.vertices())

    def __len__(self) -> int:
        return len(self._adj)

    def __repr__(self) -> str:
        return f"Graph(n={self.num_vertices()}, m={self.num_edges()})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return (
            self._adj == other._adj
            and self._vertex_labels == other._vertex_labels
            and self._edge_labels == other._edge_labels
            and self._vertex_weights == other._vertex_weights
            and self._edge_weights == other._edge_weights
        )

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------
    def copy(self) -> "Graph":
        g = Graph()
        g._adj = {v: set(nb) for v, nb in self._adj.items()}
        g._vertex_labels = {v: set(s) for v, s in self._vertex_labels.items()}
        g._edge_labels = {e: set(s) for e, s in self._edge_labels.items()}
        g._vertex_weights = dict(self._vertex_weights)
        g._edge_weights = dict(self._edge_weights)
        return g

    def induced_subgraph(self, keep: Iterable[Vertex]) -> "Graph":
        """Subgraph induced by ``keep``; labels and weights are preserved."""
        keep_set = set(keep)
        unknown = keep_set - set(self._adj)
        if unknown:
            raise GraphError(f"unknown vertices {sorted(unknown)!r}")
        g = Graph()
        for v in keep_set:
            g.add_vertex(v)
            g._vertex_labels[v] = set(self._vertex_labels[v])
            if v in self._vertex_weights:
                g._vertex_weights[v] = self._vertex_weights[v]
        for u, v in self.edges():
            if u in keep_set and v in keep_set:
                g.add_edge(u, v)
                e = canonical_edge(u, v)
                g._edge_labels[e] = set(self._edge_labels[e])
                if e in self._edge_weights:
                    g._edge_weights[e] = self._edge_weights[e]
        return g

    def without_vertices(self, drop: Iterable[Vertex]) -> "Graph":
        """Subgraph induced by V minus ``drop``."""
        drop_set = set(drop)
        return self.induced_subgraph(v for v in self._adj if v not in drop_set)

    # ------------------------------------------------------------------
    # Traversals
    # ------------------------------------------------------------------
    def connected_components(self) -> List[List[Vertex]]:
        """Vertex sets of connected components, each sorted, deterministic."""
        seen: Set[Vertex] = set()
        components: List[List[Vertex]] = []
        for start in self.vertices():
            if start in seen:
                continue
            stack = [start]
            comp: List[Vertex] = []
            seen.add(start)
            while stack:
                v = stack.pop()
                comp.append(v)
                for u in self._adj[v]:
                    if u not in seen:
                        seen.add(u)
                        stack.append(u)
            components.append(sorted_vertices(comp))
        return components

    def is_connected(self) -> bool:
        return len(self._adj) <= 1 or len(self.connected_components()) == 1

    def bfs_distances(self, source: Vertex) -> Dict[Vertex, int]:
        """Hop distances from ``source`` to every reachable vertex."""
        self._require_vertex(source)
        dist = {source: 0}
        frontier = [source]
        while frontier:
            nxt: List[Vertex] = []
            for v in frontier:
                for u in self._adj[v]:
                    if u not in dist:
                        dist[u] = dist[v] + 1
                        nxt.append(u)
            frontier = nxt
        return dist

    def diameter(self) -> int:
        """Diameter of a connected graph (max pairwise hop distance)."""
        if not self.is_connected():
            raise GraphError("diameter is undefined for disconnected graphs")
        if self.num_vertices() <= 1:
            return 0
        return max(
            max(self.bfs_distances(v).values()) for v in self.vertices()
        )

    # ------------------------------------------------------------------
    # Internal helpers
    # ------------------------------------------------------------------
    def _require_vertex(self, v: Vertex) -> None:
        if v not in self._adj:
            raise GraphError(f"unknown vertex {v!r}")

    def _require_edge(self, u: Vertex, v: Vertex) -> Edge:
        if not self.has_edge(u, v):
            raise GraphError(f"unknown edge ({u!r}, {v!r})")
        return canonical_edge(u, v)


def relabeled(graph: Graph, mapping: Dict[Vertex, Vertex]) -> Graph:
    """Return a copy of ``graph`` with vertices renamed through ``mapping``.

    ``mapping`` must be injective on ``graph``'s vertices; vertices missing
    from the mapping keep their name.
    """
    target = [mapping.get(v, v) for v in graph.vertices()]
    if len(set(target)) != len(target):
        raise GraphError("relabeling mapping is not injective")
    g = Graph()
    for v in graph.vertices():
        nv = mapping.get(v, v)
        g.add_vertex(nv)
        for label in graph.vertex_labels(v):
            g.add_vertex_label(nv, label)
        if v in graph._vertex_weights:
            g.set_vertex_weight(nv, graph._vertex_weights[v])
    for u, v in graph.edges():
        nu, nv = mapping.get(u, u), mapping.get(v, v)
        g.add_edge(nu, nv)
        for label in graph.edge_labels(u, v):
            g.add_edge_label(nu, nv, label)
        e = canonical_edge(u, v)
        if e in graph._edge_weights:
            g.set_edge_weight(nu, nv, graph._edge_weights[e])
    return g


def disjoint_union(a: Graph, b: Graph, offset: Optional[int] = None) -> Graph:
    """Disjoint union of two integer-vertex graphs.

    ``b``'s vertices are shifted by ``offset`` (default: ``max(a) + 1``).
    """
    if a.num_vertices() and not all(isinstance(v, int) for v in a.vertices()):
        raise GraphError("disjoint_union requires integer vertices")
    if b.num_vertices() and not all(isinstance(v, int) for v in b.vertices()):
        raise GraphError("disjoint_union requires integer vertices")
    if offset is None:
        offset = (max(a.vertices()) + 1) if a.num_vertices() else 0
    shifted = relabeled(b, {v: v + offset for v in b.vertices()})
    out = a.copy()
    for v in shifted.vertices():
        out.add_vertex(v)
        for label in shifted.vertex_labels(v):
            out.add_vertex_label(v, label)
    for u, v in shifted.edges():
        out.add_edge(u, v)
        for label in shifted.edge_labels(u, v):
            out.add_edge_label(u, v, label)
    return out
