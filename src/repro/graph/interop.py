"""Interoperability with networkx.

``networkx`` is an optional dependency: these helpers import it lazily so
the rest of the library works without it.  Conversions preserve labels
(as the ``labels`` node/edge attribute, a sorted tuple) and weights (the
``weight`` attribute, when different from the default 1).
"""

from __future__ import annotations

from typing import Any

from ..errors import GraphError
from .graph import Graph


def _networkx():
    try:
        import networkx
    except ImportError as exc:  # pragma: no cover - depends on environment
        raise GraphError("networkx is not installed") from exc
    return networkx


def to_networkx(graph: Graph) -> Any:
    """Convert to ``networkx.Graph`` with labels/weights as attributes."""
    nx = _networkx()
    out = nx.Graph()
    for v in graph.vertices():
        attrs = {}
        labels = sorted(graph.vertex_labels(v))
        if labels:
            attrs["labels"] = tuple(labels)
        if graph.vertex_weight(v) != 1:
            attrs["weight"] = graph.vertex_weight(v)
        out.add_node(v, **attrs)
    for u, v in graph.edges():
        attrs = {}
        labels = sorted(graph.edge_labels(u, v))
        if labels:
            attrs["labels"] = tuple(labels)
        if graph.edge_weight(u, v) != 1:
            attrs["weight"] = graph.edge_weight(u, v)
        out.add_edge(u, v, **attrs)
    return out


def from_networkx(nx_graph: Any) -> Graph:
    """Convert from a ``networkx.Graph`` (simple, undirected).

    Self-loops are rejected (our graphs are simple, as the paper assumes);
    multigraphs collapse parallel edges.
    """
    g = Graph()
    for v, data in nx_graph.nodes(data=True):
        g.add_vertex(v)
        for label in data.get("labels", ()):
            g.add_vertex_label(v, str(label))
        if "weight" in data:
            g.set_vertex_weight(v, int(data["weight"]))
    for u, v, data in nx_graph.edges(data=True):
        if u == v:
            raise GraphError("self-loops are not supported")
        g.add_edge(u, v)
        for label in data.get("labels", ()):
            g.add_edge_label(u, v, str(label))
        if "weight" in data:
            g.set_edge_weight(u, v, int(data["weight"]))
    return g
