"""Graph serialization: edge lists, an extended text format, DOT export.

The text format is line-oriented and diff-friendly::

    # comment
    vertex 3 [label=red,label=source] [weight=5]
    edge 1 2 [label=backbone] [weight=3]

Only the ``vertex``/``edge`` keyword and the two ids are mandatory.
"""

from __future__ import annotations

import re
from typing import List, TextIO

from ..errors import GraphError
from .graph import Graph, Vertex

_ATTR_RE = re.compile(r"\[(label|weight)=([^\]]*)\]")


def _parse_vertex_id(token: str) -> Vertex:
    try:
        return int(token)
    except ValueError:
        return token


def dumps(graph: Graph) -> str:
    """Serialize ``graph`` to the text format."""
    lines: List[str] = []
    for v in graph.vertices():
        attrs = "".join(f"[label={label}]" for label in sorted(graph.vertex_labels(v)))
        weight = graph.vertex_weight(v)
        if weight != 1:
            attrs += f"[weight={weight}]"
        lines.append(f"vertex {v} {attrs}".rstrip())
    for u, v in graph.edges():
        attrs = "".join(
            f"[label={label}]" for label in sorted(graph.edge_labels(u, v))
        )
        weight = graph.edge_weight(u, v)
        if weight != 1:
            attrs += f"[weight={weight}]"
        lines.append(f"edge {u} {v} {attrs}".rstrip())
    return "\n".join(lines) + "\n"


def loads(text: str) -> Graph:
    """Parse the text format back into a graph."""
    g = Graph()
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        kind = parts[0]
        attrs = _ATTR_RE.findall(line)
        if kind == "vertex":
            if len(parts) < 2:
                raise GraphError(f"line {lineno}: vertex needs an id")
            v = _parse_vertex_id(parts[1])
            g.add_vertex(v)
            for key, value in attrs:
                if key == "label":
                    g.add_vertex_label(v, value)
                else:
                    g.set_vertex_weight(v, int(value))
        elif kind == "edge":
            if len(parts) < 3:
                raise GraphError(f"line {lineno}: edge needs two ids")
            u, v = _parse_vertex_id(parts[1]), _parse_vertex_id(parts[2])
            g.add_edge(u, v)
            for key, value in attrs:
                if key == "label":
                    g.add_edge_label(u, v, value)
                else:
                    g.set_edge_weight(u, v, int(value))
        else:
            raise GraphError(f"line {lineno}: unknown record {kind!r}")
    return g


def write_graph(graph: Graph, handle: TextIO) -> None:
    handle.write(dumps(graph))


def read_graph(handle: TextIO) -> Graph:
    return loads(handle.read())


def read_edge_list(text: str) -> Graph:
    """Parse a plain 'u v' per-line edge list (isolated vertices: 'u')."""
    g = Graph()
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        if len(parts) == 1:
            g.add_vertex(_parse_vertex_id(parts[0]))
        elif len(parts) == 2:
            g.add_edge(_parse_vertex_id(parts[0]), _parse_vertex_id(parts[1]))
        else:
            raise GraphError(f"line {lineno}: expected 'u v'")
    return g


def to_dot(graph: Graph, name: str = "G") -> str:
    """Graphviz DOT export (labels comma-joined, weights as attributes)."""
    lines = [f"graph {name} {{"]
    for v in graph.vertices():
        attrs = []
        labels = sorted(graph.vertex_labels(v))
        if labels:
            attrs.append(f'label="{v}\\n{",".join(labels)}"')
        if graph.vertex_weight(v) != 1:
            attrs.append(f'weight={graph.vertex_weight(v)}')
        suffix = f" [{', '.join(attrs)}]" if attrs else ""
        lines.append(f'  "{v}"{suffix};')
    for u, v in graph.edges():
        attrs = []
        labels = sorted(graph.edge_labels(u, v))
        if labels:
            attrs.append(f'label="{",".join(labels)}"')
        if graph.edge_weight(u, v) != 1:
            attrs.append(f"weight={graph.edge_weight(u, v)}")
        suffix = f" [{', '.join(attrs)}]" if attrs else ""
        lines.append(f'  "{u}" -- "{v}"{suffix};')
    lines.append("}")
    return "\n".join(lines) + "\n"
