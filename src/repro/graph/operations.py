"""Graph operations: complement, line graph, products, subdivision.

These are used for cross-validation (e.g. chromatic index of G equals the
chromatic number of its line graph) and for building benchmark families.
"""

from __future__ import annotations


from ..errors import GraphError
from .graph import Graph, Vertex, canonical_edge


def complement(graph: Graph) -> Graph:
    """The complement graph on the same vertex set."""
    out = Graph(graph.vertices())
    vertices = graph.vertices()
    for i, u in enumerate(vertices):
        for v in vertices[i + 1:]:
            if not graph.has_edge(u, v):
                out.add_edge(u, v)
    return out


def line_graph(graph: Graph) -> Graph:
    """The line graph: vertices are G's edges; adjacency = shared endpoint.

    Vertex names are the canonical edge tuples of G.
    """
    edges = graph.edges()
    out = Graph(edges)
    for i, e in enumerate(edges):
        for f in edges[i + 1:]:
            if set(e) & set(f):
                out.add_edge(e, f)
    return out


def subdivision(graph: Graph) -> Graph:
    """Subdivide every edge once (new midpoint vertices as edge tuples).

    Subdivision preserves planarity and H-minor-freeness; the result is
    bipartite.
    """
    out = Graph(graph.vertices())
    for u, v in graph.edges():
        mid = ("mid",) + canonical_edge(u, v)
        out.add_vertex(mid)
        out.add_edge(u, mid)
        out.add_edge(mid, v)
    return out


def cartesian_product(a: Graph, b: Graph) -> Graph:
    """The Cartesian product a □ b (grids = path □ path)."""
    out = Graph((u, v) for u in a.vertices() for v in b.vertices())
    for u in a.vertices():
        for v1, v2 in b.edges():
            out.add_edge((u, v1), (u, v2))
    for v in b.vertices():
        for u1, u2 in a.edges():
            out.add_edge((u1, v), (u2, v))
    return out


def contract_edge(graph: Graph, u: Vertex, v: Vertex) -> Graph:
    """Contract edge {u, v}: v's neighbors transfer to u; v disappears.

    Labels/weights of the surviving vertex are kept; parallel edges merge
    (simple-graph semantics).  Building block for minor checks.
    """
    if not graph.has_edge(u, v):
        raise GraphError(f"cannot contract non-edge ({u!r}, {v!r})")
    out = graph.copy()
    for w in graph.neighbors(v):
        if w != u:
            out.add_edge(u, w)
    out.remove_vertex(v)
    return out


def has_minor(graph: Graph, pattern: Graph) -> bool:
    """Does ``graph`` contain ``pattern`` as a minor?  (Brute force:
    recursive edge deletion/contraction; tiny graphs only.)"""
    from .properties import has_subgraph

    if pattern.num_vertices() > graph.num_vertices():
        return False
    if pattern.num_edges() > graph.num_edges():
        return False
    if has_subgraph(graph, pattern):
        return True
    for u, v in graph.edges():
        if has_minor(contract_edge(graph, u, v), pattern):
            return True
        smaller = graph.copy()
        smaller.remove_edge(u, v)
        if has_minor(smaller, pattern):
            return True
    return False
