"""Exact (brute-force) graph property checkers.

These are the *ground truth* oracles the test suite and benchmarks compare
the MSO engine and the distributed protocols against.  They are exponential
where the problem is NP-hard, so they are intended for small instances only;
callers in the benchmark harness keep n modest.
"""

from __future__ import annotations

from itertools import combinations
from typing import Callable, Dict, FrozenSet, Iterable, Optional, Set, Tuple

from .graph import Edge, Graph, Vertex, canonical_edge


# ----------------------------------------------------------------------
# Set-shaped predicates (used both directly and via MSO)
# ----------------------------------------------------------------------

def is_independent_set(graph: Graph, subset: Iterable[Vertex]) -> bool:
    s = set(subset)
    return all(not graph.has_edge(u, v) for u, v in combinations(sorted(s), 2))


def is_clique(graph: Graph, subset: Iterable[Vertex]) -> bool:
    s = sorted(set(subset))
    return all(graph.has_edge(u, v) for u, v in combinations(s, 2))


def is_vertex_cover(graph: Graph, subset: Iterable[Vertex]) -> bool:
    s = set(subset)
    return all(u in s or v in s for u, v in graph.edges())


def is_dominating_set(graph: Graph, subset: Iterable[Vertex]) -> bool:
    s = set(subset)
    return all(v in s or any(u in s for u in graph.neighbors(v)) for v in graph)


def is_feedback_vertex_set(graph: Graph, subset: Iterable[Vertex]) -> bool:
    return is_acyclic(graph.without_vertices(subset))


def is_matching(graph: Graph, edge_subset: Iterable[Edge]) -> bool:
    seen: Set[Vertex] = set()
    for u, v in edge_subset:
        if not graph.has_edge(u, v):
            return False
        if u in seen or v in seen:
            return False
        seen.add(u)
        seen.add(v)
    return True


def is_perfect_matching(graph: Graph, edge_subset: Iterable[Edge]) -> bool:
    edge_list = list(edge_subset)
    if not is_matching(graph, edge_list):
        return False
    return 2 * len(edge_list) == graph.num_vertices()


def is_spanning_tree(graph: Graph, edge_subset: Iterable[Edge]) -> bool:
    """Does ``edge_subset`` form a spanning tree of ``graph``?"""
    edge_list = [canonical_edge(u, v) for u, v in edge_subset]
    if len(set(edge_list)) != len(edge_list):
        return False
    if any(not graph.has_edge(u, v) for u, v in edge_list):
        return False
    n = graph.num_vertices()
    if n == 0:
        return not edge_list
    if len(edge_list) != n - 1:
        return False
    sub = Graph(graph.vertices(), edge_list)
    return sub.is_connected()


# ----------------------------------------------------------------------
# Structure
# ----------------------------------------------------------------------

def is_acyclic(graph: Graph) -> bool:
    """Is the graph a forest?  (n - #components == m)"""
    return graph.num_edges() == graph.num_vertices() - len(graph.connected_components())


def is_regular(graph: Graph) -> bool:
    degrees = {graph.degree(v) for v in graph}
    return len(degrees) <= 1


def max_degree(graph: Graph) -> int:
    return max((graph.degree(v) for v in graph), default=0)


# ----------------------------------------------------------------------
# Coloring
# ----------------------------------------------------------------------

def is_k_colorable(graph: Graph, k: int) -> bool:
    """Backtracking k-colorability test."""
    if k < 0:
        return False
    order = sorted(graph.vertices(), key=lambda v: -graph.degree(v))
    color: Dict[Vertex, int] = {}

    def place(i: int) -> bool:
        if i == len(order):
            return True
        v = order[i]
        used = {color[u] for u in graph.neighbors(v) if u in color}
        for c in range(k):
            if c in used:
                continue
            color[v] = c
            if place(i + 1):
                return True
            del color[v]
        return False

    return place(0)


def chromatic_number(graph: Graph) -> int:
    if graph.num_vertices() == 0:
        return 0
    k = 1
    while not is_k_colorable(graph, k):
        k += 1
    return k


def is_proper_coloring(graph: Graph, color: Dict[Vertex, int]) -> bool:
    return all(color[u] != color[v] for u, v in graph.edges())


# ----------------------------------------------------------------------
# Optimization ground truths (brute force / branch and bound)
# ----------------------------------------------------------------------

def _best_vertex_subset(
    graph: Graph,
    feasible: Callable[[Set[Vertex]], bool],
    maximize: bool,
    weight: Optional[Callable[[Vertex], int]] = None,
) -> Tuple[Optional[int], Optional[FrozenSet[Vertex]]]:
    """Exhaustively find the best-weight feasible vertex subset.

    Returns ``(weight, subset)`` or ``(None, None)`` if nothing is feasible.
    """
    w = weight or (lambda _v: 1)
    vertices = graph.vertices()
    best_val: Optional[int] = None
    best_set: Optional[FrozenSet[Vertex]] = None
    for mask in range(1 << len(vertices)):
        subset = {vertices[i] for i in range(len(vertices)) if mask >> i & 1}
        if not feasible(subset):
            continue
        val = sum(w(v) for v in subset)
        if (
            best_val is None
            or (maximize and val > best_val)
            or (not maximize and val < best_val)
        ):
            best_val = val
            best_set = frozenset(subset)
    return best_val, best_set


def max_independent_set(
    graph: Graph, weight: Optional[Callable[[Vertex], int]] = None
) -> Tuple[int, FrozenSet[Vertex]]:
    val, s = _best_vertex_subset(
        graph, lambda sub: is_independent_set(graph, sub), maximize=True, weight=weight
    )
    assert val is not None and s is not None  # empty set is always independent
    return val, s


def min_vertex_cover(
    graph: Graph, weight: Optional[Callable[[Vertex], int]] = None
) -> Tuple[int, FrozenSet[Vertex]]:
    val, s = _best_vertex_subset(
        graph, lambda sub: is_vertex_cover(graph, sub), maximize=False, weight=weight
    )
    assert val is not None and s is not None  # V itself is always a cover
    return val, s


def min_dominating_set(
    graph: Graph, weight: Optional[Callable[[Vertex], int]] = None
) -> Tuple[int, FrozenSet[Vertex]]:
    val, s = _best_vertex_subset(
        graph, lambda sub: is_dominating_set(graph, sub), maximize=False, weight=weight
    )
    assert val is not None and s is not None  # V dominates itself
    return val, s


def min_connected_dominating_set(
    graph: Graph,
) -> Optional[Tuple[int, FrozenSet[Vertex]]]:
    """Smallest nonempty dominating set inducing a connected subgraph.

    Returns None when no such set exists (only for the empty graph).
    """

    def feasible(subset: Set[Vertex]) -> bool:
        return (
            bool(subset)
            and is_dominating_set(graph, subset)
            and graph.induced_subgraph(subset).is_connected()
        )

    val, s = _best_vertex_subset(graph, feasible, maximize=False)
    if val is None or s is None:
        return None
    return val, s


def min_feedback_vertex_set(graph: Graph) -> Tuple[int, FrozenSet[Vertex]]:
    val, s = _best_vertex_subset(
        graph, lambda sub: is_feedback_vertex_set(graph, sub), maximize=False
    )
    assert val is not None and s is not None
    return val, s


def max_matching_size(graph: Graph) -> int:
    """Maximum matching size by exhaustive recursion over edges."""
    edges = graph.edges()

    def recurse(i: int, used: Set[Vertex]) -> int:
        if i == len(edges):
            return 0
        best = recurse(i + 1, used)
        u, v = edges[i]
        if u not in used and v not in used:
            used.add(u)
            used.add(v)
            best = max(best, 1 + recurse(i + 1, used))
            used.discard(u)
            used.discard(v)
        return best

    return recurse(0, set())


def min_spanning_tree_weight(graph: Graph) -> Optional[int]:
    """Kruskal's MST weight (edge weights default to 1); None if disconnected."""
    if not graph.is_connected():
        return None
    parent: Dict[Vertex, Vertex] = {v: v for v in graph.vertices()}

    def find(x: Vertex) -> Vertex:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    total = 0
    for w_uv, u, v in sorted(
        (graph.edge_weight(u, v), u, v) for u, v in graph.edges()
    ):
        ru, rv = find(u), find(v)
        if ru != rv:
            parent[ru] = rv
            total += w_uv
    return total


# ----------------------------------------------------------------------
# Subgraph containment and counting
# ----------------------------------------------------------------------

def _subgraph_embeddings(
    graph: Graph, pattern: Graph, induced: bool
) -> Iterable[Dict[Vertex, Vertex]]:
    """Yield injective maps pattern -> graph preserving (non-)edges."""
    p_vertices = pattern.vertices()

    def extend(i: int, mapping: Dict[Vertex, Vertex], used: Set[Vertex]):
        if i == len(p_vertices):
            yield dict(mapping)
            return
        pv = p_vertices[i]
        for gv in graph.vertices():
            if gv in used:
                continue
            ok = True
            for pu in p_vertices[:i]:
                has_p = pattern.has_edge(pu, pv)
                has_g = graph.has_edge(mapping[pu], gv)
                if has_p and not has_g:
                    ok = False
                    break
                if induced and not has_p and has_g:
                    ok = False
                    break
            if ok:
                mapping[pv] = gv
                used.add(gv)
                yield from extend(i + 1, mapping, used)
                used.discard(gv)
                del mapping[pv]

    yield from extend(0, {}, set())


def has_subgraph(graph: Graph, pattern: Graph, induced: bool = False) -> bool:
    """Does ``graph`` contain ``pattern`` as a (not necessarily induced) subgraph?"""
    for _ in _subgraph_embeddings(graph, pattern, induced):
        return True
    return False


def count_subgraph_copies(graph: Graph, pattern: Graph, induced: bool = False) -> int:
    """Number of *copies* of the pattern (embeddings / |Aut(pattern)|)."""
    embeddings = sum(1 for _ in _subgraph_embeddings(graph, pattern, induced))
    automorphisms = sum(1 for _ in _subgraph_embeddings(pattern, pattern, True))
    assert embeddings % automorphisms == 0
    return embeddings // automorphisms


def count_triangles(graph: Graph) -> int:
    """Number of triangles, by direct enumeration."""
    count = 0
    for u, v in graph.edges():
        common = set(graph.neighbors(u)) & set(graph.neighbors(v))
        count += sum(1 for w in common if w > v)
    return count


def can_partition_into_k_cliques(graph: Graph, k: int) -> bool:
    """Can V be covered by k cliques?  (Equivalently: the complement graph
    is k-colorable.)"""
    complement = Graph(graph.vertices())
    vertices = graph.vertices()
    for i, u in enumerate(vertices):
        for v in vertices[i + 1:]:
            if not graph.has_edge(u, v):
                complement.add_edge(u, v)
    return is_k_colorable(complement, k)


def chromatic_index_at_most(graph: Graph, k: int) -> bool:
    """Can E be partitioned into k matchings?  Backtracking edge coloring."""
    if k < 0:
        return False
    edges = graph.edges()
    color: Dict[Edge, int] = {}

    def conflicts(e: Edge, c: int) -> bool:
        u, v = e
        return any(
            color.get(other) == c
            for other in edges
            if other in color and (u in other or v in other)
        )

    def place(i: int) -> bool:
        if i == len(edges):
            return True
        e = edges[i]
        for c in range(k):
            if not conflicts(e, c):
                color[e] = c
                if place(i + 1):
                    return True
                del color[e]
        return False

    return place(0)


def has_cubic_subgraph(graph: Graph) -> bool:
    """Is there a nonempty edge subset whose support is 3-regular?"""
    edges = graph.edges()
    for mask in range(1, 1 << len(edges)):
        subset = [edges[i] for i in range(len(edges)) if mask >> i & 1]
        degrees: Dict[Vertex, int] = {}
        for u, v in subset:
            degrees[u] = degrees.get(u, 0) + 1
            degrees[v] = degrees.get(v, 0) + 1
        if all(d == 3 for d in degrees.values()):
            return True
    return False


def has_hamiltonian_cycle(graph: Graph) -> bool:
    n = graph.num_vertices()
    if n < 3:
        # A cycle requires at least three vertices (simple-graph convention).
        return False
    vertices = graph.vertices()
    start = vertices[0]

    def extend(current: Vertex, visited: Set[Vertex]) -> bool:
        if len(visited) == n:
            return graph.has_edge(current, start)
        for u in graph.neighbors(current):
            if u not in visited:
                visited.add(u)
                if extend(u, visited):
                    return True
                visited.discard(u)
        return False

    return extend(start, {start})


def has_hamiltonian_path(graph: Graph) -> bool:
    n = graph.num_vertices()
    if n <= 1:
        return True

    def extend(current: Vertex, visited: Set[Vertex]) -> bool:
        if len(visited) == n:
            return True
        for u in graph.neighbors(current):
            if u not in visited:
                visited.add(u)
                if extend(u, visited):
                    return True
                visited.discard(u)
        return False

    return any(extend(v, {v}) for v in graph.vertices())
