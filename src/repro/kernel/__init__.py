"""Treedepth kernelization (Gajarský–Hliněný; the paper's §1 citation)."""

from .types import Kernel, kernelize, subtree_signatures

__all__ = ["Kernel", "kernelize", "subtree_signatures"]
