"""Subtree types on elimination forests (Gajarský–Hliněný kernelization).

The paper's Section 1 cites [GajarskyH15]: MSO properties of graphs of
bounded treedepth have *kernels* — once a node of the elimination tree has
many children whose subtrees look identical relative to the root path,
deleting the surplus copies cannot change any formula of bounded
quantifier rank.  This module computes those subtree types and the
pruned kernel.

A subtree's *signature* is defined recursively and position-relatively:

    sig(v) = (edges-to-ancestors positions, labels of v and of its
              ancestor edges, multiset of children signatures capped at t)

Two siblings with equal uncapped signatures have isomorphic subtrees with
identical attachments to the (shared) root path, so they are
interchangeable for every formula; the threshold t determines how many
copies survive.  For FO with q quantifier nestings, t = q suffices (each
quantifier can pin at most one copy); MSO set quantifiers need larger
thresholds — the test-suite demonstrates both the safe regime and a
deliberately-too-small threshold changing a verdict.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Tuple

from ..errors import DecompositionError
from ..graph import Graph, Vertex
from ..treedepth import EliminationForest

Signature = Hashable


def subtree_signatures(
    graph: Graph, forest: EliminationForest, threshold: int
) -> Dict[Vertex, Signature]:
    """The capped signature of every subtree of the elimination forest.

    ``threshold`` caps the per-type child multiplicities *inside* the
    signature, so signatures themselves quotient by "≥ t copies look the
    same" — matching what the kernelization preserves.
    """
    if threshold < 1:
        raise DecompositionError("threshold must be >= 1")
    signatures: Dict[Vertex, Signature] = {}
    for v in forest.bottom_up_order():
        path = forest.root_path(v)
        positions = tuple(
            j
            for j, ancestor in enumerate(path[:-1], start=1)
            if graph.has_edge(ancestor, v)
        )
        edge_labels = tuple(
            (j, tuple(sorted(graph.edge_labels(path[j - 1], v))))
            for j in positions
        )
        child_signatures = sorted(
            (repr(signatures[c]), signatures[c]) for c in forest.children(v)
        )
        capped: List[Tuple[Signature, int]] = []
        for key, sig in child_signatures:
            if capped and repr(capped[-1][0]) == key:
                capped[-1] = (sig, min(threshold, capped[-1][1] + 1))
            else:
                capped.append((sig, 1))
        signatures[v] = (
            positions,
            tuple(sorted(graph.vertex_labels(v))),
            edge_labels,
            tuple((repr(s), count) for s, count in capped),
        )
    return signatures


@dataclass(frozen=True)
class Kernel:
    """A pruned graph + forest preserving bounded-rank formulas."""

    graph: Graph
    forest: EliminationForest
    kept: Tuple[Vertex, ...]
    removed: Tuple[Vertex, ...]


def kernelize(graph: Graph, forest: EliminationForest, threshold: int) -> Kernel:
    """Prune sibling subtrees beyond ``threshold`` copies per type.

    Top-down: at every node, group the children by signature and keep the
    ``threshold`` smallest-id representatives of each group (dropping a
    child removes its whole subtree).  The result is an induced subgraph
    whose size depends only on (threshold, depth, label alphabet) — not on
    n — and which satisfies exactly the same formulas of suitable rank.
    """
    forest.validate_for(graph)
    signatures = subtree_signatures(graph, forest, threshold)
    keep = set()
    stack = list(forest.roots())
    for root in stack:
        keep.add(root)
    order = forest.topological_order()
    for v in order:
        if v not in keep:
            continue
        groups: Dict[str, List[Vertex]] = {}
        for child in forest.children(v):
            groups.setdefault(repr(signatures[child]), []).append(child)
        for members in groups.values():
            for child in sorted(members)[:threshold]:
                keep.add(child)
    kept = sorted(keep)
    removed = sorted(set(graph.vertices()) - keep)
    kernel_graph = graph.induced_subgraph(kept)
    kernel_forest = EliminationForest(
        {v: forest.parent(v) for v in kept}
    )
    kernel_forest.validate_for(kernel_graph)
    return Kernel(
        graph=kernel_graph,
        forest=kernel_forest,
        kept=tuple(kept),
        removed=tuple(removed),
    )
