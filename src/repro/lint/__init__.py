"""repro.lint — CONGEST-conformance static analysis for node programs.

Rules
-----
RL001  locality        node code sees the network only through ``ctx``
RL002  determinism     no set/dict-order, unseeded-random, or id()/hash()
                       dependence in payloads, outputs, or control flow
RL003  round-structure sends need a reachable yield; one send per neighbor
                       per round; message-producing loops must yield
RL004  payload-typing  payloads stay inside the Payload algebra

Suppress a finding with ``# repro: noqa[RL003]`` on the offending line
(bare ``# repro: noqa`` suppresses every rule).  The adversarial
``Simulation(..., inbox_order="shuffle", seed=...)`` mode is the dynamic
cross-check for RL002.
"""

from .analyzer import (
    LintError,
    check_module,
    check_paths,
    check_program,
    check_registered,
    check_source,
    discover_programs,
    is_node_program,
    iter_python_files,
)
from .findings import Finding
from .rules import RULES, Rule

__all__ = [
    "Finding",
    "LintError",
    "RULES",
    "Rule",
    "check_module",
    "check_paths",
    "check_program",
    "check_registered",
    "check_source",
    "discover_programs",
    "is_node_program",
    "iter_python_files",
]
