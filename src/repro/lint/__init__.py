"""repro.lint — CONGEST-conformance static analysis for node programs.

Rules
-----
RL001  locality         node code sees the network only through ``ctx``
RL002  determinism      no set/dict-order, unseeded-random, or id()/hash()
                        dependence in payloads, outputs, or control flow
RL003  round-structure  sends need a reachable yield; one send per neighbor
                        per round; message-producing loops must yield
RL004  payload-typing   payloads stay inside the Payload algebra
RL005  retry-bound      reliable_send needs a finite max_retries
RL006  bit-budget       every send payload has a statically certified
                        bit-width within the declared CONGEST budget
                        family (abstract interpretation over the
                        call-graph-expanded program)
RL007  round-bound      message-emitting ``while True`` loops need a
                        reachable exit
RL008  nondeterminism-  dataflow taint: order/random/clock-derived values
       taint            must not reach payloads or outputs, even through
                        assignment chains and helper calls
RL009  static-vs-       observed run metrics must not exceed the static
       observed         bounds (``repro lint --verify-runs DIR`` only —
                        not in :data:`RULES`, it needs run artifacts)

Since v2 the analyzer is *interprocedural*: project-local helper calls
are inlined (bounded depth, cycle-safe) before rules run, so a violation
inside a helper is reported with the chain of call-site lines.  Suppress
a finding with ``# repro: noqa[RL003]`` on the offending line — or on
the call-site line for findings inside inlined helpers (bare
``# repro: noqa`` suppresses every rule).  ``repro lint
--show-unused-noqa`` reports suppressions that no longer match anything.
The adversarial ``Simulation(..., inbox_order="shuffle", seed=...)`` mode
is the dynamic cross-check for RL002/RL008, and ``--verify-runs`` is the
dynamic cross-check for RL006/RL007.
"""

from .analyzer import (
    LintError,
    UnusedNoqa,
    check_module,
    check_paths,
    check_program,
    check_registered,
    check_source,
    discover_programs,
    find_unused_noqa,
    is_node_program,
    iter_python_files,
)
from .bitwidth import ProgramBound, SendBound, Width, certify_program
from .conformance import VerifyResult, verify_runs
from .findings import Finding, to_sarif
from .rules import RULES, Rule

__all__ = [
    "Finding",
    "LintError",
    "ProgramBound",
    "RULES",
    "Rule",
    "SendBound",
    "UnusedNoqa",
    "VerifyResult",
    "Width",
    "certify_program",
    "check_module",
    "check_paths",
    "check_program",
    "check_registered",
    "check_source",
    "discover_programs",
    "find_unused_noqa",
    "is_node_program",
    "iter_python_files",
    "to_sarif",
    "verify_runs",
]
