"""Program discovery and the programmatic lint entry points.

The analyzer is purely static: it parses source text, finds node
programs (``@node_program``-decorated functions, or generator functions
taking a ``ctx`` / ``NodeContext`` parameter), and runs every registered
rule over each.  ``# repro: noqa[RL00x]`` comments on the offending line
suppress findings; a bare ``# repro: noqa`` suppresses all rules.
"""

from __future__ import annotations

import ast
import inspect
import os
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterable, List, Optional, Sequence, Set, Tuple

from ..errors import CongestError
from .astutils import ModuleInfo, ProgramInfo, contains_yield, _annotation_names
from .findings import Finding
from .rules import RULES


class LintError(CongestError):
    """Raised when a path cannot be analyzed (missing, unparseable)."""


def _decorator_names(func: ast.FunctionDef) -> Set[str]:
    names: Set[str] = set()
    for dec in func.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        if isinstance(target, ast.Name):
            names.add(target.id)
        elif isinstance(target, ast.Attribute):
            names.add(target.attr)
    return names


def _takes_ctx(func: ast.FunctionDef) -> bool:
    args = func.args
    for arg in list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs):
        if arg.arg == "ctx" or "NodeContext" in _annotation_names(arg.annotation):
            return True
    return False


def is_node_program(func: ast.AST) -> bool:
    """Syntactic test: is this function definition a node program?"""
    if not isinstance(func, ast.FunctionDef):
        return False
    if "node_program" in _decorator_names(func):
        return True
    return contains_yield(func) and _takes_ctx(func)


def discover_programs(module: ModuleInfo) -> List[ProgramInfo]:
    """All node programs in a module, with factory-closure qualnames."""
    programs: List[ProgramInfo] = []

    def visit(node: ast.AST, stack: List[ast.FunctionDef], qual: List[str]):
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                # Methods are not node programs; don't descend.
                continue
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                parts = qual + (
                    ["<locals>", child.name] if stack else [child.name]
                )
                if is_node_program(child):
                    programs.append(
                        ProgramInfo(
                            module=module,
                            node=child,
                            qualname=".".join(parts),
                            enclosing=list(stack),
                        )
                    )
                if isinstance(child, ast.FunctionDef):
                    visit(child, stack + [child], parts)
                continue
            visit(child, stack, qual)

    visit(module.tree, [], [])
    return programs


def _selected_rules(select: Optional[Sequence[str]]):
    if select is None:
        return list(RULES.values())
    wanted = {code.upper() for code in select}
    unknown = wanted - set(RULES)
    if unknown:
        raise LintError(f"unknown rule code(s): {', '.join(sorted(unknown))}")
    return [RULES[code] for code in sorted(wanted)]


_INLINE_SUFFIX_RE = re.compile(r" \(in inlined helper '[^']+'\)$")


def _expanded(program: ProgramInfo) -> ProgramInfo:
    """The program with project-local helper calls inlined (best effort)."""
    from .callgraph import expand_program

    try:
        node = expand_program(program)
    except RecursionError:
        node = None
    if node is None:
        return program
    return ProgramInfo(
        module=program.module,
        node=node,
        qualname=program.qualname,
        enclosing=program.enclosing,
    )


def _dedupe_key(finding: Finding) -> Tuple[str, int, int, str, str]:
    # A helper that is itself a discoverable program produces the same
    # finding standalone and inlined into its callers; the inlined copy
    # only differs by the "(in inlined helper ...)" suffix.
    base = _INLINE_SUFFIX_RE.sub("", finding.message)
    return (finding.path, finding.line, finding.col, finding.code, base)


def _suppressed(module: ModuleInfo, finding: Finding) -> bool:
    """noqa applies at the finding's line *or* at any inlining call site."""
    if module.suppressed(finding.line, finding.code):
        return True
    return any(
        module.suppressed(line, finding.code) for line in finding.callsites
    )


def _raw_findings(
    module: ModuleInfo, select: Optional[Sequence[str]] = None
) -> List[Finding]:
    """All findings for a module, deduplicated but not noqa-filtered."""
    findings: List[Finding] = []
    seen: Set[Tuple[str, int, int, str, str]] = set()
    for program in discover_programs(module):
        target = _expanded(program)
        for rule in _selected_rules(select):
            for finding in rule.check(target):
                key = _dedupe_key(finding)
                if key not in seen:
                    seen.add(key)
                    findings.append(finding)
    return findings


def check_source(
    source: str,
    path: str = "<string>",
    select: Optional[Sequence[str]] = None,
) -> List[Finding]:
    """Lint source text; findings are sorted and noqa-filtered."""
    try:
        module = ModuleInfo.from_source(source, path)
    except SyntaxError as exc:
        raise LintError(f"{path}: cannot parse: {exc}") from exc
    findings = [
        f for f in _raw_findings(module, select) if not _suppressed(module, f)
    ]
    return sorted(findings, key=lambda f: f.sort_key)


def check_module(
    path: str, select: Optional[Sequence[str]] = None
) -> List[Finding]:
    """Lint one ``.py`` file."""
    try:
        source = Path(path).read_text()
    except OSError as exc:
        raise LintError(f"{path}: cannot read: {exc}") from exc
    return check_source(source, path=str(path), select=select)


def iter_python_files(paths: Iterable[str]) -> List[str]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: List[str] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            out.extend(str(p) for p in sorted(path.rglob("*.py")))
        elif path.suffix == ".py" or path.is_file():
            out.append(str(path))
        else:
            raise LintError(f"{raw}: not a file or directory")
    seen: Set[str] = set()
    unique = []
    for p in out:
        key = os.path.normpath(p)
        if key not in seen:
            seen.add(key)
            unique.append(p)
    return unique


def check_paths(
    paths: Iterable[str], select: Optional[Sequence[str]] = None
) -> List[Finding]:
    """Lint every ``.py`` file under the given files/directories."""
    findings: List[Finding] = []
    for path in iter_python_files(paths):
        findings.extend(check_module(path, select=select))
    return sorted(findings, key=lambda f: f.sort_key)


@dataclass(frozen=True)
class UnusedNoqa:
    """A ``# repro: noqa`` comment that suppresses nothing."""

    path: str
    line: int
    code: str  # "*" for a bare noqa

    def format(self) -> str:
        label = "noqa" if self.code == "*" else f"noqa[{self.code}]"
        return (
            f"{self.path}:{self.line}: unused suppression: # repro: {label} "
            "matches no finding"
        )


def find_unused_noqa(paths: Iterable[str]) -> List[UnusedNoqa]:
    """Suppression comments that no longer suppress any finding.

    A suppression counts as *used* when some raw (pre-noqa) finding is
    anchored at its line — either directly or through an interprocedural
    call-site chain.  Codes the analyzer does not register (e.g. RL009,
    which only fires from ``--verify-runs``) are never counted as used.
    """
    out: List[UnusedNoqa] = []
    for path in iter_python_files(paths):
        try:
            source = Path(path).read_text()
        except OSError as exc:
            raise LintError(f"{path}: cannot read: {exc}") from exc
        try:
            module = ModuleInfo.from_source(source, str(path))
        except SyntaxError as exc:
            raise LintError(f"{path}: cannot parse: {exc}") from exc
        if not module.noqa:
            continue
        hit: dict = {}
        for finding in _raw_findings(module):
            for line in (finding.line, *finding.callsites):
                hit.setdefault(line, set()).add(finding.code)
        for line, codes in sorted(module.noqa.items()):
            found = hit.get(line, set())
            if "*" in codes:
                if not found:
                    out.append(UnusedNoqa(str(path), line, "*"))
                continue
            for code in sorted(codes):
                if code not in found:
                    out.append(UnusedNoqa(str(path), line, code))
    return sorted(out, key=lambda u: (u.path, u.line, u.code))


def check_program(
    func: Callable, select: Optional[Sequence[str]] = None
) -> List[Finding]:
    """Lint one live function object (resolved back to its source file)."""
    target = inspect.unwrap(func)
    try:
        path = inspect.getsourcefile(target)
    except TypeError:
        path = None
    if path is None:
        raise LintError(f"{func!r}: source file not found")
    qualname = target.__qualname__
    return [
        f for f in check_module(path, select=select) if f.program == qualname
    ]


def check_registered(select: Optional[Sequence[str]] = None) -> List[Finding]:
    """Lint every program currently in the ``@node_program`` registry."""
    from ..congest.registry import iter_registered

    findings: List[Finding] = []
    seen_paths: Set[str] = set()
    for _, func in iter_registered():
        target = inspect.unwrap(func)
        try:
            path = inspect.getsourcefile(target)
        except TypeError:
            path = None
        if path is None or path in seen_paths:
            continue
        seen_paths.add(path)
        findings.extend(check_module(path, select=select))
    return sorted(findings, key=lambda f: f.sort_key)
