"""AST plumbing shared by the lint rules.

Everything here is *syntactic*: the analyzer never imports the code it
checks.  A :class:`ModuleInfo` wraps one parsed source file (bindings at
module scope, ``# repro: noqa`` suppressions); a :class:`ProgramInfo`
wraps one discovered node program together with cached derived views
(parent links, statement positions, locals, sends, the set of
order-unreliable names) that the rules in :mod:`repro.lint.rules` consume.
"""

from __future__ import annotations

import ast
import builtins
import re
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Tuple

_NOQA_RE = re.compile(r"#\s*repro:\s*noqa(?:\[([A-Za-z0-9_,\s]+)\])?")

_SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)

#: Calls whose result does not depend on the iteration order of their
#: argument — wrapping an unordered collection in one of these makes the
#: value deterministic again.
ORDER_CLEANSERS = {
    "sorted", "min", "max", "sum", "len", "set", "frozenset", "any", "all",
    "ordered_inbox",
}

#: Module-level constructors of order-unreliable collections.
UNORDERED_CONSTRUCTORS = {"set", "frozenset"}


def iter_own(root: ast.AST) -> Iterator[ast.AST]:
    """All descendants of ``root`` excluding nested function/class scopes.

    The body of a nested ``def`` runs in its own activation (often not
    during the round at all), so rules analyze each program's own code and
    treat nested helpers as opaque.
    """

    def walk(node: ast.AST) -> Iterator[ast.AST]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, _SCOPE_NODES):
                # Decorators and default expressions of a nested def are
                # evaluated in the *enclosing* scope — only the body is
                # opaque.
                for part in _scope_header(child):
                    yield part
                    yield from walk(part)
                continue
            yield child
            yield from walk(child)

    yield from walk(root)


def _scope_header(node: ast.AST) -> Iterator[ast.AST]:
    """Sub-expressions of a scope node evaluated in the enclosing scope."""
    for dec in getattr(node, "decorator_list", []):
        yield dec
    args = getattr(node, "args", None)
    if args is not None:
        for default in list(args.defaults) + [
            d for d in args.kw_defaults if d is not None
        ]:
            yield default
    for base in getattr(node, "bases", []):
        yield base
    for kw in getattr(node, "keywords", []):
        yield kw.value


def contains_yield(node: ast.AST) -> bool:
    """Does ``node``'s own scope contain a yield / yield from?"""
    if isinstance(node, (ast.Yield, ast.YieldFrom)):
        return True
    return any(
        isinstance(n, (ast.Yield, ast.YieldFrom)) for n in iter_own(node)
    )


def names_loaded(node: ast.AST) -> Set[str]:
    """Names read anywhere in ``node`` (own scope)."""
    out = set()
    nodes = [node] if isinstance(node, ast.Name) else list(iter_own(node))
    for n in nodes:
        if isinstance(n, ast.Name) and isinstance(n.ctx, ast.Load):
            out.add(n.id)
    return out


def is_builtin(name: str) -> bool:
    return hasattr(builtins, name)


def parse_noqa(source: str) -> Dict[int, Set[str]]:
    """Map line number -> suppressed rule codes ('*' = all) from comments."""
    out: Dict[int, Set[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _NOQA_RE.search(line)
        if not match:
            continue
        codes = match.group(1)
        if codes is None:
            out[lineno] = {"*"}
        else:
            out[lineno] = {c.strip().upper() for c in codes.split(",") if c.strip()}
    return out


def _annotation_names(annotation: Optional[ast.AST]) -> Set[str]:
    if annotation is None:
        return set()
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        # String annotations: crude token scan is enough for 'Graph'.
        return set(re.findall(r"[A-Za-z_][A-Za-z0-9_]*", annotation.value))
    return {
        n.id for n in ast.walk(annotation) if isinstance(n, ast.Name)
    } | {
        n.attr for n in ast.walk(annotation) if isinstance(n, ast.Attribute)
    }


def is_graph_annotation(annotation: Optional[ast.AST]) -> bool:
    """Is this annotation *directly* a Graph (or Optional[Graph])?

    ``Callable[[Graph], bool]`` mentions Graph but annotates a function —
    only a parameter that *is* a Graph violates locality.
    """
    if annotation is None:
        return False
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        try:
            annotation = ast.parse(annotation.value, mode="eval").body
        except SyntaxError:
            return False
    if isinstance(annotation, ast.Name):
        return annotation.id == "Graph"
    if isinstance(annotation, ast.Attribute):
        return annotation.attr == "Graph"
    if isinstance(annotation, ast.Subscript):
        base = annotation.value
        base_name = (
            base.id if isinstance(base, ast.Name) else getattr(base, "attr", None)
        )
        if base_name == "Optional":
            return is_graph_annotation(annotation.slice)
    return False


def classify_binding(
    value: Optional[ast.AST], annotation: Optional[ast.AST] = None
) -> str:
    """Classify a bound value: 'graph', 'mutable', or 'other'."""
    if is_graph_annotation(annotation):
        return "graph"
    if value is None:
        return "other"
    if isinstance(value, ast.Call) and isinstance(value.func, ast.Name):
        if value.func.id == "Graph":
            return "graph"
        if value.func.id in {"list", "dict", "set", "defaultdict", "deque"}:
            return "mutable"
    if isinstance(
        value,
        (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp),
    ):
        return "mutable"
    return "other"


def bound_names(func: ast.AST) -> Set[str]:
    """Every name bound in ``func``'s own scope (params, assignments, ...)."""
    names: Set[str] = set()
    args = getattr(func, "args", None)
    if args is not None:
        for arg in (
            list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
        ):
            names.add(arg.arg)
        if args.vararg:
            names.add(args.vararg.arg)
        if args.kwarg:
            names.add(args.kwarg.arg)
    for n in iter_own(func):
        if isinstance(n, ast.Name) and isinstance(n.ctx, (ast.Store, ast.Del)):
            names.add(n.id)
        elif isinstance(n, ast.ExceptHandler) and n.name:
            names.add(n.name)
        elif isinstance(n, (ast.Import, ast.ImportFrom)):
            for alias in n.names:
                names.add((alias.asname or alias.name).split(".")[0])
        elif isinstance(n, ast.Global):
            names.update(n.names)
        elif isinstance(n, ast.Nonlocal):
            names.update(n.names)
        elif isinstance(n, ast.MatchAs) and n.name:
            names.add(n.name)
        elif isinstance(n, ast.MatchStar) and n.name:
            names.add(n.name)
        elif isinstance(n, ast.MatchMapping) and n.rest:
            names.add(n.rest)
    for n in ast.walk(func):
        if (
            isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef))
            and n is not func
        ):
            names.add(n.name)
    return names


@dataclass
class ModuleInfo:
    """One parsed source file and its module-scope facts."""

    path: str
    source: str
    tree: ast.Module
    bindings: Dict[str, str] = field(default_factory=dict)  # name -> kind
    noqa: Dict[int, Set[str]] = field(default_factory=dict)
    random_imports: Set[str] = field(default_factory=set)

    @classmethod
    def from_source(cls, source: str, path: str) -> "ModuleInfo":
        tree = ast.parse(source)
        info = cls(path=path, source=source, tree=tree, noqa=parse_noqa(source))
        for stmt in tree.body:
            if isinstance(stmt, ast.Import):
                for alias in stmt.names:
                    name = (alias.asname or alias.name).split(".")[0]
                    info.bindings[name] = "import"
            elif isinstance(stmt, ast.ImportFrom):
                for alias in stmt.names:
                    info.bindings[alias.asname or alias.name] = "import"
                    if stmt.module == "random":
                        info.random_imports.add(alias.asname or alias.name)
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info.bindings[stmt.name] = "func"
            elif isinstance(stmt, ast.ClassDef):
                info.bindings[stmt.name] = "class"
            elif isinstance(stmt, ast.Assign):
                kind = classify_binding(stmt.value)
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        info.bindings[target.id] = kind
            elif isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                info.bindings[stmt.target.id] = classify_binding(
                    stmt.value, stmt.annotation
                )
        return info

    def suppressed(self, line: int, code: str) -> bool:
        codes = self.noqa.get(line)
        return bool(codes) and ("*" in codes or code.upper() in codes)


class ProgramInfo:
    """One node program plus the derived views the rules need."""

    def __init__(
        self,
        module: ModuleInfo,
        node: ast.FunctionDef,
        qualname: str,
        enclosing: List[ast.FunctionDef],
    ):
        self.module = module
        self.node = node
        self.qualname = qualname
        self.enclosing = enclosing  # outermost -> innermost, self excluded

        self.parents: Dict[ast.AST, ast.AST] = {}
        for n in ast.walk(node):
            for child in ast.iter_child_nodes(n):
                self.parents[child] = n

        self.own: List[ast.AST] = list(iter_own(node))
        self.locals: Set[str] = bound_names(node)
        self.ctx_names: Set[str] = self._find_ctx_names()
        self.sends: List[Tuple[ast.Call, str]] = self._find_sends()
        # stmt -> (owner node, statement list, index) for sibling walks.
        self.stmt_loc: Dict[ast.AST, Tuple[ast.AST, list, int]] = {}
        for n in [node] + self.own:
            for fname in ("body", "orelse", "finalbody"):
                stmts = getattr(n, fname, None)
                if isinstance(stmts, list) and stmts and isinstance(
                    stmts[0], ast.stmt
                ):
                    for i, s in enumerate(stmts):
                        self.stmt_loc[s] = (n, stmts, i)
        self.yield_names: Set[str] = self._find_yield_names()
        self.unordered_names: Set[str] = self._find_unordered_names()

    # -- derived views --------------------------------------------------
    def _find_ctx_names(self) -> Set[str]:
        names = set()
        args = self.node.args
        for arg in list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs):
            if arg.arg == "ctx" or "NodeContext" in _annotation_names(
                arg.annotation
            ):
                names.add(arg.arg)
        return names

    def _find_sends(self) -> List[Tuple[ast.Call, str]]:
        out = []
        for n in self.own:
            if (
                isinstance(n, ast.Call)
                and isinstance(n.func, ast.Attribute)
                and n.func.attr in {"send", "send_all"}
                and isinstance(n.func.value, ast.Name)
                and n.func.value.id in self.ctx_names
            ):
                out.append((n, n.func.attr))
        return out

    def _find_yield_names(self) -> Set[str]:
        """Names assigned from a bare ``yield`` (i.e. inbox dicts)."""
        names = set()
        for n in self.own:
            if isinstance(n, ast.Assign) and isinstance(n.value, ast.Yield):
                for target in n.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
            elif isinstance(n, ast.NamedExpr) and isinstance(n.value, ast.Yield):
                if isinstance(n.target, ast.Name):
                    names.add(n.target.id)
        return names

    def _find_unordered_names(self) -> Set[str]:
        """Names bound to order-unreliable collections (sets, inboxes)."""
        names: Set[str] = set(self.yield_names)
        for _ in range(3):  # small fixpoint for chained assignments
            changed = False
            for n in self.own:
                value = None
                target = None
                if isinstance(n, ast.Assign) and len(n.targets) == 1:
                    target, value = n.targets[0], n.value
                elif isinstance(n, ast.AnnAssign) and n.value is not None:
                    target, value = n.target, n.value
                elif isinstance(n, ast.NamedExpr):
                    target, value = n.target, n.value
                if not isinstance(target, ast.Name) or value is None:
                    continue
                if self.is_unordered(value, names) and target.id not in names:
                    names.add(target.id)
                    changed = True
            if not changed:
                break
        return names

    # -- queries used by rules ------------------------------------------
    def is_unordered(
        self, expr: ast.AST, names: Optional[Set[str]] = None
    ) -> bool:
        """Is ``expr`` an order-unreliable collection (set-like or inbox)?"""
        names = self.unordered_names if names is None else names
        if isinstance(expr, (ast.Set, ast.SetComp)):
            return True
        if isinstance(expr, ast.Yield):
            return True
        if isinstance(expr, ast.Name):
            return expr.id in names
        if isinstance(expr, ast.Call):
            func = expr.func
            if isinstance(func, ast.Name) and func.id in UNORDERED_CONSTRUCTORS:
                return True
            if (
                isinstance(func, ast.Attribute)
                and func.attr in {"keys", "values", "items"}
                and self.is_unordered(func.value, names)
            ):
                return True
        return False

    def has_cleansing_ancestor(self, node: ast.AST) -> bool:
        """Is ``node`` wrapped in an order-insensitive call (sorted, ...)?"""
        current = self.parents.get(node)
        while current is not None and current is not self.node:
            if (
                isinstance(current, ast.Call)
                and isinstance(current.func, ast.Name)
                and current.func.id in ORDER_CLEANSERS
            ):
                return True
            current = self.parents.get(current)
        return False

    def enclosing_statement(self, node: ast.AST) -> Optional[ast.AST]:
        current: Optional[ast.AST] = node
        while current is not None and current not in self.stmt_loc:
            current = self.parents.get(current)
        return current

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        current = self.parents.get(node)
        while current is not None:
            yield current
            if current is self.node:
                return
            current = self.parents.get(current)

    def resolve_closure(self, name: str) -> Optional[str]:
        """Classify a name bound in an enclosing function scope.

        Returns 'graph', 'mutable', 'other', or None when the name is not
        bound by any enclosing function.
        """
        for func in reversed(self.enclosing):
            args = func.args
            for arg in (
                list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
            ):
                if arg.arg == name:
                    if is_graph_annotation(arg.annotation):
                        return "graph"
                    return "other"
            for n in iter_own(func):
                if isinstance(n, ast.Assign):
                    for target in n.targets:
                        if isinstance(target, ast.Name) and target.id == name:
                            kind = classify_binding(n.value)
                            # Closure-level mutable literals are legitimate
                            # shared "common knowledge" tables; only Graph
                            # objects violate locality outright.
                            return "graph" if kind == "graph" else "other"
                elif isinstance(n, ast.AnnAssign) and isinstance(
                    n.target, ast.Name
                ) and n.target.id == name:
                    kind = classify_binding(n.value, n.annotation)
                    return "graph" if kind == "graph" else "other"
            if name in bound_names(func):
                return "other"
        return None
