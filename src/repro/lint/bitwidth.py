"""Payload bit-width abstract interpretation (RL006 / RL007).

The domain tracks symbolic bit-bounds as linear combinations

    const  +  c1·log n  +  c2·d  +  c3·d·log n  +  c4·B

(``B`` is the per-edge CONGEST budget, itself Θ(log n)) plus a ⊤
element for "not statically boundable".  The interpreter walks a node
program's statements to a small fixpoint, propagating widths through
arithmetic, tuples, containers, ``codec.encode`` calls, comprehensions,
and helper calls (resolved through :mod:`repro.lint.callgraph`, bounded
depth, cycle-safe), and records the width of every ``ctx.send`` /
``ctx.send_all`` payload.

Soundness model (documented in docs/static-analysis.md):

* node and vertex identifiers are ``O(log n)`` bits;
* every *atom* read from ``ctx.input`` is an ``O(log n)``-bit word
  (collections read from the input have ``O(log n)``-bit elements; the
  collections themselves are ⊤-width);
* anything received from the network is budget-bounded — the runtime
  rejects oversized messages, so inbox-derived values cost at most one
  ``B`` unit;
* a value that grows additively across loop iterations gains one
  ``log n`` term (a sum of at most ``n``-ish bounded terms);
* structural growth in a loop (tuple concatenation, nested containers)
  and unresolvable calls go to ⊤.

Widths evaluate to concrete bit counts for a given ``(n, d, B)`` via
:meth:`Width.evaluate`; the RL009 conformance gate compares those
numbers against observed ``max_message_bits`` from run reports.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, replace
from typing import Dict, Iterator, List, Optional, Set, Tuple

from .astutils import ModuleInfo, ProgramInfo, iter_own
from .callgraph import HelperResolver, ResolvedHelper, scope_functions
from .findings import Finding

_MAX_PASSES = 3
_MAX_SUMMARY_DEPTH = 3


# ---------------------------------------------------------------------------
# The width lattice
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Width:
    """A symbolic bit bound: const + logn·log n + d·d + dlogn·d·log n + msg·B."""

    const: int = 0
    logn: int = 0
    d: int = 0
    dlogn: int = 0
    msg: int = 0
    top: bool = False

    def join(self, other: "Width") -> "Width":
        if self.top or other.top:
            return TOP
        return Width(
            const=max(self.const, other.const),
            logn=max(self.logn, other.logn),
            d=max(self.d, other.d),
            dlogn=max(self.dlogn, other.dlogn),
            msg=max(self.msg, other.msg),
        )

    def plus(self, other: "Width") -> "Width":
        """Structural sum: bits of a value containing both."""
        if self.top or other.top:
            return TOP
        return Width(
            const=self.const + other.const,
            logn=self.logn + other.logn,
            d=self.d + other.d,
            dlogn=self.dlogn + other.dlogn,
            msg=self.msg + other.msg,
        )

    def add_const(self, bits: int) -> "Width":
        if self.top:
            return TOP
        return replace(self, const=self.const + bits)

    @property
    def coefficients(self) -> Tuple[int, int, int, int]:
        return (self.logn, self.d, self.dlogn, self.msg)

    def family(self) -> str:
        """The asymptotic family for *fixed treedepth d* (paper regime)."""
        if self.top:
            return "⊤"
        if self.logn == 0 and self.dlogn == 0 and self.msg == 0:
            return "O(1)"
        if self.dlogn == 0:
            return "O(log n)"
        return "O(d log n)"

    def render(self) -> str:
        if self.top:
            return "⊤"
        parts: List[str] = []
        if self.const or not any(self.coefficients):
            parts.append(str(self.const))
        if self.logn:
            parts.append(f"{self.logn}·log n" if self.logn != 1 else "log n")
        if self.d:
            parts.append(f"{self.d}·d" if self.d != 1 else "d")
        if self.dlogn:
            parts.append(
                f"{self.dlogn}·d·log n" if self.dlogn != 1 else "d·log n"
            )
        if self.msg:
            parts.append(f"{self.msg}·B" if self.msg != 1 else "B")
        return " + ".join(parts)

    def evaluate(self, n: int, d: int, budget: int) -> int:
        """Concrete worst-case bits for an (n, d, budget) instance."""
        if self.top:
            raise ValueError("cannot evaluate ⊤ width")
        logn_unit = 3 + _bitlen(max(2, n))  # tag + sign + magnitude
        d_unit = 3 + max(1, d)
        return (
            self.const
            + self.logn * logn_unit
            + self.d * d_unit
            + self.dlogn * max(1, d) * logn_unit
            + self.msg * budget
        )


TOP = Width(top=True)
ZERO = Width()

#: Families ordered by inclusion (for fixed d).
FAMILY_ORDER = {"O(1)": 0, "O(log n)": 1, "O(d log n)": 2, "⊤": 3}


def _bitlen(value: int) -> int:
    import math

    return max(1, math.ceil(math.log2(max(2, value))))


def int_width(value: int) -> Width:
    return Width(const=2 + 1 + max(1, abs(int(value)).bit_length()))


def parse_budget_family(text: Optional[str]) -> str:
    """Normalize a declared budget string to a family key.

    Accepts ``O(1)``, ``O(log n)``, ``O(d log n)`` (with ``*``/``·``
    separators and arbitrary whitespace).  Unknown strings fall back to
    the CONGEST default ``O(log n)``.
    """
    if not text:
        return "O(log n)"
    squash = (
        text.replace(" ", "").replace("*", "").replace("·", "").lower()
    )
    if squash in ("o(1)", "1"):
        return "O(1)"
    if squash in ("o(logn)", "logn"):
        return "O(log n)"
    if squash in ("o(dlogn)", "dlogn"):
        return "O(d log n)"
    return "O(log n)"


# ---------------------------------------------------------------------------
# Abstract values
# ---------------------------------------------------------------------------

class AV:
    """A width plus (for containers) the width of an extracted element."""

    __slots__ = ("width", "content", "const_value", "value_le_d",
                 "call_result")

    def __init__(
        self,
        width: Width,
        content: Optional["AV"] = None,
        const_value: Optional[int] = None,
        value_le_d: bool = False,
        call_result: Optional["AV"] = None,
    ) -> None:
        self.width = width
        self.content = content
        self.const_value = const_value
        self.value_le_d = value_le_d
        # For names bound to a known-width bound method (``enc =
        # codec.encode``): the abstract value a call through the name
        # returns.
        self.call_result = call_result

    def elem(self) -> "AV":
        """The abstract value of one extracted element / component.

        For plain (serialized) values a component is at most as wide as
        the whole — receiving a budget-bounded payload and indexing into
        it yields a budget-bounded part.
        """
        if self.content is not None:
            return self.content
        if self.width.top:
            return AV_TOP
        return AV(self.width)

    def join(self, other: "AV") -> "AV":
        content: Optional[AV] = None
        if self.content is not None or other.content is not None:
            content = self.elem().join(other.elem())
        const_value = (
            self.const_value
            if self.const_value is not None
            and self.const_value == other.const_value
            else None
        )
        call_result: Optional[AV] = None
        if self.call_result is not None and other.call_result is not None:
            call_result = self.call_result.join(other.call_result)
        return AV(
            self.width.join(other.width),
            content=content,
            const_value=const_value,
            value_le_d=self.value_le_d and other.value_le_d,
            call_result=call_result,
        )


AV_TOP = AV(TOP)
AV_BOOL = AV(Width(const=3))
AV_NONE = AV(Width(const=3))
AV_STR = AV(Width(const=8))  # codec interns strings: flat tag + 6 bits
AV_LOGN = AV(Width(logn=1))
AV_MSG = AV(Width(msg=1))
#: Length-ish quantities (inbox sizes, list lengths): ≤ poly(n)·4^d.
AV_COUNT = AV(Width(logn=1, d=1, const=4))


def _const_av(value: int) -> AV:
    return AV(int_width(value), const_value=int(value))


#: Attribute reads on a ``ctx`` name.
_CTX_ATTRS = {
    "node": AV_LOGN,
    "n": AV_LOGN,
    "degree": AV_LOGN,
    "budget": AV_LOGN,
    "round_number": AV(Width(logn=1, d=1)),
}

#: Treedepth-like input keys whose *value* is bounded by the promise d.
_DEPTH_KEYS = {"d", "depth", "treedepth"}

#: Zero-argument-insensitive call results by attribute name.
_ATTR_CALL_RESULTS = {
    "encode": AV_LOGN,
    # A decoded automaton state is an interned object whose only
    # serializable form is its O(log n) class id (ClassCodec roundtrip).
    "decode": AV_LOGN,
    "accepts": AV_BOOL,
    # The TabulatedAutomaton kernel's integer state ids: contiguous
    # intern indices, so id-valued results carry the same O(log n)
    # bound as ClassCodec ids.
    "accepts_id": AV_BOOL,
    "leaf_id": AV_LOGN,
    "id_of": AV_LOGN,
    "glue_id": AV_LOGN,
    "forget_id": AV_LOGN,
    "fold_decide": AV_LOGN,
    # The kernel's OPT joins return sequences of (state id, weight)
    # pairs — both components class-id / weight-sum sized.  The COUNT
    # joins are deliberately NOT mapped: their counts can exceed any
    # per-message budget and must be digit-streamed, which the ⊤ width
    # correctly forces the certifier to check.
    "merge_opt": AV(TOP, content=AV(TOP, content=AV(
        Width(logn=2, const=6), content=AV_LOGN))),
    "fold_forget_opt": AV(TOP, content=AV(TOP, content=AV(
        Width(logn=2, const=6), content=AV_LOGN))),
    "bit_length": AV(Width(logn=1, const=2)),
    # RNG draws (seeded or not — determinism is RL002's department) are
    # machine-word bounded.
    "randrange": AV(Width(const=67)),
    "randint": AV(Width(const=67)),
    "getrandbits": AV(Width(const=67)),
}


def _helper_sends(
    func: ast.FunctionDef, ctx_names: Set[str]
) -> List[Tuple[ast.Call, str]]:
    """``ctx.send``/``ctx.send_all`` call sites in a helper body."""
    out: List[Tuple[ast.Call, str]] = []
    for n in iter_own(func):
        if (
            isinstance(n, ast.Call)
            and isinstance(n.func, ast.Attribute)
            and n.func.attr in ("send", "send_all")
            and isinstance(n.func.value, ast.Name)
            and n.func.value.id in ctx_names
        ):
            out.append((n, n.func.attr))
    return out


def _is_literal(expr: ast.AST) -> bool:
    """True for pure literal subtrees (safe to evaluate with no env)."""
    for n in ast.walk(expr):
        if not isinstance(
            n,
            (
                ast.Constant, ast.Tuple, ast.List, ast.Set, ast.Dict,
                ast.Load, ast.UnaryOp, ast.USub, ast.UAdd,
            ),
        ):
            return False
    return True


class _Summary:
    """Result of abstractly executing one function body."""

    def __init__(self) -> None:
        self.ret = AV(Width())
        self.returned = False

    def merge_return(self, av: AV) -> None:
        self.ret = av if not self.returned else self.ret.join(av)
        self.returned = True


class _Interp:
    """Flow-insensitive-ish abstract interpreter over one function."""

    def __init__(
        self,
        module: ModuleInfo,
        resolver: Optional[HelperResolver],
        depth: int = 0,
        call_stack: Tuple[int, ...] = (),
    ) -> None:
        self.module = module
        self.resolver = resolver
        self.depth = depth
        self.call_stack = call_stack
        self.module_consts = _module_int_consts(module)
        self.sends: List[Tuple[ast.Call, str, AV]] = []
        self._send_nodes: Dict[int, str] = {}
        self._recording = False
        self._ctx_names: Set[str] = set()

    # -- public entry ---------------------------------------------------
    def run_program(self, program: ProgramInfo) -> List[Tuple[ast.Call, str, AV]]:
        self._ctx_names = set(program.ctx_names)
        self._send_nodes = {id(c): kind for c, kind in program.sends}
        env: Dict[str, AV] = {}
        # Closure-level literal constants (factory-pattern programs read
        # common-knowledge tables from the enclosing scope).
        for scope in program.enclosing:
            for stmt in scope.body:
                if (
                    isinstance(stmt, ast.Assign)
                    and len(stmt.targets) == 1
                    and isinstance(stmt.targets[0], ast.Name)
                    and _is_literal(stmt.value)
                ):
                    env[stmt.targets[0].id] = self.eval(stmt.value, {})
        for name in _param_names(program.node):
            env[name] = AV_TOP
        for name in self._ctx_names:
            env[name] = AV_TOP
        self._fixpoint(program.node, env)
        return self.sends

    def summarize(self, func: ast.FunctionDef, args: List[AV]) -> AV:
        """Return-value width of a helper called with ``args``."""
        params = _param_names(func)
        env: Dict[str, AV] = {}
        for i, name in enumerate(params):
            env[name] = args[i] if i < len(args) else AV_TOP
        summary = self._fixpoint(func, env)
        return summary.ret if summary.returned else AV_NONE

    # -- fixpoint driver ------------------------------------------------
    def _fixpoint(self, func: ast.FunctionDef, env: Dict[str, AV]) -> _Summary:
        prev: Dict[str, Width] = {}
        summary = _Summary()
        for pass_no in range(_MAX_PASSES + 1):
            final = pass_no == _MAX_PASSES
            if final:
                env = _widen(env, prev)
                self._recording = True
                summary = _Summary()
            before = {k: v.width for k, v in env.items()}
            summary_pass = _Summary()
            self._exec_block(func.body, env, summary_pass)
            summary = summary_pass
            after = {k: v.width for k, v in env.items()}
            if final:
                break
            if pass_no and after == before:
                # Converged early: one recording pass.
                prev = after
                continue
            prev = before
        self._recording = False
        return summary

    # -- statements -----------------------------------------------------
    def _exec_block(
        self, stmts: List[ast.stmt], env: Dict[str, AV], summary: _Summary
    ) -> None:
        for stmt in stmts:
            self._exec(stmt, env, summary)

    def _exec(self, stmt: ast.stmt, env: Dict[str, AV], summary: _Summary) -> None:
        if isinstance(stmt, ast.Assign):
            value = self.eval(stmt.value, env)
            for target in stmt.targets:
                self._assign(target, value, stmt.value, env)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._assign(stmt.target, self.eval(stmt.value, env), stmt.value, env)
        elif isinstance(stmt, ast.AugAssign):
            synthetic = ast.BinOp(
                left=_load_of(stmt.target), op=stmt.op, right=stmt.value
            )
            ast.copy_location(synthetic, stmt)
            ast.fix_missing_locations(synthetic)
            self._assign(stmt.target, self.eval(synthetic, env), None, env)
        elif isinstance(stmt, ast.For):
            iterable = self.eval(stmt.iter, env)
            self._assign(stmt.target, iterable.elem(), None, env)
            self._exec_block(stmt.body, env, summary)
            self._exec_block(stmt.orelse, env, summary)
        elif isinstance(stmt, ast.While):
            self.eval(stmt.test, env)
            self._exec_block(stmt.body, env, summary)
            self._exec_block(stmt.orelse, env, summary)
        elif isinstance(stmt, ast.If):
            self.eval(stmt.test, env)
            self._exec_block(stmt.body, env, summary)
            self._exec_block(stmt.orelse, env, summary)
        elif isinstance(stmt, ast.Try):
            self._exec_block(stmt.body, env, summary)
            for handler in stmt.handlers:
                if handler.name:
                    env[handler.name] = AV_TOP
                self._exec_block(handler.body, env, summary)
            self._exec_block(stmt.orelse, env, summary)
            self._exec_block(stmt.finalbody, env, summary)
        elif isinstance(stmt, ast.With):
            for item in stmt.items:
                ctx_av = self.eval(item.context_expr, env)
                if item.optional_vars is not None:
                    self._assign(item.optional_vars, ctx_av, None, env)
            self._exec_block(stmt.body, env, summary)
        elif isinstance(stmt, ast.Return):
            av = self.eval(stmt.value, env) if stmt.value is not None else AV_NONE
            summary.merge_return(av)
        elif isinstance(stmt, ast.Expr):
            self._side_effect(stmt.value, env)
        elif isinstance(stmt, ast.FunctionDef):
            env[stmt.name] = AV_TOP
        elif hasattr(ast, "Match") and isinstance(stmt, ast.Match):
            subject = self.eval(stmt.subject, env)
            for case in stmt.cases:
                for name in _pattern_names(case.pattern):
                    env[name] = _weak(env, name, subject.join(subject.elem()))
                self._exec_block(case.body, env, summary)
        # Pass/Break/Continue/Raise/Import/Global/Assert: no width effect.
        elif isinstance(stmt, ast.Assert):
            self.eval(stmt.test, env)

    def _assign(
        self,
        target: ast.AST,
        value: AV,
        value_expr: Optional[ast.AST],
        env: Dict[str, AV],
    ) -> None:
        if isinstance(target, ast.Name):
            alias = _method_alias_result(value_expr)
            if alias is not None:
                value = AV(
                    value.width, content=value.content,
                    const_value=value.const_value,
                    value_le_d=value.value_le_d, call_result=alias,
                )
            env[target.id] = _weak(env, target.id, value)
        elif isinstance(target, (ast.Tuple, ast.List)):
            elts = list(target.elts)
            if isinstance(value_expr, ast.Tuple) and len(value_expr.elts) == len(
                elts
            ):
                for t, e in zip(elts, value_expr.elts):
                    self._assign(t, self.eval(e, env), e, env)
            else:
                element = value.elem()
                for t in elts:
                    if isinstance(t, ast.Starred):
                        self._assign(t.value, AV(TOP, content=element), None, env)
                    else:
                        self._assign(t, element, None, env)
        elif isinstance(target, ast.Subscript):
            self._container_update(target.value, value, env)
        elif isinstance(target, ast.Starred):
            self._assign(target.value, value, None, env)
        # Attribute targets: object state, not message width — ignore.

    def _container_update(self, base: ast.AST, value: AV, env: Dict[str, AV]) -> None:
        """Weak-update the element content of ``base`` with ``value``."""
        if isinstance(base, ast.Name):
            old = env.get(base.id, AV_TOP)
            content = old.elem().join(value)
            env[base.id] = AV(
                old.width, content=content, const_value=None,
                value_le_d=old.value_le_d,
            )
        elif isinstance(base, ast.Subscript):
            inner = self.eval(base, env)
            self._container_update(
                base.value, AV(inner.width, content=inner.elem().join(value)), env
            )

    def _side_effect(self, expr: ast.AST, env: Dict[str, AV]) -> None:
        if (
            isinstance(expr, ast.Call)
            and isinstance(expr.func, ast.Attribute)
            and expr.func.attr in {
                "append", "add", "insert", "extend", "update", "setdefault",
            }
        ):
            args = [self.eval(a, env) for a in expr.args]
            if args:
                value = args[-1]
                if expr.func.attr in {"extend", "update"}:
                    value = value.elem()
                self._container_update(expr.func.value, value, env)
            return
        self.eval(expr, env)

    # -- expressions ----------------------------------------------------
    def eval(self, expr: ast.AST, env: Dict[str, AV]) -> AV:
        av = self._eval_inner(expr, env)
        if (
            self._recording
            and isinstance(expr, ast.Call)
            and id(expr) in self._send_nodes
        ):
            kind = self._send_nodes[id(expr)]
            payload = None
            if kind == "send" and len(expr.args) >= 2:
                payload = expr.args[1]
            elif kind == "send_all" and expr.args:
                payload = expr.args[0]
            if payload is not None:
                self.sends.append((expr, kind, self._eval_inner(payload, env)))
        return av

    def _eval_inner(self, expr: ast.AST, env: Dict[str, AV]) -> AV:
        if isinstance(expr, ast.Constant):
            return self._const(expr.value)
        if isinstance(expr, ast.Name):
            if expr.id in env:
                return env[expr.id]
            if expr.id in self.module_consts:
                return _const_av(self.module_consts[expr.id])
            if expr.id in ("True", "False"):
                return AV_BOOL
            return AV_TOP
        if isinstance(expr, ast.Attribute):
            return self._eval_attribute(expr, env)
        if isinstance(expr, ast.Tuple):
            return self._eval_sequence(expr.elts, env, header=4)
        if isinstance(expr, (ast.List, ast.Set)):
            return self._eval_sequence(expr.elts, env, header=4)
        if isinstance(expr, ast.Dict):
            parts = [self.eval(v, env) for v in expr.values if v is not None]
            parts += [self.eval(k, env) for k in expr.keys if k is not None]
            content = _join_all(parts)
            if any(k is None for k in expr.keys):
                # ``**mapping`` unpacking: unknown entry count.
                return AV(TOP, content=content)
            # A literal has a fixed entry count: structural sum, like a
            # tuple of (key, value) pairs (RL004 owns the type complaint).
            width = Width(const=4)
            for part in parts:
                width = width.plus(part.width)
            return AV(width, content=content)
        if isinstance(expr, ast.BinOp):
            return self._eval_binop(expr, env)
        if isinstance(expr, ast.BoolOp):
            return _join_all([self.eval(v, env) for v in expr.values])
        if isinstance(expr, ast.Compare):
            self.eval(expr.left, env)
            for comp in expr.comparators:
                self.eval(comp, env)
            return AV_BOOL
        if isinstance(expr, ast.UnaryOp):
            if isinstance(expr.op, ast.Not):
                self.eval(expr.operand, env)
                return AV_BOOL
            return self.eval(expr.operand, env)
        if isinstance(expr, ast.IfExp):
            self.eval(expr.test, env)
            return self.eval(expr.body, env).join(self.eval(expr.orelse, env))
        if isinstance(expr, ast.Call):
            return self._eval_call(expr, env)
        if isinstance(expr, ast.Subscript):
            base = self.eval(expr.value, env)
            if isinstance(expr.slice, ast.Slice):
                return AV(base.width, content=base.elem())
            self.eval(expr.slice, env)
            return base.elem()
        if isinstance(expr, ast.Yield):
            if expr.value is not None:
                self.eval(expr.value, env)
            # The inbox: a dict of budget-bounded payloads per sender.
            return AV(TOP, content=AV_MSG)
        if isinstance(expr, ast.YieldFrom):
            inner = expr.value
            if isinstance(inner, ast.Call):
                resolved = self._resolve_call(inner)
                if resolved is not None:
                    return self._call_summary(resolved, inner, env)
            # Unresolved communication subroutine: its return value is
            # either locally derived or received, hence budget-bounded.
            self.eval(inner, env)
            return AV_MSG
        if isinstance(expr, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            comp_env = dict(env)
            self._bind_comprehension(expr.generators, comp_env)
            return AV(TOP, content=self.eval(expr.elt, comp_env))
        if isinstance(expr, ast.DictComp):
            comp_env = dict(env)
            self._bind_comprehension(expr.generators, comp_env)
            content = self.eval(expr.key, comp_env).join(
                self.eval(expr.value, comp_env)
            )
            return AV(TOP, content=content)
        if isinstance(expr, ast.Starred):
            return self.eval(expr.value, env).elem()
        if hasattr(ast, "NamedExpr") and isinstance(expr, ast.NamedExpr):
            value = self.eval(expr.value, env)
            if isinstance(expr.target, ast.Name):
                env[expr.target.id] = _weak(env, expr.target.id, value)
            return value
        if isinstance(expr, ast.JoinedStr):
            for part in ast.iter_child_nodes(expr):
                if isinstance(part, ast.FormattedValue):
                    self.eval(part.value, env)
            return AV_STR
        if isinstance(expr, ast.Lambda):
            return AV_TOP
        return AV_TOP

    def _const(self, value) -> AV:
        if isinstance(value, bool) or value is None:
            return AV_BOOL if isinstance(value, bool) else AV_NONE
        if isinstance(value, int):
            return _const_av(value)
        if isinstance(value, str):
            return AV_STR
        if isinstance(value, float):
            # Type-wrong for CONGEST (RL004's department) but
            # width-bounded: one IEEE double.
            return AV(Width(const=67))
        return AV_TOP  # bytes / complex: RL004's department

    def _eval_attribute(self, expr: ast.Attribute, env: Dict[str, AV]) -> AV:
        if isinstance(expr.value, ast.Name) and expr.value.id in self._ctx_names:
            if expr.attr in _CTX_ATTRS:
                return _CTX_ATTRS[expr.attr]
            if expr.attr == "neighbors":
                return AV(TOP, content=AV_LOGN)
            if expr.attr == "input":
                # Mapping of O(log n)-bit atoms (elements of collection
                # inputs are O(log n) too).
                return AV(TOP, content=AV(Width(logn=1), content=AV_LOGN))
        self.eval(expr.value, env)
        return AV_TOP

    def _eval_sequence(
        self, elts: List[ast.AST], env: Dict[str, AV], header: int
    ) -> AV:
        avs = [self.eval(e, env) for e in elts]
        width = Width(const=header)
        for av in avs:
            width = width.plus(av.width).add_const(0 if width.top else 0)
        content = _join_all(avs) if avs else AV(Width())
        return AV(width, content=content)

    def _eval_binop(self, expr: ast.BinOp, env: Dict[str, AV]) -> AV:
        left = self.eval(expr.left, env)
        right = self.eval(expr.right, env)
        op = expr.op
        # Exact constant folding keeps mask/shift idioms precise.
        if left.const_value is not None and right.const_value is not None:
            folded = _fold(op, left.const_value, right.const_value)
            if folded is not None:
                return _const_av(folded)
        # Structural concatenation is recognized syntactically (a tuple /
        # list literal on either side).  Plain names are treated as
        # numeric even when they carry element-content: ``w += tbl.get(k)``
        # must join-and-increment, not sum coefficients, or the widener
        # mistakes fixpoint convergence for unbounded structural growth.
        structural = isinstance(
            expr.left, (ast.Tuple, ast.List, ast.Set)
        ) or isinstance(expr.right, (ast.Tuple, ast.List, ast.Set))
        if isinstance(op, (ast.Add, ast.Sub)):
            if structural:
                return AV(
                    left.width.plus(right.width),
                    content=left.elem().join(right.elem()),
                )
            return AV(left.width.join(right.width).add_const(1))
        if isinstance(op, ast.Mult):
            if structural:
                return AV_TOP
            return AV(left.width.plus(right.width))
        if isinstance(op, (ast.FloorDiv, ast.Mod)):
            return AV(left.width.join(right.width))
        if isinstance(op, ast.Div):
            # True division always yields a float (RL004's department);
            # its width is one IEEE double regardless of operand widths.
            return AV(Width(const=67))
        if isinstance(op, (ast.BitOr, ast.BitXor)):
            return AV(left.width.join(right.width).add_const(1))
        if isinstance(op, ast.BitAnd):
            # x & mask is no wider than either operand.
            if right.const_value is not None:
                return AV(int_width(right.const_value))
            if left.const_value is not None:
                return AV(int_width(left.const_value))
            return AV(left.width.join(right.width))
        if isinstance(op, ast.RShift):
            return AV(left.width)
        if isinstance(op, ast.LShift):
            if right.const_value is not None:
                return AV(left.width.add_const(max(0, right.const_value)))
            if right.value_le_d:
                return AV(left.width.plus(Width(d=1)))
            return AV_TOP
        if isinstance(op, ast.Pow):
            # c ** e has ~e·log c bits: boundable only when the exponent's
            # *value* is promise-bounded by the treedepth d.
            if (
                isinstance(expr.left, ast.Constant)
                and isinstance(expr.left.value, int)
                and right.value_le_d
            ):
                factor = max(1, abs(expr.left.value).bit_length())
                return AV(Width(d=factor, const=4))
            return AV_TOP
        return AV_TOP  # Div and friends: floats are RL004's department

    def _bind_comprehension(self, generators, env: Dict[str, AV]) -> None:
        for gen in generators:
            iterable = self.eval(gen.iter, env)
            self._assign(gen.target, iterable.elem(), None, env)
            for cond in gen.ifs:
                self.eval(cond, env)

    # -- calls ----------------------------------------------------------
    def _resolve_call(self, call: ast.Call) -> Optional[ResolvedHelper]:
        if self.resolver is None or not isinstance(call.func, ast.Name):
            return None
        return self.resolver.resolve(call.func.id)

    def _call_summary(
        self, resolved: ResolvedHelper, call: ast.Call, env: Dict[str, AV]
    ) -> AV:
        if self.depth >= _MAX_SUMMARY_DEPTH or id(resolved.func) in self.call_stack:
            return AV_TOP
        args = [self.eval(a, env) for a in call.args]
        if any(isinstance(a, ast.Starred) for a in call.args):
            return AV_TOP
        sub = _Interp(
            resolved.module,
            HelperResolver(
                resolved.module,
                loader=self.resolver.loader if self.resolver else None,
            ),
            depth=self.depth + 1,
            call_stack=self.call_stack + (id(resolved.func),),
        )
        # Helper parameters named/annotated ctx keep their meaning.
        sub._ctx_names = {
            a.arg
            for a in resolved.func.args.args
            if a.arg == "ctx"
        }
        sub._send_nodes = {
            id(c): kind
            for c, kind in _helper_sends(resolved.func, sub._ctx_names)
        }
        try:
            result = sub.summarize(resolved.func, args)
        except RecursionError:
            return AV_TOP
        if self._recording and sub.sends:
            # Sends inside a summarized (non-inlined) helper count against
            # the *caller's* budget; attribute them to the call site so
            # findings stay in the caller's file.
            for _, kind, av in sub.sends:
                self.sends.append((call, kind, av))
        return result

    def _eval_call(self, call: ast.Call, env: Dict[str, AV]) -> AV:
        for kw in call.keywords:
            self.eval(kw.value, env)
        func = call.func
        if isinstance(func, ast.Name):
            return self._eval_name_call(func.id, call, env)
        if isinstance(func, ast.Attribute):
            return self._eval_attr_call(func, call, env)
        for arg in call.args:
            self.eval(arg, env)
        return AV_TOP

    def _eval_name_call(
        self, name: str, call: ast.Call, env: Dict[str, AV]
    ) -> AV:
        args = [self.eval(a, env) for a in call.args]
        bound = env.get(name)
        if bound is not None and bound.call_result is not None:
            # A bound-method alias (``enc = codec.encode``): calling the
            # name yields the method's known result width.
            return bound.call_result
        if name in env:
            # A local binding shadows the builtin / helper meaning; a
            # nested function is still resolvable through the resolver.
            resolved = self._resolve_call(call)
            if resolved is not None:
                return self._call_summary(resolved, call, env)
            return AV_TOP
        if name in ("int", "abs"):
            if args:
                av = args[0]
                if self._is_depth_key_read(call.args[0]):
                    return AV(Width(d=1, const=3), value_le_d=True)
                return AV(av.width, const_value=av.const_value,
                          value_le_d=av.value_le_d)
            return _const_av(0)
        if name == "bool":
            return AV_BOOL
        if name in ("id", "hash"):
            # Process-dependent (RL002's department) but width-bounded:
            # one machine word.
            return AV(Width(const=67))
        if name == "str" or name == "repr" or name == "format":
            return AV_STR
        if name == "len":
            return AV_COUNT
        if name in ("min", "max"):
            if len(args) == 1:
                return args[0].elem()
            return _join_all(args)
        if name == "sum":
            base = args[0].elem() if args else AV(Width())
            return AV(base.width.plus(Width(logn=1)))
        if name in ("sorted", "list", "reversed", "iter"):
            src = args[0] if args else AV(Width())
            return AV(TOP, content=src.elem())
        if name in ("tuple", "frozenset", "set"):
            src = args[0] if args else AV(Width(const=4))
            width = TOP if src.width.top else src.width.add_const(2)
            return AV(width, content=src.elem())
        if name == "range":
            bound = _join_all(args) if args else AV(Width())
            return AV(TOP, content=AV(bound.width, value_le_d=bound.value_le_d))
        if name == "enumerate":
            src = args[0] if args else AV(Width())
            return AV(TOP, content=AV_COUNT.join(src.elem()))
        if name == "zip":
            return AV(TOP, content=_join_all([a.elem() for a in args]))
        if name == "divmod":
            return AV(
                _join_all(args).width.add_const(4),
                content=_join_all(args),
            )
        if name == "next":
            return args[0].elem() if args else AV_TOP
        if name == "ordered_inbox":
            # (sender, payload) pairs, each component budget-bounded.
            pair = AV(Width(msg=1, logn=1, const=4), content=AV_MSG)
            return AV(TOP, content=pair)
        if name == "canonical_edge":
            return AV(Width(logn=2, const=6), content=AV_LOGN)
        if name in ("default_budget", "payload_bits"):
            return AV_LOGN
        if name == "dict":
            src = args[0] if args else AV(Width())
            return AV(TOP, content=src.elem().elem())
        resolved = self._resolve_call(call)
        if resolved is not None:
            return self._call_summary(resolved, call, env)
        return AV_TOP

    def _is_depth_key_read(self, expr: ast.AST) -> bool:
        """Is this ``ctx.input["d"]``-like (value promise-bounded by d)?"""
        if (
            isinstance(expr, ast.Subscript)
            and isinstance(expr.value, ast.Attribute)
            and expr.value.attr == "input"
            and isinstance(expr.value.value, ast.Name)
            and expr.value.value.id in self._ctx_names
            and isinstance(expr.slice, ast.Constant)
            and isinstance(expr.slice.value, str)
            and expr.slice.value.lower() in _DEPTH_KEYS
        ):
            return True
        return False

    def _eval_attr_call(
        self, func: ast.Attribute, call: ast.Call, env: Dict[str, AV]
    ) -> AV:
        attr = func.attr
        base = self.eval(func.value, env)
        args = [self.eval(a, env) for a in call.args]
        if isinstance(func.value, ast.Name) and func.value.id in self._ctx_names:
            if attr in ("send", "send_all"):
                return AV_NONE
        if (
            isinstance(func.value, ast.Name)
            and func.value.id in ("random", "time")
        ):
            # Nondeterministic (RL002/RL008's department) but bounded:
            # floats and machine-word ints.
            return AV(Width(const=67))
        if attr in _ATTR_CALL_RESULTS:
            return _ATTR_CALL_RESULTS[attr]
        if attr == "get":
            default = args[1] if len(args) > 1 else AV_NONE
            return base.elem().join(default)
        if attr in ("pop", "popitem"):
            return base.elem()
        if attr in ("keys", "values"):
            return AV(TOP, content=base.elem())
        if attr == "items":
            pair = AV(
                base.elem().width.plus(base.elem().width).add_const(4),
                content=base.elem(),
            )
            return AV(TOP, content=pair)
        if attr == "items_from":
            # ItemCollector.items_from(child): received payload items.
            return AV(TOP, content=AV_MSG)
        if attr == "copy":
            return base
        if attr in ("index", "count"):
            return AV_COUNT
        if attr == "join":
            return AV_STR
        if attr in ("split", "splitlines"):
            return AV(TOP, content=AV_STR)
        if attr in (
            "append", "add", "insert", "extend", "update", "discard",
            "remove", "clear", "sort", "reverse", "absorb",
        ):
            return AV_NONE
        return AV_TOP


def _load_of(target: ast.AST) -> ast.AST:
    clone = ast.copy_location(
        ast.parse(ast.unparse(target), mode="eval").body, target
    )
    return clone


def _method_alias_result(expr: Optional[ast.AST]) -> Optional[AV]:
    """The call-result AV when ``expr`` is a known-width bound method.

    Recognizes ``obj.encode`` (uncalled) and conditional picks between
    such methods (``ids.encode if tab is not None else codec.encode``),
    so sends through the aliased name stay statically boundable.
    """
    if isinstance(expr, ast.IfExp):
        body = _method_alias_result(expr.body)
        orelse = _method_alias_result(expr.orelse)
        if body is not None and orelse is not None:
            return body.join(orelse)
        return None
    if isinstance(expr, ast.Attribute) and expr.attr in _ATTR_CALL_RESULTS:
        return _ATTR_CALL_RESULTS[expr.attr]
    return None


def _weak(env: Dict[str, AV], name: str, value: AV) -> AV:
    old = env.get(name)
    return value if old is None else old.join(value)


def _join_all(avs: List[AV]) -> AV:
    out: Optional[AV] = None
    for av in avs:
        out = av if out is None else out.join(av)
    return out if out is not None else AV(Width())


def _param_names(func: ast.FunctionDef) -> List[str]:
    args = func.args
    names = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
    if args.vararg:
        names.append(args.vararg.arg)
    if args.kwarg:
        names.append(args.kwarg.arg)
    return names


def _pattern_names(pattern: ast.AST) -> Set[str]:
    names: Set[str] = set()
    for node in ast.walk(pattern):
        if isinstance(node, ast.MatchAs) and node.name:
            names.add(node.name)
        elif isinstance(node, ast.MatchStar) and node.name:
            names.add(node.name)
        elif isinstance(node, ast.MatchMapping) and node.rest:
            names.add(node.rest)
    return names


def _module_int_consts(module: ModuleInfo) -> Dict[str, int]:
    out: Dict[str, int] = {}
    for stmt in module.tree.body:
        if (
            isinstance(stmt, ast.Assign)
            and len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Name)
            and isinstance(stmt.value, ast.Constant)
            and isinstance(stmt.value.value, int)
            and not isinstance(stmt.value.value, bool)
        ):
            out[stmt.targets[0].id] = stmt.value.value
    return out


def _fold(op: ast.operator, a: int, b: int) -> Optional[int]:
    try:
        if isinstance(op, ast.Add):
            return a + b
        if isinstance(op, ast.Sub):
            return a - b
        if isinstance(op, ast.Mult):
            return a * b
        if isinstance(op, ast.FloorDiv):
            return a // b if b else None
        if isinstance(op, ast.Mod):
            return a % b if b else None
        if isinstance(op, ast.Pow):
            return a ** b if 0 <= b <= 64 and abs(a) <= 2 ** 16 else None
        if isinstance(op, ast.LShift):
            return a << b if 0 <= b <= 256 else None
        if isinstance(op, ast.RShift):
            return a >> b if b >= 0 else None
        if isinstance(op, ast.BitAnd):
            return a & b
        if isinstance(op, ast.BitOr):
            return a | b
        if isinstance(op, ast.BitXor):
            return a ^ b
    except (OverflowError, ValueError):
        return None
    return None


def _widen(env: Dict[str, AV], prev: Dict[str, Width]) -> Dict[str, AV]:
    """Stabilize names still growing after the fixpoint passes.

    Additive (const-only) growth means a value accumulated across loop
    iterations: a sum of at most n-ish bounded terms adds one log n
    term.  Coefficient growth is structural (nested containers, tuple
    concatenation) and goes to ⊤.
    """
    out: Dict[str, AV] = {}
    for name, av in env.items():
        before = prev.get(name)
        width = av.width
        if before is not None and not width.top and width != before:
            if width.coefficients == before.coefficients:
                width = Width(
                    const=before.const,
                    logn=width.logn + 1,
                    d=width.d,
                    dlogn=width.dlogn,
                    msg=width.msg,
                )
            else:
                width = TOP
        out[name] = AV(
            width,
            content=av.content,
            const_value=av.const_value if width == av.width else None,
            value_le_d=av.value_le_d,
            # A bound-method alias never changes what its calls return,
            # however wide the binding itself is widened.
            call_result=av.call_result,
        )
    return out


# ---------------------------------------------------------------------------
# Program-level entry points
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class SendBound:
    """The inferred width of one send site."""

    line: int
    col: int
    kind: str
    width: Width


@dataclass(frozen=True)
class ProgramBound:
    """The certified payload bound for one node program."""

    qualname: str
    declared: str  # family string, e.g. "O(log n)"
    width: Width  # join over all send sites (ZERO when the program
    # never sends)
    sends: Tuple[SendBound, ...]
    rounds_expr: Optional[str]

    @property
    def certified(self) -> bool:
        return not self.width.top and (
            FAMILY_ORDER[self.width.family()] <= FAMILY_ORDER[self.declared]
        )


def declared_budget(program: ProgramInfo) -> Tuple[str, Optional[str]]:
    """(bits family, rounds expression) declared on ``@node_program``."""
    bits: Optional[str] = None
    rounds: Optional[str] = None
    for dec in program.node.decorator_list:
        if not isinstance(dec, ast.Call):
            continue
        target = dec.func
        name = (
            target.id
            if isinstance(target, ast.Name)
            else getattr(target, "attr", None)
        )
        if name != "node_program":
            continue
        for kw in dec.keywords:
            if kw.arg == "bits" and isinstance(kw.value, ast.Constant):
                bits = str(kw.value.value)
            elif kw.arg == "rounds" and isinstance(kw.value, ast.Constant):
                if kw.value.value is not None:
                    rounds = str(kw.value.value)
    return parse_budget_family(bits), rounds


def is_declared_program(program: ProgramInfo) -> bool:
    """Does the program carry the ``@node_program`` declaration?"""
    for dec in program.node.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        name = (
            target.id
            if isinstance(target, ast.Name)
            else getattr(target, "attr", None)
        )
        if name == "node_program":
            return True
    return False


def certify_program(
    program: ProgramInfo, resolver: Optional[HelperResolver] = None
) -> ProgramBound:
    """Infer the payload width bound for one (already expanded) program."""
    if resolver is None:
        resolver = HelperResolver(program.module, program)
    declared, rounds_expr = declared_budget(program)
    interp = _Interp(program.module, resolver)
    sends = interp.run_program(program)
    bounds = tuple(
        SendBound(
            line=call.lineno, col=call.col_offset, kind=kind, width=av.width
        )
        for call, kind, av in sends
    )
    width = ZERO
    for bound in bounds:
        width = width.join(bound.width)
    return ProgramBound(
        qualname=program.qualname,
        declared=declared,
        width=width,
        sends=bounds,
        rounds_expr=rounds_expr,
    )


def check_bit_budget(program: ProgramInfo) -> Iterator[Finding]:
    """RL006: every send payload fits the declared budget family."""
    if not is_declared_program(program):
        return
    bound = certify_program(program)
    declared_rank = FAMILY_ORDER[bound.declared]
    for send in bound.sends:
        family = send.width.family()
        if FAMILY_ORDER[family] <= declared_rank:
            continue
        if send.width.top:
            message = (
                f"ctx.{send.kind}() payload width is not statically "
                f"boundable (⊤): the declared CONGEST budget is "
                f"{bound.declared}; bound the value or declare a wider "
                "budget on @node_program(bits=...)"
            )
        else:
            message = (
                f"ctx.{send.kind}() payload needs {send.width.render()} "
                f"bits ({family}), exceeding the declared {bound.declared} "
                "CONGEST budget"
            )
        yield Finding(
            code="RL006",
            message=message,
            path=program.module.path,
            line=send.line,
            col=send.col,
            program=program.qualname,
        )


def check_round_bound(program: ProgramInfo) -> Iterator[Finding]:
    """RL007: message-emitting ``while True`` loops need an exit."""
    for loop in program.own:
        if not isinstance(loop, ast.While):
            continue
        if not _constant_true(loop.test):
            continue
        loop_sends = [
            (c, k)
            for c, k in program.sends
            if loop in list(program.ancestors(c))
        ]
        if not loop_sends:
            continue
        if _has_exit(program, loop):
            continue
        call, kind = loop_sends[0]
        yield Finding(
            code="RL007",
            message=(
                f"ctx.{kind}() inside 'while True' with no break/return/"
                "raise: the number of message-emitting rounds has no "
                "static bound tied to d or log n"
            ),
            path=program.module.path,
            line=loop.lineno,
            col=loop.col_offset,
            program=program.qualname,
        )


def _constant_true(test: ast.AST) -> bool:
    return isinstance(test, ast.Constant) and bool(test.value) is True


def _has_exit(program: ProgramInfo, loop: ast.While) -> bool:
    for node in iter_own(loop):
        if isinstance(node, (ast.Return, ast.Raise)):
            return True
        if isinstance(node, ast.Break):
            owner = _owning_loop(program, node)
            if owner is loop:
                return True
    return False


def _owning_loop(program: ProgramInfo, node: ast.AST) -> Optional[ast.AST]:
    for anc in program.ancestors(node):
        if isinstance(anc, (ast.For, ast.While)):
            return anc
    return None
