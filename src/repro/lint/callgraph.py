"""Call-graph resolution and bounded inlining for interprocedural lint.

Two facilities live here:

* :class:`HelperResolver` maps a called name to the ``ast.FunctionDef``
  that defines it — program-nested helpers first, then module-level
  functions, then (best effort, still purely syntactic) functions
  imported from sibling modules of the same project.  The resolver never
  imports anything: cross-module edges are followed by resolving the
  ``from ..congest import leader_election`` statement to a file path and
  parsing that file.

* :func:`expand_program` produces a deep copy of a node program in which
  *statement-level* calls to same-module helpers are inlined (bounded
  depth, cycle-safe), so the purely intraprocedural rules RL001–RL005
  see through calls instead of stopping at function boundaries.  Inlined
  statements keep the helper's original line numbers (findings point
  into the helper, and helper-line ``noqa`` comments keep working) and
  additionally carry an ``_inl_callsites`` attribute — the chain of
  call-site line numbers — so a ``noqa`` at the *call site* suppresses
  findings raised inside the helper too.
"""

from __future__ import annotations

import ast
import copy
import itertools
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Set, Tuple

from .astutils import ModuleInfo, ProgramInfo, bound_names, iter_own

#: How many nested helper calls the inliner follows.
MAX_INLINE_DEPTH = 3

#: How many re-export hops (``from .primitives import x`` chains in
#: package ``__init__`` files) the cross-module resolver follows.
_MAX_REEXPORT_HOPS = 5

_SCOPE_STMTS = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)


@dataclass(frozen=True)
class ResolvedHelper:
    """A called name resolved to its definition site."""

    func: ast.FunctionDef
    module: ModuleInfo
    same_module: bool


class ModuleLoader:
    """Parse-and-cache project modules by path (never imports them)."""

    def __init__(self) -> None:
        self._cache: Dict[str, Optional[ModuleInfo]] = {}

    def load(self, path: Path) -> Optional[ModuleInfo]:
        key = str(path)
        if key not in self._cache:
            try:
                source = Path(path).read_text()
                self._cache[key] = ModuleInfo.from_source(source, key)
            except (OSError, SyntaxError, ValueError):
                self._cache[key] = None
        return self._cache[key]


def _module_file(current: Path, level: int, module: Optional[str]) -> Optional[Path]:
    """Resolve an import statement in ``current`` to a project file path.

    ``level`` and ``module`` come straight from ``ast.ImportFrom``.  For
    absolute imports the source root is found by walking up past
    ``__init__.py`` packages.
    """
    try:
        current = Path(current).resolve()
    except OSError:
        return None
    base = current.parent
    if level > 0:
        # ``from . import x`` in pkg/mod.py and in pkg/__init__.py both
        # mean package ``pkg`` — which is ``parent`` in both cases.
        for _ in range(level - 1):
            base = base.parent
    else:
        while (base / "__init__.py").exists():
            base = base.parent
    parts = module.split(".") if module else []
    target = base.joinpath(*parts)
    if (target / "__init__.py").is_file():
        return target / "__init__.py"
    candidate = target.with_suffix(".py")
    if candidate.is_file():
        return candidate
    return None


def _module_functions(module: ModuleInfo) -> Dict[str, ast.FunctionDef]:
    return {
        stmt.name: stmt
        for stmt in module.tree.body
        if isinstance(stmt, ast.FunctionDef)
    }


def _import_map(module: ModuleInfo) -> Dict[str, Tuple[int, Optional[str], str]]:
    """Name -> (level, source module, original name) for from-imports."""
    out: Dict[str, Tuple[int, Optional[str], str]] = {}
    for stmt in module.tree.body:
        if isinstance(stmt, ast.ImportFrom):
            for alias in stmt.names:
                out[alias.asname or alias.name] = (
                    stmt.level, stmt.module, alias.name
                )
    return out


def scope_functions(func: ast.AST) -> Dict[str, ast.FunctionDef]:
    """Function definitions bound directly in ``func``'s own scope."""
    out: Dict[str, ast.FunctionDef] = {}

    def walk(node: ast.AST) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if isinstance(child, ast.FunctionDef):
                    out.setdefault(child.name, child)
                continue
            if isinstance(child, (ast.Lambda, ast.ClassDef)):
                continue
            walk(child)

    walk(func)
    return out


class HelperResolver:
    """Resolve called names to their defining FunctionDef, project-wide."""

    def __init__(
        self,
        module: ModuleInfo,
        program: Optional[ProgramInfo] = None,
        loader: Optional[ModuleLoader] = None,
    ) -> None:
        self.module = module
        self.loader = loader or ModuleLoader()
        self._scopes: List[Dict[str, ast.FunctionDef]] = []
        if program is not None:
            self._scopes.append(scope_functions(program.node))
            for enclosing in reversed(program.enclosing):
                self._scopes.append(scope_functions(enclosing))
        self._module_funcs = _module_functions(module)
        self._imports = _import_map(module)

    def resolve(self, name: str) -> Optional[ResolvedHelper]:
        for scope in self._scopes:
            if name in scope:
                return ResolvedHelper(scope[name], self.module, True)
        if name in self._module_funcs:
            return ResolvedHelper(self._module_funcs[name], self.module, True)
        if name in self._imports:
            level, src, original = self._imports[name]
            return self._resolve_import(self.module, level, src, original, 0)
        return None

    def _resolve_import(
        self,
        module: ModuleInfo,
        level: int,
        src: Optional[str],
        name: str,
        hops: int,
    ) -> Optional[ResolvedHelper]:
        if hops > _MAX_REEXPORT_HOPS or module.path in ("<string>", "<test>"):
            return None
        path = _module_file(Path(module.path), level, src)
        if path is None:
            return None
        target = self.loader.load(path)
        if target is None:
            return None
        funcs = _module_functions(target)
        if name in funcs:
            return ResolvedHelper(funcs[name], target, False)
        # Re-export: chase ``from .primitives import leader_election``.
        imports = _import_map(target)
        if name in imports:
            nlevel, nsrc, original = imports[name]
            return self._resolve_import(target, nlevel, nsrc, original, hops + 1)
        return None


# ---------------------------------------------------------------------------
# Inlining
# ---------------------------------------------------------------------------

class _Renamer(ast.NodeTransformer):
    """Rename bound names of an inlined helper body."""

    def __init__(self, mapping: Dict[str, str]) -> None:
        self.mapping = mapping

    def visit_Name(self, node: ast.Name) -> ast.AST:
        if node.id in self.mapping:
            node.id = self.mapping[node.id]
        return node

    def visit_FunctionDef(self, node: ast.FunctionDef) -> ast.AST:
        if node.name in self.mapping:
            node.name = self.mapping[node.name]
        self.generic_visit(node)
        return node

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> ast.AST:
        if node.name and node.name in self.mapping:
            node.name = self.mapping[node.name]
        self.generic_visit(node)
        return node


class _ReturnToAssign(ast.NodeTransformer):
    """Turn ``return expr`` into ``<ret> = expr`` (own scope only).

    This over-approximates control flow (code after the return looks
    reachable), which is the safe direction for a linter.
    """

    def __init__(self, retname: str) -> None:
        self.retname = retname

    def visit_FunctionDef(self, node):  # do not descend into nested scopes
        return node

    def visit_AsyncFunctionDef(self, node):
        return node

    def visit_Lambda(self, node):
        return node

    def visit_Return(self, node: ast.Return) -> ast.AST:
        value = node.value if node.value is not None else ast.Constant(None)
        assign = ast.Assign(
            targets=[ast.Name(id=self.retname, ctx=ast.Store())], value=value
        )
        return ast.copy_location(assign, node)


def _match_inline_call(stmt: ast.stmt):
    """Match statements of the shapes the inliner handles.

    Returns ``(call, target_name_node)`` for ``f(...)``,
    ``yield from f(...)``, ``x = f(...)``, and ``x = yield from f(...)``
    statement forms where ``f`` is a plain name; ``None`` otherwise.
    """
    target = None
    value = None
    if isinstance(stmt, ast.Expr):
        value = stmt.value
    elif isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 and isinstance(
        stmt.targets[0], ast.Name
    ):
        target, value = stmt.targets[0], stmt.value
    elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
        target, value = stmt.target, stmt.value
    if isinstance(value, ast.YieldFrom):
        value = value.value
    if not isinstance(value, ast.Call) or not isinstance(value.func, ast.Name):
        return None
    call = value
    if any(isinstance(a, ast.Starred) for a in call.args):
        return None
    if any(kw.arg is None for kw in call.keywords):
        return None
    return call, target


def _inlinable(func: ast.FunctionDef) -> bool:
    if func.decorator_list:
        return False
    args = func.args
    if args.vararg or args.kwarg or args.kwonlyargs or args.posonlyargs:
        return False
    for node in iter_own(func):
        if isinstance(node, (ast.Global, ast.Nonlocal)):
            return False
    return True


def _bind_arguments(
    call: ast.Call,
    func: ast.FunctionDef,
    prefix: str,
    assigned_params: Set[str],
) -> Optional[Tuple[List[ast.stmt], Dict[str, str]]]:
    """Match call arguments to parameters.

    Returns (pre-assignments, rename map) or None when the call shape
    cannot be matched statically.
    """
    params = [a.arg for a in func.args.args]
    defaults = func.args.defaults
    default_for: Dict[str, ast.AST] = {}
    for param, default in zip(params[len(params) - len(defaults):], defaults):
        default_for[param] = default
    supplied: Dict[str, ast.AST] = {}
    if len(call.args) > len(params):
        return None
    for param, arg in zip(params, call.args):
        supplied[param] = arg
    for kw in call.keywords:
        if kw.arg not in params or kw.arg in supplied:
            return None
        supplied[kw.arg] = kw.value
    pre: List[ast.stmt] = []
    mapping: Dict[str, str] = {}
    for param in params:
        expr = supplied.get(param, default_for.get(param))
        if expr is None:
            return None
        if isinstance(expr, ast.Name) and param not in assigned_params:
            # Pass-through: references to the parameter become references
            # to the caller's variable (crucially keeps ``ctx`` visible).
            mapping[param] = expr.id
        else:
            temp = f"{prefix}{param}"
            mapping[param] = temp
            assign = ast.Assign(
                targets=[ast.Name(id=temp, ctx=ast.Store())],
                value=copy.deepcopy(expr),
            )
            pre.append(ast.copy_location(assign, call))
    return pre, mapping


def _tag(stmts: List[ast.stmt], callsites: Tuple[int, ...], origin: str) -> None:
    for stmt in stmts:
        for node in ast.walk(stmt):
            if not getattr(node, "_inl_callsites", ()):
                node._inl_callsites = callsites
                node._inl_origin = origin


class _Inliner:
    def __init__(self, module: ModuleInfo, program: ProgramInfo) -> None:
        self.module = module
        self.program = program
        self.counter = itertools.count()
        self.changed = False
        self._scopes: List[Dict[str, ast.FunctionDef]] = [
            scope_functions(program.node)
        ]
        for enclosing in reversed(program.enclosing):
            self._scopes.append(scope_functions(enclosing))
        self._module_funcs = _module_functions(module)

    def _resolve_local(
        self, name: str, block_defs: Dict[str, ast.FunctionDef]
    ) -> Optional[ast.FunctionDef]:
        if name in block_defs:
            return block_defs[name]
        for scope in self._scopes:
            if name in scope:
                return scope[name]
        return self._module_funcs.get(name)

    def expand(self, node: ast.AST, depth: int, stack: Tuple[str, ...],
               chain: Tuple[int, ...]) -> None:
        """Process every statement block of ``node``'s own scope."""
        for field, value in ast.iter_fields(node):
            if (
                isinstance(value, list)
                and value
                and all(isinstance(s, ast.stmt) for s in value)
            ):
                new = self._expand_block(value, depth, stack, chain)
                setattr(node, field, new)
            elif isinstance(value, list):
                for item in value:
                    if isinstance(item, (ast.ExceptHandler, ast.match_case)):
                        self.expand(item, depth, stack, chain)

    def _expand_block(
        self,
        stmts: List[ast.stmt],
        depth: int,
        stack: Tuple[str, ...],
        chain: Tuple[int, ...],
    ) -> List[ast.stmt]:
        out: List[ast.stmt] = []
        block_defs: Dict[str, ast.FunctionDef] = {}
        for stmt in stmts:
            if isinstance(stmt, ast.FunctionDef):
                block_defs[stmt.name] = stmt
            match = None if depth >= MAX_INLINE_DEPTH else _match_inline_call(stmt)
            helper = None
            if match is not None:
                call, target = match
                name = call.func.id
                if name not in stack and name != self.program.node.name:
                    helper = self._resolve_local(name, block_defs)
                    if helper is not None and (
                        helper is self.program.node
                        or not _inlinable(helper)
                    ):
                        helper = None
            spliced = None
            if helper is not None:
                spliced = self._inline_one(
                    call, target, helper, depth, stack, chain
                )
            if spliced is None:
                if not isinstance(stmt, _SCOPE_STMTS):
                    self.expand(stmt, depth, stack, chain)
                out.append(stmt)
                continue
            out.extend(spliced)
            self.changed = True
        return out

    def _inline_one(
        self,
        call: ast.Call,
        target: Optional[ast.Name],
        helper: ast.FunctionDef,
        depth: int,
        stack: Tuple[str, ...],
        chain: Tuple[int, ...],
    ) -> Optional[List[ast.stmt]]:
        k = next(self.counter)
        prefix = f"_inl{k}_"
        params = {a.arg for a in helper.args.args}
        stores = {
            n.id
            for n in iter_own(helper)
            if isinstance(n, ast.Name) and isinstance(n.ctx, (ast.Store, ast.Del))
        }
        bound = _bind_arguments(call, helper, prefix, params & stores)
        if bound is None:
            return None
        pre, mapping = bound
        for name in bound_names(helper):
            if name not in mapping:
                mapping[name] = f"{prefix}{name}"
        retname = f"{prefix}ret"
        body = [copy.deepcopy(s) for s in helper.body]
        renamer = _Renamer(mapping)
        body = [renamer.visit(s) for s in body]
        rewriter = _ReturnToAssign(retname)
        body = [rewriter.visit(s) for s in body]
        init = ast.copy_location(
            ast.Assign(
                targets=[ast.Name(id=retname, ctx=ast.Store())],
                value=ast.Constant(None),
            ),
            call,
        )
        spliced: List[ast.stmt] = pre + [init] + body
        # Recursively inline within the freshly spliced body.
        new_chain = chain + (call.lineno,)
        new_stack = stack + (helper.name,)
        container = ast.Module(body=spliced, type_ignores=[])
        container.body = self._expand_block(
            spliced, depth + 1, new_stack, new_chain
        )
        spliced = container.body
        if target is not None:
            read_ret = ast.copy_location(
                ast.Assign(
                    targets=[ast.Name(id=target.id, ctx=ast.Store())],
                    value=ast.Name(id=retname, ctx=ast.Load()),
                ),
                call,
            )
            spliced.append(read_ret)
        for stmt in spliced:
            ast.fix_missing_locations(stmt)
        _tag(spliced, new_chain, helper.name)
        return spliced


def expand_program(
    program: ProgramInfo, max_depth: int = MAX_INLINE_DEPTH
) -> Optional[ast.FunctionDef]:
    """A deep copy of ``program.node`` with same-module helpers inlined.

    Returns ``None`` when nothing was inlined (callers should keep the
    original, cheaper ProgramInfo).
    """
    node = copy.deepcopy(program.node)
    inliner = _Inliner(program.module, program)
    # The copied node is the root; resolve against the *copy*'s nested
    # defs so recursive references stay internally consistent.
    inliner._scopes[0] = scope_functions(node)
    inliner.expand(node, 0, (program.node.name,), ())
    if not inliner.changed:
        return None
    ast.fix_missing_locations(node)
    return node
