"""The RL009 static-vs-dynamic conformance gate (``lint --verify-runs``).

Static analysis and observability check each other: RL006 certifies a
symbolic per-message bit bound for every node program, ``repro.obs``
records the *observed* ``max_message_bits`` and round count of every
Session workload call, and this module closes the loop — for each stored
:class:`~repro.obs.reports.RunReport` it evaluates the certified bound at
the report's ``(n, d)`` and fails when the observation exceeds it.

An observation above the static bound means one of the two sides is
wrong: either the abstract domain under-approximates a real payload
(a certifier bug) or the runtime sent something the declared CONGEST
budget does not allow (a protocol bug).  Either way the run must not
pass CI silently.

RL009 is deliberately *not* registered in :data:`repro.lint.rules.RULES`:
it needs run artifacts, not source text, so it only fires through
:func:`verify_runs` / ``repro lint --verify-runs DIR``.

Reports produced under fault injection or retry wrappers are skipped:
retransmission tagging wraps payloads and inflates their width past the
plain-protocol bound by design.
"""

from __future__ import annotations

import ast
import importlib.util
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from .astutils import ModuleInfo
from .bitwidth import ProgramBound, certify_program
from .findings import Finding

RL009_NAME = "static-vs-observed"
RL009_SUMMARY = (
    "observed max_payload_bits / rounds of a stored RunReport must not "
    "exceed the statically certified bound for its workload's programs "
    "(only via --verify-runs; needs run artifacts, not source)"
)

#: Names allowed in a declared ``rounds`` expression.
_BOUND_VARS = ("n", "d")


class BoundExprError(ValueError):
    """A declared rounds expression is not a closed (n, d) arithmetic term."""


def eval_bound_expr(expr: str, n: int, d: int) -> int:
    """Evaluate a declared bound like ``"200 + 40*4**d + 4*n"`` safely."""
    try:
        tree = ast.parse(expr, mode="eval")
    except SyntaxError as exc:
        raise BoundExprError(f"cannot parse bound {expr!r}: {exc}") from exc

    def ev(node: ast.AST) -> int:
        if isinstance(node, ast.Expression):
            return ev(node.body)
        if isinstance(node, ast.Constant) and isinstance(node.value, int):
            return node.value
        if isinstance(node, ast.Name):
            if node.id == "n":
                return n
            if node.id == "d":
                return d
            raise BoundExprError(
                f"bound {expr!r} uses {node.id!r}; only {_BOUND_VARS} are "
                "allowed"
            )
        if isinstance(node, ast.BinOp):
            left, right = ev(node.left), ev(node.right)
            if isinstance(node.op, ast.Add):
                return left + right
            if isinstance(node.op, ast.Sub):
                return left - right
            if isinstance(node.op, ast.Mult):
                return left * right
            if isinstance(node.op, ast.FloorDiv):
                if right == 0:
                    raise BoundExprError(f"bound {expr!r} divides by zero")
                return left // right
            if isinstance(node.op, ast.Pow):
                if right < 0 or right > 64:
                    raise BoundExprError(
                        f"bound {expr!r}: exponent {right} out of range"
                    )
                return left ** right
            raise BoundExprError(f"bound {expr!r}: unsupported operator")
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
            return -ev(node.operand)
        raise BoundExprError(f"bound {expr!r}: unsupported syntax")

    return ev(tree)


@dataclass(frozen=True)
class VerifyResult:
    """Outcome of one ``--verify-runs`` pass over a run store."""

    findings: Tuple[Finding, ...]
    checked: int
    skipped: int

    @property
    def ok(self) -> bool:
        return not self.findings


class _BoundCache:
    """Certified bounds per (module, qualname), parsed once per pass."""

    def __init__(self) -> None:
        self._bounds: Dict[Tuple[str, str], Optional[ProgramBound]] = {}

    def get(self, module: str, qualname: str) -> Optional[ProgramBound]:
        key = (module, qualname)
        if key not in self._bounds:
            self._bounds[key] = self._load(module, qualname)
        return self._bounds[key]

    def _load(self, module: str, qualname: str) -> Optional[ProgramBound]:
        from .analyzer import _expanded, discover_programs

        try:
            spec = importlib.util.find_spec(module)
        except (ImportError, ValueError):
            return None
        if spec is None or not spec.origin:
            return None
        path = Path(spec.origin)
        try:
            source = path.read_text()
        except OSError:
            return None
        try:
            info = ModuleInfo.from_source(source, str(path))
        except SyntaxError:
            return None
        for program in discover_programs(info):
            if program.qualname == qualname:
                return certify_program(_expanded(program))
        return None


def verify_runs(directory: str) -> VerifyResult:
    """Check every stored RunReport against its static bounds (RL009)."""
    from ..congest.runtime import default_budget
    from ..obs.reports import RunStore, programs_for_workload

    store = RunStore(directory)
    path = str(store.path)
    cache = _BoundCache()
    findings: List[Finding] = []
    checked = 0
    skipped = 0
    for index, report in enumerate(store.list(), start=1):
        label = f"{report.workload}:{report.run_id[:12]}"

        def fail(message: str) -> None:
            findings.append(
                Finding(
                    code="RL009",
                    message=message,
                    path=path,
                    line=index,
                    col=0,
                    program=label,
                )
            )

        programs = programs_for_workload(report.workload)
        if not programs:
            skipped += 1
            continue
        replay = dict(report.replay or {})
        if replay.get("faults") or replay.get("retry"):
            # Retransmission tagging wraps payloads; the plain-protocol
            # bound does not apply.
            skipped += 1
            continue
        n = int(report.graph.get("n", 0) or 0)
        d = int(report.d)
        if n <= 0:
            skipped += 1
            continue
        checked += 1
        budget = default_budget(n)

        bits_bound = 0
        rounds_bound: Optional[int] = 0
        certified = True
        for module, qualname in programs:
            bound = cache.get(module, qualname)
            if bound is None:
                fail(
                    f"cannot locate/certify {module}:{qualname} for "
                    f"workload '{report.workload}': no static bound to "
                    "verify against"
                )
                certified = False
                break
            if bound.width.top:
                fail(
                    f"{module}:{qualname} has an unbounded (⊤) payload "
                    "width: RL006 certification failed, so the observed "
                    "run cannot be conformance-checked"
                )
                certified = False
                break
            bits_bound = max(bits_bound, bound.width.evaluate(n, d, budget))
            if rounds_bound is not None and bound.rounds_expr is not None:
                try:
                    rounds_bound += eval_bound_expr(bound.rounds_expr, n, d)
                except BoundExprError as exc:
                    fail(str(exc))
                    rounds_bound = None
            elif bound.rounds_expr is None:
                rounds_bound = None
        if not certified:
            continue

        observed_bits = report.max_payload_bits
        if observed_bits > bits_bound:
            fail(
                f"observed max_payload_bits={observed_bits} exceeds the "
                f"statically certified bound {bits_bound} bits at "
                f"n={n}, d={d} (workload '{report.workload}')"
            )
        observed_rounds = int(report.metrics.get("rounds", 0) or 0)
        if rounds_bound is not None and observed_rounds > rounds_bound:
            fail(
                f"observed rounds={observed_rounds} exceeds the declared "
                f"round bound {rounds_bound} at n={n}, d={d} "
                f"(workload '{report.workload}')"
            )
    return VerifyResult(
        findings=tuple(sorted(findings, key=lambda f: f.sort_key)),
        checked=checked,
        skipped=skipped,
    )
