"""Finding objects produced by the CONGEST-conformance analyzer."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple


@dataclass(frozen=True)
class Finding:
    """One rule violation at a specific source location.

    ``program`` is the qualified name of the node program the finding was
    raised in (e.g. ``decision_program.<locals>.program``), so findings in
    factory-made closures point at the closure, not just the file.

    ``callsites`` is non-empty for findings raised inside interprocedurally
    inlined helper code: the chain of call-site line numbers (outermost
    first) in the analyzed program that leads to the helper statement the
    finding points at.
    """

    code: str
    message: str
    path: str
    line: int
    col: int
    program: str
    callsites: Tuple[int, ...] = field(default=(), compare=False)

    @property
    def sort_key(self):
        # Byte-deterministic total order: path, line, col, code, then the
        # remaining fields as tie-breakers.
        return (self.path, self.line, self.col, self.code,
                self.program, self.message)

    def format(self) -> str:
        via = ""
        if self.callsites:
            via = " (via call at line {})".format(
                " -> ".join(str(l) for l in self.callsites)
            )
        return (
            f"{self.path}:{self.line}:{self.col}: {self.code} "
            f"{self.message}{via} [{self.program}]"
        )

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "code": self.code,
            "message": self.message,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "program": self.program,
        }
        if self.callsites:
            out["callsites"] = list(self.callsites)
        return out


def to_sarif(
    findings: Iterable[Finding],
    rule_meta: Optional[Mapping[str, Mapping[str, str]]] = None,
) -> Dict[str, Any]:
    """Render findings as a SARIF 2.1.0 log (one run, one driver)."""
    rule_meta = rule_meta or {}
    findings = sorted(findings, key=lambda f: f.sort_key)
    seen_rules: List[str] = []
    for f in findings:
        if f.code not in seen_rules:
            seen_rules.append(f.code)
    rules = [
        {
            "id": code,
            "name": rule_meta.get(code, {}).get("name", code),
            "shortDescription": {
                "text": rule_meta.get(code, {}).get("summary", code)
            },
        }
        for code in sorted(seen_rules)
    ]
    results = []
    for f in findings:
        result: Dict[str, Any] = {
            "ruleId": f.code,
            "level": "error",
            "message": {"text": f"{f.message} [{f.program}]"},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": f.path},
                        "region": {
                            "startLine": f.line,
                            "startColumn": f.col + 1,
                        },
                    }
                }
            ],
        }
        if f.callsites:
            result["properties"] = {"callsites": list(f.callsites)}
        results.append(result)
    return {
        "$schema": (
            "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
            "master/Schemata/sarif-schema-2.1.0.json"
        ),
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri": (
                            "https://example.invalid/repro/docs/"
                            "static-analysis"
                        ),
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }
