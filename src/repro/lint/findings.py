"""Finding objects produced by the CONGEST-conformance analyzer."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict


@dataclass(frozen=True)
class Finding:
    """One rule violation at a specific source location.

    ``program`` is the qualified name of the node program the finding was
    raised in (e.g. ``decision_program.<locals>.program``), so findings in
    factory-made closures point at the closure, not just the file.
    """

    code: str
    message: str
    path: str
    line: int
    col: int
    program: str

    @property
    def sort_key(self):
        return (self.path, self.line, self.col, self.code)

    def format(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col}: {self.code} "
            f"{self.message} [{self.program}]"
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "code": self.code,
            "message": self.message,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "program": self.program,
        }
