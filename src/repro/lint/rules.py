"""The CONGEST-conformance rules (RL001-RL005).

Each rule is a function from a :class:`~repro.lint.astutils.ProgramInfo`
to an iterator of :class:`~repro.lint.findings.Finding`.  Rules are
registered in :data:`RULES` with a code, a short name, and a summary;
``repro lint --list-rules`` prints the table.

The rules are deliberately *syntactic and high-precision*: they flag
patterns that are wrong under the CONGEST model's ground rules (locality,
order-free delivery, one message per neighbor per round, the Payload
algebra) rather than attempting whole-program dataflow.  Anything a rule
cannot decide it stays silent on — the adversarial ``inbox_order="shuffle"``
simulator mode is the dynamic backstop.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Set, Tuple

from .astutils import (
    ProgramInfo,
    contains_yield,
    is_builtin,
    names_loaded,
)
from .findings import Finding

CheckFn = Callable[[ProgramInfo], Iterator[Finding]]


@dataclass(frozen=True)
class Rule:
    code: str
    name: str
    summary: str
    check: CheckFn


RULES: Dict[str, Rule] = {}


def rule(code: str, name: str, summary: str):
    def register(check: CheckFn) -> CheckFn:
        RULES[code] = Rule(code=code, name=name, summary=summary, check=check)
        return check

    return register


def _finding(program: ProgramInfo, code: str, node: ast.AST, message: str) -> Finding:
    # Nodes spliced in by the call-graph expander carry the chain of
    # call-site lines and the helper name they came from.
    callsites = tuple(getattr(node, "_inl_callsites", ()) or ())
    origin = getattr(node, "_inl_origin", None)
    if origin:
        message = f"{message} (in inlined helper '{origin}')"
    return Finding(
        code=code,
        message=message,
        path=program.module.path,
        line=getattr(node, "lineno", program.node.lineno),
        col=getattr(node, "col_offset", 0),
        program=program.qualname,
        callsites=callsites,
    )


# ---------------------------------------------------------------------------
# RL001 — locality
# ---------------------------------------------------------------------------

@rule(
    "RL001",
    "locality",
    "node code must see the network only through ctx: no closure/global "
    "Graph objects, no module-level mutable state, no simulator internals",
)
def check_locality(program: ProgramInfo) -> Iterator[Finding]:
    module = program.module
    reported: Set[Tuple[str, int]] = set()

    def report(node: ast.AST, message: str, key: str):
        loc = (key, getattr(node, "lineno", 0))
        if loc not in reported:
            reported.add(loc)
            yield _finding(program, "RL001", node, message)

    # Graph-annotated parameters of the program itself.
    args = program.node.args
    for arg in list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs):
        from .astutils import is_graph_annotation
        if is_graph_annotation(arg.annotation):
            yield from report(
                arg,
                f"parameter '{arg.arg}' is a Graph: a node program may only "
                "receive the network through ctx (neighbors, inputs)",
                f"param:{arg.arg}",
            )

    for n in program.own:
        # global/nonlocal rebinding escapes the node's local state.
        if isinstance(n, ast.Global):
            for name in n.names:
                yield from report(
                    n,
                    f"'global {name}': node programs must not rebind "
                    "module-level state (nodes would share memory)",
                    f"global:{name}",
                )
            continue
        # ctx._simulation and friends: reaching into the simulator grants
        # instant global knowledge.
        if (
            isinstance(n, ast.Attribute)
            and isinstance(n.value, ast.Name)
            and n.value.id in program.ctx_names
            and n.attr.startswith("_")
        ):
            yield from report(
                n,
                f"access to ctx.{n.attr}: private simulator internals give "
                "a node global knowledge it cannot have in CONGEST",
                f"priv:{n.attr}",
            )
            continue
        if not (isinstance(n, ast.Name) and isinstance(n.ctx, ast.Load)):
            continue
        name = n.id
        if name in program.locals or name in program.ctx_names:
            continue
        closure_kind = program.resolve_closure(name)
        if closure_kind == "graph":
            yield from report(
                n,
                f"'{name}' is a Graph captured from an enclosing scope: "
                "node code must not see the whole network (use ctx)",
                f"closure:{name}",
            )
            continue
        if closure_kind is not None:
            continue  # benign closure constant (automaton, codec, ...)
        kind = module.bindings.get(name)
        if kind == "graph":
            yield from report(
                n,
                f"'{name}' is a module-level Graph: node code must not "
                "see the whole network (use ctx)",
                f"module:{name}",
            )
        elif kind == "mutable":
            yield from report(
                n,
                f"'{name}' is module-level mutable state: nodes reading or "
                "writing it share memory outside the message model",
                f"module:{name}",
            )
        elif kind is None and not is_builtin(name):
            # Unknown free name (e.g. star import) — stay silent.
            continue


# ---------------------------------------------------------------------------
# RL002 — determinism
# ---------------------------------------------------------------------------

def _random_call(program: ProgramInfo, n: ast.AST) -> Optional[str]:
    if not isinstance(n, ast.Call):
        return None
    func = n.func
    if (
        isinstance(func, ast.Attribute)
        and isinstance(func.value, ast.Name)
        and func.value.id == "random"
        and func.attr != "Random"  # random.Random(seed) is the remedy
        and "random" not in program.locals
        and program.module.bindings.get("random") == "import"
    ):
        return f"random.{func.attr}"
    if (
        isinstance(func, ast.Name)
        and func.id in program.module.random_imports
        and func.id != "Random"
        and func.id not in program.locals
    ):
        return func.id
    return None


def _materializes_order(program: ProgramInfo, n: ast.AST) -> Optional[str]:
    """Describe how ``n`` turns an unordered collection into a sequence."""
    if isinstance(n, (ast.ListComp, ast.GeneratorExp)):
        if n.generators and program.is_unordered(n.generators[0].iter):
            return "comprehension over an unordered collection"
        return None
    if not isinstance(n, ast.Call):
        return None
    func = n.func
    if isinstance(func, ast.Name) and func.id in {"list", "tuple"} and n.args:
        if program.is_unordered(n.args[0]):
            return f"{func.id}() of an unordered collection"
    if (
        isinstance(func, ast.Name)
        and func.id == "next"
        and n.args
        and isinstance(n.args[0], ast.Call)
        and isinstance(n.args[0].func, ast.Name)
        and n.args[0].func.id == "iter"
        and n.args[0].args
        and program.is_unordered(n.args[0].args[0])
    ):
        return "next(iter()) of an unordered collection"
    if (
        isinstance(func, ast.Attribute)
        and func.attr == "pop"
        and isinstance(func.value, ast.Name)
        and func.value.id in program.unordered_names
        and not n.args
    ):
        return ".pop() from an unordered collection"
    return None


def _loop_target_names(loop: ast.For) -> Set[str]:
    return {
        n.id for n in ast.walk(loop.target) if isinstance(n, ast.Name)
    }


def _sink_subtrees(program: ProgramInfo) -> List[Tuple[ast.AST, str]]:
    """(subtree, description) pairs whose value leaves the node."""
    sinks: List[Tuple[ast.AST, str]] = []
    for call, kind in program.sends:
        payload = None
        if kind == "send" and len(call.args) >= 2:
            payload = call.args[1]
        elif kind == "send_all" and call.args:
            payload = call.args[0]
        if payload is not None:
            sinks.append((payload, "a message payload"))
    for n in program.own:
        if isinstance(n, ast.Return) and n.value is not None:
            sinks.append((n.value, "the node's output"))
    return sinks


@rule(
    "RL002",
    "determinism",
    "payloads, outputs, and control flow must not depend on set/dict "
    "iteration order, unseeded random, or id()/hash() values",
)
def check_determinism(program: ProgramInfo) -> Iterator[Finding]:
    # (a) unseeded module-level random; (b) id()/hash() identities.
    for n in program.own:
        described = _random_call(program, n)
        if described is not None:
            yield _finding(
                program,
                "RL002",
                n,
                f"{described}(): unseeded global randomness makes runs "
                "irreproducible; use a random.Random seeded from ctx.input",
            )
        if (
            isinstance(n, ast.Call)
            and isinstance(n.func, ast.Name)
            and n.func.id in {"id", "hash"}
            and n.func.id not in program.locals
        ):
            yield _finding(
                program,
                "RL002",
                n,
                f"{n.func.id}() is process-dependent: its value must not "
                "flow into payloads or branches (use node ids / sorted keys)",
            )

    # (c) order materialization reaching a payload or the node output.
    tainted: Set[str] = set()
    for n in program.own:
        target = None
        if isinstance(n, ast.Assign) and len(n.targets) == 1:
            target = n.targets[0]
        elif isinstance(n, ast.AnnAssign):
            target = n.target
        if (
            target is not None
            and isinstance(target, ast.Name)
            and n.value is not None
        ):
            how = _materializes_order(program, n.value)
            if how is not None and not program.has_cleansing_ancestor(n.value):
                tainted.add(target.id)
    for sink, where in _sink_subtrees(program):
        nodes = [sink] + (
            [] if isinstance(sink, (ast.Name, ast.Constant)) else list(
                _subtree_own(sink)
            )
        )
        for n in nodes:
            how = _materializes_order(program, n)
            if how is not None and not program.has_cleansing_ancestor(n):
                yield _finding(
                    program,
                    "RL002",
                    n,
                    f"{how} flows into {where}: iteration order of sets and "
                    "inboxes is adversarial; wrap it in sorted()",
                )
            if (
                isinstance(n, ast.Name)
                and isinstance(n.ctx, ast.Load)
                and n.id in tainted
                and not program.has_cleansing_ancestor(n)
            ):
                yield _finding(
                    program,
                    "RL002",
                    n,
                    f"'{n.id}' was built from an unordered collection and "
                    f"flows into {where}: sort it first (its order is "
                    "adversarial)",
                )

    # (d) order-sensitive consumption inside loops over unordered iterables.
    for loop in program.own:
        if not isinstance(loop, ast.For):
            continue
        iter_expr = loop.iter
        if not program.is_unordered(iter_expr):
            continue
        loop_names = _loop_target_names(loop)
        body_nodes = list(_subtree_own(loop))
        for n in body_nodes:
            if isinstance(n, ast.Break) and _owning_loop(program, n) is loop:
                yield _finding(
                    program,
                    "RL002",
                    n,
                    "break inside iteration over an unordered collection: "
                    "which element is 'first' depends on delivery order "
                    "(iterate ordered_inbox()/sorted() instead)",
                )
            if (
                isinstance(n, ast.Call)
                and isinstance(n.func, ast.Attribute)
                and n.func.attr in {"append", "extend", "insert"}
                and not (names_loaded(n.func.value) & loop_names)
            ):
                yield _finding(
                    program,
                    "RL002",
                    n,
                    "appending to a shared sequence while iterating an "
                    "unordered collection: the sequence order (and every "
                    "message built from it) depends on delivery order",
                )
            if isinstance(n, ast.Return) and n.value is not None and not (
                isinstance(n.value, ast.Constant)
            ):
                yield _finding(
                    program,
                    "RL002",
                    n,
                    "returning a non-constant from inside iteration over an "
                    "unordered collection: the output depends on delivery "
                    "order",
                )
            if isinstance(n, ast.Assign) and len(n.targets) == 1 and isinstance(
                n.targets[0], ast.Name
            ):
                name = n.targets[0].id
                if isinstance(n.value, ast.Constant):
                    continue  # same value whichever iteration assigns it
                if name in names_loaded(n.value):
                    continue  # fold: x = f(x, item) is order-insensitive
                if _guard_mentions(program, n, loop, name):
                    continue  # fold via guard: if item < x: x = item
                if not _read_outside(program, loop, name):
                    continue  # loop-local temporary
                yield _finding(
                    program,
                    "RL002",
                    n,
                    f"'{name}' keeps the last matching element of an "
                    "unordered iteration and escapes the loop: the result "
                    "depends on delivery order",
                )


def _subtree_own(node: ast.AST) -> Iterator[ast.AST]:
    from .astutils import iter_own

    yield from iter_own(node)


def _owning_loop(program: ProgramInfo, node: ast.AST) -> Optional[ast.AST]:
    for anc in program.ancestors(node):
        if isinstance(anc, (ast.For, ast.While)):
            return anc
    return None


def _guard_mentions(
    program: ProgramInfo, assign: ast.AST, loop: ast.AST, name: str
) -> bool:
    """Does an if-test between ``assign`` and ``loop`` read ``name``?"""
    for anc in program.ancestors(assign):
        if anc is loop:
            return False
        if isinstance(anc, ast.If) and name in names_loaded(anc.test):
            return True
    return False


def _read_outside(program: ProgramInfo, loop: ast.AST, name: str) -> bool:
    inside = {
        n
        for n in _subtree_own(loop)
        if isinstance(n, ast.Name) and n.id == name
    }
    for n in program.own:
        if (
            isinstance(n, ast.Name)
            and isinstance(n.ctx, ast.Load)
            and n.id == name
            and n not in inside
        ):
            return True
    return False


# ---------------------------------------------------------------------------
# RL003 — round structure
# ---------------------------------------------------------------------------

def _has_own_yield(node: ast.AST) -> bool:
    return contains_yield(node)


def _seq_terminates(stmts: List[ast.stmt]) -> bool:
    for s in stmts:
        if isinstance(s, (ast.Return, ast.Raise)):
            return True
        if isinstance(s, ast.If) and s.orelse:
            if _seq_terminates(s.body) and _seq_terminates(s.orelse):
                return True
    return False


def _block_may_yield(stmts: List[ast.stmt], start: int) -> Optional[bool]:
    """Can a yield run in ``stmts[start:]``?  None = fell off the end."""
    for s in stmts[start:]:
        if _has_own_yield(s):
            return True
        if isinstance(s, (ast.Return, ast.Raise)):
            return False
        if isinstance(s, ast.If) and s.orelse:
            if _seq_terminates(s.body) and _seq_terminates(s.orelse):
                return False
    return None


def _send_reaches_yield(program: ProgramInfo, call: ast.Call) -> bool:
    # A loop enclosing the send that also yields can deliver on the next
    # iteration.
    for anc in program.ancestors(call):
        if isinstance(anc, (ast.For, ast.While)) and _has_own_yield(anc):
            return True
    stmt = program.enclosing_statement(call)
    while stmt is not None:
        owner, stmts, idx = program.stmt_loc[stmt]
        verdict = _block_may_yield(stmts, idx + 1)
        if verdict is not None:
            return verdict
        current = owner
        while current is not program.node and current not in program.stmt_loc:
            current = program.parents.get(current, program.node)
        stmt = None if current is program.node else current
    return False


def _direct_send(stmt: ast.stmt, program: ProgramInfo):
    if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call):
        for call, kind in program.sends:
            if call is stmt.value:
                return call, kind
    return None


@rule(
    "RL003",
    "round-structure",
    "every queued message needs a reachable yield to be delivered; at most "
    "one send per neighbor per round; loops that send must also yield",
)
def check_round_structure(program: ProgramInfo) -> Iterator[Finding]:
    # (a) sends from which no yield is reachable: the queued message can
    # only be delivered if some *other* node still yields — usually a bug,
    # suppress with noqa for deliberate terminal floods.
    for call, kind in program.sends:
        if not _send_reaches_yield(program, call):
            yield _finding(
                program,
                "RL003",
                call,
                f"ctx.{kind}() with no reachable yield afterwards: if all "
                "nodes halt this round the message is never delivered "
                "(yield once more, or suppress for a deliberate terminal "
                "flood)",
            )

    # (b) two sends to one neighbor in the same round segment.
    seen_lists = set()
    for stmt, (owner, stmts, idx) in program.stmt_loc.items():
        key = id(stmts)
        if key in seen_lists:
            continue
        seen_lists.add(key)
        pending: Dict[str, ast.Call] = {}
        for s in stmts:
            direct = _direct_send(s, program)
            if direct is not None:
                call, kind = direct
                tkey = (
                    "<all>" if kind == "send_all" else ast.dump(call.args[0])
                    if call.args else "<?>"
                )
                clash = tkey in pending or (
                    pending and ("<all>" in pending or tkey == "<all>")
                )
                if clash:
                    yield _finding(
                        program,
                        "RL003",
                        call,
                        "second send to the same neighbor in one round: "
                        "CONGEST allows one message per neighbor per round "
                        "(the runtime would raise); yield between them",
                    )
                pending[tkey] = call
            elif _has_own_yield(s) or any(
                c in set(ast.walk(s)) for c, _ in program.sends
            ):
                # A yield ends the round; nested sends/yields in compound
                # statements make the segment ambiguous — reset either way.
                pending.clear()

    # (c) message-producing loops with no yield.
    for loop in program.own:
        if not isinstance(loop, (ast.For, ast.While)):
            continue
        if _has_own_yield(loop):
            continue
        loop_sends = [
            (c, k)
            for c, k in program.sends
            if loop in list(program.ancestors(c))
        ]
        for call, kind in loop_sends:
            # Distinct per-iteration targets (e.g. ``for child in children:
            # ctx.send(child, ...)``) are the broadcast idiom — fine.
            target_names: Set[str] = set()
            for anc in program.ancestors(call):
                if isinstance(anc, ast.For):
                    target_names |= _loop_target_names(anc)
                if anc is loop:
                    break
            if kind == "send" and call.args and (
                names_loaded(call.args[0]) & target_names
            ):
                continue
            yield _finding(
                program,
                "RL003",
                call,
                f"ctx.{kind}() inside a loop that never yields: repeated "
                "iterations send to the same neighbor within one round",
            )


# ---------------------------------------------------------------------------
# RL004 — payload typing
# ---------------------------------------------------------------------------

_BAD_LITERALS = {
    ast.List: ("list", "use a tuple"),
    ast.ListComp: ("list", "use tuple(sorted(...))"),
    ast.Dict: ("dict", "use a tuple of (key, value) pairs"),
    ast.DictComp: ("dict", "use a tuple of (key, value) pairs"),
    ast.Set: ("set", "use a frozenset"),
    ast.SetComp: ("set", "use a frozenset"),
}

_BAD_CALLS = {
    "list": ("list", "use a tuple"),
    "dict": ("dict", "use a tuple of (key, value) pairs"),
    "set": ("set", "use a frozenset"),
    "float": ("float", "scale to an integer"),
    "bytearray": ("bytearray", "encode as a tuple of ints"),
    "bytes": ("bytes", "encode as a tuple of ints"),
}


def _literal_kind(expr: ast.AST) -> Optional[Tuple[str, str]]:
    for node_type, described in _BAD_LITERALS.items():
        if isinstance(expr, node_type):
            return described
    if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name):
        if expr.func.id in _BAD_CALLS:
            return _BAD_CALLS[expr.func.id]
    if isinstance(expr, ast.Constant):
        if isinstance(expr.value, float):
            return ("float", "scale to an integer")
        if isinstance(expr.value, (bytes, bytearray)):
            return ("bytes", "encode as a tuple of ints")
    if isinstance(expr, ast.BinOp) and isinstance(expr.op, ast.Div):
        return ("float (true division)", "use // or scale to an integer")
    return None


def _local_literal_types(program: ProgramInfo) -> Dict[str, Tuple[str, str]]:
    """Names whose every assignment is a definitely-bad payload type."""
    kinds: Dict[str, Optional[Tuple[str, str]]] = {}
    for n in program.own:
        target = None
        if isinstance(n, ast.Assign) and len(n.targets) == 1:
            target = n.targets[0]
        elif isinstance(n, ast.AnnAssign):
            target = n.target
        else:
            continue
        if not isinstance(target, ast.Name) or n.value is None:
            continue
        kind = _literal_kind(n.value)
        if target.id in kinds and kinds[target.id] != kind:
            kinds[target.id] = None  # ambiguous: stay silent
        else:
            kinds[target.id] = kind
    return {name: kind for name, kind in kinds.items() if kind is not None}


@rule(
    "RL004",
    "payload-typing",
    "payloads must stay inside the Payload algebra (int/bool/None/str and "
    "nested tuples/frozensets); lists, dicts, sets, and floats are flagged "
    "before the runtime serializer sees them",
)
def check_payload_typing(program: ProgramInfo) -> Iterator[Finding]:
    name_kinds = _local_literal_types(program)

    def walk(expr: ast.AST, path: str) -> Iterator[Finding]:
        kind = _literal_kind(expr)
        if kind is not None:
            type_name, hint = kind
            yield _finding(
                program,
                "RL004",
                expr,
                f"{path}: {type_name} can never be CONGEST-serialized "
                f"({hint})",
            )
            return
        if isinstance(expr, ast.Name) and expr.id in name_kinds:
            type_name, hint = name_kinds[expr.id]
            yield _finding(
                program,
                "RL004",
                expr,
                f"{path}: '{expr.id}' is a {type_name} and can never be "
                f"CONGEST-serialized ({hint})",
            )
            return
        if isinstance(expr, ast.Tuple):
            for i, element in enumerate(expr.elts):
                yield from walk(element, f"{path}[{i}]")

    for call, kind in program.sends:
        payload = None
        if kind == "send" and len(call.args) >= 2:
            payload = call.args[1]
        elif kind == "send_all" and call.args:
            payload = call.args[0]
        if payload is not None:
            yield from walk(payload, "payload")


# ---------------------------------------------------------------------------
# RL005 — retry bound
# ---------------------------------------------------------------------------

# reliable_send(ctx, target, payload, tag, max_retries, backoff)
_RELIABLE_SEND_RETRY_ARG = 4


@rule(
    "RL005",
    "retry-bound",
    "reliable_send must carry a finite max_retries: with the default "
    "(None) a lost partner stalls the node — and the synchronous network "
    "— until max_rounds",
)
def check_retry_bound(program: ProgramInfo) -> Iterator[Finding]:
    for n in program.own:
        if not isinstance(n, ast.Call):
            continue
        func = n.func
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
        else:
            continue
        if name != "reliable_send" or "reliable_send" in program.locals:
            continue
        bound: Optional[ast.AST] = None
        supplied = False
        for kw in n.keywords:
            if kw.arg == "max_retries":
                bound, supplied = kw.value, True
            elif kw.arg is None:
                supplied = True  # **kwargs: cannot decide, stay silent
        if not supplied and len(n.args) > _RELIABLE_SEND_RETRY_ARG:
            bound = n.args[_RELIABLE_SEND_RETRY_ARG]
            supplied = True
        if supplied and not (
            isinstance(bound, ast.Constant) and bound.value is None
        ):
            continue
        yield _finding(
            program,
            "RL005",
            n,
            "reliable_send without a finite max_retries: the ack wait is "
            "unbounded, so persistent loss or a crashed partner hangs the "
            "protocol until max_rounds instead of failing closed with "
            "FaultToleranceExceeded",
        )


# ---------------------------------------------------------------------------
# RL006/RL007 — bit budget and round bound (abstract interpretation)
# ---------------------------------------------------------------------------

@rule(
    "RL006",
    "bit-budget",
    "every ctx.send payload of a @node_program must have a statically "
    "certified bit-width within the declared CONGEST budget family "
    "(O(1) ⊆ O(log n) ⊆ O(d log n)); ⊤ (unbounded) is rejected",
)
def check_bit_budget(program: ProgramInfo) -> Iterator[Finding]:
    from .bitwidth import check_bit_budget as _check

    yield from _check(program)


@rule(
    "RL007",
    "round-bound",
    "message-emitting 'while True' loops must have a reachable "
    "break/return/raise: otherwise the number of communication rounds "
    "has no static bound tied to d or log n",
)
def check_round_bound(program: ProgramInfo) -> Iterator[Finding]:
    from .bitwidth import check_round_bound as _check

    yield from _check(program)


# ---------------------------------------------------------------------------
# RL008 — nondeterminism taint (dataflow)
# ---------------------------------------------------------------------------

@rule(
    "RL008",
    "nondeterminism-taint",
    "values derived from set/dict iteration order, unseeded randomness, "
    "id()/hash(), or wall-clock reads must not reach payloads or outputs "
    "— tracked through assignment chains and inlined helper calls",
)
def check_nondeterminism_taint(program: ProgramInfo) -> Iterator[Finding]:
    from .taint import check_taint as _check

    yield from _check(program)
