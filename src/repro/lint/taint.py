"""Nondeterminism taint tracking (RL008).

RL002 pattern-matches *direct* uses of nondeterminism (an unordered
collection materialized straight into a payload, a bare ``random.random()``
call).  RL008 strengthens it to dataflow: a value derived from set/dict
iteration order, unseeded randomness, ``id()``/``hash()``, or a wall-clock
read is *tainted*, taint propagates through assignment chains (and, because
rules run on the call-graph-expanded program, through project-local helper
calls), and a tainted name reaching a message payload or the node output is
reported — even when the original source is several hops away.

Wrapping a value in an order-insensitive cleanser (``sorted``, ``min``,
``sum``, ... — see :data:`repro.lint.astutils.ORDER_CLEANSERS`) stops
order-taint propagation, exactly as it silences RL002.

To avoid double-reporting, RL008 stays silent where RL002 already fires:
it only reports sinks reached through names RL002's one-hop analysis does
not see, plus wall-clock reads (which RL002 does not cover at all).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from .astutils import ProgramInfo
from .findings import Finding

#: Clock-reading attributes of the ``time`` module: process-dependent
#: values that must not influence payloads, outputs, or branches.
_CLOCK_ATTRS = {
    "time", "time_ns", "monotonic", "monotonic_ns",
    "perf_counter", "perf_counter_ns", "process_time", "process_time_ns",
}

_MAX_TAINT_PASSES = 8


def _clock_call(program: ProgramInfo, n: ast.AST) -> Optional[str]:
    if not isinstance(n, ast.Call):
        return None
    func = n.func
    if (
        isinstance(func, ast.Attribute)
        and isinstance(func.value, ast.Name)
        and func.value.id == "time"
        and func.attr in _CLOCK_ATTRS
        and "time" not in program.locals
        and program.module.bindings.get("time") == "import"
    ):
        return f"time.{func.attr}"
    return None


def _source_in(program: ProgramInfo, expr: ast.AST) -> Optional[Tuple[str, int]]:
    """A fresh taint source inside ``expr`` (description, line) or None."""
    from .rules import _materializes_order, _random_call

    nodes = [expr] + (
        [] if isinstance(expr, (ast.Name, ast.Constant)) else [
            n for n in ast.walk(expr) if n is not expr
        ]
    )
    # Only *order-materialization* seeds a chain: RL002 already reports
    # every random/id/hash call site directly (and RL008's clause (a)
    # reports clock reads), so tracking those through assignments would
    # double-report the same root cause.
    for n in nodes:
        if program.has_cleansing_ancestor(n) and n is not expr:
            continue
        how = _materializes_order(program, n)
        if how is not None and not program.has_cleansing_ancestor(n):
            return (how, getattr(n, "lineno", 0))
    return None


def _tainted_reads(
    program: ProgramInfo, expr: ast.AST, taint: Dict[str, Tuple[str, int]]
) -> Set[str]:
    """Tainted names read in ``expr`` and not wrapped in a cleanser."""
    out: Set[str] = set()
    nodes = [expr] if isinstance(expr, ast.Name) else list(ast.walk(expr))
    for n in nodes:
        if (
            isinstance(n, ast.Name)
            and isinstance(n.ctx, ast.Load)
            and n.id in taint
            and not program.has_cleansing_ancestor(n)
        ):
            out.add(n.id)
    return out


def _direct_rl002_names(program: ProgramInfo) -> Set[str]:
    """The one-hop tainted-name set RL002 already reports on."""
    from .rules import _materializes_order

    direct: Set[str] = set()
    for n in program.own:
        target = None
        if isinstance(n, ast.Assign) and len(n.targets) == 1:
            target = n.targets[0]
        elif isinstance(n, ast.AnnAssign):
            target = n.target
        if (
            target is not None
            and isinstance(target, ast.Name)
            and getattr(n, "value", None) is not None
        ):
            how = _materializes_order(program, n.value)
            if how is not None and not program.has_cleansing_ancestor(n.value):
                direct.add(target.id)
    return direct


def _assignments(program: ProgramInfo) -> List[Tuple[ast.AST, ast.AST, ast.AST]]:
    """(stmt, target, value) triples for every simple binding form."""
    out: List[Tuple[ast.AST, ast.AST, ast.AST]] = []
    for n in program.own:
        if isinstance(n, ast.Assign):
            for target in n.targets:
                out.append((n, target, n.value))
        elif isinstance(n, ast.AnnAssign) and n.value is not None:
            out.append((n, n.target, n.value))
        elif isinstance(n, ast.AugAssign):
            out.append((n, n.target, n.value))
        elif isinstance(n, ast.NamedExpr):
            out.append((n, n.target, n.value))
        elif isinstance(n, ast.For):
            out.append((n, n.target, n.iter))
    return out


def _target_names(target: ast.AST) -> Set[str]:
    return {
        n.id
        for n in ast.walk(target)
        if isinstance(n, ast.Name) and isinstance(n.ctx, ast.Store)
    }


def _propagate(program: ProgramInfo) -> Dict[str, Tuple[str, int]]:
    """Fixpoint taint map: name -> (source description, source line)."""
    # Note: the inbox dict itself is NOT seeded as tainted — keyed reads
    # like ``inbox[child]`` are deterministic; only *materializing its
    # order* (list(inbox), iteration into a sequence) taints, and that is
    # what _source_in detects.
    taint: Dict[str, Tuple[str, int]] = {}
    assignments = _assignments(program)
    for _ in range(_MAX_TAINT_PASSES):
        changed = False
        for stmt, target, value in assignments:
            names = _target_names(target)
            if not names or all(n in taint for n in names):
                continue
            origin: Optional[Tuple[str, int]] = None
            fresh = _source_in(program, value)
            if fresh is not None:
                origin = fresh
            else:
                via = _tainted_reads(program, value, taint)
                if via:
                    origin = taint[sorted(via)[0]]
            if origin is not None:
                for name in names:
                    if name not in taint:
                        taint[name] = origin
                        changed = True
        if not changed:
            break
    return taint


def check_taint(program: ProgramInfo) -> Iterator[Finding]:
    """RL008: nondeterminism reaching payloads/outputs through dataflow."""
    from .rules import _finding, _sink_subtrees

    # (a) wall-clock reads anywhere in the program: the value is
    # process-dependent whether or not it visibly reaches a sink.
    for n in program.own:
        clock = _clock_call(program, n)
        if clock is not None:
            yield _finding(
                program,
                "RL008",
                n,
                f"{clock}(): wall-clock values are process-dependent and "
                "make runs irreproducible; derive timing from round numbers",
            )

    # (b) transitive taint chains RL002's one-hop patterns cannot see.
    taint = _propagate(program)
    direct = _direct_rl002_names(program)
    reported: Set[Tuple[int, str]] = set()
    for sink, where in _sink_subtrees(program):
        nodes = [sink] if isinstance(sink, ast.Name) else list(ast.walk(sink))
        for n in nodes:
            if not (
                isinstance(n, ast.Name)
                and isinstance(n.ctx, ast.Load)
                and n.id in taint
                and n.id not in direct
                and not program.has_cleansing_ancestor(n)
            ):
                continue
            key = (getattr(n, "lineno", 0), n.id)
            if key in reported:
                continue
            reported.add(key)
            source, line = taint[n.id]
            yield _finding(
                program,
                "RL008",
                n,
                f"'{n.id}' is transitively derived from {source} (line "
                f"{line}) and flows into {where}: nondeterminism survives "
                "assignment chains; sort or seed at the source",
            )
