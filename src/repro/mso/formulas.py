"""Catalog of MSO formulas for the problems the paper enumerates.

Each function returns a closed formula, or a formula with the named free
set variable for the optimization problems (Section 4.3: max-φ / min-φ).
Formulas are written with the extended atoms of :mod:`repro.mso.syntax`
where that keeps the compiled automata small; every extended atom is
MSO-definable (see the atom docstrings), so nothing exceeds MSO₂ power.
"""

from __future__ import annotations

from typing import Optional

from ..graph import Graph
from .syntax import (
    Adj,
    AllHaveLabel,
    And,
    EdgeCross,
    EndpointsIn,
    Eq,
    Exists,
    Forall,
    Formula,
    HasLabel,
    In,
    Inc,
    IncCounts,
    NonEmpty,
    Not,
    Or,
    Sort,
    Subset,
    Truth,
    Var,
    and_,
    disjoint,
    distinct,
    edge,
    edge_set,
    exists,
    forall,
    implies,
    or_,
    vertex,
    vertex_set,
)


# ----------------------------------------------------------------------
# Fixed-pattern containment (FO)
# ----------------------------------------------------------------------

def contains_subgraph(pattern: Graph, induced: bool = False) -> Formula:
    """φ_H of Corollary 7.3: G contains a copy of ``pattern``.

    Uses the :class:`~repro.mso.syntax.ContainsPattern` extended atom
    (a direct partial-embedding automaton); the literal quantifier form is
    :func:`contains_subgraph_fo`, kept for cross-validation.
    """
    from .syntax import pattern_atom

    return pattern_atom(pattern, induced=induced)


def contains_subgraph_fo(pattern: Graph, induced: bool = False) -> Formula:
    """The paper's literal φ_H: one existential vertex variable per pattern
    vertex, adjacency forced on pattern edges, non-adjacency on non-edges
    if ``induced``, pairwise distinctness."""
    p_vertices = pattern.vertices()
    xs = {v: vertex(f"x{v}") for v in p_vertices}
    constraints = [distinct(*xs.values())]
    for i, u in enumerate(p_vertices):
        for v in p_vertices[i + 1:]:
            if pattern.has_edge(u, v):
                constraints.append(Adj(xs[u], xs[v]))
            elif induced:
                constraints.append(Not(Adj(xs[u], xs[v])))
    return exists(list(xs.values()), and_(*constraints))


def h_free(pattern: Graph, induced: bool = False) -> Formula:
    """G is H-free (no copy of ``pattern``)."""
    return Not(contains_subgraph(pattern, induced=induced))


def triangle_free() -> Formula:
    """The paper's Section 1 example: ¬∃x₁x₂x₃ (adj ∧ adj ∧ adj)."""
    x1, x2, x3 = vertex("x1"), vertex("x2"), vertex("x3")
    return Not(
        exists([x1, x2, x3], and_(Adj(x1, x2), Adj(x2, x3), Adj(x3, x1)))
    )


def triangle_assignment() -> tuple:
    """(formula, variables) for counting triangles as ordered triples."""
    x1, x2, x3 = vertex("x1"), vertex("x2"), vertex("x3")
    return and_(Adj(x1, x2), Adj(x2, x3), Adj(x3, x1)), (x1, x2, x3)


def exists_vertex_of_degree_greater(k: int) -> Formula:
    """"There is a vertex of degree > k" — the Section 1.1 FO predicate
    witnessing that the meta-theorem cannot extend beyond bounded treedepth.
    """
    from .syntax import GraphDegrees

    return Not(GraphDegrees(frozenset(range(k + 1)), cap=k + 1))


def exists_vertex_of_degree_greater_fo(k: int) -> Formula:
    """The literal quantifier form of the degree predicate."""
    x = vertex("x")
    ys = [vertex(f"y{i}") for i in range(k + 1)]
    return exists(
        [x] + ys, and_(distinct(*ys), *(Adj(x, y) for y in ys))
    )


# ----------------------------------------------------------------------
# Global structure (genuinely MSO)
# ----------------------------------------------------------------------

def acyclic() -> Formula:
    """G is a forest: no nonempty edge set where every vertex has capped
    degree in {0, 2, 3+} (such a set must contain a cycle and vice versa)."""
    c = edge_set("C")
    return Not(Exists(c, and_(NonEmpty(c), IncCounts(c, frozenset({0, 2, 3})))))


def acyclic_textbook() -> Formula:
    """The paper's Section 1 acyclicity formula, verbatim:
    ¬∃X≠∅ ∀x∈X ∃y₁y₂∈X (y₁≠y₂ ∧ adj(x,y₁) ∧ adj(x,y₂))."""
    big_x = vertex_set("X")
    x, y1, y2 = vertex("x"), vertex("y1"), vertex("y2")
    inner = exists(
        [y1, y2],
        and_(In(y1, big_x), In(y2, big_x), Not(Eq(y1, y2)), Adj(x, y1), Adj(x, y2)),
    )
    return Not(
        Exists(big_x, and_(NonEmpty(big_x), forall(x, implies(In(x, big_x), inner))))
    )


def connected() -> Formula:
    """G is connected: no partition into two nonempty sides without a
    crossing edge."""
    from .syntax import AllVerticesIn

    a, b = vertex_set("A"), vertex_set("B")
    return Not(
        exists(
            [a, b],
            and_(
                AllVerticesIn((a, b)),
                disjoint(a, b),
                NonEmpty(a),
                NonEmpty(b),
                Not(Adj(a, b)),
            ),
        )
    )


def connected_via(edges_var: Var) -> Formula:
    """All vertices of G lie in one component of the subgraph (V, edges_var)."""
    from .syntax import AllVerticesIn

    a, b = vertex_set("Ac"), vertex_set("Bc")
    return Not(
        exists(
            [a, b],
            and_(
                AllVerticesIn((a, b)),
                disjoint(a, b),
                NonEmpty(a),
                NonEmpty(b),
                Not(EdgeCross(edges_var, a, b)),
            ),
        )
    )


def connected_subset(s: Optional[Var] = None) -> Formula:
    """φ(S): the subgraph induced by the vertex set S is connected.

    No bipartition (A, B) of S with both sides nonempty and no crossing
    edge — written entirely with extended atoms (no element quantifiers).
    The empty set counts as connected.
    """
    s = s or vertex_set("S")
    a, b = vertex_set("Ap"), vertex_set("Bp")
    return Not(
        exists(
            [a, b],
            and_(
                Subset(a, (s,)),
                Subset(b, (s,)),
                Subset(s, (a, b)),
                disjoint(a, b),
                NonEmpty(a),
                NonEmpty(b),
                Not(Adj(a, b)),
            ),
        )
    )


def connected_dominating_set(s: Optional[Var] = None) -> Formula:
    """φ(S): S is a dominating set inducing a connected subgraph.

    min-φ is the minimum connected dominating set (virtual backbone
    placement) — a showcase of composing catalog predicates.
    """
    s = s or vertex_set("S")
    return and_(dominating_set(s), connected_subset(s), NonEmpty(s))


def k_colorable(k: int) -> Formula:
    """G admits a proper k-coloring: V covered by k independent sets."""
    from .syntax import AllVerticesIn

    classes = [vertex_set(f"Col{i}") for i in range(k)]
    return exists(
        classes,
        and_(
            AllVerticesIn(tuple(classes)),
            *(Not(Adj(c, c)) for c in classes),
        ),
    )


def not_k_colorable(k: int) -> Formula:
    """The paper's flagship hard predicate (non-3-colorability for k=3)."""
    return Not(k_colorable(k))


def properly_2_labeled() -> Formula:
    """The paper's labeled example: labels red/blue form a proper 2-coloring."""
    x = vertex("x")
    total = forall(x, or_(HasLabel(x, "red"), HasLabel(x, "blue")))
    x2, y2 = vertex("x2"), vertex("y2")
    clash = exists(
        [x2, y2],
        and_(
            Adj(x2, y2),
            or_(
                and_(HasLabel(x2, "red"), HasLabel(y2, "red")),
                and_(HasLabel(x2, "blue"), HasLabel(y2, "blue")),
            ),
        ),
    )
    return and_(total, Not(clash))


def hamiltonian_cycle_exists() -> Formula:
    """G has a Hamiltonian cycle: a spanning connected 2-regular edge set.

    (For n < 3 this is false, matching the convention that a cycle needs at
    least three vertices.)
    """
    s = edge_set("Ham")
    return Exists(s, and_(IncCounts(s, frozenset({2})), connected_via(s)))


# ----------------------------------------------------------------------
# Optimization predicates φ(S) (Section 4.3)
# ----------------------------------------------------------------------

def independent_set(s: Optional[Var] = None) -> Formula:
    """φ(S) = ∀x,y ∈ S ¬adj(x,y) — max-φ is maximum independent set."""
    s = s or vertex_set("S")
    return Not(Adj(s, s))


def clique_set(s: Optional[Var] = None) -> Formula:
    """φ(S): S induces a clique — max-φ is maximum clique."""
    s = s or vertex_set("S")
    x, y = vertex("xq"), vertex("yq")
    return forall(
        [x, y],
        implies(and_(In(x, s), In(y, s), Not(Eq(x, y))), Adj(x, y)),
    )


def vertex_cover(s: Optional[Var] = None) -> Formula:
    """φ(S): every edge has an endpoint in S — min-φ is minimum vertex cover."""
    s = s or vertex_set("S")
    e = edge("ec")
    return forall(e, Inc(s, e))


def dominating_set(s: Optional[Var] = None) -> Formula:
    """φ(S): every vertex is in S or adjacent to S — min-φ is MDS."""
    s = s or vertex_set("S")
    x = vertex("xd")
    return forall(x, or_(In(x, s), Adj(x, s)))


def feedback_vertex_set(s: Optional[Var] = None) -> Formula:
    """φ(S): G - S is acyclic (no cycle-support edge set avoiding S)."""
    s = s or vertex_set("S")
    c = edge_set("Cf")
    return Not(
        Exists(
            c,
            and_(NonEmpty(c), IncCounts(c, frozenset({0, 2, 3})), Not(Inc(s, c))),
        )
    )


def matching(s: Optional[Var] = None) -> Formula:
    """φ(S): edge set S is a matching — max-φ is maximum matching."""
    s = s or edge_set("M")
    return IncCounts(s, frozenset({0, 1}))


def perfect_matching(s: Optional[Var] = None) -> Formula:
    """φ(S): S is a perfect matching (every vertex covered exactly once)."""
    s = s or edge_set("M")
    return IncCounts(s, frozenset({1}))


def has_perfect_matching() -> Formula:
    s = edge_set("M")
    return Exists(s, perfect_matching(s))


def spanning_tree(s: Optional[Var] = None) -> Formula:
    """φ(S): S is a spanning tree: acyclic and connecting all of V.

    min-φ with edge weights is the paper's minimum spanning tree example.
    """
    s = s or edge_set("T")
    c = edge_set("Ct")
    no_cycle = Not(
        Exists(
            c,
            and_(
                NonEmpty(c),
                Subset(c, (s,)),
                IncCounts(c, frozenset({0, 2, 3})),
            ),
        )
    )
    return and_(connected_via(s), no_cycle)


def dominated_reds_by_blues(s: Optional[Var] = None) -> Formula:
    """The paper's Section 6 labeled optimization example: S is a set of
    blue vertices dominating every red vertex (min-φ = smallest such S)."""
    s = s or vertex_set("S")
    y = vertex("yr")
    return and_(
        AllHaveLabel(s, "blue"),
        forall(y, implies(HasLabel(y, "red"), Adj(y, s))),
    )


def contains_minor(pattern: Graph) -> Formula:
    """G contains ``pattern`` as a minor (branch-set formulation).

    One nonempty, connected, pairwise-disjoint vertex set per pattern
    vertex, with a crossing edge for every pattern edge — the textbook
    MSO₂ definition of minor containment, one of the paper's Section 1.1
    problems.
    """
    p_vertices = pattern.vertices()
    branch = {v: vertex_set(f"B{v}") for v in p_vertices}
    constraints = []
    for v in p_vertices:
        constraints.append(NonEmpty(branch[v]))
        constraints.append(connected_subset(branch[v]))
    for i, u in enumerate(p_vertices):
        for v in p_vertices[i + 1:]:
            constraints.append(disjoint(branch[u], branch[v]))
            if pattern.has_edge(u, v):
                constraints.append(Adj(branch[u], branch[v]))
    return exists(list(branch.values()), and_(*constraints))


def minor_free(pattern: Graph) -> Formula:
    """G excludes ``pattern`` as a minor."""
    return Not(contains_minor(pattern))


def partition_into_k_cliques(k: int) -> Formula:
    """V can be covered by k cliques (= complement is k-colorable); one of
    the paper's Section 1.1 problems."""
    from .syntax import AllVerticesIn, IsClique

    classes = [vertex_set(f"Q{i}") for i in range(k)]
    return exists(
        classes,
        and_(AllVerticesIn(tuple(classes)), *(IsClique(c) for c in classes)),
    )


def edge_k_colorable(k: int) -> Formula:
    """E can be covered by k matchings (chromatic index <= k); the paper's
    "edge k-colorability"."""
    from .syntax import AllEdgesIn

    classes = [edge_set(f"M{i}") for i in range(k)]
    return exists(
        classes,
        and_(
            AllEdgesIn(tuple(classes)),
            *(IncCounts(c, frozenset({0, 1})) for c in classes),
        ),
    )


def has_even_subgraph() -> Formula:
    """G has a nonempty edge set with all degrees even (an Eulerian /
    cycle-space element) — true iff G contains a cycle."""
    from .syntax import IncParity

    s = edge_set("Ev")
    return Exists(s, and_(NonEmpty(s), IncParity(s, even=True)))


def has_cubic_subgraph() -> Formula:
    """G has a nonempty edge set whose support is 3-regular (the paper's
    "cubic subgraph")."""
    s = edge_set("Cu")
    return Exists(
        s, and_(NonEmpty(s), IncCounts(s, frozenset({0, 3}), cap=4))
    )


def max_clique_set(s: Optional[Var] = None) -> Formula:
    """φ(S): S is a clique, via the direct clique atom — max-φ is maximum
    clique without the two element quantifiers of :func:`clique_set`."""
    from .syntax import IsClique

    s = s or vertex_set("S")
    return IsClique(s)


def steiner_connector(s: Optional[Var] = None, label: str = "terminal") -> Formula:
    """φ(S): the edge set S connects every ``label``-ed terminal.

    There is no vertex bipartition (A, B) with a terminal on each side and
    no S-edge crossing.  min-φ with edge weights is the paper's Steiner
    tree problem (an optimal connector is always a tree).
    """
    from .syntax import AllVerticesIn

    s = s or edge_set("St")
    a, b = vertex_set("As"), vertex_set("Bs")
    return Not(
        exists(
            [a, b],
            and_(
                AllVerticesIn((a, b)),
                disjoint(a, b),
                HasLabel(a, label),
                HasLabel(b, label),
                Not(EdgeCross(s, a, b)),
            ),
        )
    )


def induced_forest(s: Optional[Var] = None) -> Formula:
    """φ(S): S induces a forest — max-φ is maximum induced forest
    (complement of minimum FVS)."""
    s = s or vertex_set("S")
    c = edge_set("Ci")
    return Not(
        Exists(
            c,
            and_(
                NonEmpty(c),
                IncCounts(c, frozenset({0, 2, 3})),
                EndpointsIn(c, s),
            ),
        )
    )
