"""A small text syntax for MSO formulas.

Example::

    parse("forall x:V . exists y:V . adj(x, y)")
    parse("exists X:VS . (nonempty(X) & !adj(X, X))")
    parse("x in S | adj(x, S)", free={"x": Sort.VERTEX, "S": Sort.VERTEX_SET})

Grammar (precedence low to high: <->, ->, |, &, !)::

    formula  := quant | iff
    quant    := ('exists' | 'forall') decl (',' decl)* '.' formula
    decl     := NAME ':' ('V' | 'E' | 'VS' | 'ES')
    iff      := imp ('<->' imp)*
    imp      := or ('->' imp)?          # right associative
    or       := and ('|' and)*
    and      := unary ('&' unary)*
    unary    := '!' unary | '(' formula ')' | quant | atom
    atom     := 'true' | 'false'
              | 'adj' '(' t ',' t ')' | 'inc' '(' t ',' t ')'
              | 'nonempty' '(' t ')' | 'subset' '(' t ',' t {',' t} ')'
              | 'label' '(' NAME ',' t ')' | 'alllabel' '(' NAME ',' t ')'
              | 'degrees' '(' t ',' '{' INT {',' INT} '}' [',' t] ')'
              | 'crosses' '(' t ',' t ',' t ')' | 'touches' '(' t ',' t ')'
              | 'endpoints' '(' t ',' t ')'
              | 'contains' '(' INT ',' '{' [INT INT {',' INT INT}] '}'
                           [',' 'induced'] ')'
              | t '=' t | t 'in' t

``contains(n, {u v, ...})`` is the fixed-pattern atom
(:class:`~repro.mso.syntax.ContainsPattern`): does G contain the
pattern graph on vertices 0..n-1 with the listed edges as a subgraph
(``induced`` for induced containment)?  E.g. the claw is
``contains(4, {0 1, 0 2, 0 3})``.
"""

from __future__ import annotations

import re
from typing import Dict, List, Mapping, Optional, Tuple, Union

from ..errors import FormulaError
from . import syntax as sx
from .syntax import Formula, Sort, Var

_TOKEN_RE = re.compile(
    r"\s*(?:(?P<arrow2><->)|(?P<arrow>->)|(?P<sym>[().,:{}=!&|])|"
    r"(?P<int>\d+)|(?P<name>[A-Za-z_][A-Za-z_0-9]*))"
)

_SORT_NAMES = {
    "V": Sort.VERTEX,
    "E": Sort.EDGE,
    "VS": Sort.VERTEX_SET,
    "ES": Sort.EDGE_SET,
}

_KEYWORDS = {
    "exists",
    "forall",
    "in",
    "true",
    "false",
    "adj",
    "inc",
    "nonempty",
    "subset",
    "label",
    "alllabel",
    "degrees",
    "crosses",
    "touches",
    "endpoints",
    "intersects",
    "covers",
    "edgecovers",
    "parity",
    "clique",
    "contains",
}


def _tokenize(text: str) -> List[Tuple[str, str]]:
    tokens: List[Tuple[str, str]] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None or match.end() == pos:
            if text[pos:].strip():
                raise FormulaError(f"cannot tokenize {text[pos:]!r}")
            break
        pos = match.end()
        for kind in ("arrow2", "arrow", "sym", "int", "name"):
            value = match.group(kind)
            if value is not None:
                tokens.append((kind, value))
                break
    tokens.append(("eof", ""))
    return tokens


class _Parser:
    def __init__(self, tokens: List[Tuple[str, str]], free: Dict[str, Var]):
        self._tokens = tokens
        self._pos = 0
        self._scope: Dict[str, Var] = dict(free)

    # -- token helpers -------------------------------------------------
    def _peek(self) -> Tuple[str, str]:
        return self._tokens[self._pos]

    def _next(self) -> Tuple[str, str]:
        tok = self._tokens[self._pos]
        self._pos += 1
        return tok

    def _expect(self, value: str) -> None:
        kind, got = self._next()
        if got != value:
            raise FormulaError(f"expected {value!r}, got {got!r}")

    def _at(self, value: str) -> bool:
        return self._peek()[1] == value

    def _eat(self, value: str) -> bool:
        if self._at(value):
            self._next()
            return True
        return False

    # -- grammar -------------------------------------------------------
    def parse(self) -> Formula:
        f = self._formula()
        if self._peek()[0] != "eof":
            raise FormulaError(f"trailing input at {self._peek()[1]!r}")
        return f

    def _formula(self) -> Formula:
        if self._at("exists") or self._at("forall"):
            return self._quantified()
        return self._iff()

    def _quantified(self) -> Formula:
        _, kw = self._next()
        decls: List[Var] = []
        while True:
            kind, name = self._next()
            if kind != "name" or name in _KEYWORDS:
                raise FormulaError(f"expected variable name, got {name!r}")
            self._expect(":")
            _, sort_name = self._next()
            if sort_name not in _SORT_NAMES:
                raise FormulaError(f"unknown sort {sort_name!r} (use V, E, VS, ES)")
            decls.append(Var(name, _SORT_NAMES[sort_name]))
            if not self._eat(","):
                break
        self._expect(".")
        saved = dict(self._scope)
        for v in decls:
            self._scope[v.name] = v
        body = self._formula()
        self._scope = saved
        builder = sx.exists if kw == "exists" else sx.forall
        return builder(decls, body)

    def _iff(self) -> Formula:
        left = self._imp()
        while self._eat("<->"):
            right = self._imp()
            left = sx.iff(left, right)
        return left

    def _imp(self) -> Formula:
        left = self._or()
        if self._eat("->"):
            right = self._imp()
            return sx.implies(left, right)
        return left

    def _or(self) -> Formula:
        parts = [self._and()]
        while self._eat("|"):
            parts.append(self._and())
        return sx.or_(*parts) if len(parts) > 1 else parts[0]

    def _and(self) -> Formula:
        parts = [self._unary()]
        while self._eat("&"):
            parts.append(self._unary())
        return sx.and_(*parts) if len(parts) > 1 else parts[0]

    def _unary(self) -> Formula:
        if self._eat("!"):
            return sx.Not(self._unary())
        if self._eat("("):
            inner = self._formula()
            self._expect(")")
            return inner
        if self._at("exists") or self._at("forall"):
            return self._quantified()
        return self._atom()

    def _var(self) -> Var:
        kind, name = self._next()
        if kind != "name":
            raise FormulaError(f"expected variable, got {name!r}")
        if name not in self._scope:
            raise FormulaError(f"unknown variable {name!r}")
        return self._scope[name]

    def _atom(self) -> Formula:
        kind, value = self._peek()
        if value == "true":
            self._next()
            return sx.Truth(True)
        if value == "false":
            self._next()
            return sx.Truth(False)
        if value == "adj":
            x, y = self._two_args()
            return sx.Adj(x, y)
        if value == "inc":
            x, e = self._two_args()
            return sx.Inc(x, e)
        if value == "nonempty":
            self._next()
            self._expect("(")
            a = self._var()
            self._expect(")")
            return sx.NonEmpty(a)
        if value == "subset":
            self._next()
            self._expect("(")
            a = self._var()
            supersets = []
            while self._eat(","):
                supersets.append(self._var())
            self._expect(")")
            if not supersets:
                raise FormulaError("subset needs at least one superset")
            return sx.Subset(a, tuple(supersets))
        if value in ("label", "alllabel"):
            self._next()
            self._expect("(")
            _, label = self._next()
            self._expect(",")
            a = self._var()
            self._expect(")")
            cls = sx.HasLabel if value == "label" else sx.AllHaveLabel
            return cls(a, label)
        if value == "degrees":
            return self._degrees()
        if value == "intersects":
            a, b = self._two_args()
            return sx.SetsIntersect(a, b)
        if value in ("covers", "edgecovers"):
            cls = sx.AllVerticesIn if value == "covers" else sx.AllEdgesIn
            self._next()
            self._expect("(")
            sets = [self._var()]
            while self._eat(","):
                sets.append(self._var())
            self._expect(")")
            return cls(tuple(sets))
        if value == "parity":
            return self._parity()
        if value == "clique":
            self._next()
            self._expect("(")
            x = self._var()
            self._expect(")")
            return sx.IsClique(x)
        if value == "contains":
            return self._contains()
        if value == "crosses":
            self._next()
            self._expect("(")
            e = self._var()
            self._expect(",")
            x = self._var()
            self._expect(",")
            y = self._var()
            self._expect(")")
            return sx.EdgeCross(e, x, y)
        if value == "touches":
            e, x = self._two_args()
            return sx.EdgeCross(e, x, None)
        if value == "endpoints":
            e, x = self._two_args()
            return sx.EndpointsIn(e, x)
        # Fall through: term '=' term or term 'in' term.
        a = self._var()
        if self._eat("="):
            return sx.Eq(a, self._var())
        if self._eat("in"):
            return sx.In(a, self._var())
        raise FormulaError(f"expected '=' or 'in' after {a.name!r}")

    def _two_args(self) -> Tuple[Var, Var]:
        self._next()
        self._expect("(")
        a = self._var()
        self._expect(",")
        b = self._var()
        self._expect(")")
        return a, b

    def _degrees(self) -> Formula:
        # degrees(E, {classes} [, within] [, cap=K])
        self._next()
        self._expect("(")
        e = self._var()
        self._expect(",")
        self._expect("{")
        allowed = set()
        while True:
            kind, num = self._next()
            if kind != "int":
                raise FormulaError(f"expected count class, got {num!r}")
            allowed.add(int(num))
            if not self._eat(","):
                break
        self._expect("}")
        within: Optional[Var] = None
        cap = 3
        while self._eat(","):
            if self._at("cap"):
                self._next()
                self._expect("=")
                kind, num = self._next()
                if kind != "int":
                    raise FormulaError(f"expected cap value, got {num!r}")
                cap = int(num)
            else:
                within = self._var()
        self._expect(")")
        return sx.IncCounts(e, frozenset(allowed), within, cap=cap)

    def _contains(self) -> Formula:
        # contains(N, {U V {, U V}} [, induced])
        self._next()
        self._expect("(")
        kind, num = self._next()
        if kind != "int":
            raise FormulaError(f"expected pattern size, got {num!r}")
        n = int(num)
        self._expect(",")
        self._expect("{")
        edges = set()
        if not self._at("}"):
            while True:
                kind_u, u = self._next()
                kind_v, v = self._next()
                if kind_u != "int" or kind_v != "int":
                    raise FormulaError(
                        f"expected a pattern edge 'U V', got {u!r} {v!r}"
                    )
                i, j = sorted((int(u), int(v)))
                if not 0 <= i < j < n:
                    raise FormulaError(
                        f"pattern edge {u} {v} is not over 0..{n - 1}"
                    )
                edges.add((i, j))
                if not self._eat(","):
                    break
        self._expect("}")
        induced = False
        if self._eat(","):
            kind, word = self._next()
            if word != "induced":
                raise FormulaError(f"expected 'induced', got {word!r}")
            induced = True
        self._expect(")")
        return sx.ContainsPattern(
            num_vertices=n, edges=frozenset(edges), induced=induced
        )

    def _parity(self) -> Formula:
        # parity(E, even|odd [, within])
        self._next()
        self._expect("(")
        e = self._var()
        self._expect(",")
        kind, word = self._next()
        if word not in ("even", "odd"):
            raise FormulaError(f"expected 'even' or 'odd', got {word!r}")
        within: Optional[Var] = None
        if self._eat(","):
            within = self._var()
        self._expect(")")
        return sx.IncParity(e, even=word == "even", within=within)


def parse(
    text: str, free: Optional[Mapping[str, Union[Var, Sort]]] = None
) -> Formula:
    """Parse ``text`` into a formula.

    ``free`` declares free variables: a mapping from name to either a
    :class:`Var` or just a :class:`Sort`.  The result is validated.
    """
    declared: Dict[str, Var] = {}
    for name, spec in (free or {}).items():
        declared[name] = spec if isinstance(spec, Var) else Var(name, spec)
    formula = _Parser(_tokenize(text), declared).parse()
    sx.validate(formula, allowed_free=declared.values())
    return formula
