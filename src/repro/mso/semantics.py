"""Brute-force MSO semantics: the ground-truth model checker.

``evaluate`` interprets a formula on a graph by exhaustive enumeration —
set quantifiers enumerate all 2^n subsets — so it is only usable on small
graphs.  Its role is to be *obviously correct*: the Courcelle engine and the
distributed protocols are property-tested against it.
"""

from __future__ import annotations

from itertools import combinations
from typing import Any, Dict, FrozenSet, Iterable, Iterator, Mapping, Optional, Union

from ..errors import FormulaError
from ..graph import Graph
from . import syntax as sx

# An assignment value: a vertex, an edge tuple, or a frozenset of either.
Value = Union[Any, FrozenSet[Any]]
Assignment = Dict[sx.Var, Value]


def _as_set(value: Value) -> FrozenSet[Any]:
    """View an element value as the singleton set containing it."""
    if isinstance(value, frozenset):
        return value
    return frozenset({value})


def _subsets(items: Iterable[Any]) -> Iterator[FrozenSet[Any]]:
    items = list(items)
    for r in range(len(items) + 1):
        for combo in combinations(items, r):
            yield frozenset(combo)


def _domain(graph: Graph, sort: sx.Sort) -> Iterator[Value]:
    if sort == sx.Sort.VERTEX:
        return iter(graph.vertices())
    if sort == sx.Sort.EDGE:
        return iter(graph.edges())
    if sort == sx.Sort.VERTEX_SET:
        return _subsets(graph.vertices())
    if sort == sx.Sort.EDGE_SET:
        return _subsets(graph.edges())
    raise FormulaError(f"unknown sort {sort!r}")


def _cross_edge_exists(
    graph: Graph,
    edges: Iterable[tuple],
    xs: FrozenSet[Any],
    ys: Optional[FrozenSet[Any]],
) -> bool:
    """Is there an edge in ``edges`` with one endpoint in xs and (if given)
    the other in ys?"""
    for u, v in edges:
        for a, b in ((u, v), (v, u)):
            if a in xs and (ys is None or b in ys):
                return True
    return False


def evaluate(
    graph: Graph,
    formula: sx.Formula,
    assignment: Optional[Mapping[sx.Var, Value]] = None,
) -> bool:
    """Evaluate ``formula`` on ``graph`` under ``assignment`` for free vars."""
    env: Assignment = dict(assignment or {})
    sx.validate(formula, allowed_free=env.keys())
    return _eval(graph, formula, env)


def _eval(graph: Graph, f: sx.Formula, env: Assignment) -> bool:
    if isinstance(f, sx.Truth):
        return f.value
    if isinstance(f, sx.Adj):
        xs, ys = _as_set(env[f.x]), _as_set(env[f.y])
        return _cross_edge_exists(graph, graph.edges(), xs, ys)
    if isinstance(f, sx.Inc):
        xs = _as_set(env[f.x])
        es = _as_set(env[f.e])
        return any(u in xs or v in xs for u, v in es)
    if isinstance(f, sx.Eq):
        return env[f.x] == env[f.y]
    if isinstance(f, sx.In):
        return env[f.x] in _as_set(env[f.s])
    if isinstance(f, sx.Subset):
        union: FrozenSet[Any] = frozenset()
        for b in f.bs:
            union |= _as_set(env[b])
        return _as_set(env[f.a]) <= union
    if isinstance(f, sx.SetsIntersect):
        return bool(_as_set(env[f.a]) & _as_set(env[f.b]))
    if isinstance(f, sx.AllVerticesIn):
        union: FrozenSet[Any] = frozenset()
        for b in f.bs:
            union |= _as_set(env[b])
        return all(v in union for v in graph.vertices())
    if isinstance(f, sx.ContainsPattern):
        from ..graph.properties import has_subgraph

        return has_subgraph(graph, _pattern_graph(f), induced=f.induced)
    if isinstance(f, sx.GraphDegrees):
        return all(
            min(graph.degree(v), f.cap) in f.allowed for v in graph.vertices()
        )
    if isinstance(f, sx.NonEmpty):
        return bool(_as_set(env[f.a]))
    if isinstance(f, sx.HasLabel):
        return any(_has_label(graph, item, f.label) for item in _as_set(env[f.a]))
    if isinstance(f, sx.AllHaveLabel):
        return all(_has_label(graph, item, f.label) for item in _as_set(env[f.a]))
    if isinstance(f, sx.EdgeCross):
        es = _as_set(env[f.e])
        xs = _as_set(env[f.x])
        ys = _as_set(env[f.y]) if f.y is not None else None
        return _cross_edge_exists(graph, es, xs, ys)
    if isinstance(f, sx.IncCounts):
        es = _as_set(env[f.e])
        scope = _as_set(env[f.within]) if f.within is not None else graph.vertices()
        for v in scope:
            count = sum(1 for u, w in es if v in (u, w))
            if min(count, f.cap) not in f.allowed:
                return False
        return True
    if isinstance(f, sx.IncParity):
        es = _as_set(env[f.e])
        scope = _as_set(env[f.within]) if f.within is not None else graph.vertices()
        want_parity = 0 if f.even else 1
        return all(
            sum(1 for u, w in es if v in (u, w)) % 2 == want_parity
            for v in scope
        )
    if isinstance(f, sx.AllEdgesIn):
        union: FrozenSet[Any] = frozenset()
        for b in f.bs:
            union |= _as_set(env[b])
        return all(e in union for e in graph.edges())
    if isinstance(f, sx.IsClique):
        xs = sorted(_as_set(env[f.x]))
        return all(
            graph.has_edge(u, v)
            for i, u in enumerate(xs)
            for v in xs[i + 1:]
        )
    if isinstance(f, sx.EndpointsIn):
        es = _as_set(env[f.e])
        xs = _as_set(env[f.x])
        return all(u in xs and v in xs for u, v in es)
    if isinstance(f, sx.Not):
        return not _eval(graph, f.inner, env)
    if isinstance(f, sx.And):
        return all(_eval(graph, p, env) for p in f.parts)
    if isinstance(f, sx.Or):
        return any(_eval(graph, p, env) for p in f.parts)
    if isinstance(f, sx.Exists):
        for value in _domain(graph, f.var.sort):
            env[f.var] = value
            if _eval(graph, f.body, env):
                del env[f.var]
                return True
        env.pop(f.var, None)
        return False
    if isinstance(f, sx.Forall):
        for value in _domain(graph, f.var.sort):
            env[f.var] = value
            if not _eval(graph, f.body, env):
                del env[f.var]
                return False
        env.pop(f.var, None)
        return True
    raise FormulaError(f"unknown formula node {f!r}")


def _pattern_graph(atom: "sx.ContainsPattern") -> Graph:
    g = Graph(range(atom.num_vertices))
    for i, j in atom.edges:
        g.add_edge(i, j)
    return g


def _has_label(graph: Graph, item: Any, label: str) -> bool:
    if isinstance(item, tuple):
        return graph.has_edge_label(item[0], item[1], label)
    return graph.has_vertex_label(item, label)


def satisfying_assignments(
    graph: Graph,
    formula: sx.Formula,
    variables: Iterable[sx.Var],
) -> Iterator[Assignment]:
    """Enumerate all assignments of ``variables`` satisfying ``formula``.

    Ground truth for the counting problems of Section 6 (count-φ).
    """
    var_list = list(variables)
    sx.validate(formula, allowed_free=var_list)

    def recurse(i: int, env: Assignment) -> Iterator[Assignment]:
        if i == len(var_list):
            if _eval(graph, formula, dict(env)):
                yield dict(env)
            return
        var = var_list[i]
        for value in _domain(graph, var.sort):
            env[var] = value
            yield from recurse(i + 1, env)
        env.pop(var, None)

    yield from recurse(0, {})


def count_satisfying_assignments(
    graph: Graph, formula: sx.Formula, variables: Iterable[sx.Var]
) -> int:
    return sum(1 for _ in satisfying_assignments(graph, formula, variables))


def optimize(
    graph: Graph,
    formula: sx.Formula,
    var: sx.Var,
    maximize: bool = True,
    weight: Optional[Dict[Any, int]] = None,
) -> Optional[tuple]:
    """Brute-force max/min-weight set S with graph ⊨ φ(S).

    Returns ``(weight, set)`` or ``None`` if no set satisfies φ.  Weights
    default to 1 per item (cardinality).  Ground truth for Theorem 6.1's
    optimization variant.
    """
    if not var.sort.is_set:
        raise FormulaError("optimization requires a set variable")
    sx.validate(formula, allowed_free=[var])
    best: Optional[tuple] = None
    for value in _domain(graph, var.sort):
        if not _eval(graph, formula, {var: value}):
            continue
        total = sum((weight or {}).get(item, 1) for item in value)
        if best is None or (maximize and total > best[0]) or (
            not maximize and total < best[0]
        ):
            best = (total, value)
    return best
