"""Abstract syntax for MSO₂ formulas on graphs.

The logic is the paper's: first-order vertex/edge variables, monadic
second-order vertex-set/edge-set variables, the binary predicates ``adj``
and ``inc``, equality, membership, and unary label predicates (Section 6,
"labeled graphs").

In addition to the textbook atoms we provide *extended atoms* — ``Cross``,
``EdgeCross``, ``Subset``, ``NonEmpty``, ``IncCounts``, ``EndpointsIn``,
label atoms — each of which is MSO-definable (their definitions are given in
the docstrings) but compiled directly to small automata.  Real Courcelle
engines (MONA, Sequoia) do the same: without these the automata for
catalog formulas like connectivity would pay several extra projection /
determinization rounds for no semantic gain.

All nodes are immutable and hashable; formulas are trees of dataclasses.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Optional, Tuple, Union

from ..errors import FormulaError


class Sort(enum.Enum):
    """Variable sorts.  Element sorts quantify over single vertices/edges;
    set sorts over subsets."""

    VERTEX = "vertex"
    EDGE = "edge"
    VERTEX_SET = "vertex_set"
    EDGE_SET = "edge_set"

    @property
    def is_set(self) -> bool:
        return self in (Sort.VERTEX_SET, Sort.EDGE_SET)

    @property
    def is_vertex_kind(self) -> bool:
        return self in (Sort.VERTEX, Sort.VERTEX_SET)

    @property
    def element_sort(self) -> "Sort":
        """The element sort underlying a set sort (identity on elements)."""
        if self == Sort.VERTEX_SET:
            return Sort.VERTEX
        if self == Sort.EDGE_SET:
            return Sort.EDGE
        return self


@dataclass(frozen=True, order=True)
class Var:
    """A typed variable."""

    name: str
    sort: Sort

    def __str__(self) -> str:
        return self.name


class Formula:
    """Base class for formula nodes (marker; nodes are dataclasses)."""

    def __and__(self, other: "Formula") -> "Formula":
        return And((self, other))

    def __or__(self, other: "Formula") -> "Formula":
        return Or((self, other))

    def __invert__(self) -> "Formula":
        return Not(self)


# ----------------------------------------------------------------------
# Atoms
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class Truth(Formula):
    """The constant true/false."""

    value: bool = True

    def __str__(self) -> str:
        return "true" if self.value else "false"


@dataclass(frozen=True)
class Adj(Formula):
    """adj(x, y): some graph edge joins x and y.

    Arguments may be vertex elements *or* vertex sets; on sets the meaning
    is "some edge has one endpoint in x and the other in y" (which agrees
    with textbook adj when both are singletons).
    """

    x: Var
    y: Var

    def __str__(self) -> str:
        return f"adj({self.x}, {self.y})"


@dataclass(frozen=True)
class Inc(Formula):
    """inc(x, e): vertex x is an endpoint of edge e.

    On sets: some edge in e has an endpoint in x.
    """

    x: Var
    e: Var

    def __str__(self) -> str:
        return f"inc({self.x}, {self.e})"


@dataclass(frozen=True)
class Eq(Formula):
    """x = y for two element variables of the same sort."""

    x: Var
    y: Var

    def __str__(self) -> str:
        return f"({self.x} = {self.y})"


@dataclass(frozen=True)
class In(Formula):
    """x ∈ S for an element variable and a matching set variable."""

    x: Var
    s: Var

    def __str__(self) -> str:
        return f"({self.x} ∈ {self.s})"


@dataclass(frozen=True)
class Subset(Formula):
    """Extended atom: A ⊆ B₁ ∪ … ∪ B_m (all same element kind).

    MSO definition: ∀x (x ∈ A → x ∈ B₁ ∨ … ∨ x ∈ B_m).
    """

    a: Var
    bs: Tuple[Var, ...]

    def __str__(self) -> str:
        union = " ∪ ".join(str(b) for b in self.bs)
        return f"({self.a} ⊆ {union})"


@dataclass(frozen=True)
class NonEmpty(Formula):
    """Extended atom: A ≠ ∅.  MSO definition: ∃x (x ∈ A)."""

    a: Var

    def __str__(self) -> str:
        return f"({self.a} ≠ ∅)"


@dataclass(frozen=True)
class HasLabel(Formula):
    """Extended atom: some element of A carries ``label``.

    For an element variable this is the paper's unary label predicate.
    MSO definition: ∃x (x ∈ A ∧ L(x)).
    """

    a: Var
    label: str

    def __str__(self) -> str:
        return f"{self.label}({self.a})"


@dataclass(frozen=True)
class AllHaveLabel(Formula):
    """Extended atom: every element of A carries ``label``.

    MSO definition: ∀x (x ∈ A → L(x)).
    """

    a: Var
    label: str

    def __str__(self) -> str:
        return f"(∀∈{self.a}: {self.label})"


@dataclass(frozen=True)
class EdgeCross(Formula):
    """Extended atom: some edge in edge-set E has one endpoint in X and the
    other in Y (Y omitted = unconstrained).

    MSO definition: ∃e∈E ∃x∈X ∃y∈Y (inc(x,e) ∧ inc(y,e) ∧ x ≠ y).
    """

    e: Var
    x: Var
    y: Optional[Var] = None

    def __str__(self) -> str:
        if self.y is None:
            return f"touches({self.e}, {self.x})"
        return f"crosses({self.e}, {self.x}, {self.y})"


@dataclass(frozen=True)
class SetsIntersect(Formula):
    """Extended atom: A ∩ B ≠ ∅ (same element kind).

    MSO definition: ∃x (x ∈ A ∧ x ∈ B).
    """

    a: Var
    b: Var

    def __str__(self) -> str:
        return f"({self.a} ∩ {self.b} ≠ ∅)"


@dataclass(frozen=True)
class AllVerticesIn(Formula):
    """Extended atom: every vertex of G lies in B₁ ∪ … ∪ B_m.

    MSO definition: ∀x (x ∈ B₁ ∨ … ∨ x ∈ B_m).  The workhorse of
    partition/cover formulas (connectivity, k-colorability).
    """

    bs: Tuple[Var, ...]

    def __str__(self) -> str:
        union = " ∪ ".join(str(b) for b in self.bs)
        return f"(V ⊆ {union})"


@dataclass(frozen=True)
class ContainsPattern(Formula):
    """Extended atom: G contains a fixed pattern graph H as a subgraph
    (induced if ``induced``).

    MSO (even FO) definition: φ_H of Corollary 7.3 — one existential
    vertex variable per pattern vertex, adjacency forced on pattern edges,
    pairwise distinctness, non-adjacency on non-edges when induced.  The
    direct automaton tracks partial embeddings instead of paying one
    subset-construction blowup per pattern vertex.
    """

    num_vertices: int
    edges: FrozenSet[Tuple[int, int]]  # canonical (i < j), over 0..n-1
    induced: bool = False

    def __str__(self) -> str:
        mode = "induced" if self.induced else "subgraph"
        return f"contains[{mode}](n={self.num_vertices}, m={len(self.edges)})"


@dataclass(frozen=True)
class GraphDegrees(Formula):
    """Extended atom: every vertex's degree in G, capped at ``cap``, lies in
    ``allowed`` ⊆ {0, …, cap}.

    FO definition: a bounded counting formula with cap+1 quantifiers.
    ``Not(GraphDegrees({0..k}, cap=k+1))`` is the paper's "some vertex has
    degree > k" predicate from Section 1.1.
    """

    allowed: FrozenSet[int]
    cap: int

    def __str__(self) -> str:
        return f"degG ∈ {sorted(self.allowed)} (cap {self.cap})"


# Capped incidence-count classes used by IncCounts.
COUNT_CLASSES = (0, 1, 2, 3)  # the default IncCounts classes; 3 = "3 or more"


@dataclass(frozen=True)
class IncCounts(Formula):
    """Extended atom: for every vertex v (in ``within`` if given), the
    number of E-edges incident to v, capped at ``cap``, lies in ``allowed``
    (class ``cap`` means "cap or more").

    Examples: allowed={0,1} — E is a matching; allowed={1} and within=None —
    E is a perfect matching; allowed={2} — E is 2-regular spanning;
    allowed={0,2,3} — no vertex has E-degree exactly 1 (cycle support);
    allowed={0,3}, cap=4 — E is a cubic subgraph's edge set.
    MSO-definable by counting distinct incident edges with ≤ cap quantifiers.
    """

    e: Var
    allowed: FrozenSet[int]
    within: Optional[Var] = None
    cap: int = 3

    def __str__(self) -> str:
        scope = f" on {self.within}" if self.within is not None else ""
        return f"degrees({self.e}{scope} ∈ {sorted(self.allowed)}, cap {self.cap})"


@dataclass(frozen=True)
class IncParity(Formula):
    """Extended atom: every vertex (in ``within`` if given) has an incident
    X_e-edge count of the given parity (``even=True`` — the Eulerian /
    cycle-space condition).

    MSO-definable: parity of a bounded-degeneracy incidence count is a
    finite-state condition; in general MSO₂ it is expressible via the
    standard even/odd set-partition trick on the incident edge set.
    """

    e: Var
    even: bool = True
    within: Optional[Var] = None

    def __str__(self) -> str:
        scope = f" on {self.within}" if self.within is not None else ""
        return f"parity({self.e}{scope} = {'even' if self.even else 'odd'})"


@dataclass(frozen=True)
class AllEdgesIn(Formula):
    """Extended atom: every edge of G lies in B₁ ∪ … ∪ B_m (edge sets).

    MSO definition: ∀e (e ∈ B₁ ∨ … ∨ e ∈ B_m).  The cover condition of
    edge-coloring formulas.
    """

    bs: Tuple[Var, ...]

    def __str__(self) -> str:
        union = " ∪ ".join(str(b) for b in self.bs)
        return f"(E ⊆ {union})"


@dataclass(frozen=True)
class IsClique(Formula):
    """Extended atom: the vertex set X induces a clique.

    MSO definition: ∀x,y ∈ X (x ≠ y → adj(x, y)).  On elimination forests
    a clique always lies on one root path, which the direct automaton
    exploits instead of paying two projections.
    """

    x: Var

    def __str__(self) -> str:
        return f"clique({self.x})"


@dataclass(frozen=True)
class EndpointsIn(Formula):
    """Extended atom: every edge of E has both endpoints in X.

    MSO definition: ∀e∈E ∀x (inc(x,e) → x ∈ X).
    """

    e: Var
    x: Var

    def __str__(self) -> str:
        return f"(endpoints({self.e}) ⊆ {self.x})"


# ----------------------------------------------------------------------
# Connectives and quantifiers
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class Not(Formula):
    inner: Formula

    def __str__(self) -> str:
        return f"¬{self.inner}"


@dataclass(frozen=True)
class And(Formula):
    parts: Tuple[Formula, ...]

    def __str__(self) -> str:
        return "(" + " ∧ ".join(str(p) for p in self.parts) + ")"


@dataclass(frozen=True)
class Or(Formula):
    parts: Tuple[Formula, ...]

    def __str__(self) -> str:
        return "(" + " ∨ ".join(str(p) for p in self.parts) + ")"


@dataclass(frozen=True)
class Exists(Formula):
    var: Var
    body: Formula

    def __str__(self) -> str:
        return f"∃{self.var}:{self.var.sort.value} {self.body}"


@dataclass(frozen=True)
class Forall(Formula):
    var: Var
    body: Formula

    def __str__(self) -> str:
        return f"∀{self.var}:{self.var.sort.value} {self.body}"


# ----------------------------------------------------------------------
# Convenience constructors
# ----------------------------------------------------------------------

def vertex(name: str) -> Var:
    return Var(name, Sort.VERTEX)


def edge(name: str) -> Var:
    return Var(name, Sort.EDGE)


def vertex_set(name: str) -> Var:
    return Var(name, Sort.VERTEX_SET)


def edge_set(name: str) -> Var:
    return Var(name, Sort.EDGE_SET)


def and_(*parts: Formula) -> Formula:
    flat = []
    for p in parts:
        flat.extend(p.parts if isinstance(p, And) else [p])
    if not flat:
        return Truth(True)
    if len(flat) == 1:
        return flat[0]
    return And(tuple(flat))


def or_(*parts: Formula) -> Formula:
    flat = []
    for p in parts:
        flat.extend(p.parts if isinstance(p, Or) else [p])
    if not flat:
        return Truth(False)
    if len(flat) == 1:
        return flat[0]
    return Or(tuple(flat))


def implies(a: Formula, b: Formula) -> Formula:
    return or_(Not(a), b)


def iff(a: Formula, b: Formula) -> Formula:
    return and_(implies(a, b), implies(b, a))


def exists(variables: Union[Var, Iterable[Var]], body: Formula) -> Formula:
    if isinstance(variables, Var):
        variables = [variables]
    out = body
    for v in reversed(list(variables)):
        out = Exists(v, out)
    return out


def forall(variables: Union[Var, Iterable[Var]], body: Formula) -> Formula:
    if isinstance(variables, Var):
        variables = [variables]
    out = body
    for v in reversed(list(variables)):
        out = Forall(v, out)
    return out


def distinct(*variables: Var) -> Formula:
    """Pairwise inequality of element variables."""
    vs = list(variables)
    return and_(
        *(Not(Eq(vs[i], vs[j])) for i in range(len(vs)) for j in range(i + 1, len(vs)))
    )


def disjoint(a: Var, b: Var) -> Formula:
    """A ∩ B = ∅."""
    return Not(SetsIntersect(a, b))


def pattern_atom(pattern, induced: bool = False) -> ContainsPattern:
    """Build a :class:`ContainsPattern` atom from a :class:`~repro.graph.Graph`."""
    vertices = pattern.vertices()
    index = {v: i for i, v in enumerate(vertices)}
    edges = frozenset(
        (min(index[u], index[v]), max(index[u], index[v]))
        for u, v in pattern.edges()
    )
    return ContainsPattern(
        num_vertices=len(vertices), edges=edges, induced=induced
    )


# ----------------------------------------------------------------------
# Static analysis
# ----------------------------------------------------------------------

def free_variables(formula: Formula) -> FrozenSet[Var]:
    """The free variables of ``formula``."""
    if isinstance(formula, Truth):
        return frozenset()
    if isinstance(formula, (Adj, Inc, Eq, In, EdgeCross, EndpointsIn)):
        args = [getattr(formula, f.name) for f in formula.__dataclass_fields__.values()]
        return frozenset(a for a in args if isinstance(a, Var))
    if isinstance(formula, Subset):
        return frozenset((formula.a,) + formula.bs)
    if isinstance(formula, SetsIntersect):
        return frozenset({formula.a, formula.b})
    if isinstance(formula, AllVerticesIn):
        return frozenset(formula.bs)
    if isinstance(formula, (ContainsPattern, GraphDegrees)):
        return frozenset()
    if isinstance(formula, (NonEmpty, HasLabel, AllHaveLabel)):
        return frozenset({formula.a})
    if isinstance(formula, (IncCounts, IncParity)):
        out = {formula.e}
        if formula.within is not None:
            out.add(formula.within)
        return frozenset(out)
    if isinstance(formula, AllEdgesIn):
        return frozenset(formula.bs)
    if isinstance(formula, IsClique):
        return frozenset({formula.x})
    if isinstance(formula, Not):
        return free_variables(formula.inner)
    if isinstance(formula, (And, Or)):
        out: FrozenSet[Var] = frozenset()
        for p in formula.parts:
            out |= free_variables(p)
        return out
    if isinstance(formula, (Exists, Forall)):
        return free_variables(formula.body) - {formula.var}
    raise FormulaError(f"unknown formula node {formula!r}")


def quantifier_depth(formula: Formula) -> int:
    """Maximum quantifier nesting (both sorts counted)."""
    if isinstance(formula, Not):
        return quantifier_depth(formula.inner)
    if isinstance(formula, (And, Or)):
        return max((quantifier_depth(p) for p in formula.parts), default=0)
    if isinstance(formula, (Exists, Forall)):
        return 1 + quantifier_depth(formula.body)
    return 0


def validate(formula: Formula, allowed_free: Iterable[Var] = ()) -> None:
    """Sort-check ``formula`` and verify all free variables are declared.

    Raises :class:`FormulaError` on: sort mismatches (e.g. adj on edges,
    membership into an element variable), unbound variables not listed in
    ``allowed_free``, and rebinding a variable already in scope.
    """
    allowed = set(allowed_free)

    def want(var: Var, *sorts: Sort, role: str) -> None:
        if var.sort not in sorts:
            raise FormulaError(
                f"{role} expects sort in {[s.value for s in sorts]}, "
                f"got {var.name}:{var.sort.value}"
            )

    def walk(f: Formula, scope: Dict[str, Var]) -> None:
        if isinstance(f, Truth):
            return
        if isinstance(f, (Exists, Forall)):
            if f.var.name in scope:
                raise FormulaError(f"variable {f.var.name!r} rebound in nested scope")
            scope = dict(scope)
            scope[f.var.name] = f.var
            walk(f.body, scope)
            return
        if isinstance(f, Not):
            walk(f.inner, scope)
            return
        if isinstance(f, (And, Or)):
            for p in f.parts:
                walk(p, scope)
            return
        # Atom: every variable must be bound or declared free, with the
        # exact same sort.
        for var in sorted(free_variables(f)):
            bound = scope.get(var.name)
            if bound is not None:
                if bound != var:
                    raise FormulaError(
                        f"variable {var.name!r} used with sort {var.sort.value} "
                        f"but bound with sort {bound.sort.value}"
                    )
            elif var not in allowed:
                raise FormulaError(f"unbound variable {var.name!r}")
        if isinstance(f, Adj):
            want(f.x, Sort.VERTEX, Sort.VERTEX_SET, role="adj")
            want(f.y, Sort.VERTEX, Sort.VERTEX_SET, role="adj")
        elif isinstance(f, Inc):
            want(f.x, Sort.VERTEX, Sort.VERTEX_SET, role="inc vertex side")
            want(f.e, Sort.EDGE, Sort.EDGE_SET, role="inc edge side")
        elif isinstance(f, Eq):
            if f.x.sort != f.y.sort or f.x.sort.is_set:
                raise FormulaError("= requires two element variables of one sort")
        elif isinstance(f, In):
            if not f.s.sort.is_set or f.s.sort.element_sort != f.x.sort:
                raise FormulaError(f"∈ sort mismatch: {f.x} ∈ {f.s}")
        elif isinstance(f, Subset):
            kinds = {f.a.sort.is_vertex_kind} | {b.sort.is_vertex_kind for b in f.bs}
            if len(kinds) != 1 or not f.bs:
                raise FormulaError("⊆ requires same-kind variables (>= 1 superset)")
        elif isinstance(f, EdgeCross):
            want(f.e, Sort.EDGE, Sort.EDGE_SET, role="crosses edge side")
            want(f.x, Sort.VERTEX, Sort.VERTEX_SET, role="crosses")
            if f.y is not None:
                want(f.y, Sort.VERTEX, Sort.VERTEX_SET, role="crosses")
        elif isinstance(f, IncCounts):
            want(f.e, Sort.EDGE_SET, role="degrees edge side")
            if f.cap < 1 or not f.allowed or not f.allowed.issubset(
                set(range(f.cap + 1))
            ):
                raise FormulaError(
                    "degrees: allowed must be a nonempty subset of 0..cap"
                )
            if f.within is not None:
                want(f.within, Sort.VERTEX_SET, role="degrees scope")
        elif isinstance(f, IncParity):
            want(f.e, Sort.EDGE_SET, role="parity edge side")
            if f.within is not None:
                want(f.within, Sort.VERTEX_SET, role="parity scope")
        elif isinstance(f, AllEdgesIn):
            if not f.bs:
                raise FormulaError("edge cover requires at least one set")
            for b in f.bs:
                want(b, Sort.EDGE, Sort.EDGE_SET, role="edge cover")
        elif isinstance(f, IsClique):
            want(f.x, Sort.VERTEX, Sort.VERTEX_SET, role="clique")
        elif isinstance(f, EndpointsIn):
            want(f.e, Sort.EDGE, Sort.EDGE_SET, role="endpoints edge side")
            want(f.x, Sort.VERTEX, Sort.VERTEX_SET, role="endpoints")
        elif isinstance(f, SetsIntersect):
            if f.a.sort.element_sort != f.b.sort.element_sort:
                raise FormulaError("∩ requires same-kind variables")
        elif isinstance(f, AllVerticesIn):
            if not f.bs:
                raise FormulaError("cover requires at least one set")
            for b in f.bs:
                want(b, Sort.VERTEX, Sort.VERTEX_SET, role="cover")
        elif isinstance(f, ContainsPattern):
            if f.num_vertices < 1:
                raise FormulaError("pattern needs at least one vertex")
            for i, j in f.edges:
                if not (0 <= i < j < f.num_vertices):
                    raise FormulaError(f"bad pattern edge ({i}, {j})")
        elif isinstance(f, GraphDegrees):
            if f.cap < 1 or not f.allowed or not f.allowed.issubset(
                set(range(f.cap + 1))
            ):
                raise FormulaError("degG: allowed must be a nonempty subset of 0..cap")
        elif isinstance(f, (NonEmpty, HasLabel, AllHaveLabel)):
            pass
        else:
            raise FormulaError(f"unknown formula node {f!r}")

    walk(formula, {})
