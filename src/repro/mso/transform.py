"""Formula transformations: simplification and negation normal form.

The compiler benefits from smaller formula trees (every node costs an
automaton layer), so ``simplify`` performs the safe, semantics-preserving
rewrites:

* constant folding through ¬ / ∧ / ∨ / quantifiers,
* double-negation elimination,
* flattening of nested ∧ / ∨ and deduplication of repeated conjuncts,
* absorption of neutral elements.

``to_nnf`` pushes negations down to atoms (quantifier duals, De Morgan) —
useful for inspection and for measuring formula complexity, though the
compiler handles negation natively via complement automata.
"""

from __future__ import annotations

from typing import List

from . import syntax as sx
from .syntax import And, Exists, Forall, Formula, Not, Or, Truth


def simplify(formula: Formula) -> Formula:
    """Bottom-up constant folding and flattening; preserves semantics."""
    if isinstance(formula, Not):
        inner = simplify(formula.inner)
        if isinstance(inner, Truth):
            return Truth(not inner.value)
        if isinstance(inner, Not):
            return inner.inner
        return Not(inner)
    if isinstance(formula, (And, Or)):
        conjunctive = isinstance(formula, And)
        neutral = Truth(conjunctive)
        absorbing = Truth(not conjunctive)
        flat: List[Formula] = []
        for part in formula.parts:
            part = simplify(part)
            if part == absorbing:
                return absorbing
            if part == neutral:
                continue
            if isinstance(part, And if conjunctive else Or):
                flat.extend(part.parts)
            else:
                flat.append(part)
        deduped: List[Formula] = []
        for part in flat:
            if part not in deduped:
                deduped.append(part)
        if not deduped:
            return neutral
        if len(deduped) == 1:
            return deduped[0]
        return (And if conjunctive else Or)(tuple(deduped))
    if isinstance(formula, (Exists, Forall)):
        body = simplify(formula.body)
        if isinstance(body, Truth) and not _domain_can_be_empty(formula.var):
            # Set domains are never empty (the empty set always exists);
            # element domains can be (no edges / no vertices... vertices
            # always exist in our graphs, edges may not), so only set
            # quantifiers over constant bodies fold safely.
            return body
        cls = Exists if isinstance(formula, Exists) else Forall
        return cls(formula.var, body)
    return formula


def _domain_can_be_empty(var: sx.Var) -> bool:
    # Edge / vertex element domains may be empty (edgeless graphs; the
    # empty graph); set domains always contain at least the empty set.
    return not var.sort.is_set


def to_nnf(formula: Formula) -> Formula:
    """Negation normal form: ¬ only over atoms (via quantifier duals and
    De Morgan).  Extended atoms count as atoms."""
    return _nnf(formula, negate=False)


def _nnf(f: Formula, negate: bool) -> Formula:
    if isinstance(f, Truth):
        return Truth(f.value != negate)
    if isinstance(f, Not):
        return _nnf(f.inner, not negate)
    if isinstance(f, And):
        parts = tuple(_nnf(p, negate) for p in f.parts)
        return Or(parts) if negate else And(parts)
    if isinstance(f, Or):
        parts = tuple(_nnf(p, negate) for p in f.parts)
        return And(parts) if negate else Or(parts)
    if isinstance(f, Exists):
        body = _nnf(f.body, negate)
        return Forall(f.var, body) if negate else Exists(f.var, body)
    if isinstance(f, Forall):
        body = _nnf(f.body, negate)
        return Exists(f.var, body) if negate else Forall(f.var, body)
    # Atom.
    return Not(f) if negate else f


def formula_size(formula: Formula) -> int:
    """Number of AST nodes (a crude complexity measure for benchmarks)."""
    if isinstance(formula, Not):
        return 1 + formula_size(formula.inner)
    if isinstance(formula, (And, Or)):
        return 1 + sum(formula_size(p) for p in formula.parts)
    if isinstance(formula, (Exists, Forall)):
        return 1 + formula_size(formula.body)
    return 1
