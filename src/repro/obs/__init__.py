"""repro.obs — instrumentation for the CONGEST stack.

Structured tracing (typed events + hierarchical phase spans), per-phase /
per-node / per-edge metrics, wall-clock profiling of the sequential hot
paths, and exporters (JSON lines, summary tables, Chrome trace format).
Plus the process-wide :class:`MetricsRegistry` (counters / gauges /
histograms with Prometheus and JSON export) and :class:`RunReport`
artifacts persisted to the local run store (``repro report`` CLI).
See ``docs/observability.md`` for the model and ``python -m repro trace``
for the CLI entry point.
"""

from .events import (
    FAULT_EVENT_KINDS,
    BudgetJittered,
    DeliverEvent,
    FaultEvent,
    MessageDelayed,
    MessageDropped,
    MessageDuplicated,
    NodeCrashed,
    NodeHalt,
    NodeRestarted,
    PayloadTruncated,
    PhaseEnter,
    PhaseExit,
    RoundStart,
    SendEvent,
    TraceEvent,
    event_from_dict,
)
from .export import (
    chrome_trace_dict,
    phase_table_rows,
    read_events,
    render_phase_table,
    write_chrome_trace,
    write_jsonl,
)
from .profile import current_tracer, install_tracer, profiled, use_tracer
from .registry import (
    MetricsRegistry,
    RunCollector,
    collect_run,
    note_simulation,
    registry,
    set_registry,
)
from .reports import (
    RunReport,
    RunStore,
    build_report,
    diff_reports,
    render_html,
    render_markdown,
)
from .tracer import (
    NULL_SPAN,
    EdgeStats,
    NodeStats,
    PhaseStats,
    ProfileStat,
    Tracer,
)


def maybe_phase(tracer, name: str):
    """A harness-level phase span on ``tracer``, or a no-op when None."""
    if tracer is None:
        return NULL_SPAN
    return tracer.phase(name)


__all__ = [
    "BudgetJittered", "DeliverEvent", "EdgeStats", "FAULT_EVENT_KINDS",
    "FaultEvent", "MessageDelayed", "MessageDropped", "MessageDuplicated",
    "MetricsRegistry", "NULL_SPAN", "NodeCrashed", "NodeHalt",
    "NodeRestarted", "NodeStats", "PayloadTruncated", "PhaseEnter",
    "PhaseExit", "PhaseStats", "ProfileStat", "RoundStart", "RunCollector",
    "RunReport", "RunStore", "SendEvent", "TraceEvent", "Tracer",
    "build_report", "chrome_trace_dict", "collect_run", "current_tracer",
    "diff_reports", "event_from_dict", "install_tracer", "maybe_phase",
    "note_simulation", "phase_table_rows", "profiled", "read_events",
    "registry", "render_html", "render_markdown", "render_phase_table",
    "set_registry", "use_tracer", "write_chrome_trace", "write_jsonl",
]
