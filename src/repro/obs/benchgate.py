"""The benchmark regression gate behind ``repro bench check``.

Compares fresh ``BENCH_*.json`` results (as written by
``benchmarks/bench_engine.py``) against committed baselines under
``benchmarks/baselines/``, with per-metric rules:

* **correctness** — every experiment's ``checks`` (verdicts and round
  counts) must match the baseline exactly *when the grids match*; a
  changed answer or round count is a correctness-adjacent regression, not
  a perf wobble.  Grid mismatches (e.g. a smoke fresh run against a full
  baseline) skip the checks comparison with a note.
* **speedup** — the fresh speedup must stay within a relative tolerance
  of the baseline (default: may drop to 50% of baseline), *unless* it is
  still above an absolute floor (default 1.0x: batched no slower than
  naive), which absorbs timing noise on shared CI machines.
* **wall-clock** — ``naive_seconds`` / ``batched_seconds`` are compared
  only when a time tolerance is given explicitly; raw seconds are too
  machine-dependent to gate by default.

Baselines are matched by their ``(benchmark, mode)`` keys, so a smoke
fresh result gates against the committed smoke baseline and a full run
against the full one.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

__all__ = ["BenchBreach", "BenchCheck", "check_bench", "compare_bench",
           "load_baselines"]

DEFAULT_BASELINE_DIR = os.path.join("benchmarks", "baselines")
DEFAULT_SPEEDUP_TOLERANCE = 0.5
DEFAULT_SPEEDUP_FLOOR = 1.0


@dataclass(frozen=True)
class BenchBreach:
    """One failed comparison: which experiment, which metric, and why."""

    benchmark: str
    experiment: str
    metric: str
    fresh: Any
    baseline: Any
    reason: str

    def format(self) -> str:
        return (
            f"{self.benchmark}/{self.experiment} {self.metric}: "
            f"fresh={self.fresh!r} baseline={self.baseline!r} — {self.reason}"
        )


@dataclass(frozen=True)
class BenchCheck:
    """The outcome of one gate run: log lines plus any breaches."""

    lines: Tuple[str, ...]
    breaches: Tuple[BenchBreach, ...]

    @property
    def ok(self) -> bool:
        return not self.breaches

    def render(self) -> str:
        out = list(self.lines)
        if self.breaches:
            out.append("")
            out.append(f"FAIL: {len(self.breaches)} regression(s)")
            out.extend("  " + b.format() for b in self.breaches)
        else:
            out.append("")
            out.append("bench check: ok")
        return "\n".join(out)


def _bench_key(data: Dict[str, Any]) -> Tuple[str, str]:
    return (str(data.get("benchmark", "?")), str(data.get("mode", "full")))


def load_baselines(directory: Union[str, os.PathLike]) -> Dict[Tuple[str, str], Dict[str, Any]]:
    """Every ``*.json`` baseline in ``directory``, keyed by (benchmark, mode)."""
    baselines: Dict[Tuple[str, str], Dict[str, Any]] = {}
    base = Path(directory)
    if not base.is_dir():
        return baselines
    for path in sorted(base.glob("*.json")):
        try:
            with open(path, encoding="utf-8") as handle:
                data = json.load(handle)
        except (OSError, json.JSONDecodeError):
            continue
        if isinstance(data, dict) and "experiments" in data:
            baselines[_bench_key(data)] = data
    return baselines


def compare_bench(
    fresh: Dict[str, Any],
    baseline: Dict[str, Any],
    *,
    speedup_tolerance: float = DEFAULT_SPEEDUP_TOLERANCE,
    speedup_floor: float = DEFAULT_SPEEDUP_FLOOR,
    time_tolerance: Optional[float] = None,
) -> BenchCheck:
    """Compare one fresh bench result dict against its baseline."""
    name, mode = _bench_key(fresh)
    lines = [f"bench {name} (mode {mode}):"]
    breaches: List[BenchBreach] = []
    fresh_exps = fresh.get("experiments", {})
    base_exps = baseline.get("experiments", {})

    for exp in sorted(set(fresh_exps) | set(base_exps)):
        if exp not in fresh_exps:
            lines.append(f"  {exp}: missing from fresh run")
            breaches.append(BenchBreach(
                name, exp, "presence", None, "present",
                "experiment missing from fresh results",
            ))
            continue
        if exp not in base_exps:
            lines.append(f"  {exp}: no baseline (skipped)")
            continue
        f, b = fresh_exps[exp], base_exps[exp]

        same_grid = f.get("grid") == b.get("grid")
        if same_grid:
            if f.get("checks") != b.get("checks"):
                breaches.append(BenchBreach(
                    name, exp, "checks", f.get("checks"), b.get("checks"),
                    "verdicts/rounds changed — correctness regression",
                ))
                lines.append(f"  {exp}: checks DIFFER")
            else:
                lines.append(f"  {exp}: checks match "
                             f"({len(b.get('checks', []))} points)")
        else:
            lines.append(f"  {exp}: grid differs from baseline; "
                         "correctness checks skipped")

        for metric in ("speedup", "vectorized_speedup", "minimized_speedup"):
            fs, bs = f.get(metric), b.get(metric)
            if not isinstance(fs, (int, float)) \
                    or not isinstance(bs, (int, float)):
                continue
            limit = bs * (1 - speedup_tolerance)
            if fs < limit and fs < speedup_floor:
                breaches.append(BenchBreach(
                    name, exp, metric, fs, bs,
                    f"below {limit:.2f}x (={100 * (1 - speedup_tolerance):g}% "
                    f"of baseline) and below the {speedup_floor:g}x floor",
                ))
                lines.append(f"  {exp}: {metric} {fs}x vs baseline {bs}x SLOW")
            else:
                lines.append(f"  {exp}: {metric} {fs}x vs baseline {bs}x ok")

        fs, bs = f.get("state_reduction"), b.get("state_reduction")
        if isinstance(fs, (int, float)) and isinstance(bs, (int, float)):
            # State reduction is deterministic for a fixed kernel —
            # any drop means the minimizer lost ground, not noise.
            if fs < bs:
                breaches.append(BenchBreach(
                    name, exp, "state_reduction", fs, bs,
                    "reachable-state reduction regressed",
                ))
                lines.append(f"  {exp}: state_reduction {fs} vs "
                             f"baseline {bs} REGRESSED")
            else:
                lines.append(f"  {exp}: state_reduction {fs} vs "
                             f"baseline {bs} ok")

        if time_tolerance is not None:
            for metric in ("naive_seconds", "batched_seconds",
                           "vectorized_seconds", "minimized_seconds"):
                fv, bv = f.get(metric), b.get(metric)
                if not isinstance(fv, (int, float)) \
                        or not isinstance(bv, (int, float)):
                    continue
                limit = bv * (1 + time_tolerance)
                if fv > limit:
                    breaches.append(BenchBreach(
                        name, exp, metric, fv, bv,
                        f"exceeds baseline by more than "
                        f"{time_tolerance * 100:g}%",
                    ))
                    lines.append(f"  {exp}: {metric} {fv}s > {limit:.4f}s SLOW")
    return BenchCheck(lines=tuple(lines), breaches=tuple(breaches))


def check_bench(
    fresh_paths: Sequence[Union[str, os.PathLike]],
    baseline_dir: Union[str, os.PathLike] = DEFAULT_BASELINE_DIR,
    *,
    speedup_tolerance: float = DEFAULT_SPEEDUP_TOLERANCE,
    speedup_floor: float = DEFAULT_SPEEDUP_FLOOR,
    time_tolerance: Optional[float] = None,
) -> BenchCheck:
    """Gate every fresh result file against the committed baselines.

    A fresh file whose ``(benchmark, mode)`` has no baseline is itself a
    breach — an ungated benchmark silently rots.
    """
    baselines = load_baselines(baseline_dir)
    lines: List[str] = []
    breaches: List[BenchBreach] = []
    if not fresh_paths:
        return BenchCheck(
            lines=("bench check: no fresh result files given",),
            breaches=(BenchBreach("?", "?", "inputs", None, None,
                                  "no fresh result files found"),),
        )
    for path in fresh_paths:
        try:
            with open(path, encoding="utf-8") as handle:
                fresh = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            breaches.append(BenchBreach(
                str(path), "?", "load", None, None, f"unreadable: {exc}"
            ))
            continue
        key = _bench_key(fresh)
        baseline = baselines.get(key)
        if baseline is None:
            available = ", ".join(
                f"{n}/{m}" for n, m in sorted(baselines)
            ) or "none"
            breaches.append(BenchBreach(
                key[0], "?", "baseline", f"mode={key[1]}", available,
                f"no committed baseline for (benchmark={key[0]!r}, "
                f"mode={key[1]!r}) under {baseline_dir}",
            ))
            lines.append(f"bench {key[0]} (mode {key[1]}): NO BASELINE")
            continue
        result = compare_bench(
            fresh, baseline,
            speedup_tolerance=speedup_tolerance,
            speedup_floor=speedup_floor,
            time_tolerance=time_tolerance,
        )
        lines.extend(result.lines)
        breaches.extend(result.breaches)
    return BenchCheck(lines=tuple(lines), breaches=tuple(breaches))
