"""Typed trace events emitted by the :class:`repro.obs.Tracer`.

Every event is an immutable dataclass with a ``kind`` discriminator and a
``round`` stamp (the tracer's *global* round counter, monotone across the
several Simulations of one pipeline).  Events serialize to plain JSON
dictionaries and parse back losslessly via :func:`event_from_dict`, which
is what the JSON-lines exporter round-trips.

Vertices are stored as-is when they are JSON-native (int/str/bool/None)
and as ``repr`` strings otherwise; message payloads and node outputs are
always stored as ``repr`` strings — the trace is an observability artifact,
not a transport format.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, ClassVar, Dict, Optional, Type


def _jsonable(value: Any) -> Any:
    """Vertices may be any hashable; keep JSON-native ones, repr the rest."""
    if value is None or isinstance(value, (bool, int, str)):
        return value
    return repr(value)


@dataclass(frozen=True)
class TraceEvent:
    """Base class: every event happens in some (global) round."""

    kind: ClassVar[str] = "event"
    round: int

    def to_dict(self) -> Dict[str, Any]:
        data = {"kind": self.kind}
        for f in fields(self):
            data[f.name] = _jsonable(getattr(self, f.name))
        return data


@dataclass(frozen=True)
class RoundStart(TraceEvent):
    """A new synchronous round begins (``phase`` = dominant open phase)."""

    kind: ClassVar[str] = "round-start"
    phase: str


@dataclass(frozen=True)
class SendEvent(TraceEvent):
    """A message queued by ``sender`` for ``receiver`` (delivered next round)."""

    kind: ClassVar[str] = "send"
    sender: Any
    receiver: Any
    bits: int
    phase: str
    payload: str = ""


@dataclass(frozen=True)
class DeliverEvent(TraceEvent):
    """A message handed to ``receiver``'s inbox at the start of ``round``."""

    kind: ClassVar[str] = "deliver"
    sender: Any
    receiver: Any
    bits: int


@dataclass(frozen=True)
class NodeHalt(TraceEvent):
    """A node's program returned; ``output`` is the repr of its result."""

    kind: ClassVar[str] = "node-halt"
    node: Any
    output: str = ""


@dataclass(frozen=True)
class PhaseEnter(TraceEvent):
    """A phase span opened (first participant entered it)."""

    kind: ClassVar[str] = "phase-enter"
    phase: str
    node: Optional[Any] = None


@dataclass(frozen=True)
class PhaseExit(TraceEvent):
    """A phase span closed (last participant left it)."""

    kind: ClassVar[str] = "phase-exit"
    phase: str
    node: Optional[Any] = None


@dataclass(frozen=True)
class FaultEvent(TraceEvent):
    """Base class for injected-fault events (see :mod:`repro.faults`)."""

    kind: ClassVar[str] = "fault"


@dataclass(frozen=True)
class MessageDropped(FaultEvent):
    """A queued message was destroyed before delivery.

    ``reason`` distinguishes random loss (``"drop"``) from messages lost
    because their receiver had crashed (``"receiver-crashed"``).
    """

    kind: ClassVar[str] = "fault-drop"
    sender: Any
    receiver: Any
    bits: int
    reason: str = "drop"


@dataclass(frozen=True)
class MessageDuplicated(FaultEvent):
    """A message will be delivered again at ``deliver_round``."""

    kind: ClassVar[str] = "fault-duplicate"
    sender: Any
    receiver: Any
    deliver_round: int


@dataclass(frozen=True)
class MessageDelayed(FaultEvent):
    """Delivery postponed by ``delay`` extra rounds."""

    kind: ClassVar[str] = "fault-delay"
    sender: Any
    receiver: Any
    delay: int


@dataclass(frozen=True)
class PayloadTruncated(FaultEvent):
    """The payload was corrupted by dropping its tail to ``bits``."""

    kind: ClassVar[str] = "fault-truncate"
    sender: Any
    receiver: Any
    original_bits: int
    bits: int


@dataclass(frozen=True)
class NodeCrashed(FaultEvent):
    """A node's program was killed at the start of ``round``."""

    kind: ClassVar[str] = "fault-crash"
    node: Any


@dataclass(frozen=True)
class NodeRestarted(FaultEvent):
    """A crashed node rebooted with a fresh program (state lost)."""

    kind: ClassVar[str] = "fault-restart"
    node: Any


@dataclass(frozen=True)
class BudgetJittered(FaultEvent):
    """This round's effective per-edge budget differs from the base."""

    kind: ClassVar[str] = "fault-budget"
    budget: int
    base: int


FAULT_EVENT_KINDS = (
    MessageDropped.kind,
    MessageDuplicated.kind,
    MessageDelayed.kind,
    PayloadTruncated.kind,
    NodeCrashed.kind,
    NodeRestarted.kind,
    BudgetJittered.kind,
)


_EVENT_TYPES: Dict[str, Type[TraceEvent]] = {
    cls.kind: cls
    for cls in (
        RoundStart, SendEvent, DeliverEvent, NodeHalt, PhaseEnter, PhaseExit,
        MessageDropped, MessageDuplicated, MessageDelayed, PayloadTruncated,
        NodeCrashed, NodeRestarted, BudgetJittered,
    )
}


def event_from_dict(data: Dict[str, Any]) -> TraceEvent:
    """Inverse of :meth:`TraceEvent.to_dict` (raises ``KeyError`` on unknown kind)."""
    cls = _EVENT_TYPES[data["kind"]]
    kwargs = {f.name: data[f.name] for f in fields(cls) if f.name in data}
    return cls(**kwargs)
