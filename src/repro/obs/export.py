"""Exporters: JSON-lines traces, per-phase tables, Chrome trace format.

Three consumers, three formats:

* :func:`write_jsonl` / :func:`read_events` — the lossless event log (one
  JSON object per line, a header line first); round-trips through
  :func:`repro.obs.events.event_from_dict`.
* :func:`render_phase_table` — the human-readable per-phase summary the
  CLI prints (rounds, messages, bits, max message bits per phase path),
  followed by wall-clock timings of profiled sequential sections.
* :func:`chrome_trace_dict` / :func:`write_chrome_trace` — a
  ``chrome://tracing`` / Perfetto-loadable JSON file: phase spans as B/E
  duration events on a synthetic timeline (1 round = 1 ms), sends as
  instant events on per-node tracks, profiled sections as complete events
  with real durations.
"""

from __future__ import annotations

import json
from typing import IO, Any, Dict, Iterable, List, Union

from .events import (
    FaultEvent,
    PhaseEnter,
    PhaseExit,
    RoundStart,
    SendEvent,
    TraceEvent,
    event_from_dict,
)
from .tracer import Tracer

_HEADER_KIND = "trace-header"
_ROUND_US = 1000  # one synchronous round = 1ms on the Chrome timeline


# ----------------------------------------------------------------------
# JSON lines
# ----------------------------------------------------------------------

def write_jsonl(tracer: Tracer, sink: IO[str]) -> int:
    """Dump the tracer's event log as JSON lines; returns the event count."""
    tracer.finish()
    header = {
        "kind": _HEADER_KIND,
        "version": 1,
        "rounds": tracer.round,
        "events": len(tracer.events),
        "truncated": tracer.truncated,
        "phases": list(tracer.phase_stats),
    }
    sink.write(json.dumps(header, sort_keys=True) + "\n")
    for event in tracer.events:
        sink.write(json.dumps(event.to_dict(), sort_keys=True) + "\n")
    return len(tracer.events)


def read_events(source: Union[str, IO[str]]) -> List[TraceEvent]:
    """Parse a JSON-lines trace back into typed events (header skipped)."""
    if isinstance(source, str):
        lines: Iterable[str] = source.splitlines()
    else:
        lines = source
    events: List[TraceEvent] = []
    for line in lines:
        line = line.strip()
        if not line:
            continue
        data = json.loads(line)
        if data.get("kind") == _HEADER_KIND:
            continue
        events.append(event_from_dict(data))
    return events


# ----------------------------------------------------------------------
# Per-phase summary table
# ----------------------------------------------------------------------

def phase_table_rows(tracer: Tracer) -> List[List[str]]:
    """Rows (phase, rounds, messages, bits, max bits, spans) as strings."""
    rows = []
    for path, stats in tracer.phase_rows():
        rows.append([
            path,
            str(stats.rounds),
            str(stats.messages),
            str(stats.bits),
            str(stats.max_message_bits),
            str(stats.entries),
        ])
    return rows


def _render(header: List[str], rows: List[List[str]]) -> str:
    widths = [len(h) for h in header]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(cells: List[str]) -> str:
        return "  ".join(cell.ljust(w) for cell, w in zip(cells, widths)).rstrip()
    lines = [fmt(header), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)


def render_phase_table(tracer: Tracer) -> str:
    """The CLI's per-phase breakdown (plus profiled wall-clock sections)."""
    tracer.finish()
    out = ["per-phase breakdown:"]
    rows = phase_table_rows(tracer)
    if rows:
        out.append(_render(
            ["phase", "rounds", "messages", "bits", "max_bits", "spans"], rows
        ))
    else:
        out.append("  (no phases recorded)")
    if tracer.timings:
        out.append("")
        out.append("sequential wall-clock:")
        trows = [
            [name, str(stat.calls), f"{stat.seconds * 1e3:.3f}",
             f"{stat.max_seconds * 1e3:.3f}"]
            for name, stat in sorted(tracer.timings.items())
        ]
        out.append(_render(["section", "calls", "total_ms", "max_ms"], trows))
    if tracer.fault_counts:
        out.append("")
        out.append("injected faults:")
        frows = [
            [kind, str(count)]
            for kind, count in sorted(tracer.fault_counts.items())
        ]
        out.append(_render(["fault", "count"], frows))
    if tracer.truncated:
        out.append("")
        out.append(f"note: event log truncated at {tracer.max_events} events")
    return "\n".join(out)


# ----------------------------------------------------------------------
# Chrome trace format
# ----------------------------------------------------------------------

def chrome_trace_dict(tracer: Tracer) -> Dict[str, Any]:
    """Build a ``chrome://tracing`` JSON object from the event log.

    Timeline: 1 round = 1 ms of synthetic time.  Phase spans live on
    pid 0 / tid 0; each node's sends are instant events on its own tid;
    profiled sequential sections are complete events on pid 1 with their
    real measured durations.  Fault events land on the track of the node
    they hit — message faults (drop/delay/duplicate/truncate) on the
    sender's tid, crashes and restarts on the crashed node's tid — so a
    flaky node's timeline shows its faults inline with its sends.
    Global faults with no node attribution (budget jitter) stay on tid 0.
    """
    tracer.finish()
    trace: List[Dict[str, Any]] = []
    tids: Dict[Any, int] = {}

    def tid_of(node: Any) -> int:
        if node not in tids:
            tids[node] = len(tids) + 1
        return tids[node]

    for event in tracer.events:
        ts = event.round * _ROUND_US
        if isinstance(event, PhaseEnter):
            trace.append({"name": event.phase, "cat": "phase", "ph": "B",
                          "ts": ts, "pid": 0, "tid": 0})
        elif isinstance(event, PhaseExit):
            trace.append({"name": event.phase, "cat": "phase", "ph": "E",
                          "ts": ts + _ROUND_US, "pid": 0, "tid": 0})
        elif isinstance(event, SendEvent):
            trace.append({
                "name": f"send {event.sender}->{event.receiver}",
                "cat": "message", "ph": "i", "s": "t",
                "ts": ts, "pid": 0, "tid": tid_of(event.sender),
                "args": {"bits": event.bits, "phase": event.phase},
            })
        elif isinstance(event, RoundStart):
            trace.append({"name": f"round {event.round}", "cat": "round",
                          "ph": "i", "s": "g", "ts": ts, "pid": 0, "tid": 0,
                          "args": {"phase": event.phase}})
        elif isinstance(event, FaultEvent):
            data = event.to_dict()
            subject = getattr(event, "node", None)
            if subject is None:
                subject = getattr(event, "sender", None)
            tid = tid_of(subject) if subject is not None else 0
            scope = "t" if subject is not None else "g"
            trace.append({
                "name": data.pop("kind"), "cat": "fault", "ph": "i",
                "s": scope, "ts": ts, "pid": 0, "tid": tid,
                "args": {k: v for k, v in data.items() if k != "round"},
            })
    cursor = 0
    for name, stat in sorted(tracer.timings.items()):
        dur = max(1, int(stat.seconds * 1e6))
        trace.append({"name": name, "cat": "sequential", "ph": "X",
                      "ts": cursor, "dur": dur, "pid": 1, "tid": 0,
                      "args": {"calls": stat.calls}})
        cursor += dur
    metadata = [
        {"name": "process_name", "ph": "M", "pid": 0, "tid": 0,
         "args": {"name": "congest-rounds"}},
        {"name": "process_name", "ph": "M", "pid": 1, "tid": 0,
         "args": {"name": "sequential-wallclock"}},
    ]
    return {"traceEvents": metadata + trace, "displayTimeUnit": "ms"}


def write_chrome_trace(tracer: Tracer, sink: IO[str]) -> None:
    json.dump(chrome_trace_dict(tracer), sink)
