"""Process-global tracer installation and sequential profiling hooks.

Library code deep in the stack (the algebra engine, the treedepth
solvers) cannot be handed a tracer through every call signature, so one
tracer can be *installed* for the current process:

* ``with use_tracer(tracer): ...`` installs it for a block (the CLI
  ``trace`` subcommand and the ``REPRO_TRACE`` env-var path do this),
* :func:`current_tracer` is the lookup the CONGEST :class:`~repro.congest.
  runtime.Simulation` and the distributed pipelines fall back to when no
  tracer was passed explicitly,
* :func:`profiled` wraps a hot sequential section; it resolves to the
  installed tracer's wall-clock accumulator, or to the shared no-op span
  when tracing is off — the disabled path is one global read and one
  ``is None`` test, no allocation.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional

from .tracer import NULL_SPAN, Tracer

_installed: Optional[Tracer] = None


def current_tracer() -> Optional[Tracer]:
    """The process-installed tracer, or None when tracing is off."""
    return _installed


def install_tracer(tracer: Optional[Tracer]) -> Optional[Tracer]:
    """Install ``tracer`` globally; returns the previously installed one."""
    global _installed
    previous = _installed
    _installed = tracer
    return previous


@contextmanager
def use_tracer(tracer: Tracer) -> Iterator[Tracer]:
    """Install ``tracer`` for the duration of the block."""
    previous = install_tracer(tracer)
    try:
        yield tracer
    finally:
        install_tracer(previous)


def profiled(name: str):
    """Wall-clock span around a sequential hot path (no-op when disabled)."""
    tracer = _installed
    if tracer is None:
        return NULL_SPAN
    return tracer.profile(name)
