"""Process-wide metrics registry: counters, gauges, histograms.

The paper's headline claims are quantitative — O(td) rounds, O(log n)-bit
messages — so the stack keeps *cumulative* accounting alongside the
per-run :class:`~repro.congest.metrics.RoundMetrics`: every simulation,
cache lookup, injected fault, and sweep shard increments a named metric in
one process-wide :class:`MetricsRegistry`.  The registry exports to both
Prometheus text exposition (:meth:`MetricsRegistry.render_prometheus`) and
JSON (:meth:`MetricsRegistry.to_json`), and feeds the per-call
:class:`RunCollector` that :class:`repro.api.Session` uses to assemble
:class:`~repro.obs.reports.RunReport` artifacts.

Metric families (all prefixed ``repro_``):

=============================================  =========  =================
name                                           type       labels
=============================================  =========  =================
``repro_simulations_total``                    counter    ``engine``
``repro_rounds_total``                         counter
``repro_messages_total``                       counter
``repro_message_bits_total``                   counter
``repro_max_message_bits``                     gauge      (max observed)
``repro_undelivered_messages_total``           counter
``repro_retransmissions_total``                counter
``repro_faults_injected_total``                counter    ``kind``
``repro_cache_hits_total``                     counter
``repro_cache_misses_total``                   counter
``repro_cache_disk_loads_total``               counter
``repro_sweeps_total``                         counter
``repro_sweep_shards_total``                   counter
``repro_fuzz_cases_total``                     counter    ``source``
``repro_fuzz_discrepancies_total``             counter    ``kind``
``repro_fuzz_shrink_steps_total``              counter
``repro_round_messages``                       histogram
``repro_workload_seconds``                     histogram  ``workload``
=============================================  =========  =================

Everything is plain dict arithmetic — no locks, no background threads —
so the overhead is one :func:`note_simulation` call per simulation, not
per message.  Updates made inside ``multiprocessing`` sweep workers stay
in the worker process; the parent still counts sweeps and shards.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "RunCollector",
    "collect_run",
    "note_simulation",
    "registry",
    "set_registry",
]

LabelValues = Tuple[str, ...]

#: Default histogram bucket upper bounds (``+Inf`` is implicit).
DEFAULT_BUCKETS = (1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0,
                   1000.0, 5000.0)


def _label_key(label_names: Sequence[str], labels: Dict[str, str]) -> LabelValues:
    if set(labels) != set(label_names):
        raise ValueError(
            f"expected labels {tuple(label_names)}, got {tuple(sorted(labels))}"
        )
    return tuple(str(labels[name]) for name in label_names)


def _render_labels(label_names: Sequence[str], values: LabelValues) -> str:
    if not label_names:
        return ""
    inner = ",".join(
        f'{name}="{value}"' for name, value in zip(label_names, values)
    )
    return "{" + inner + "}"


class Counter:
    """A monotonically increasing metric, optionally split by labels."""

    kind = "counter"

    def __init__(self, name: str, help: str = "",
                 label_names: Sequence[str] = ()):
        self.name = name
        self.help = help
        self.label_names = tuple(label_names)
        self._values: Dict[LabelValues, float] = {}

    def inc(self, amount: float = 1, **labels: str) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        key = _label_key(self.label_names, labels)
        self._values[key] = self._values.get(key, 0) + amount

    def value(self, **labels: str) -> float:
        return self._values.get(_label_key(self.label_names, labels), 0)

    def total(self) -> float:
        return sum(self._values.values())

    def samples(self) -> List[Tuple[LabelValues, float]]:
        return sorted(self._values.items())


class Gauge:
    """A metric that can go up and down (or track a running maximum)."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "",
                 label_names: Sequence[str] = ()):
        self.name = name
        self.help = help
        self.label_names = tuple(label_names)
        self._values: Dict[LabelValues, float] = {}

    def set(self, value: float, **labels: str) -> None:
        self._values[_label_key(self.label_names, labels)] = value

    def set_max(self, value: float, **labels: str) -> None:
        """Keep the running maximum of observed values."""
        key = _label_key(self.label_names, labels)
        if value > self._values.get(key, float("-inf")):
            self._values[key] = value

    def inc(self, amount: float = 1, **labels: str) -> None:
        key = _label_key(self.label_names, labels)
        self._values[key] = self._values.get(key, 0) + amount

    def value(self, **labels: str) -> float:
        return self._values.get(_label_key(self.label_names, labels), 0)

    def samples(self) -> List[Tuple[LabelValues, float]]:
        return sorted(self._values.items())


class Histogram:
    """Cumulative-bucket histogram (Prometheus semantics)."""

    kind = "histogram"

    def __init__(self, name: str, help: str = "",
                 label_names: Sequence[str] = (),
                 buckets: Sequence[float] = DEFAULT_BUCKETS):
        self.name = name
        self.help = help
        self.label_names = tuple(label_names)
        self.buckets = tuple(sorted(buckets))
        self._counts: Dict[LabelValues, List[int]] = {}
        self._sums: Dict[LabelValues, float] = {}
        self._totals: Dict[LabelValues, int] = {}

    def observe(self, value: float, **labels: str) -> None:
        key = _label_key(self.label_names, labels)
        counts = self._counts.get(key)
        if counts is None:
            counts = self._counts[key] = [0] * len(self.buckets)
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                counts[i] += 1
        self._sums[key] = self._sums.get(key, 0.0) + value
        self._totals[key] = self._totals.get(key, 0) + 1

    def count(self, **labels: str) -> int:
        return self._totals.get(_label_key(self.label_names, labels), 0)

    def sum(self, **labels: str) -> float:
        return self._sums.get(_label_key(self.label_names, labels), 0.0)

    def samples(self) -> List[Tuple[LabelValues, List[int], float, int]]:
        return sorted(
            (key, list(counts), self._sums[key], self._totals[key])
            for key, counts in self._counts.items()
        )


class MetricsRegistry:
    """A named collection of metrics with get-or-create registration.

    ``counter`` / ``gauge`` / ``histogram`` return the existing metric when
    the name is already registered (the help string of the first
    registration wins); registering the same name as a different metric
    type raises ``ValueError``.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, Any] = {}

    def _register(self, cls, name: str, help: str,
                  label_names: Sequence[str], **kwargs: Any):
        metric = self._metrics.get(name)
        if metric is not None:
            if not isinstance(metric, cls):
                raise ValueError(
                    f"metric {name!r} already registered as {metric.kind}"
                )
            return metric
        metric = cls(name, help, label_names, **kwargs)
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, help: str = "",
                label_names: Sequence[str] = ()) -> Counter:
        return self._register(Counter, name, help, label_names)

    def gauge(self, name: str, help: str = "",
              label_names: Sequence[str] = ()) -> Gauge:
        return self._register(Gauge, name, help, label_names)

    def histogram(self, name: str, help: str = "",
                  label_names: Sequence[str] = (),
                  buckets: Sequence[float] = DEFAULT_BUCKETS) -> Histogram:
        return self._register(Histogram, name, help, label_names,
                              buckets=buckets)

    def get(self, name: str) -> Optional[Any]:
        return self._metrics.get(name)

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def reset(self) -> None:
        """Drop every metric (tests; a fresh process state)."""
        self._metrics.clear()

    # -- export ---------------------------------------------------------
    def to_json(self) -> Dict[str, Any]:
        """A JSON-serializable snapshot of every metric, sorted by name."""
        out: Dict[str, Any] = {}
        for name in self.names():
            metric = self._metrics[name]
            entry: Dict[str, Any] = {
                "type": metric.kind,
                "help": metric.help,
            }
            if isinstance(metric, Histogram):
                entry["buckets"] = list(metric.buckets)
                entry["samples"] = [
                    {
                        "labels": dict(zip(metric.label_names, key)),
                        "counts": counts,
                        "sum": total_sum,
                        "count": count,
                    }
                    for key, counts, total_sum, count in metric.samples()
                ]
            else:
                entry["samples"] = [
                    {"labels": dict(zip(metric.label_names, key)),
                     "value": value}
                    for key, value in metric.samples()
                ]
            out[name] = entry
        return out

    def render_prometheus(self) -> str:
        """Prometheus text exposition format (deterministic ordering)."""
        lines: List[str] = []
        for name in self.names():
            metric = self._metrics[name]
            if metric.help:
                lines.append(f"# HELP {name} {metric.help}")
            lines.append(f"# TYPE {name} {metric.kind}")
            if isinstance(metric, Histogram):
                for key, counts, total_sum, count in metric.samples():
                    for bound, bucket_count in zip(metric.buckets, counts):
                        label_str = _render_labels(
                            tuple(metric.label_names) + ("le",),
                            key + (_format_float(bound),),
                        )
                        lines.append(f"{name}_bucket{label_str} {bucket_count}")
                    label_str = _render_labels(
                        tuple(metric.label_names) + ("le",), key + ("+Inf",)
                    )
                    lines.append(f"{name}_bucket{label_str} {count}")
                    plain = _render_labels(metric.label_names, key)
                    lines.append(f"{name}_sum{plain} {_format_float(total_sum)}")
                    lines.append(f"{name}_count{plain} {count}")
            else:
                for key, value in metric.samples():
                    label_str = _render_labels(metric.label_names, key)
                    lines.append(f"{name}{label_str} {_format_float(value)}")
        return "\n".join(lines) + ("\n" if lines else "")


def _format_float(value: float) -> str:
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


_REGISTRY: Optional[MetricsRegistry] = None


def registry() -> MetricsRegistry:
    """The process-wide registry (created lazily)."""
    global _REGISTRY
    if _REGISTRY is None:
        _REGISTRY = MetricsRegistry()
    return _REGISTRY


def set_registry(reg: Optional[MetricsRegistry]) -> None:
    """Replace the process-wide registry (None resets to a lazy default)."""
    global _REGISTRY
    _REGISTRY = reg


# ----------------------------------------------------------------------
# Per-call collection (feeds RunReport)
# ----------------------------------------------------------------------

class RunCollector:
    """Accumulates per-simulation metrics for one logical workload call.

    A pipeline (e.g. ``decide``) runs several consecutive simulations
    (Algorithm 2 adoption loops, then the decision convergecast); while a
    collector is active — see :func:`collect_run` — every finished
    simulation folds its :class:`~repro.congest.metrics.RoundMetrics` in,
    so the collector ends up with the *call-level* totals and the
    concatenated per-round load profile.
    """

    def __init__(self) -> None:
        self.simulations = 0
        self.rounds = 0
        self.messages = 0
        self.bits = 0
        self.max_message_bits = 0
        self.per_round_messages: List[int] = []
        self.per_round_bits: List[int] = []
        self.faults: Dict[str, int] = {}
        self.retransmissions = 0
        self.undelivered = 0

    def fold(self, metrics: Any) -> None:
        self.simulations += 1
        self.rounds += metrics.rounds
        self.messages += metrics.total_messages
        self.bits += metrics.total_bits
        if metrics.max_message_bits > self.max_message_bits:
            self.max_message_bits = metrics.max_message_bits
        self.per_round_messages.extend(metrics.per_round_messages)
        self.per_round_bits.extend(metrics.per_round_bits)
        for kind, count in metrics.faults_injected.items():
            self.faults[kind] = self.faults.get(kind, 0) + count
        self.retransmissions += metrics.retransmissions
        self.undelivered += metrics.undelivered_messages


_COLLECTORS: List[RunCollector] = []


@contextmanager
def collect_run() -> Iterator[RunCollector]:
    """Activate a :class:`RunCollector` for the enclosed simulations.

    Nesting works: every active collector observes every simulation, so an
    outer sweep-level collector still sees runs recorded by an inner
    session-level one.
    """
    collector = RunCollector()
    _COLLECTORS.append(collector)
    try:
        yield collector
    finally:
        _COLLECTORS.remove(collector)


def note_simulation(metrics: Any, engine: str = "naive") -> None:
    """Fold one finished simulation's metrics into the process registry.

    Called by :class:`repro.congest.runtime.Simulation` exactly once per
    run (both engines).  Injected-fault counts are *not* folded here —
    the :class:`~repro.faults.injector.FaultInjector` counts them live —
    but they do flow into any active :class:`RunCollector`.
    """
    reg = registry()
    reg.counter(
        "repro_simulations_total", "Finished CONGEST simulations.",
        ("engine",),
    ).inc(engine=engine)
    reg.counter(
        "repro_rounds_total", "Simulated synchronous rounds."
    ).inc(metrics.rounds)
    reg.counter(
        "repro_messages_total", "Messages sent across all simulations."
    ).inc(metrics.total_messages)
    reg.counter(
        "repro_message_bits_total", "Payload bits sent across all simulations."
    ).inc(metrics.total_bits)
    reg.gauge(
        "repro_max_message_bits",
        "Largest single message observed (CONGEST-legality headline).",
    ).set_max(metrics.max_message_bits)
    if metrics.undelivered_messages:
        reg.counter(
            "repro_undelivered_messages_total",
            "Messages queued after every node halted (RL003 smell).",
        ).inc(metrics.undelivered_messages)
    if metrics.retransmissions:
        reg.counter(
            "repro_retransmissions_total",
            "Redundant copies sent by the reliability layer.",
        ).inc(metrics.retransmissions)
    hist = reg.histogram(
        "repro_round_messages", "Messages sent per simulated round."
    )
    for count in metrics.per_round_messages:
        hist.observe(count)
    for collector in _COLLECTORS:
        collector.fold(metrics)
