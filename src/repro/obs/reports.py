"""RunReport artifacts: frozen per-workload records, a local run store,
and a deterministic report differ.

A :class:`RunReport` is one JSON-serializable record per
``Session.decide/optimize/count/certify`` call: the verdict, the
round/message/bit accounting (with the concatenated per-round load
profile), per-phase rounds, fault and retransmission counts,
:class:`~repro.algebra.cache.AutomatonCache` hit/miss deltas, the engine
and replay arguments, and an environment fingerprint.  Reports are
**content-addressed**: ``run_id`` is the SHA-256 of the report's
*deterministic core* (everything except wall-clock and timestamps), so
two byte-identical executions — same graph, formula, seed, inbox order,
engine — produce the same id on the same machine.

Reports persist to a local **run store**: an append-only
``runs.jsonl`` under ``.repro/runs/`` (override the directory with the
``REPRO_RUN_DIR`` environment variable).  ``repro report`` lists, renders,
and diffs stored reports; :func:`diff_reports` produces the deterministic
phase-by-phase delta table the CLI prints, with threshold breaches for
regression gating (wall-clock is excluded from the default table exactly
so the diff of two identical runs is byte-deterministic).
"""

from __future__ import annotations

import dataclasses
import hashlib
import html as _html
import json
import os
import platform
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

__all__ = [
    "RunReport",
    "RunStore",
    "ReportDiff",
    "build_report",
    "diff_reports",
    "environment_fingerprint",
    "render_markdown",
    "render_html",
    "run_dir",
    "WORKLOAD_PROGRAMS",
    "programs_for_workload",
]

#: Bump when the report schema changes incompatibly.
REPORT_SCHEMA = 1

#: Node programs executed by each Session workload, as
#: ``(module, lint qualname)`` pairs — the lookup table the RL009
#: static-vs-observed conformance gate uses to find the statically
#: certified bit/round bounds for a stored report.
WORKLOAD_PROGRAMS: Dict[str, Tuple[Tuple[str, str], ...]] = {
    "decide": (
        ("repro.distributed.elimination", "elimination_tree_program"),
        ("repro.distributed.model_checking", "decision_program.<locals>.program"),
    ),
    "optimize": (
        ("repro.distributed.elimination", "elimination_tree_program"),
        ("repro.distributed.optimization", "optimization_program.<locals>.program"),
    ),
    "count": (
        ("repro.distributed.elimination", "elimination_tree_program"),
        ("repro.distributed.counting", "counting_program.<locals>.program"),
    ),
    # "certify" is deliberately absent: it runs the centralized
    # prover + single-round verifier from repro.certification, not a
    # registered node program — the gate skips workloads it has no
    # static bound for.
}


def programs_for_workload(workload: str) -> Tuple[Tuple[str, str], ...]:
    """The ``(module, qualname)`` pairs a workload's rounds execute."""
    return WORKLOAD_PROGRAMS.get(workload, ())

#: Metrics gated by default in ``diff_reports`` (relative tolerance 0.0:
#: any increase from A to B is a breach; decreases never are).
DEFAULT_DIFF_THRESHOLDS: Dict[str, float] = {
    "rounds": 0.0,
    "messages": 0.0,
    "bits": 0.0,
    "max_message_bits": 0.0,
}


def environment_fingerprint() -> Dict[str, Any]:
    """A deterministic-per-machine description of the execution context."""
    from .. import __version__

    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": sys.platform,
        "machine": platform.machine(),
        "repro_version": __version__,
        "hashseed": os.environ.get("PYTHONHASHSEED", ""),
    }


@dataclass(frozen=True)
class RunReport:
    """One frozen, JSON-serializable record of a Session workload call."""

    schema: int
    run_id: str
    workload: str
    formula: str
    graph: Mapping[str, int]
    d: int
    engine: str
    verdict: Optional[bool]
    treedepth_exceeded: bool
    value: Optional[int]
    count: Optional[int]
    num_classes: int
    witness_size: int
    metrics: Mapping[str, Any]
    phase_rounds: Mapping[str, int]
    phases: Optional[Sequence[Sequence[Any]]]
    cache: Mapping[str, int]
    replay: Mapping[str, Any]
    env: Mapping[str, Any]
    wall_seconds: float
    #: State-space reduction accounting (``repro.algebra.minimize``):
    #: zero everywhere when minimization is disabled or fell back.
    states_total: int = 0
    states_reachable: int = 0
    states_minimized: int = 0
    created_at: float = field(default=0.0)

    #: Fields excluded from the content address (volatile between
    #: otherwise-identical executions).
    VOLATILE = ("run_id", "wall_seconds", "created_at")

    def to_dict(self) -> Dict[str, Any]:
        data = dataclasses.asdict(self)
        data["graph"] = dict(self.graph)
        data["metrics"] = _plain(self.metrics)
        data["phase_rounds"] = dict(self.phase_rounds)
        data["cache"] = dict(self.cache)
        data["replay"] = _plain(self.replay)
        data["env"] = dict(self.env)
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunReport":
        names = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in names})

    def deterministic_core(self) -> Dict[str, Any]:
        """The report minus its volatile fields (what the id hashes)."""
        data = self.to_dict()
        for name in self.VOLATILE:
            data.pop(name, None)
        return data

    @property
    def max_payload_bits(self) -> int:
        """The widest single message observed during this run (bits)."""
        return int(self.metrics.get("max_message_bits", 0) or 0)


def _plain(value: Any) -> Any:
    """Recursively reduce a structure to JSON-native types."""
    if isinstance(value, Mapping):
        return {str(k): _plain(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_plain(v) for v in value]
    if isinstance(value, (frozenset, set)):
        return sorted((_plain(v) for v in value), key=repr)
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return repr(value)


def content_address(core: Mapping[str, Any]) -> str:
    """SHA-256 hex digest of the canonical JSON of a deterministic core."""
    material = json.dumps(core, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(material.encode()).hexdigest()


def build_report(
    *,
    workload: str,
    formula: str,
    graph: Any,
    d: int,
    engine: str,
    verdict: Optional[bool],
    treedepth_exceeded: bool,
    value: Optional[int],
    count: Optional[int],
    num_classes: int,
    witness_size: int,
    collector: Any,
    phase_rounds: Mapping[str, int],
    phases: Optional[Sequence[Sequence[Any]]],
    cache: Mapping[str, int],
    replay: Mapping[str, Any],
    wall_seconds: float,
    states_total: int = 0,
    states_reachable: int = 0,
    states_minimized: int = 0,
) -> RunReport:
    """Assemble a content-addressed :class:`RunReport`.

    ``collector`` is the :class:`~repro.obs.registry.RunCollector` that
    observed the call's simulations; ``replay`` must already be
    JSON-reducible (fault plans serialized, retry policies described).
    """
    metrics = {
        "rounds": collector.rounds,
        "messages": collector.messages,
        "bits": collector.bits,
        "max_message_bits": collector.max_message_bits,
        "simulations": collector.simulations,
        "per_round_messages": list(collector.per_round_messages),
        "per_round_bits": list(collector.per_round_bits),
        "faults": dict(sorted(collector.faults.items())),
        "retransmissions": collector.retransmissions,
        "undelivered": collector.undelivered,
    }
    report = RunReport(
        schema=REPORT_SCHEMA,
        run_id="",
        workload=workload,
        formula=formula,
        graph={"n": graph.num_vertices(), "m": graph.num_edges()},
        d=d,
        engine=engine,
        verdict=verdict,
        treedepth_exceeded=treedepth_exceeded,
        value=value,
        count=count,
        num_classes=num_classes,
        witness_size=witness_size,
        metrics=metrics,
        phase_rounds=dict(phase_rounds),
        phases=[list(row) for row in phases] if phases is not None else None,
        cache=dict(cache),
        replay=_plain(replay),
        env=environment_fingerprint(),
        wall_seconds=wall_seconds,
        states_total=int(states_total),
        states_reachable=int(states_reachable),
        states_minimized=int(states_minimized),
        created_at=time.time(),
    )
    run_id = content_address(report.deterministic_core())
    return dataclasses.replace(report, run_id=run_id)


# ----------------------------------------------------------------------
# The run store
# ----------------------------------------------------------------------

def run_dir(override: Union[str, os.PathLike, None] = None) -> Path:
    """The run-store directory: override > ``REPRO_RUN_DIR`` > ``.repro/runs``."""
    if override:
        return Path(override)
    env = os.environ.get("REPRO_RUN_DIR")
    if env:
        return Path(env)
    return Path(".repro") / "runs"


class RunStore:
    """Append-only JSONL store of :class:`RunReport` records.

    One ``runs.jsonl`` per directory; each line is one report dict.
    Identical executions share a content-addressed id — appending a
    duplicate is harmless, lookups return the first match.  Corrupt lines
    are skipped, never fatal: the store is an observability artifact.
    """

    def __init__(self, directory: Union[str, os.PathLike, None] = None):
        self.directory = run_dir(directory)

    @property
    def path(self) -> Path:
        return self.directory / "runs.jsonl"

    def save(self, report: RunReport) -> Path:
        self.directory.mkdir(parents=True, exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(report.to_dict(), sort_keys=True) + "\n")
        return self.path

    def _iter_dicts(self) -> List[Dict[str, Any]]:
        if not self.path.exists():
            return []
        records = []
        with open(self.path, encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    data = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if isinstance(data, dict) and data.get("run_id"):
                    records.append(data)
        return records

    def list(self) -> List[RunReport]:
        """Every stored report, in append (chronological) order."""
        return [RunReport.from_dict(d) for d in self._iter_dicts()]

    def load(self, run_id: str) -> RunReport:
        """The report whose id matches ``run_id`` (unique prefixes work).

        ``"latest"`` loads the most recently appended report.
        """
        records = self.list()
        if not records:
            raise KeyError(f"run store {self.path} is empty")
        if run_id == "latest":
            return records[-1]
        matches = [r for r in records if r.run_id.startswith(run_id)]
        ids = sorted({r.run_id for r in matches})
        if not ids:
            raise KeyError(f"no run matching {run_id!r} in {self.path}")
        if len(ids) > 1:
            raise KeyError(
                f"ambiguous run id {run_id!r}: matches "
                + ", ".join(i[:12] for i in ids)
            )
        return matches[0]


# ----------------------------------------------------------------------
# Renderers
# ----------------------------------------------------------------------

def _fmt_num(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def render_markdown(report: RunReport) -> str:
    """A human-readable markdown summary of one report."""
    m = report.metrics
    lines = [
        f"# Run {report.run_id[:12]} — {report.workload}",
        "",
        f"- **formula**: `{report.formula}`",
        f"- **graph**: n={report.graph['n']}, m={report.graph['m']}, "
        f"d={report.d}",
        f"- **engine**: {report.engine}",
        f"- **verdict**: {report.verdict} "
        f"(treedepth_exceeded={report.treedepth_exceeded})",
    ]
    if report.value is not None:
        lines.append(f"- **value**: {report.value} "
                     f"(witness size {report.witness_size})")
    if report.count is not None:
        lines.append(f"- **count**: {report.count}")
    lines += [
        f"- **classes**: {report.num_classes}",
    ]
    if report.states_total:
        lines.append(
            f"- **kernel states**: {report.states_total} total, "
            f"{report.states_reachable} reachable, "
            f"{report.states_minimized} after minimization"
        )
    lines += [
        f"- **wall clock**: {report.wall_seconds:.4f}s",
        "",
        "## Metrics",
        "",
        "| metric | value |",
        "| --- | --- |",
    ]
    for key in ("rounds", "messages", "bits", "max_message_bits",
                "simulations", "retransmissions", "undelivered"):
        lines.append(f"| {key} | {_fmt_num(m[key])} |")
    for kind, cnt in sorted(dict(m.get("faults", {})).items()):
        lines.append(f"| faults[{kind}] | {cnt} |")
    lines += ["", "## Phase rounds", "", "| phase | rounds |", "| --- | --- |"]
    for phase, rounds in sorted(report.phase_rounds.items()):
        lines.append(f"| {phase} | {rounds} |")
    if report.phases:
        lines += [
            "", "## Traced phases", "",
            "| phase | rounds | messages | bits | max_bits | spans |",
            "| --- | --- | --- | --- | --- | --- |",
        ]
        for row in report.phases:
            lines.append("| " + " | ".join(str(c) for c in row) + " |")
    lines += [
        "", "## Cache", "",
        "| hits | misses | disk_loads |",
        "| --- | --- | --- |",
        f"| {report.cache.get('hits', 0)} | {report.cache.get('misses', 0)} "
        f"| {report.cache.get('disk_loads', 0)} |",
        "", "## Replay", "", "```json",
        json.dumps(_plain(report.replay), indent=2, sort_keys=True),
        "```", "", "## Environment", "", "```json",
        json.dumps(dict(report.env), indent=2, sort_keys=True),
        "```", "",
    ]
    return "\n".join(lines)


def render_html(report: RunReport) -> str:
    """A self-contained HTML page for one report (tables, no scripts)."""
    md = render_markdown(report)
    body: List[str] = []
    in_table = False
    in_code = False
    for line in md.splitlines():
        if line.startswith("```"):
            if in_code:
                body.append("</pre>")
            else:
                body.append("<pre>")
            in_code = not in_code
            continue
        if in_code:
            body.append(_html.escape(line))
            continue
        if line.startswith("|"):
            cells = [c.strip() for c in line.strip("|").split("|")]
            if all(set(c) <= {"-"} and c for c in cells):
                continue  # markdown separator row
            if not in_table:
                body.append("<table>")
                in_table = True
                tag = "th"
            else:
                tag = "td"
            body.append(
                "<tr>" + "".join(
                    f"<{tag}>{_html.escape(c)}</{tag}>" for c in cells
                ) + "</tr>"
            )
            continue
        if in_table:
            body.append("</table>")
            in_table = False
        if line.startswith("# "):
            body.append(f"<h1>{_html.escape(line[2:])}</h1>")
        elif line.startswith("## "):
            body.append(f"<h2>{_html.escape(line[3:])}</h2>")
        elif line.startswith("- "):
            body.append(f"<p>{_html.escape(line[2:])}</p>")
        elif line:
            body.append(f"<p>{_html.escape(line)}</p>")
    if in_table:
        body.append("</table>")
    style = (
        "body{font-family:sans-serif;margin:2em;max-width:60em}"
        "table{border-collapse:collapse;margin:1em 0}"
        "td,th{border:1px solid #999;padding:0.25em 0.6em;text-align:left}"
        "pre{background:#f4f4f4;padding:0.8em;overflow-x:auto}"
    )
    return (
        "<!DOCTYPE html><html><head><meta charset=\"utf-8\">"
        f"<title>repro run {_html.escape(report.run_id[:12])}</title>"
        f"<style>{style}</style></head><body>"
        + "".join(body) + "</body></html>"
    )


# ----------------------------------------------------------------------
# Diffing
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class DiffRow:
    """One metric's values in both runs and the resulting delta."""

    section: str
    metric: str
    a: Any
    b: Any

    @property
    def delta(self) -> Optional[float]:
        if isinstance(self.a, (int, float)) and isinstance(self.b, (int, float)):
            return self.b - self.a
        return None

    @property
    def relative(self) -> Optional[float]:
        delta = self.delta
        if delta is None:
            return None
        if self.a == 0:
            return None if delta == 0 else float("inf")
        return delta / abs(self.a)


@dataclass(frozen=True)
class ReportDiff:
    """The deterministic comparison of two reports."""

    a: RunReport
    b: RunReport
    rows: Tuple[DiffRow, ...]
    breaches: Tuple[str, ...]

    @property
    def ok(self) -> bool:
        return not self.breaches

    def render(self, *, wall: bool = False) -> str:
        """The CLI's delta table.  Byte-deterministic for fixed inputs
        unless ``wall=True`` adds the (non-deterministic) wall-clock row."""
        out = [
            "run report diff",
            f"  A: {self.a.run_id[:12]}  {self.a.workload} "
            f"n={self.a.graph['n']} d={self.a.d} engine={self.a.engine}",
            f"  B: {self.b.run_id[:12]}  {self.b.workload} "
            f"n={self.b.graph['n']} d={self.b.d} engine={self.b.engine}",
            "",
        ]
        header = ["section", "metric", "A", "B", "delta", "rel"]
        table: List[List[str]] = []
        rows: List[DiffRow] = list(self.rows)
        if wall:
            rows.append(DiffRow("wall", "wall_seconds",
                                round(self.a.wall_seconds, 4),
                                round(self.b.wall_seconds, 4)))
        for row in rows:
            delta = row.delta
            rel = row.relative
            if delta is None:
                delta_s, rel_s = "-", "-"
            else:
                delta_s = f"{delta:+g}"
                if rel is None:
                    rel_s = "+0.00%" if delta == 0 else "-"
                elif rel == float("inf"):
                    rel_s = "+inf"
                else:
                    rel_s = f"{rel * 100:+.2f}%"
            table.append([row.section, row.metric, _fmt_num(row.a),
                          _fmt_num(row.b), delta_s, rel_s])
        widths = [len(h) for h in header]
        for line in table:
            for i, cell in enumerate(line):
                widths[i] = max(widths[i], len(cell))

        def fmt(cells: Sequence[str]) -> str:
            return "  ".join(
                c.ljust(w) for c, w in zip(cells, widths)
            ).rstrip()

        out.append(fmt(header))
        out.append(fmt(["-" * w for w in widths]))
        out.extend(fmt(line) for line in table)
        out.append("")
        if self.breaches:
            out.append("threshold breaches:")
            out.extend(f"  {b}" for b in self.breaches)
        else:
            out.append("no threshold breaches")
        return "\n".join(out)


def diff_reports(
    a: RunReport,
    b: RunReport,
    thresholds: Optional[Mapping[str, float]] = None,
) -> ReportDiff:
    """Compare two reports metric by metric and phase by phase.

    ``thresholds`` maps metric names (``rounds``, ``messages``, ``bits``,
    ``max_message_bits``, ``phase:<name>``, ``cache_misses``) to relative
    tolerances; metric ``m`` breaches when
    ``b > a * (1 + thresholds[m])``.  Defaults to
    :data:`DEFAULT_DIFF_THRESHOLDS` (any core-metric increase breaches);
    pass ``{}`` to disable gating entirely.
    """
    thresholds = DEFAULT_DIFF_THRESHOLDS if thresholds is None else thresholds
    rows: List[DiffRow] = []
    breaches: List[str] = []

    def gate(name: str, va: Any, vb: Any) -> None:
        tol = thresholds.get(name)
        if tol is None:
            return
        if not isinstance(va, (int, float)) or not isinstance(vb, (int, float)):
            return
        limit = va * (1 + tol)
        if vb > limit:
            breaches.append(
                f"{name}: B={_fmt_num(vb)} exceeds A={_fmt_num(va)} "
                f"(tolerance {tol * 100:g}%)"
            )

    for key in ("rounds", "messages", "bits", "max_message_bits",
                "simulations", "retransmissions", "undelivered"):
        va, vb = a.metrics.get(key, 0), b.metrics.get(key, 0)
        rows.append(DiffRow("metrics", key, va, vb))
        gate(key, va, vb)

    for phase in sorted(set(a.phase_rounds) | set(b.phase_rounds)):
        va = a.phase_rounds.get(phase, 0)
        vb = b.phase_rounds.get(phase, 0)
        rows.append(DiffRow("phase", phase, va, vb))
        gate(f"phase:{phase}", va, vb)

    for key in ("hits", "misses", "disk_loads"):
        va, vb = a.cache.get(key, 0), b.cache.get(key, 0)
        rows.append(DiffRow("cache", key, va, vb))
        gate(f"cache_{key}", va, vb)

    fault_kinds = sorted(
        set(dict(a.metrics.get("faults", {})))
        | set(dict(b.metrics.get("faults", {})))
    )
    for kind in fault_kinds:
        va = dict(a.metrics.get("faults", {})).get(kind, 0)
        vb = dict(b.metrics.get("faults", {})).get(kind, 0)
        rows.append(DiffRow("faults", kind, va, vb))
        gate(f"faults:{kind}", va, vb)

    rows.append(DiffRow("info", "num_classes", a.num_classes, b.num_classes))
    for key in ("states_total", "states_reachable", "states_minimized"):
        va, vb = getattr(a, key, 0), getattr(b, key, 0)
        rows.append(DiffRow("states", key, va, vb))
        gate(key, va, vb)
    rows.append(DiffRow("info", "verdict", a.verdict, b.verdict))
    if a.verdict != b.verdict:
        breaches.append(
            f"verdict: A={a.verdict} B={b.verdict} — the runs disagree"
        )
    return ReportDiff(a=a, b=b, rows=tuple(rows), breaches=tuple(breaches))
