"""The phase-span tracer: rounds, messages, and bits by protocol phase.

Design constraints (see ``docs/observability.md``):

* **Hierarchical phases.**  Harness code opens *global* spans
  (``tracer.phase("elimination")``); node programs open *per-node* spans
  (``ctx.phase("leader-election")``).  A node's effective phase path is the
  concatenation of the open global stack and its own stack, joined with
  ``/`` — e.g. ``elimination/adoption/leader-election``.
* **Lockstep ref-counting.**  CONGEST programs run in lockstep, so all n
  nodes enter the same phase together.  A phase *span* (and its
  enter/exit events) opens when the first participant enters the path and
  closes when the last one leaves; per-node entries in between only bump a
  reference count.
* **Round attribution.**  A round is charged to the phase that sent the
  most messages during it; silent rounds go to the phase that was dominant
  when the round started.  Attribution is deferred one round so that a
  phase entered at the top of a round still receives that round's traffic.
* **Zero overhead when absent.**  The simulator guards every hook with
  ``if tracer is not None``; disabled runs never allocate.  Node programs
  always call ``ctx.phase(...)``, which returns the shared
  :data:`NULL_SPAN` singleton when tracing is off.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Any, Dict, List, Optional, Tuple

from .events import (
    DeliverEvent,
    FaultEvent,
    NodeHalt,
    PhaseEnter,
    PhaseExit,
    RoundStart,
    SendEvent,
    TraceEvent,
)

UNPHASED = "unphased"


class _NullSpan:
    """Shared no-op context manager for disabled tracing."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: Any) -> bool:
        return False


NULL_SPAN = _NullSpan()


class PhaseStats:
    """Aggregate round/message/bit figures for one phase path."""

    __slots__ = ("rounds", "messages", "bits", "max_message_bits", "entries")

    def __init__(self) -> None:
        self.rounds = 0
        self.messages = 0
        self.bits = 0
        self.max_message_bits = 0
        self.entries = 0  # number of span openings (first-enter events)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PhaseStats(rounds={self.rounds}, messages={self.messages}, "
            f"bits={self.bits}, max_message_bits={self.max_message_bits})"
        )


class NodeStats:
    """Per-node traffic breakdown."""

    __slots__ = ("sent_messages", "sent_bits", "received_messages",
                 "received_bits", "halt_round")

    def __init__(self) -> None:
        self.sent_messages = 0
        self.sent_bits = 0
        self.received_messages = 0
        self.received_bits = 0
        self.halt_round: Optional[int] = None


class EdgeStats:
    """Per-directed-edge traffic breakdown."""

    __slots__ = ("messages", "bits")

    def __init__(self) -> None:
        self.messages = 0
        self.bits = 0


class ProfileStat:
    """Wall-clock accumulator for one profiled sequential section."""

    __slots__ = ("calls", "seconds", "max_seconds")

    def __init__(self) -> None:
        self.calls = 0
        self.seconds = 0.0
        self.max_seconds = 0.0


class _PhaseSpan:
    """Context manager produced by :meth:`Tracer.phase`."""

    __slots__ = ("_tracer", "_name", "_node", "_path")

    def __init__(self, tracer: "Tracer", name: str, node: Optional[Any]):
        self._tracer = tracer
        self._name = name
        self._node = node
        self._path = ""

    def __enter__(self) -> "_PhaseSpan":
        self._path = self._tracer._enter_phase(self._name, self._node)
        return self

    def __exit__(self, *exc: Any) -> bool:
        self._tracer._exit_phase(self._name, self._node, self._path)
        return False


class _ProfileSpan:
    """Context manager produced by :meth:`Tracer.profile`."""

    __slots__ = ("_tracer", "_name", "_start")

    def __init__(self, tracer: "Tracer", name: str):
        self._tracer = tracer
        self._name = name
        self._start = 0.0

    def __enter__(self) -> "_ProfileSpan":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: Any) -> bool:
        elapsed = time.perf_counter() - self._start
        stat = self._tracer.timings.get(self._name)
        if stat is None:
            stat = self._tracer.timings[self._name] = ProfileStat()
        stat.calls += 1
        stat.seconds += elapsed
        stat.max_seconds = max(stat.max_seconds, elapsed)
        return False


class Tracer:
    """Structured instrumentation sink for the CONGEST stack.

    One tracer may span several consecutive :class:`~repro.congest.runtime.
    Simulation` runs (e.g. Algorithm 2 followed by the checking
    convergecast); its ``round`` counter is global across them.

    ``events=False`` keeps the aggregate tables (phases, nodes, edges,
    timings) but drops the per-event log — the cheap mode benchmarks use.
    """

    def __init__(
        self,
        events: bool = True,
        max_events: int = 200_000,
        capture_payloads: bool = True,
    ):
        self.wants_events = events
        self.max_events = max_events
        self.capture_payloads = capture_payloads
        self.events: List[TraceEvent] = []
        self.truncated = False
        self.round = 0
        self.phase_stats: Dict[str, PhaseStats] = {}
        self.node_stats: Dict[Any, NodeStats] = {}
        self.edge_stats: Dict[Tuple[Any, Any], EdgeStats] = {}
        self.fault_counts: Dict[str, int] = {}
        self.timings: Dict[str, ProfileStat] = {}
        self._global_stack: List[str] = []
        self._global_path = ""
        self._node_stacks: Dict[Any, List[str]] = {}
        self._node_path: Dict[Any, str] = {}
        self._open_counts: Dict[str, int] = {}
        self._open_order: List[str] = []
        self._round_sends: Dict[str, int] = {}
        self._pending_phase = UNPHASED
        self._round_closed = True

    # -- phase spans ----------------------------------------------------
    def phase(self, name: str, node: Optional[Any] = None) -> _PhaseSpan:
        """Open a phase span (global when ``node`` is None, else per-node)."""
        return _PhaseSpan(self, name, node)

    def _enter_phase(self, name: str, node: Optional[Any]) -> str:
        if node is None:
            self._global_stack.append(name)
            self._global_path = "/".join(self._global_stack)
            path = self._global_path
        else:
            stack = self._node_stacks.setdefault(node, [])
            stack.append(name)
            parts = self._global_stack + stack
            path = "/".join(parts)
            self._node_path[node] = path
        count = self._open_counts.get(path, 0)
        self._open_counts[path] = count + 1
        if count == 0:
            self._open_order.append(path)
            stats = self.phase_stats.get(path)
            if stats is None:
                stats = self.phase_stats[path] = PhaseStats()
            stats.entries += 1
            self._emit(PhaseEnter(round=self.round, phase=path, node=node))
        return path

    def _exit_phase(self, name: str, node: Optional[Any], path: str) -> None:
        if node is None:
            if self._global_stack and self._global_stack[-1] == name:
                self._global_stack.pop()
            elif name in self._global_stack:  # tolerate interleaved exits
                self._global_stack.remove(name)
            self._global_path = "/".join(self._global_stack)
        else:
            stack = self._node_stacks.get(node, [])
            if stack and stack[-1] == name:
                stack.pop()
            elif name in stack:
                stack.remove(name)
            parts = self._global_stack + stack
            self._node_path[node] = "/".join(parts)
        remaining = self._open_counts.get(path, 0) - 1
        if remaining <= 0:
            self._open_counts.pop(path, None)
            if path in self._open_order:
                self._open_order.remove(path)
            self._emit(PhaseExit(round=self.round, phase=path, node=node))
        else:
            self._open_counts[path] = remaining

    def _phase_for(self, node: Any) -> str:
        path = self._node_path.get(node)
        if path:
            return path
        return self._global_path or UNPHASED

    def _dominant(self) -> str:
        if not self._open_order:
            return UNPHASED
        order = self._open_order
        return max(order, key=lambda p: (self._open_counts[p], order.index(p)))

    def _stats_for(self, path: str) -> PhaseStats:
        stats = self.phase_stats.get(path)
        if stats is None:
            stats = self.phase_stats[path] = PhaseStats()
        return stats

    # -- simulator hooks ------------------------------------------------
    def on_round_start(self) -> None:
        self._close_round()
        self.round += 1
        self._round_closed = False
        self._pending_phase = self._dominant()
        self._emit(RoundStart(round=self.round, phase=self._pending_phase))

    def _close_round(self) -> None:
        """Attribute the just-finished round to its dominant phase."""
        if self._round_closed:
            return
        self._round_closed = True
        if self._round_sends:
            path = max(
                self._round_sends.items(),
                key=lambda kv: (kv[1], kv[0].count("/"), kv[0]),
            )[0]
            self._round_sends = {}
        else:
            path = self._pending_phase
        self._stats_for(path).rounds += 1

    def finish(self) -> None:
        """Finalize the pending round (idempotent; exporters call this)."""
        self._close_round()

    def on_send(self, sender: Any, receiver: Any, bits: int, payload: Any) -> None:
        path = self._phase_for(sender)
        stats = self._stats_for(path)
        stats.messages += 1
        stats.bits += bits
        if bits > stats.max_message_bits:
            stats.max_message_bits = bits
        node = self.node_stats.get(sender)
        if node is None:
            node = self.node_stats[sender] = NodeStats()
        node.sent_messages += 1
        node.sent_bits += bits
        edge = self.edge_stats.get((sender, receiver))
        if edge is None:
            edge = self.edge_stats[(sender, receiver)] = EdgeStats()
        edge.messages += 1
        edge.bits += bits
        self._round_sends[path] = self._round_sends.get(path, 0) + 1
        if self.wants_events:
            self._emit(SendEvent(
                round=self.round,
                sender=sender,
                receiver=receiver,
                bits=bits,
                phase=path,
                payload=repr(payload) if self.capture_payloads else "",
            ))

    def on_deliver(self, sender: Any, receiver: Any, bits: int) -> None:
        node = self.node_stats.get(receiver)
        if node is None:
            node = self.node_stats[receiver] = NodeStats()
        node.received_messages += 1
        node.received_bits += bits
        if self.wants_events:
            self._emit(DeliverEvent(
                round=self.round, sender=sender, receiver=receiver, bits=bits
            ))

    def on_halt(self, node: Any, output: Any) -> None:
        stats = self.node_stats.get(node)
        if stats is None:
            stats = self.node_stats[node] = NodeStats()
        stats.halt_round = self.round
        if self.wants_events:
            self._emit(NodeHalt(
                round=self.round,
                node=node,
                output=repr(output) if self.capture_payloads else "",
            ))

    def on_fault(self, event: FaultEvent) -> None:
        """Record an injected-fault event (see :mod:`repro.faults`).

        The event's ``round`` field is rewritten to the tracer's *global*
        round counter so post-mortems line up with the rest of the log even
        across the several Simulations of one pipeline.
        """
        self.fault_counts[event.kind] = self.fault_counts.get(event.kind, 0) + 1
        if self.wants_events:
            if event.round != self.round:
                event = dataclasses.replace(event, round=self.round)
            self._emit(event)

    # -- wall-clock profiling -------------------------------------------
    def profile(self, name: str) -> _ProfileSpan:
        """Time a sequential section under ``name`` (accumulating)."""
        return _ProfileSpan(self, name)

    # -- event sink -----------------------------------------------------
    def _emit(self, event: TraceEvent) -> None:
        if not self.wants_events:
            return
        if len(self.events) >= self.max_events:
            self.truncated = True
            return
        self.events.append(event)

    # -- snapshots ------------------------------------------------------
    def phase_rows(self) -> List[Tuple[str, PhaseStats]]:
        """(path, stats) pairs in first-open order, pending round included."""
        self.finish()
        return list(self.phase_stats.items())

    def total_rounds(self) -> int:
        return self.round

    def summary(self) -> str:
        self.finish()
        total_msgs = sum(s.messages for s in self.phase_stats.values())
        total_bits = sum(s.bits for s in self.phase_stats.values())
        parts = [
            f"rounds={self.round} phases={len(self.phase_stats)} "
            f"messages={total_msgs} bits={total_bits} events={len(self.events)}"
        ]
        if self.fault_counts:
            parts.append(
                "faults=" + ",".join(
                    f"{kind}:{count}"
                    for kind, count in sorted(self.fault_counts.items())
                )
            )
        if self.truncated:
            parts.append("truncated=True")
        return " ".join(parts)
