"""One frozen configuration object for every execution surface.

Every pipeline in :mod:`repro.distributed` and the :class:`repro.api.Session`
facade share the same execution knobs — seed, inbox order, engine, fault
plan, retry policy, bit budget, tracing, automaton cache, class codec.
:class:`RunConfig` is the single place those knobs are named and
validated; the legacy keyword surfaces all funnel through
:meth:`RunConfig.from_kwargs`, so an invalid ``engine=`` or
``inbox_order=`` fails identically (and typed) everywhere.

``to_json`` / ``from_json`` are the replay contract:
``Result.replay_args`` and fuzz-corpus replay files store exactly this
encoding, and :meth:`repro.api.Session.from_replay` reconstructs a
byte-identical run from it.  Only the replayable fields are serialized —
``trace`` / ``cache`` / ``codec`` hold live objects and stay local.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from typing import Any, Dict, Mapping, Optional

from .congest.runtime import ENGINES, INBOX_ORDERS
from .errors import ReproError, UnknownEngineError

__all__ = ["RunConfig", "resolve_tracer"]


def resolve_tracer(trace: Any) -> Optional[Any]:
    """A concrete tracer for a ``RunConfig.trace`` value.

    Pipeline semantics: an explicit :class:`~repro.obs.Tracer` records
    into itself, ``True`` requests a fresh one, anything falsy falls back
    to the process-installed tracer (or none).
    """
    from .obs import Tracer, current_tracer

    if isinstance(trace, Tracer):
        return trace
    if trace:
        return Tracer()
    return current_tracer()

#: The replayable subset of fields, in their canonical JSON order.
REPLAY_FIELDS = (
    "seed", "inbox_order", "faults", "retry", "budget", "engine", "minimize"
)


@dataclass(frozen=True)
class RunConfig:
    """Validated execution knobs shared by Session and every pipeline.

    Parameters mirror the historical keyword arguments:

    * ``seed`` / ``inbox_order`` — the simulator's adversarial delivery
      knobs (see :class:`repro.congest.Simulation`);
    * ``engine`` — ``"naive"``, ``"batched"``, or ``"vectorized"``
      (differentially identical schedulers; see ``docs/engines.md``);
    * ``faults`` / ``retry`` — a :class:`repro.faults.FaultPlan`
      adversary and :class:`repro.faults.RetryPolicy` reliability layer;
    * ``budget`` — per-edge per-round bit budget override;
    * ``minimize`` — ``False`` opts out of the state-space reduction
      passes of :mod:`repro.algebra.minimize`; ``None`` (the default)
      means minimize on every engine, which keeps CONGEST transcripts
      byte-identical across engines (see ``docs/engines.md``);
    * ``trace`` — ``True`` for a fresh :class:`repro.obs.Tracer`, or a
      Tracer instance to record into;
    * ``cache`` — an :class:`repro.algebra.cache.AutomatonCache`
      (Session-level; pipelines receive compiled automata directly);
    * ``codec`` — a :class:`repro.distributed.model_checking.ClassCodec`
      to share class ids across runs (pipeline-level).
    """

    seed: Optional[int] = None
    inbox_order: str = "arrival"
    engine: str = "batched"
    faults: Optional[Any] = None
    retry: Optional[Any] = None
    budget: Optional[int] = None
    minimize: Optional[bool] = None
    trace: Any = None
    cache: Optional[Any] = None
    codec: Optional[Any] = None

    def __post_init__(self) -> None:
        if self.engine not in ENGINES:
            raise UnknownEngineError(self.engine, ENGINES)
        if self.inbox_order not in INBOX_ORDERS:
            raise ReproError(
                f"unknown inbox order {self.inbox_order!r}; "
                f"choose from {INBOX_ORDERS}"
            )
        if self.minimize not in (None, True, False):
            raise ReproError(
                f"minimize must be True, False or None, "
                f"not {self.minimize!r}"
            )

    # -- construction ----------------------------------------------------

    @classmethod
    def from_kwargs(
        cls,
        config: Optional["RunConfig"] = None,
        defaults: Optional[Mapping[str, Any]] = None,
        **kwargs: Any,
    ) -> "RunConfig":
        """Normalize a legacy kwargs surface into one validated config.

        ``config`` (when given) is taken whole; keyword arguments must
        then all be ``None`` — mixing both surfaces would make it
        ambiguous which value wins.  Without ``config``, keywords with
        value ``None`` fall back to ``defaults`` and then the dataclass
        defaults, so ``from_kwargs(engine=None)`` means "the default
        engine", exactly like omitting the keyword.  ``defaults`` lets a
        caller keep a historical default that differs from the dataclass
        one (the pipelines default to the ``naive`` engine, Session to
        ``batched``).
        """
        known = {f.name for f in fields(cls)}
        unknown = set(kwargs) - known
        if unknown:
            raise ReproError(
                f"unknown run configuration key(s): {sorted(unknown)}"
            )
        if config is not None:
            clashes = sorted(k for k, v in kwargs.items() if v is not None)
            if clashes:
                raise ReproError(
                    "pass either config= or individual keyword arguments, "
                    f"not both (got config plus {clashes})"
                )
            if not isinstance(config, cls):
                raise ReproError(
                    f"config must be a RunConfig, not {type(config).__name__}"
                )
            return config
        provided = dict(defaults or {})
        provided.update(
            (k, v) for k, v in kwargs.items() if v is not None
        )
        return cls(**provided)

    def with_overrides(self, **overrides: Any) -> "RunConfig":
        """A copy with ``overrides`` applied (re-validated)."""
        return replace(self, **overrides)

    @property
    def minimize_enabled(self) -> bool:
        """Whether the state-space reduction passes apply to this run.

        ``None`` (auto) resolves to ``True`` for every engine: enabling
        minimization per engine would break the cross-engine
        byte-identity contract the testkit enforces.
        """
        return self.minimize is not False

    # -- replay serialization ---------------------------------------------

    def replay_args(self) -> Dict[str, Any]:
        """The replayable fields with live objects (Session kwargs)."""
        return {name: getattr(self, name) for name in REPLAY_FIELDS}

    def to_json(self) -> Dict[str, Any]:
        """JSON-native replay encoding (inverse of :meth:`from_json`)."""
        replay = self.replay_args()
        if replay["faults"] is not None:
            replay["faults"] = replay["faults"].to_dict()
        if replay["retry"] is not None:
            replay["retry"] = {"attempts": replay["retry"].attempts}
        return replay

    @classmethod
    def from_json(cls, replay: Mapping[str, Any]) -> "RunConfig":
        """Decode :meth:`to_json` output (or live replay_args) strictly.

        Unknown keys are rejected — a replay file with a field this
        version cannot reproduce must fail loudly, not silently drift.
        """
        from .faults import FaultPlan, RetryPolicy

        kwargs: Dict[str, Any] = dict(replay)
        unknown = set(kwargs) - set(REPLAY_FIELDS)
        if unknown:
            raise ReproError(
                f"unknown replay argument(s): {sorted(unknown)}"
            )
        faults = kwargs.get("faults")
        if isinstance(faults, Mapping):
            kwargs["faults"] = FaultPlan.from_dict(dict(faults))
        retry = kwargs.get("retry")
        if isinstance(retry, Mapping):
            try:
                kwargs["retry"] = RetryPolicy(attempts=int(retry["attempts"]))
            except (KeyError, TypeError, ValueError) as exc:
                raise ReproError(
                    f"malformed retry encoding {retry!r}: {exc}"
                ) from exc
        provided = {k: v for k, v in kwargs.items() if v is not None}
        return cls(**provided)
