"""Metamorphic conformance harness for the sequential↔distributed pipeline.

Theorem 6.1 promises that the CONGEST pipeline and the sequential
Borie–Parker–Tovey Algorithm 1 compute the *same* verdicts, optima, and
counts for every MSO formula, graph, and depth bound.  This package turns
that promise into an executable oracle:

* :mod:`~repro.testkit.cases` — the :class:`Case` value (graph, depth
  promise, formula, workload, fault axis) with a parseable formula codec
  and content-addressed JSON serialization;
* :mod:`~repro.testkit.generators` — seeded, size-bounded case
  generators over the paper's graph families and an MSO fragment;
* :mod:`~repro.testkit.oracles` — the differential oracle: sequential
  semantics vs :class:`repro.api.Session` across ``engine`` ×
  ``inbox_order`` × fault plans, with byte-identity checks where the
  engine guarantees apply;
* :mod:`~repro.testkit.metamorphic` — metamorphic relations
  (isomorphism invariance, label permutation, disjoint-union
  composition, seed independence);
* :mod:`~repro.testkit.shrink` — a greedy case minimizer;
* :mod:`~repro.testkit.corpus` — replay files and corpus directories;
* :mod:`~repro.testkit.runner` — the fuzz loop behind ``repro fuzz``;
* :mod:`~repro.testkit.mutants` — deliberately broken reference copies
  that validate the harness's own sensitivity.

The harness is importable (not just test files): property tests, the
``repro fuzz`` CLI, and CI smoke jobs all share these modules.
"""

from .cases import Case, formula_from_source, formula_to_source
from .corpus import iter_corpus, load_case, save_case
from .generators import CaseGenerator
from .metamorphic import check_metamorphic
from .mutants import mutant_reference
from .oracles import (
    Discrepancy,
    differential_check,
    replay_roundtrip_check,
    sequential_reference,
)
from .runner import FuzzConfig, FuzzReport, run_fuzz
from .shrink import shrink_case

__all__ = [
    "Case",
    "CaseGenerator",
    "Discrepancy",
    "FuzzConfig",
    "FuzzReport",
    "check_metamorphic",
    "differential_check",
    "formula_from_source",
    "formula_to_source",
    "iter_corpus",
    "load_case",
    "mutant_reference",
    "replay_roundtrip_check",
    "run_fuzz",
    "save_case",
    "sequential_reference",
    "shrink_case",
]
