"""The conformance-case value and its content-addressed serialization.

A :class:`Case` is everything the differential oracle needs to reproduce
one conformance check: the graph, the treedepth promise, the formula (with
its free-variable scope), the workload, and the optional fault axis.
Cases serialize to plain JSON — graphs via the :mod:`repro.graph.io` text
format, formulas via :func:`formula_to_source` (a printer for the
:func:`repro.mso.parse` grammar), fault plans via
:meth:`~repro.faults.FaultPlan.to_dict` — so a failing case replays from
its file alone, byte-for-byte, on any machine.

``Case.case_id`` is the sha256 digest of the canonical JSON encoding;
corpus files are named by it, so the corpus is content-addressed and two
shrinks of the same failure dedupe automatically.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Optional, Tuple

from ..errors import ReproError
from ..faults import FaultPlan
from ..graph import Graph
from ..graph import io as graph_io
from ..mso import Sort, parse
from ..mso import syntax as sx

__all__ = ["Case", "WORKLOADS", "formula_to_source", "formula_from_source"]

#: Workloads a case can exercise (mirrors :data:`repro.api.WORKLOADS`).
WORKLOADS = ("decide", "optimize", "count", "certify")

_SORT_CODES = {
    Sort.VERTEX: "V",
    Sort.EDGE: "E",
    Sort.VERTEX_SET: "VS",
    Sort.EDGE_SET: "ES",
}
_CODE_SORTS = {code: sort for sort, code in _SORT_CODES.items()}


# ----------------------------------------------------------------------
# Formula codec: syntax tree -> parser-grammar text -> syntax tree
# ----------------------------------------------------------------------

def formula_to_source(formula: sx.Formula) -> str:
    """Print ``formula`` in the :func:`repro.mso.parse` text grammar.

    Covers the fragment the case generators emit (boolean connectives,
    quantifiers, and the atom families with a concrete parser spelling).
    ``parse(formula_to_source(f), free=...) == f`` for every supported
    formula — the round-trip is pinned by the testkit tests.
    """
    return _source(formula)


def _wrap(formula: sx.Formula) -> str:
    """A sub-term rendering that is safe inside ``&`` / ``|`` / ``!``."""
    text = _source(formula)
    if isinstance(formula, (sx.And, sx.Or)):
        return text  # already parenthesized
    if isinstance(formula, (sx.Exists, sx.Forall, sx.Eq, sx.In)):
        return f"({text})"
    return text


def _source(f: sx.Formula) -> str:
    if isinstance(f, sx.Truth):
        return "true" if f.value else "false"
    if isinstance(f, sx.Adj):
        return f"adj({f.x.name}, {f.y.name})"
    if isinstance(f, sx.Inc):
        return f"inc({f.x.name}, {f.e.name})"
    if isinstance(f, sx.Eq):
        return f"{f.x.name} = {f.y.name}"
    if isinstance(f, sx.In):
        return f"{f.x.name} in {f.s.name}"
    if isinstance(f, sx.Subset):
        names = ", ".join(b.name for b in f.bs)
        return f"subset({f.a.name}, {names})"
    if isinstance(f, sx.NonEmpty):
        return f"nonempty({f.a.name})"
    if isinstance(f, sx.HasLabel):
        return f"label({f.label}, {f.a.name})"
    if isinstance(f, sx.AllHaveLabel):
        return f"alllabel({f.label}, {f.a.name})"
    if isinstance(f, sx.SetsIntersect):
        return f"intersects({f.a.name}, {f.b.name})"
    if isinstance(f, sx.AllVerticesIn):
        names = ", ".join(b.name for b in f.bs)
        return f"covers({names})"
    if isinstance(f, sx.AllEdgesIn):
        names = ", ".join(b.name for b in f.bs)
        return f"edgecovers({names})"
    if isinstance(f, sx.EdgeCross):
        if f.y is None:
            return f"touches({f.e.name}, {f.x.name})"
        return f"crosses({f.e.name}, {f.x.name}, {f.y.name})"
    if isinstance(f, sx.EndpointsIn):
        return f"endpoints({f.e.name}, {f.x.name})"
    if isinstance(f, sx.IncCounts):
        classes = ", ".join(str(c) for c in sorted(f.allowed))
        within = f", {f.within.name}" if f.within is not None else ""
        return f"degrees({f.e.name}, {{{classes}}}{within}, cap={f.cap})"
    if isinstance(f, sx.IncParity):
        word = "even" if f.even else "odd"
        within = f", {f.within.name}" if f.within is not None else ""
        return f"parity({f.e.name}, {word}{within})"
    if isinstance(f, sx.IsClique):
        return f"clique({f.x.name})"
    if isinstance(f, sx.ContainsPattern):
        pairs = ", ".join(f"{i} {j}" for i, j in sorted(f.edges))
        induced = ", induced" if f.induced else ""
        return f"contains({f.num_vertices}, {{{pairs}}}{induced})"
    if isinstance(f, sx.Not):
        return f"!{_wrap(f.inner)}"
    if isinstance(f, sx.And):
        return "(" + " & ".join(_wrap(p) for p in f.parts) + ")"
    if isinstance(f, sx.Or):
        return "(" + " | ".join(_wrap(p) for p in f.parts) + ")"
    if isinstance(f, sx.Exists):
        code = _SORT_CODES[f.var.sort]
        return f"exists {f.var.name}:{code} . {_source(f.body)}"
    if isinstance(f, sx.Forall):
        code = _SORT_CODES[f.var.sort]
        return f"forall {f.var.name}:{code} . {_source(f.body)}"
    raise ReproError(
        f"formula_to_source does not support {type(f).__name__}; "
        "generate cases from the parseable fragment"
    )


def formula_from_source(
    text: str, free: Optional[Dict[str, str]] = None
) -> Tuple[sx.Formula, Tuple[sx.Var, ...]]:
    """Parse a serialized formula; returns (formula, name-sorted scope)."""
    declared = {
        name: _CODE_SORTS[code] for name, code in (free or {}).items()
    }
    formula = parse(text, free=declared)
    scope = tuple(
        sorted((sx.Var(n, s) for n, s in declared.items()),
               key=lambda v: v.name)
    )
    return formula, scope


# ----------------------------------------------------------------------
# The case value
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class Case:
    """One conformance check: graph × promise × formula × workload.

    ``scope`` is the name-sorted tuple of free variables (empty for the
    closed workloads ``decide`` / ``certify``; exactly one set variable
    for ``optimize``).  ``plan`` / ``retry_attempts`` describe the
    optional lossy axis: when set, the oracle additionally runs the
    workload under the fault plan with the redundancy synchronizer and
    requires agreement-or-fail-closed.  ``seed`` seeds the simulator;
    ``note`` records generator provenance for corpus triage.
    """

    graph: Graph
    d: int
    formula: sx.Formula
    workload: str
    scope: Tuple[sx.Var, ...] = ()
    sense: str = "max"
    seed: int = 0
    plan: Optional[FaultPlan] = None
    retry_attempts: int = 0
    note: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if self.workload not in WORKLOADS:
            raise ReproError(
                f"unknown workload {self.workload!r}; "
                f"choose from {WORKLOADS}"
            )
        if self.sense not in ("max", "min"):
            raise ReproError(f"sense must be 'max' or 'min', not {self.sense!r}")

    # -- serialization ---------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-native encoding; inverse of :meth:`from_dict`."""
        data: Dict[str, Any] = {
            "workload": self.workload,
            "graph": graph_io.dumps(self.graph),
            "d": self.d,
            "formula": formula_to_source(self.formula),
            "free": {v.name: _SORT_CODES[v.sort] for v in self.scope},
            "seed": self.seed,
            "note": self.note,
        }
        if self.workload == "optimize":
            data["sense"] = self.sense
        if self.plan is not None:
            data["plan"] = self.plan.to_dict()
            data["retry_attempts"] = self.retry_attempts
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Case":
        try:
            graph = graph_io.loads(data["graph"])
            formula, scope = formula_from_source(
                data["formula"], data.get("free") or {}
            )
            plan = (
                FaultPlan.from_dict(data["plan"])
                if data.get("plan") is not None else None
            )
            return cls(
                graph=graph,
                d=int(data["d"]),
                formula=formula,
                workload=data["workload"],
                scope=scope,
                sense=data.get("sense", "max"),
                seed=int(data.get("seed", 0)),
                plan=plan,
                retry_attempts=int(data.get("retry_attempts", 0)),
                note=data.get("note", ""),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ReproError(f"malformed case encoding: {exc}") from exc

    @property
    def case_id(self) -> str:
        """sha256 of the canonical JSON encoding (content address).

        ``note`` is provenance, not identity: two shrinks of the same
        failure from different fuzz runs must collide.
        """
        payload = self.to_dict()
        payload.pop("note", None)
        material = json.dumps(payload, sort_keys=True,
                              separators=(",", ":"))
        return hashlib.sha256(material.encode()).hexdigest()

    def with_graph(self, graph: Graph, d: Optional[int] = None) -> "Case":
        """A copy on another graph (promise recomputed unless given)."""
        from ..treedepth import best_heuristic_forest

        if d is None:
            d = max(1, best_heuristic_forest(graph).depth())
        return replace(self, graph=graph, d=d)

    def with_formula(self, formula: sx.Formula) -> "Case":
        return replace(self, formula=formula)

    def describe(self) -> str:
        """One human line for fuzz logs and replay output."""
        extra = f" plan={self.plan.describe()}" if self.plan else ""
        return (
            f"{self.workload} n={self.graph.num_vertices()} "
            f"m={self.graph.num_edges()} d={self.d} seed={self.seed}"
            f"{extra} :: {formula_to_source(self.formula)}"
        )
