"""Content-addressed replay files for conformance cases.

A corpus directory holds one JSON file per case, named by a prefix of
the case's sha256 content address, so re-saving the same failure is a
no-op and two shrinks of one bug dedupe automatically.  Files carry a
``format`` tag and a free-form ``meta`` block (discrepancy kinds, shrink
provenance) that does **not** enter the content address — the case alone
determines identity.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Iterator, Optional, Tuple

from ..errors import ReproError
from .cases import Case

__all__ = ["CORPUS_FORMAT", "save_case", "load_case", "iter_corpus"]

CORPUS_FORMAT = "repro-testkit-case/1"

#: Filename prefix length; 16 hex chars = 64 bits, ample for a corpus.
_NAME_LEN = 16


def save_case(
    case: Case,
    directory: str,
    meta: Optional[Dict[str, Any]] = None,
) -> str:
    """Write ``case`` into ``directory``; returns the file path.

    Overwrites an existing file with the same content address (the case
    payload is identical by construction; only ``meta`` can differ).
    """
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"{case.case_id[:_NAME_LEN]}.json")
    payload = {
        "format": CORPUS_FORMAT,
        "case": case.to_dict(),
        "meta": meta or {},
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def load_case(path: str) -> Tuple[Case, Dict[str, Any]]:
    """Read one replay file; returns ``(case, meta)``."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except OSError as exc:
        raise ReproError(f"cannot read corpus file {path!r}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise ReproError(f"corpus file {path!r} is not JSON: {exc}") from exc
    if not isinstance(payload, dict) or "case" not in payload:
        raise ReproError(f"corpus file {path!r} has no 'case' payload")
    tag = payload.get("format")
    if tag != CORPUS_FORMAT:
        raise ReproError(
            f"corpus file {path!r} has format {tag!r}; "
            f"this testkit reads {CORPUS_FORMAT!r}"
        )
    case = Case.from_dict(payload["case"])
    meta = payload.get("meta") or {}
    return case, meta


def iter_corpus(directory: str) -> Iterator[Tuple[str, Case, Dict[str, Any]]]:
    """Yield ``(path, case, meta)`` for every replay file, name-sorted."""
    if not os.path.isdir(directory):
        return
    for name in sorted(os.listdir(directory)):
        if not name.endswith(".json"):
            continue
        path = os.path.join(directory, name)
        yield (path,) + load_case(path)
