"""Seeded, size-bounded case generators for the conformance harness.

One :class:`CaseGenerator` instance owns a ``random.Random(seed)`` stream;
the i-th case drawn from seed s is the same on every machine and every
run, so ``repro fuzz --seed 8 --cases 200`` names a reproducible suite,
not a lottery ticket.

Graphs come from the families the paper reasons about — random trees,
random bounded-treedepth compositions (the generator's elimination tree
is kept as a subgraph, so the promise ``d`` is honest), grids, cycles,
stars, caterpillars, and the Section 1.1 ``path + claw`` lower-bound
family — optionally decorated with ``red``/``blue`` vertex labels and
small integer weights.  Formulas mix the closed catalog (triangle-free,
acyclicity, 2-colorability, claw-freeness, …) with randomly grown trees
over the parseable MSO fragment, plus free-set formulas for ``optimize``
and free-variable formulas for ``count``.  A minority of ``decide``
cases additionally carry a lossy fault plan and a retry budget.
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from ..faults import FaultPlan
from ..graph import Graph
from ..graph import generators as graphgen
from ..mso import Sort, formulas
from ..mso import syntax as sx
from ..treedepth import best_heuristic_forest
from .cases import Case

__all__ = ["CaseGenerator"]

_LABELS = ("red", "blue")


def _promise(graph: Graph) -> int:
    """An honest treedepth promise: the best heuristic forest's depth."""
    return max(1, best_heuristic_forest(graph).depth())


#: Evaluating a formula costs a tower of powerset constructions, one per
#: nested quantifier, compounded once per elimination-forest level — rank-4
#: formulas on depth-3 forests take minutes where rank-3 ones take
#: milliseconds.  The generator therefore only pairs deep formulas with
#: shallow (depth <= 2) forests.
_MAX_CHEAP_RANK = 3


def _quantifier_rank(formula: sx.Formula) -> int:
    """Maximum quantifier nesting depth (element and set alike)."""
    if isinstance(formula, (sx.Exists, sx.Forall)):
        return 1 + _quantifier_rank(formula.body)
    if isinstance(formula, sx.Not):
        return _quantifier_rank(formula.inner)
    if isinstance(formula, (sx.And, sx.Or)):
        return max((_quantifier_rank(p) for p in formula.parts), default=0)
    return 0


class CaseGenerator:
    """A deterministic stream of conformance cases.

    ``max_vertices`` bounds every generated graph; ``fault_rate`` is the
    fraction of ``decide`` cases that carry a lossy plan.
    """

    def __init__(self, seed: int = 0, *, max_vertices: int = 12,
                 fault_rate: float = 0.2):
        self.rng = random.Random(seed)
        self.seed = seed
        self.max_vertices = max_vertices
        self.fault_rate = fault_rate
        self._drawn = 0

    # -- graphs ----------------------------------------------------------

    def graph(self) -> Tuple[Graph, str]:
        """A connected graph from one of the paper's families."""
        rng = self.rng
        cap = self.max_vertices
        family = rng.choice((
            "tree", "tree", "bounded", "bounded", "bounded",
            "grid", "cycle", "star", "caterpillar", "claw", "clique",
        ))
        if family == "tree":
            g = graphgen.random_tree(rng.randint(2, cap), seed=rng.randrange(10 ** 6))
        elif family == "bounded":
            g = graphgen.random_bounded_treedepth(
                rng.randint(4, cap), rng.randint(2, 3),
                rng.choice((0.3, 0.5, 0.8)), seed=rng.randrange(10 ** 6),
            )
        elif family == "grid":
            g = graphgen.grid(2, rng.randint(2, max(2, cap // 3)))
        elif family == "cycle":
            g = graphgen.cycle(rng.randint(3, min(8, cap)))
        elif family == "star":
            g = graphgen.star(rng.randint(1, cap - 1))
        elif family == "caterpillar":
            g = graphgen.caterpillar(rng.randint(2, 4), rng.randint(0, 2))
        elif family == "claw":
            g = graphgen.path_with_claw(rng.randint(3, min(6, cap - 4)))
        else:
            g = graphgen.clique(rng.randint(2, 4))
        if rng.random() < 0.4:
            self._decorate(g)
        return g, family

    def _decorate(self, graph: Graph) -> None:
        """Sprinkle labels (and occasionally weights) over a graph."""
        rng = self.rng
        for v in graph.vertices():
            if rng.random() < 0.5:
                graph.add_vertex_label(v, rng.choice(_LABELS))
        if rng.random() < 0.3:
            for v in graph.vertices():
                graph.set_vertex_weight(v, rng.randint(1, 3))

    # -- formulas --------------------------------------------------------

    _CLOSED_POOL = (
        formulas.triangle_free,
        formulas.acyclic,
        formulas.connected,
        lambda: formulas.k_colorable(2),
        lambda: formulas.h_free(graphgen.claw()),
        formulas.has_even_subgraph,
        lambda: formulas.exists_vertex_of_degree_greater_fo(2),
    )

    #: Closed catalog formulas whose verdict composes over disjoint union
    #: as a conjunction (hereditary / component-wise properties).
    _UNION_POOL = (
        formulas.triangle_free,
        formulas.acyclic,
        lambda: formulas.k_colorable(2),
        lambda: formulas.h_free(graphgen.claw()),
    )

    def closed_formula(self) -> Tuple[sx.Formula, str]:
        """A closed formula: catalog, union-composable, or random tree."""
        roll = self.rng.random()
        if roll < 0.35:
            return self.rng.choice(self._CLOSED_POOL)(), "catalog"
        if roll < 0.55:
            return self.rng.choice(self._UNION_POOL)(), "union"
        return self._random_closed(), "random"

    def affordable_closed_formula(self, depth: int) -> Tuple[sx.Formula, str]:
        """A closed formula whose rank is affordable on a depth-``depth``
        forest (see :data:`_MAX_CHEAP_RANK`); redraws are deterministic."""
        formula, flavor = self.closed_formula()
        for _ in range(8):
            if depth <= 2 or _quantifier_rank(formula) <= _MAX_CHEAP_RANK:
                return formula, flavor
            formula, flavor = self.closed_formula()
        return formulas.triangle_free(), "catalog"

    def _atom(self, pool: List[sx.Var]) -> sx.Formula:
        """A random atom over the element variables in ``pool``."""
        rng = self.rng
        x = rng.choice(pool)
        y = rng.choice(pool)
        kind = rng.randrange(4)
        if kind == 0:
            return sx.Adj(x, y)
        if kind == 1:
            return sx.Eq(x, y)
        if kind == 2:
            return sx.HasLabel(x, rng.choice(_LABELS))
        return sx.Truth(rng.random() < 0.5)

    def _random_closed(self) -> sx.Formula:
        """A small random closed formula over 2-3 vertex variables."""
        rng = self.rng
        names = ("x", "y", "z")[: rng.randint(2, 3)]
        pool = [sx.Var(n, Sort.VERTEX) for n in names]
        atoms = [self._atom(pool) for _ in range(rng.randint(2, 4))]
        body: sx.Formula = (
            sx.And(tuple(atoms)) if rng.random() < 0.6 else sx.Or(tuple(atoms))
        )
        if rng.random() < 0.4:
            body = sx.Not(body)
        for var in reversed(pool):
            body = (
                sx.Exists(var, body) if rng.random() < 0.7
                else sx.Forall(var, body)
            )
        if rng.random() < 0.3:
            body = sx.Not(body)
        return body

    _OPT_POOL = (
        (formulas.independent_set, Sort.VERTEX_SET),
        (formulas.vertex_cover, Sort.VERTEX_SET),
        (formulas.dominating_set, Sort.VERTEX_SET),
        (formulas.matching, Sort.EDGE_SET),
        (formulas.clique_set, Sort.VERTEX_SET),
    )

    def optimize_formula(self) -> Tuple[sx.Formula, sx.Var]:
        factory, sort = self.rng.choice(self._OPT_POOL)
        var = sx.Var("S", sort)
        return factory(var), var

    def count_formula(self) -> Tuple[sx.Formula, Tuple[sx.Var, ...]]:
        """A formula with free variables for the counting workload."""
        rng = self.rng
        kind = rng.randrange(3)
        if kind == 0:
            # Count vertices with a first-order neighborhood property.
            x = sx.Var("x", Sort.VERTEX)
            y = sx.Var("y", Sort.VERTEX)
            body = sx.And((sx.Adj(x, y), sx.Not(sx.Eq(x, y))))
            return sx.Exists(y, body), (x,)
        if kind == 1:
            # Count labeled vertices.
            x = sx.Var("x", Sort.VERTEX)
            return sx.HasLabel(x, rng.choice(_LABELS)), (x,)
        # Count independent sets (set-variable counting).
        s = sx.Var("S", Sort.VERTEX_SET)
        return formulas.independent_set(s), (s,)

    # -- fault axis ------------------------------------------------------

    def fault_axis(self) -> Tuple[Optional[FaultPlan], int]:
        rng = self.rng
        if rng.random() >= self.fault_rate:
            return None, 0
        plan = FaultPlan(
            seed=rng.randrange(10 ** 6),
            drop_rate=rng.choice((0.02, 0.05)),
            duplicate_rate=rng.choice((0.0, 0.02)),
        )
        return plan, 3

    # -- cases -----------------------------------------------------------

    def case(self) -> Case:
        """The next case in the stream."""
        rng = self.rng
        self._drawn += 1
        graph, family = self.graph()
        promise = _promise(graph)
        roll = rng.random()
        seed = rng.randrange(10 ** 6)
        if roll < 0.45:
            formula, flavor = self.affordable_closed_formula(promise)
            plan, retries = self.fault_axis()
            return Case(
                graph=graph, d=promise, formula=formula,
                workload="decide", seed=seed, plan=plan,
                retry_attempts=retries,
                note=f"decide/{flavor}/{family}#{self._drawn}",
            )
        if roll < 0.65:
            formula, scope = self.count_formula()
            return Case(
                graph=graph, d=promise, formula=formula,
                workload="count", scope=scope, seed=seed,
                note=f"count/{family}#{self._drawn}",
            )
        if roll < 0.9:
            formula, var = self.optimize_formula()
            return Case(
                graph=graph, d=promise, formula=formula,
                workload="optimize", scope=(var,),
                sense=rng.choice(("max", "min")), seed=seed,
                note=f"optimize/{family}#{self._drawn}",
            )
        formula, flavor = self.affordable_closed_formula(promise)
        return Case(
            graph=graph, d=promise, formula=formula,
            workload="certify", seed=seed,
            note=f"certify/{flavor}/{family}#{self._drawn}",
        )

    def cases(self, count: int) -> List[Case]:
        return [self.case() for _ in range(count)]
