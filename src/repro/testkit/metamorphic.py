"""Metamorphic relations: transformations that must not change answers.

A differential oracle needs a reference; a metamorphic relation needs
only the system under test.  Each relation below derives a follow-up
case from a source case and states how the answers must relate:

* **isomorphism invariance** — relabeling vertices by a seeded
  permutation preserves verdicts, optima, and counts (MSO cannot see
  vertex identities);
* **label permutation** — consistently renaming ``red``/``blue`` in the
  graph *and* the formula preserves the answer;
* **disjoint-union composition** — for the hereditary, component-wise
  catalog formulas (H-freeness, acyclicity, 2-colorability) the verdict
  on ``G₁ ⊎ G₂`` is the conjunction of the parts' verdicts (checked
  through the sequential engine: the CONGEST pipeline needs a connected
  network, the algebra does not);
* **seed independence** — the simulator seed and delivery order
  permute message arrival, never answers: every (seed, inbox order)
  perturbation of a fault-free run returns the same verdict/value/count.
* **engine equivalence** — the ``vectorized`` kernel engine is
  byte-identical to ``batched``: same answers *and* the same
  (rounds, messages, bits, classes) signature on every case.

All relations report :class:`~repro.testkit.oracles.Discrepancy` values,
so the fuzz runner treats them exactly like differential failures.
"""

from __future__ import annotations

import dataclasses
import random
from typing import List, Optional, Sequence

from ..algebra import check as seq_check
from ..algebra.cache import AutomatonCache
from ..api import Session
from ..graph import Graph
from ..graph.graph import disjoint_union, relabeled
from ..mso import syntax as sx
from ..treedepth import best_heuristic_forest
from .cases import Case
from .oracles import (
    Discrepancy,
    Reference,
    _byte_signature,
    _expected_fields,
    _outcome_fields,
    _run_cell,
    sequential_reference,
)

__all__ = [
    "check_metamorphic",
    "engine_equivalence_relation",
    "isomorphism_relation",
    "label_permutation_relation",
    "seed_independence_relation",
    "union_relation",
]

_LABEL_SWAP = {"red": "blue", "blue": "red"}


def _permuted(graph: Graph, seed: int) -> Graph:
    vertices = graph.vertices()
    shuffled = list(vertices)
    random.Random(seed).shuffle(shuffled)
    # Map onto a disjoint id range first so the relabeling is collision-free.
    n = graph.num_vertices()
    offset = {v: i + 10 ** 6 for i, v in enumerate(vertices)}
    staged = relabeled(graph, offset)
    final = {offset[v]: target for v, target in zip(vertices, shuffled)}
    return relabeled(staged, final)


def _swap_graph_labels(graph: Graph) -> Graph:
    out = Graph(graph.vertices(), graph.edges())
    for v in graph.vertices():
        out.set_vertex_weight(v, graph.vertex_weight(v))
        for label in graph.vertex_labels(v):
            out.add_vertex_label(v, _LABEL_SWAP.get(label, label))
    for u, v in graph.edges():
        out.set_edge_weight(u, v, graph.edge_weight(u, v))
        for label in graph.edge_labels(u, v):
            out.add_edge_label(u, v, _LABEL_SWAP.get(label, label))
    return out


def _swap_formula_labels(formula: sx.Formula) -> sx.Formula:
    """Rename labels throughout a formula tree."""
    if isinstance(formula, (sx.HasLabel, sx.AllHaveLabel)):
        return dataclasses.replace(
            formula, label=_LABEL_SWAP.get(formula.label, formula.label)
        )
    if isinstance(formula, sx.Not):
        return sx.Not(_swap_formula_labels(formula.inner))
    if isinstance(formula, sx.And):
        return sx.And(tuple(_swap_formula_labels(p) for p in formula.parts))
    if isinstance(formula, sx.Or):
        return sx.Or(tuple(_swap_formula_labels(p) for p in formula.parts))
    if isinstance(formula, sx.Exists):
        return sx.Exists(formula.var, _swap_formula_labels(formula.body))
    if isinstance(formula, sx.Forall):
        return sx.Forall(formula.var, _swap_formula_labels(formula.body))
    return formula


def _answers(case: Case, cache: AutomatonCache):
    """(verdict, value/count) of a fault-free batched/arrival run."""
    session = Session(case.graph, case.d, seed=case.seed, cache=cache)
    return _outcome_fields(case, _run_cell(case, session))


def isomorphism_relation(
    case: Case, cache: AutomatonCache, ref: Reference
) -> List[Discrepancy]:
    """Vertex relabeling must not change any answer."""
    iso = case.with_graph(_permuted(case.graph, case.seed + 1), d=case.d)
    got = _answers(iso, cache)
    expected = _expected_fields(case, ref)
    if got != expected:
        return [Discrepancy(
            case.case_id, "metamorphic-isomorphism",
            f"relabeled graph answered {got!r} instead of {expected!r}",
            note=case.note,
        )]
    return []


def label_permutation_relation(
    case: Case, cache: AutomatonCache, ref: Reference
) -> List[Discrepancy]:
    """Renaming red↔blue in graph *and* formula preserves the answer."""
    swapped = dataclasses.replace(
        case,
        graph=_swap_graph_labels(case.graph),
        formula=_swap_formula_labels(case.formula),
    )
    got = _answers(swapped, cache)
    expected = _expected_fields(case, ref)
    if got != expected:
        return [Discrepancy(
            case.case_id, "metamorphic-labels",
            f"label-permuted case answered {got!r} instead of {expected!r}",
            note=case.note,
        )]
    return []


def seed_independence_relation(
    case: Case, cache: AutomatonCache, ref: Reference,
    *,
    seeds: Sequence[int] = (1, 2),
    orders: Sequence[str] = ("shuffle", "reversed"),
) -> List[Discrepancy]:
    """Fault-free answers are invariant under (seed, inbox order)."""
    expected = _expected_fields(case, ref)
    found: List[Discrepancy] = []
    for extra_seed in seeds:
        for order in orders:
            session = Session(
                case.graph, case.d, seed=case.seed + extra_seed,
                inbox_order=order, cache=cache,
            )
            got = _outcome_fields(case, _run_cell(case, session))
            if got != expected:
                found.append(Discrepancy(
                    case.case_id, "metamorphic-seed",
                    f"seed+{extra_seed}/{order} answered {got!r} "
                    f"instead of {expected!r}", note=case.note,
                ))
    return found


def engine_equivalence_relation(
    case: Case, cache: AutomatonCache, ref: Reference
) -> List[Discrepancy]:
    """``vectorized`` must be byte-identical to ``batched``.

    Beyond agreeing on the answer, the two engines must produce the
    same CONGEST transcript signature — rounds, messages, payload
    bits, and class count — because the vectorized kernel only changes
    *local* computation, never what goes on the wire.  The grid covers
    both minimization settings: the state-space reduction passes of
    :mod:`repro.algebra.minimize` rewrite states locally too, so within
    each ``minimize`` cell every engine must stay on the same bytes
    (minimize on-vs-off may legitimately change the transcript — it is
    a run-configuration change, recorded in the replay args).
    """
    expected = _expected_fields(case, ref)
    found: List[Discrepancy] = []
    for minimize in (False, True):
        cells = {}
        for engine in ("batched", "vectorized"):
            session = Session(
                case.graph, case.d, seed=case.seed, engine=engine,
                minimize=minimize, cache=cache,
            )
            cells[engine] = _run_cell(case, session)
        got = _outcome_fields(case, cells["vectorized"])
        if got != expected:
            found.append(Discrepancy(
                case.case_id, "metamorphic-engine",
                f"vectorized engine (minimize={minimize}) answered "
                f"{got!r} instead of {expected!r}", note=case.note,
            ))
        sig = {e: _byte_signature(r) for e, r in cells.items()}
        if sig["vectorized"] != sig["batched"]:
            found.append(Discrepancy(
                case.case_id, "metamorphic-engine-bytes",
                f"minimize={minimize}: vectorized signature "
                f"{sig['vectorized']!r} != batched {sig['batched']!r}",
                note=case.note,
            ))
    return found


def union_relation(
    case: Case, cache: AutomatonCache, ref: Reference,
    other: Optional[Graph] = None,
) -> List[Discrepancy]:
    """verdict(G₁ ⊎ G₂) == verdict(G₁) ∧ verdict(G₂) for hereditary φ.

    Only sound for component-wise formulas (the generator tags them with
    ``union`` in the case note); checked sequentially because the CONGEST
    pipeline requires a connected network.
    """
    if other is None:
        other = _permuted(case.graph, case.seed + 7)
    union = disjoint_union(case.graph, other)
    forest = best_heuristic_forest(union)
    left = ref.verdict
    right_case = case.with_graph(other, d=case.d)
    right = sequential_reference(right_case, cache).verdict
    got = seq_check(case.formula, union, forest)
    if got != (left and right):
        return [Discrepancy(
            case.case_id, "metamorphic-union",
            f"verdict(G1 ⊎ G2)={got!r} but parts say {left!r} ∧ {right!r}",
            note=case.note,
        )]
    return []


def check_metamorphic(
    case: Case,
    *,
    cache: Optional[AutomatonCache] = None,
    ref: Optional[Reference] = None,
) -> List[Discrepancy]:
    """Run every relation applicable to ``case`` (fault axis excluded)."""
    cache = cache if cache is not None else AutomatonCache(persist=False)
    base = dataclasses.replace(case, plan=None, retry_attempts=0)
    if ref is None:
        ref = sequential_reference(base, cache)
    found: List[Discrepancy] = []
    found.extend(isomorphism_relation(base, cache, ref))
    found.extend(label_permutation_relation(base, cache, ref))
    found.extend(seed_independence_relation(base, cache, ref))
    found.extend(engine_equivalence_relation(base, cache, ref))
    if base.workload in ("decide", "certify") and "/union/" in f"/{base.note}/":
        found.extend(union_relation(base, cache, ref))
    return found
