"""The harness's own sensitivity check: a deliberately broken reference.

A differential oracle that never fires is indistinguishable from one that
cannot fire.  :func:`mutant_reference` is a drop-in replacement for
:func:`~repro.testkit.oracles.sequential_reference` whose ``optimize``
path is a value-only copy of Algorithm 1's dynamic-programming tables
(:func:`repro.algebra.engine.optimize`) with one planted off-by-one: the
glue-step table update reads ``w = w1 + w2 + 1`` instead of
``w = w1 + w2``.  The mutation is *silent* — nothing raises, every state
stays well-formed — it just inflates the optimum by one per glue step, so

    differential_check(case, reference=mutant_reference)

must report ``verdict`` discrepancies on any optimize case whose forest
has at least one parent/child edge (two vertices suffice), and the
shrinker must carry such a failure down to a tiny graph.  The mutation
test in ``tests/test_testkit_mutation.py`` pins exactly that, which is
the evidence that the oracle, the shrinker, and the replay pipeline are
alive end to end.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..algebra.cache import AutomatonCache
from ..algebra.symbols import (
    base_structure,
    enumerate_symbol_choices,
    owned_items,
)
from ..graph import Vertex
from ..treedepth import best_heuristic_forest
from .cases import Case
from .oracles import Reference, compiled_for, sequential_reference

__all__ = ["mutant_reference", "mutant_optimize_value"]


def mutant_optimize_value(case: Case, cache: AutomatonCache) -> Optional[int]:
    """The planted-off-by-one optimum for an ``optimize`` case.

    Value-only rerun of the :func:`repro.algebra.engine.optimize` table
    phase (no ARGOPT back-pointers).  The single behavioral difference is
    flagged with ``MUTATION`` below.
    """
    graph, forest = case.graph, best_heuristic_forest(case.graph)
    if graph.num_vertices() == 0:
        return None
    automaton = compiled_for(case, cache)
    var = case.scope[0]
    sign = 1 if case.sense == "max" else -1

    def weight_of(items) -> int:
        total = 0
        for item in items:
            if isinstance(item, tuple):
                total += graph.edge_weight(item[0], item[1])
            else:
                total += graph.vertex_weight(item)
        return total

    def better(candidate: int, incumbent: Optional[int]) -> bool:
        return incumbent is None or sign * candidate > sign * incumbent

    tables: Dict[Vertex, Dict[object, int]] = {}
    for v in forest.bottom_up_order():
        k = forest.depth_of(v)
        structure = base_structure(graph, forest, v)
        vertex_item, edge_items = owned_items(graph, forest, v)
        table: Dict[object, int] = {}
        for choice in enumerate_symbol_choices(
            structure, automaton.scope, vertex_item, edge_items
        ):
            state = automaton.leaf(choice.symbol)
            w = weight_of(choice.chosen[0])
            if better(w, table.get(state)):
                table[state] = w
        for child in forest.children(v):
            child_table = tables.pop(child)
            merged: Dict[object, int] = {}
            for s1, w1 in table.items():
                for s2, w2 in child_table.items():
                    s = automaton.glue(k, s1, s2)
                    w = w1 + w2 + 1  # MUTATION: off-by-one glue update
                    if better(w, merged.get(s)):
                        merged[s] = w
            table = merged
        forgotten: Dict[object, int] = {}
        for s, w in table.items():
            fs = automaton.forget(k, s)
            if better(w, forgotten.get(fs)):
                forgotten[fs] = w
        tables[v] = forgotten

    roots = forest.roots()
    combined = tables[roots[0]]
    for root in roots[1:]:
        nxt: Dict[object, int] = {}
        for s1, w1 in combined.items():
            for s2, w2 in tables[root].items():
                s = automaton.glue(0, s1, s2)
                w = w1 + w2 + 1  # MUTATION: off-by-one glue update
                if better(w, nxt.get(s)):
                    nxt[s] = w
        combined = nxt

    best: Optional[int] = None
    for s, w in combined.items():
        if automaton.accepts(s) and better(w, best):
            best = w
    return best


def mutant_reference(case: Case, cache: AutomatonCache) -> Reference:
    """A reference with a silent off-by-one in the optimize glue tables.

    Non-``optimize`` workloads delegate to the honest reference, so the
    mutation check isolates the optimize oracle path.
    """
    if case.workload != "optimize":
        return sequential_reference(case, cache)
    value = mutant_optimize_value(case, cache)
    if value is None:
        return Reference(verdict=False)
    return Reference(verdict=True, value=value)
