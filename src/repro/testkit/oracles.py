"""Differential oracles: sequential semantics vs the Session pipeline.

For one :class:`~repro.testkit.cases.Case` the oracle

1. computes the **sequential reference** with Algorithm 1
   (:mod:`repro.algebra.engine`) on a heuristic elimination forest, and —
   on small graphs — cross-checks it against the brute-force
   :mod:`repro.mso.semantics` ground truth;
2. runs the workload through :class:`repro.api.Session` for every
   ``engine`` × ``inbox_order`` cell, asserting verdict/value/count
   agreement with the reference and that the treedepth promise held;
3. asserts **byte-identity where PR 4's guarantees apply**: for a fixed
   (seed, inbox order, fault plan) the ``naive`` and ``batched`` engines
   must agree on rounds, messages, max payload bits, and class count —
   and a null fault plan must be byte-transparent;
4. exercises the **lossy axis** when the case carries a fault plan:
   under the redundancy-lockstep synchronizer the distributed verdict
   must equal the reference or the run must fail closed with
   :class:`~repro.errors.FaultToleranceExceeded` — silently wrong is the
   only failure.

Every violated assertion becomes a :class:`Discrepancy` value (never an
exception), so the fuzz loop can keep scanning, shrink, and write replay
files.  The ``reference`` hook exists for the harness's own mutation
check (:mod:`repro.testkit.mutants`): swap in a deliberately broken
sequential copy and the oracle must light up.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..algebra import check as seq_check
from ..algebra import count as seq_count
from ..algebra import optimize as seq_optimize
from ..algebra.cache import AutomatonCache
from ..api import Result, Session
from ..congest import ENGINES, INBOX_ORDERS
from ..errors import CertificationError, FaultToleranceExceeded, ReproError
from ..faults import FaultPlan, RetryPolicy
from ..mso import semantics
from ..treedepth import best_heuristic_forest
from .cases import Case

__all__ = [
    "Discrepancy",
    "Reference",
    "differential_check",
    "replay_roundtrip_check",
    "sequential_reference",
]

#: Brute-force cross-check bound: assignment spaces stay tiny below this.
_BRUTE_FORCE_VERTICES = 6


@dataclass(frozen=True)
class Discrepancy:
    """One violated conformance assertion, with enough context to triage."""

    case_id: str
    kind: str
    detail: str
    cell: str = ""
    note: str = field(default="", compare=False)

    def format(self) -> str:
        cell = f" [{self.cell}]" if self.cell else ""
        return f"{self.kind}{cell}: {self.detail} (case {self.case_id[:12]})"


@dataclass(frozen=True)
class Reference:
    """The sequential ground truth for one case."""

    verdict: Optional[bool] = None
    value: Optional[int] = None
    count: Optional[int] = None


def compiled_for(case: Case, cache: AutomatonCache):
    """The case's automaton through ``cache`` (same key a Session uses)."""
    labels = set()
    for v in case.graph.vertices():
        labels |= case.graph.vertex_labels(v)
    for u, v in case.graph.edges():
        labels |= case.graph.edge_labels(u, v)
    singletons = any(not v.sort.is_set for v in case.scope)
    return cache.automaton(
        case.formula, case.scope, d=case.d, labels=tuple(sorted(labels)),
        singletons=singletons,
    )


def sequential_reference(
    case: Case, cache: Optional[AutomatonCache] = None
) -> Reference:
    """Algorithm 1's answer for ``case`` on a heuristic forest."""
    cache = cache if cache is not None else AutomatonCache(persist=False)
    forest = best_heuristic_forest(case.graph)
    automaton = compiled_for(case, cache)
    if case.workload in ("decide", "certify"):
        return Reference(
            verdict=seq_check(case.formula, case.graph, forest, automaton)
        )
    if case.workload == "optimize":
        outcome = seq_optimize(
            case.formula, case.graph, forest, case.scope[0],
            maximize=case.sense == "max", automaton=automaton,
        )
        if outcome is None:
            return Reference(verdict=False)
        return Reference(verdict=True, value=outcome.value)
    if case.workload == "count":
        total = seq_count(
            case.formula, case.graph, forest, case.scope, automaton
        )
        return Reference(verdict=True, count=total)
    raise ReproError(f"no sequential reference for {case.workload!r}")


def _brute_force(case: Case, ref: Reference) -> List[Discrepancy]:
    """Second opinion on tiny graphs: enumerate assignments directly."""
    graph = case.graph
    if graph.num_vertices() > _BRUTE_FORCE_VERTICES:
        return []
    found: List[Discrepancy] = []
    if case.workload in ("decide", "certify"):
        truth = semantics.evaluate(graph, case.formula)
        if truth != ref.verdict:
            found.append(Discrepancy(
                case.case_id, "algebra-vs-bruteforce",
                f"Algorithm 1 says {ref.verdict}, enumeration says {truth}",
                note=case.note,
            ))
    elif case.workload == "count":
        truth = semantics.count_satisfying_assignments(
            graph, case.formula, case.scope
        )
        if truth != ref.count:
            found.append(Discrepancy(
                case.case_id, "algebra-vs-bruteforce",
                f"Algorithm 1 counts {ref.count}, enumeration counts {truth}",
                note=case.note,
            ))
    elif case.workload == "optimize":
        weights = {
            v: graph.vertex_weight(v) for v in graph.vertices()
        } if case.scope[0].sort.is_vertex_kind else {
            e: graph.edge_weight(*e) for e in graph.edges()
        }
        best = semantics.optimize(
            graph, case.formula, case.scope[0],
            maximize=case.sense == "max", weight=weights,
        )
        truth = None if best is None else best[0]
        if truth != ref.value:
            found.append(Discrepancy(
                case.case_id, "algebra-vs-bruteforce",
                f"Algorithm 1 optimum {ref.value}, enumeration {truth}",
                note=case.note,
            ))
    return found


def _run_cell(case: Case, session: Session) -> Result:
    if case.workload in ("decide", "certify"):
        return session.decide(case.formula)
    if case.workload == "optimize":
        return session.optimize(case.formula, sense=case.sense)
    return session.count(case.formula)


def _outcome_fields(case: Case, result: Result) -> Tuple[Any, ...]:
    if case.workload == "optimize":
        return (result.verdict, result.value)
    if case.workload == "count":
        return (result.verdict, result.count)
    return (result.verdict,)


def _expected_fields(case: Case, ref: Reference) -> Tuple[Any, ...]:
    if case.workload == "optimize":
        return (ref.verdict, ref.value)
    if case.workload == "count":
        return (ref.verdict, ref.count)
    return (ref.verdict,)


def _byte_signature(result: Result) -> Tuple[int, int, int, int]:
    return (result.rounds, result.messages, result.max_payload_bits,
            result.num_classes)


def differential_check(
    case: Case,
    *,
    reference: Optional[Callable[[Case, AutomatonCache], Reference]] = None,
    cache: Optional[AutomatonCache] = None,
    engines: Sequence[str] = ENGINES,
    orders: Sequence[str] = INBOX_ORDERS,
) -> List[Discrepancy]:
    """Run the full differential matrix for one case.

    Returns the (possibly empty) list of discrepancies.  ``reference``
    defaults to :func:`sequential_reference`; ``cache`` should be shared
    across cases so formula compilation amortizes (the fuzz runner passes
    one in-memory :class:`~repro.algebra.cache.AutomatonCache`).
    """
    reference = reference or sequential_reference
    cache = cache if cache is not None else AutomatonCache(persist=False)
    found: List[Discrepancy] = []

    ref = reference(case, cache)
    found.extend(_brute_force(case, ref))

    if case.workload == "certify":
        found.extend(_check_certify(case, ref, cache, engines))
        return found

    expected = _expected_fields(case, ref)
    cells: Dict[Tuple[str, str], Result] = {}
    for order in orders:
        for engine in engines:
            session = Session(
                case.graph, case.d, seed=case.seed, inbox_order=order,
                engine=engine, cache=cache,
            )
            result = _run_cell(case, session)
            cells[(order, engine)] = result
            cell = f"engine={engine} order={order}"
            if result.treedepth_exceeded:
                found.append(Discrepancy(
                    case.case_id, "treedepth",
                    f"promise d={case.d} rejected although the generator "
                    "guarantees it", cell, note=case.note,
                ))
                continue
            got = _outcome_fields(case, result)
            if got != expected:
                found.append(Discrepancy(
                    case.case_id, "verdict",
                    f"distributed {got!r} != sequential {expected!r}",
                    cell, note=case.note,
                ))
        # Byte-identity across engines for this fixed delivery order.
        signatures = {
            engine: _byte_signature(cells[(order, engine)])
            for engine in engines
            if not cells[(order, engine)].treedepth_exceeded
        }
        if len(set(signatures.values())) > 1:
            found.append(Discrepancy(
                case.case_id, "engine-bytes",
                f"engines disagree on (rounds, messages, bits, classes): "
                f"{signatures!r}", f"order={order}", note=case.note,
            ))

    found.extend(_check_null_plan(case, cells, cache))
    if case.plan is not None:
        found.extend(_check_lossy(case, ref, cache))
    return found


def _check_null_plan(
    case: Case,
    cells: Dict[Tuple[str, str], Result],
    cache: AutomatonCache,
) -> List[Discrepancy]:
    """A null fault plan must be byte-for-byte invisible."""
    baseline = cells.get(("arrival", "batched"))
    if baseline is None or baseline.treedepth_exceeded:
        return []
    session = Session(
        case.graph, case.d, seed=case.seed, inbox_order="arrival",
        engine="batched", cache=cache, faults=FaultPlan(),
    )
    nulled = _run_cell(case, session)
    if (_byte_signature(nulled) != _byte_signature(baseline)
            or _outcome_fields(case, nulled) != _outcome_fields(case, baseline)):
        return [Discrepancy(
            case.case_id, "null-plan",
            f"null plan changed the run: {_byte_signature(nulled)!r} vs "
            f"{_byte_signature(baseline)!r}", "engine=batched order=arrival",
            note=case.note,
        )]
    return []


def _check_lossy(
    case: Case, ref: Reference, cache: AutomatonCache
) -> List[Discrepancy]:
    """Lossy plan + retry: agree with the reference or fail closed."""
    session = Session(
        case.graph, case.d, seed=case.seed, faults=case.plan,
        retry=RetryPolicy(attempts=max(1, case.retry_attempts)),
        cache=cache,
    )
    try:
        result = _run_cell(case, session)
    except FaultToleranceExceeded:
        return []  # an explicit refusal is never wrong
    if result.treedepth_exceeded:
        return []
    got = _outcome_fields(case, result)
    expected = _expected_fields(case, ref)
    if got != expected:
        return [Discrepancy(
            case.case_id, "lossy-verdict",
            f"under {case.plan.describe()} the pipeline answered {got!r} "
            f"instead of {expected!r} (silently wrong)",
            f"retries={case.retry_attempts}", note=case.note,
        )]
    return []


def replay_roundtrip_check(
    case: Case, cache: Optional[AutomatonCache] = None
) -> List[Discrepancy]:
    """``Result.replay_args`` must survive JSON and reproduce the run.

    Runs the case once, pushes the session's replay arguments through
    their JSON encoding (exactly what a
    :class:`~repro.obs.reports.RunReport` stores), rebuilds a session
    with :meth:`repro.api.Session.from_replay`, and demands the rerun be
    byte-identical.  A fail-closed original run is fine — there is no
    result to replay — but a replay that diverges from a completed run
    breaks the reproducibility contract.
    """
    import json as _json

    cache = cache if cache is not None else AutomatonCache(persist=False)
    retry = (
        RetryPolicy(attempts=max(1, case.retry_attempts))
        if case.plan is not None else None
    )
    session = Session(
        case.graph, case.d, seed=case.seed, faults=case.plan, retry=retry,
        cache=cache,
    )
    try:
        original = _run_cell(case, session)
    except FaultToleranceExceeded:
        return []
    encoded = _json.loads(_json.dumps(session._replay_json()))
    rebuilt = Session.from_replay(case.graph, case.d, encoded, cache=cache)
    try:
        rerun = _run_cell(case, rebuilt)
    except FaultToleranceExceeded:
        return [Discrepancy(
            case.case_id, "replay",
            "original run completed but its replay failed closed",
            note=case.note,
        )]
    if (_byte_signature(rerun) != _byte_signature(original)
            or _outcome_fields(case, rerun) != _outcome_fields(case, original)):
        return [Discrepancy(
            case.case_id, "replay",
            f"replayed run {_outcome_fields(case, rerun)!r}/"
            f"{_byte_signature(rerun)!r} != original "
            f"{_outcome_fields(case, original)!r}/"
            f"{_byte_signature(original)!r}", note=case.note,
        )]
    return []


def _check_certify(
    case: Case,
    ref: Reference,
    cache: AutomatonCache,
    engines: Sequence[str],
) -> List[Discrepancy]:
    """certify accepts exactly the sequentially-true formulas."""
    found: List[Discrepancy] = []
    for engine in engines:
        session = Session(case.graph, case.d, seed=case.seed,
                          engine=engine, cache=cache)
        cell = f"engine={engine}"
        try:
            result = session.certify(case.formula)
        except CertificationError:
            if ref.verdict:
                found.append(Discrepancy(
                    case.case_id, "certify",
                    "prover refused a sequentially-true formula",
                    cell, note=case.note,
                ))
            continue
        if not ref.verdict:
            found.append(Discrepancy(
                case.case_id, "certify",
                "prover certified a sequentially-false formula",
                cell, note=case.note,
            ))
        elif result.verdict is not True:
            found.append(Discrepancy(
                case.case_id, "certify",
                f"verifier rejected a valid certificate "
                f"(verdict={result.verdict!r})", cell, note=case.note,
            ))
    return found
