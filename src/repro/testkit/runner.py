"""The fuzz loop: replay the corpus, generate fresh cases, shrink hits.

:func:`run_fuzz` is the engine behind ``repro fuzz``:

1. **replay** — every case in ``config.corpus_dir`` runs through the full
   differential matrix first, so committed regressions stay pinned;
2. **generate** — ``config.cases`` fresh cases from
   :class:`~repro.testkit.generators.CaseGenerator` seeded with
   ``config.seed``; every ``config.metamorphic_every``-th case also runs
   the metamorphic relations;
3. **shrink** — the first ``config.max_shrinks`` failing cases are
   greedily minimized with the same oracle and written to the corpus as
   content-addressed replay files (when a corpus directory is set).

One in-memory :class:`~repro.algebra.cache.AutomatonCache` is shared by
the whole run so formula compilation amortizes across cases; the cache is
deliberately non-persistent so a fuzz run never mutates the user's disk
cache.  Progress counters land in the process metrics registry
(``repro_fuzz_cases_total``, ``repro_fuzz_discrepancies_total``,
``repro_fuzz_shrink_steps_total``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..algebra.cache import AutomatonCache
from ..obs.registry import registry
from .cases import Case
from .corpus import iter_corpus, save_case
from .generators import CaseGenerator
from .metamorphic import check_metamorphic
from .oracles import (
    Discrepancy,
    Reference,
    differential_check,
    replay_roundtrip_check,
)
from .shrink import shrink_case

__all__ = ["FuzzConfig", "FuzzReport", "run_fuzz"]


@dataclass(frozen=True)
class FuzzConfig:
    """Everything one fuzz run depends on (mirrors the CLI flags)."""

    cases: int = 100
    seed: int = 0
    corpus_dir: Optional[str] = None
    max_vertices: int = 12
    metamorphic_every: int = 5
    max_shrinks: int = 3
    shrink_budget: int = 200
    reference: Optional[Callable[[Case, AutomatonCache], Reference]] = None


@dataclass
class FuzzReport:
    """What a fuzz run found, and where the evidence lives."""

    cases_run: int = 0
    replayed: int = 0
    discrepancies: List[Discrepancy] = field(default_factory=list)
    shrunk: List[Tuple[Case, Case]] = field(default_factory=list)
    replay_files: List[str] = field(default_factory=list)
    errors: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.discrepancies and not self.errors

    def summary(self) -> str:
        kinds: Dict[str, int] = {}
        for d in self.discrepancies:
            kinds[d.kind] = kinds.get(d.kind, 0) + 1
        breakdown = (
            " (" + ", ".join(f"{k}×{n}" for k, n in sorted(kinds.items())) + ")"
            if kinds else ""
        )
        return (
            f"{self.cases_run} cases ({self.replayed} replayed): "
            f"{len(self.discrepancies)} discrepancies{breakdown}, "
            f"{len(self.errors)} harness errors, "
            f"{len(self.shrunk)} shrunk"
        )


def _check_one(
    case: Case,
    cache: AutomatonCache,
    config: FuzzConfig,
    *,
    metamorphic: bool,
) -> List[Discrepancy]:
    found = differential_check(case, reference=config.reference, cache=cache)
    if metamorphic and case.workload != "certify":
        found.extend(check_metamorphic(case, cache=cache))
        found.extend(replay_roundtrip_check(case, cache=cache))
    return found


def _shrink_and_save(
    case: Case,
    found: List[Discrepancy],
    cache: AutomatonCache,
    config: FuzzConfig,
    report: FuzzReport,
) -> None:
    def still_failing(candidate: Case) -> bool:
        return bool(
            differential_check(candidate, reference=config.reference,
                               cache=cache)
        )

    small, checks = shrink_case(case, still_failing,
                                max_checks=config.shrink_budget)
    registry().counter(
        "repro_fuzz_shrink_steps_total",
        "Oracle invocations spent minimizing failing fuzz cases.",
    ).inc(checks)
    report.shrunk.append((case, small))
    if config.corpus_dir:
        final = differential_check(small, reference=config.reference,
                                   cache=cache)
        meta = {
            "kinds": sorted({d.kind for d in (final or found)}),
            "shrunk_from": case.case_id,
            "original_note": case.note,
        }
        report.replay_files.append(
            save_case(small, config.corpus_dir, meta=meta)
        )


def run_fuzz(
    config: FuzzConfig,
    *,
    log: Optional[Callable[[str], None]] = None,
) -> FuzzReport:
    """Run one fuzz campaign; see the module docstring for the phases."""
    emit = log or (lambda _line: None)
    cache = AutomatonCache(persist=False)
    report = FuzzReport()
    reg = registry()
    cases_total = reg.counter(
        "repro_fuzz_cases_total",
        "Conformance cases run by the fuzz harness.", ("source",),
    )
    disc_total = reg.counter(
        "repro_fuzz_discrepancies_total",
        "Conformance discrepancies found by the fuzz harness.", ("kind",),
    )

    def record(case: Case, found: List[Discrepancy], source: str) -> None:
        report.cases_run += 1
        cases_total.inc(source=source)
        for d in found:
            disc_total.inc(kind=d.kind)
            emit(f"FAIL {d.format()}")
        report.discrepancies.extend(found)

    # Phase 1: pinned corpus.
    if config.corpus_dir:
        for path, case, _meta in iter_corpus(config.corpus_dir):
            try:
                found = _check_one(case, cache, config, metamorphic=False)
            except Exception as exc:  # harness bug, not a conformance gap
                report.errors.append(f"{path}: {type(exc).__name__}: {exc}")
                continue
            report.replayed += 1
            record(case, found, "corpus")

    # Phase 2: fresh cases.
    generator = CaseGenerator(config.seed, max_vertices=config.max_vertices)
    for index in range(config.cases):
        case = generator.case()
        metamorphic = (
            config.metamorphic_every > 0
            and index % config.metamorphic_every == 0
        )
        try:
            found = _check_one(case, cache, config, metamorphic=metamorphic)
        except Exception as exc:
            report.errors.append(
                f"{case.note or case.case_id[:12]}: "
                f"{type(exc).__name__}: {exc}"
            )
            continue
        record(case, found, "generated")
        if found and len(report.shrunk) < config.max_shrinks:
            emit(f"shrinking {case.describe()}")
            _shrink_and_save(case, found, cache, config, report)

    emit(report.summary())
    return report
