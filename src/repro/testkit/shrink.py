"""Greedy minimizer for failing conformance cases.

A fuzz hit on a 12-vertex graph with a 4-connective formula is evidence;
a 3-vertex path with ``adj(x, y)`` is a bug report.  The shrinker
repeatedly tries, in deterministic order,

* dropping a vertex (keeping the graph connected and non-empty),
* dropping an edge (keeping the graph connected),
* simplifying the formula — deleting one conjunct/disjunct, unwrapping a
  negation, or replacing a whole subtree with ``true``/``false`` — while
  the result stays well-sorted for the case's scope and serializable,

and accepts the first candidate on which ``failing`` still returns True,
restarting until no candidate fails (a greedy local minimum).  The
treedepth promise is recomputed from the shrunk graph, so the case stays
honest.  ``failing`` is typically ``lambda c: bool(differential_check(c,
reference=..., cache=...))`` — the same oracle that flagged the case.
"""

from __future__ import annotations

from typing import Callable, Iterator, Tuple

from ..errors import FormulaError, ReproError
from ..mso import syntax as sx
from .cases import Case, formula_to_source

__all__ = ["shrink_case", "graph_candidates", "formula_candidates"]


def graph_candidates(case: Case) -> Iterator[Case]:
    """Smaller graphs: one vertex or one edge fewer, still connected."""
    graph = case.graph
    for v in graph.vertices():
        if graph.num_vertices() <= 1:
            break
        smaller = graph.without_vertices([v])
        if smaller.num_vertices() >= 1 and smaller.is_connected():
            yield case.with_graph(smaller)
    for u, v in graph.edges():
        smaller = graph.copy()
        smaller.remove_edge(u, v)
        if smaller.is_connected():
            yield case.with_graph(smaller)


def _subtree_count(formula: sx.Formula) -> int:
    total = 1
    for child in _children(formula):
        total += _subtree_count(child)
    return total


def _children(formula: sx.Formula) -> Tuple[sx.Formula, ...]:
    if isinstance(formula, sx.Not):
        return (formula.inner,)
    if isinstance(formula, (sx.And, sx.Or)):
        return formula.parts
    if isinstance(formula, (sx.Exists, sx.Forall)):
        return (formula.body,)
    return ()


def _rebuild(formula: sx.Formula,
             children: Tuple[sx.Formula, ...]) -> sx.Formula:
    if isinstance(formula, sx.Not):
        return sx.Not(children[0])
    if isinstance(formula, sx.And):
        return sx.And(children)
    if isinstance(formula, sx.Or):
        return sx.Or(children)
    if isinstance(formula, sx.Exists):
        return sx.Exists(formula.var, children[0])
    if isinstance(formula, sx.Forall):
        return sx.Forall(formula.var, children[0])
    raise ReproError(f"{type(formula).__name__} has no children to rebuild")


def _simplifications(formula: sx.Formula) -> Iterator[sx.Formula]:
    """One-step simplifications of the root, then of each subtree."""
    # Replace the whole tree by a constant (most aggressive first).
    if not isinstance(formula, sx.Truth):
        yield sx.Truth(True)
        yield sx.Truth(False)
    if isinstance(formula, sx.Not):
        yield formula.inner
    if isinstance(formula, (sx.And, sx.Or)) and len(formula.parts) > 1:
        for i in range(len(formula.parts)):
            rest = formula.parts[:i] + formula.parts[i + 1:]
            yield rest[0] if len(rest) == 1 else _rebuild(formula, rest)
    # Recurse: simplify one child, keep the rest.
    children = _children(formula)
    for i, child in enumerate(children):
        for simpler in _simplifications(child):
            parts = children[:i] + (simpler,) + children[i + 1:]
            yield _rebuild(formula, parts)


def formula_candidates(case: Case) -> Iterator[Case]:
    """Well-formed, serializable one-step formula simplifications."""
    for simpler in _simplifications(case.formula):
        try:
            sx.validate(simpler, allowed_free=case.scope)
            formula_to_source(simpler)  # keep every shrink replayable
        except (FormulaError, ReproError):
            continue
        yield case.with_formula(simpler)


def _candidates(case: Case) -> Iterator[Case]:
    yield from graph_candidates(case)
    yield from formula_candidates(case)


def shrink_case(
    case: Case,
    failing: Callable[[Case], bool],
    *,
    max_checks: int = 400,
) -> Tuple[Case, int]:
    """Greedily minimize ``case`` while ``failing`` stays True.

    Returns ``(smallest case found, number of oracle invocations)``.
    ``max_checks`` bounds the total oracle budget so a pathological
    failure cannot stall the fuzz loop.
    """
    checks = 0
    current = case
    improved = True
    while improved and checks < max_checks:
        improved = False
        for candidate in _candidates(current):
            if checks >= max_checks:
                break
            checks += 1
            try:
                still_failing = failing(candidate)
            except Exception:
                # A candidate that crashes the oracle is not a valid
                # minimization step; skip it.
                continue
            if still_failing:
                current = candidate
                improved = True
                break
    return current, checks
