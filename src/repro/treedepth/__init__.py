"""Treedepth toolkit: elimination forests, exact/heuristic treedepth,
canonical tree decompositions (paper Sections 2-3)."""

from .decomposition import TreeDecomposition, canonical_tree_decomposition
from .elimination import EliminationForest, forest_from_order
from .exact import (
    degeneracy,
    optimal_elimination_forest,
    treedepth,
    treedepth_at_most,
    treedepth_lower_bound,
)
from .heuristics import (
    best_heuristic_forest,
    centroid_elimination_forest,
    dfs_elimination_forest,
    greedy_elimination_forest,
)

__all__ = [
    "EliminationForest",
    "TreeDecomposition",
    "best_heuristic_forest",
    "canonical_tree_decomposition",
    "centroid_elimination_forest",
    "degeneracy",
    "dfs_elimination_forest",
    "forest_from_order",
    "greedy_elimination_forest",
    "optimal_elimination_forest",
    "treedepth",
    "treedepth_at_most",
    "treedepth_lower_bound",
]
