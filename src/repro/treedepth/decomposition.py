"""Tree decompositions (Definition 2.3) and the canonical construction.

Lemma 2.4: given an elimination forest T of depth d, assigning each tree
node u the bag B(u) = {u} ∪ ancestors(u) yields a tree decomposition of
width d - 1 whose tree is T itself.  The distributed protocols work on this
canonical decomposition exclusively, but the class is general enough to
validate arbitrary decompositions in tests.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Set

from ..errors import DecompositionError
from ..graph import Graph, Vertex
from .elimination import EliminationForest


class TreeDecomposition:
    """A rooted tree decomposition: a forest of bag-nodes plus bag contents."""

    def __init__(
        self,
        parent: Dict[Vertex, Optional[Vertex]],
        bags: Dict[Vertex, Iterable[Vertex]],
    ):
        if set(parent) != set(bags):
            raise DecompositionError("parent map and bags must share node ids")
        self._tree = EliminationForest(parent)
        self._bags: Dict[Vertex, FrozenSet[Vertex]] = {
            node: frozenset(contents) for node, contents in bags.items()
        }

    # ------------------------------------------------------------------
    def nodes(self) -> List[Vertex]:
        return self._tree.vertices()

    def bag(self, node: Vertex) -> FrozenSet[Vertex]:
        if node not in self._bags:
            raise DecompositionError(f"unknown decomposition node {node!r}")
        return self._bags[node]

    def tree(self) -> EliminationForest:
        return self._tree

    def width(self) -> int:
        """Maximum bag size minus one."""
        return max((len(b) for b in self._bags.values()), default=0) - 1

    # ------------------------------------------------------------------
    def is_valid_for(self, graph: Graph) -> bool:
        try:
            self.validate_for(graph)
        except DecompositionError:
            return False
        return True

    def validate_for(self, graph: Graph) -> None:
        """Check the three tree-decomposition conditions for ``graph``."""
        covered: Set[Vertex] = set()
        for bag in self._bags.values():
            covered |= bag
        missing = set(graph.vertices()) - covered
        if missing:
            raise DecompositionError(f"vertices not covered by any bag: {sorted(missing)}")
        extras = covered - set(graph.vertices())
        if extras:
            raise DecompositionError(f"bags mention unknown vertices: {sorted(extras)}")
        for u, v in graph.edges():
            if not any(u in bag and v in bag for bag in self._bags.values()):
                raise DecompositionError(f"edge ({u!r}, {v!r}) not covered by any bag")
        # Connectivity: nodes whose bags contain v must induce a connected
        # subtree of the decomposition tree.
        for v in graph.vertices():
            holders = [node for node, bag in self._bags.items() if v in bag]
            if not self._nodes_connected(holders):
                raise DecompositionError(
                    f"bags containing {v!r} do not form a connected subtree"
                )

    def _nodes_connected(self, nodes: List[Vertex]) -> bool:
        node_set = set(nodes)
        if len(node_set) <= 1:
            return True
        # Build adjacency restricted to node_set via parent pointers.
        adjacency: Dict[Vertex, List[Vertex]] = {n: [] for n in node_set}
        for n in node_set:
            p = self._tree.parent(n)
            if p is not None and p in node_set:
                adjacency[n].append(p)
                adjacency[p].append(n)
        start = nodes[0]
        seen = {start}
        stack = [start]
        while stack:
            cur = stack.pop()
            for nb in adjacency[cur]:
                if nb not in seen:
                    seen.add(nb)
                    stack.append(nb)
        return seen == node_set


def canonical_tree_decomposition(forest: EliminationForest) -> TreeDecomposition:
    """Lemma 2.4: bags are root paths; width = depth(forest) - 1."""
    bags = {v: forest.root_path(v) for v in forest.vertices()}
    return TreeDecomposition(forest.parent_map(), bags)
