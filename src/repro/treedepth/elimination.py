"""Elimination forests (Definition 2.1).

An elimination forest of a graph G is a rooted forest on V(G) such that the
endpoints of every edge of G are in ancestor-descendant relation.  The
treedepth of G is the minimum depth of such a forest, where depth counts
vertices on a root-to-leaf path (the paper's convention: a single vertex has
depth 1).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..errors import DecompositionError
from ..graph import Graph, Vertex


class EliminationForest:
    """A rooted forest over a vertex set, stored as a parent map."""

    def __init__(self, parent: Dict[Vertex, Optional[Vertex]]):
        self._parent = dict(parent)
        self._children: Dict[Vertex, List[Vertex]] = {v: [] for v in self._parent}
        self._roots: List[Vertex] = []
        for v, p in self._parent.items():
            if p is None:
                self._roots.append(v)
            else:
                if p not in self._parent:
                    raise DecompositionError(f"parent {p!r} of {v!r} is not a vertex")
                self._children[p].append(v)
        self._roots.sort()
        for v in self._children:
            self._children[v].sort()
        self._depth: Dict[Vertex, int] = {}
        self._compute_depths()

    def _compute_depths(self) -> None:
        for root in self._roots:
            stack = [(root, 1)]
            while stack:
                v, d = stack.pop()
                if v in self._depth:
                    raise DecompositionError("forest contains a cycle or shared node")
                self._depth[v] = d
                for c in self._children[v]:
                    stack.append((c, d + 1))
        if len(self._depth) != len(self._parent):
            raise DecompositionError("parent map contains a cycle")

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    def vertices(self) -> List[Vertex]:
        return sorted(self._parent)

    def parent(self, v: Vertex) -> Optional[Vertex]:
        self._require(v)
        return self._parent[v]

    def children(self, v: Vertex) -> List[Vertex]:
        self._require(v)
        return list(self._children[v])

    def roots(self) -> List[Vertex]:
        return list(self._roots)

    def is_tree(self) -> bool:
        return len(self._roots) == 1

    def depth_of(self, v: Vertex) -> int:
        """Depth of vertex ``v`` (roots have depth 1)."""
        self._require(v)
        return self._depth[v]

    def depth(self) -> int:
        """Depth of the forest: the maximum vertex depth."""
        return max(self._depth.values(), default=0)

    def root_path(self, v: Vertex) -> List[Vertex]:
        """Vertices on the path from the root down to ``v``, inclusive."""
        self._require(v)
        chain: List[Vertex] = []
        cur: Optional[Vertex] = v
        while cur is not None:
            chain.append(cur)
            cur = self._parent[cur]
        chain.reverse()
        return chain

    def ancestors(self, v: Vertex) -> List[Vertex]:
        """Strict ancestors of ``v``, from the root downwards."""
        return self.root_path(v)[:-1]

    def is_ancestor(self, a: Vertex, v: Vertex) -> bool:
        """Is ``a`` a (non-strict) ancestor of ``v``?"""
        self._require(a)
        cur: Optional[Vertex] = v
        while cur is not None:
            if cur == a:
                return True
            cur = self._parent[cur]
        return False

    def subtree(self, v: Vertex) -> List[Vertex]:
        """All descendants of ``v`` including ``v`` itself."""
        self._require(v)
        out: List[Vertex] = []
        stack = [v]
        while stack:
            u = stack.pop()
            out.append(u)
            stack.extend(self._children[u])
        return sorted(out)

    def topological_order(self) -> List[Vertex]:
        """Vertices ordered root-first (parents before children)."""
        order: List[Vertex] = []
        stack = list(reversed(self._roots))
        while stack:
            v = stack.pop()
            order.append(v)
            stack.extend(reversed(self._children[v]))
        return order

    def bottom_up_order(self) -> List[Vertex]:
        """Vertices ordered children-first (reverse topological)."""
        return list(reversed(self.topological_order()))

    def parent_map(self) -> Dict[Vertex, Optional[Vertex]]:
        return dict(self._parent)

    # ------------------------------------------------------------------
    # Validity with respect to a graph
    # ------------------------------------------------------------------
    def is_valid_for(self, graph: Graph) -> bool:
        """Is this a valid elimination forest of ``graph``?

        Checks the vertex sets match and every graph edge joins an
        ancestor-descendant pair.
        """
        if set(self._parent) != set(graph.vertices()):
            return False
        return all(
            self.is_ancestor(u, v) or self.is_ancestor(v, u)
            for u, v in graph.edges()
        )

    def validate_for(self, graph: Graph) -> None:
        """Raise :class:`DecompositionError` if invalid for ``graph``."""
        if set(self._parent) != set(graph.vertices()):
            raise DecompositionError("forest and graph have different vertex sets")
        for u, v in graph.edges():
            if not (self.is_ancestor(u, v) or self.is_ancestor(v, u)):
                raise DecompositionError(
                    f"edge ({u!r}, {v!r}) violates the ancestry condition"
                )

    def is_subforest_of(self, graph: Graph) -> bool:
        """Is every tree edge also a graph edge?  (Lemma 2.5 hypothesis.)"""
        return all(
            graph.has_edge(v, p)
            for v, p in self._parent.items()
            if p is not None
        )

    def _require(self, v: Vertex) -> None:
        if v not in self._parent:
            raise DecompositionError(f"vertex {v!r} is not in the forest")

    def __repr__(self) -> str:
        return (
            f"EliminationForest(n={len(self._parent)}, "
            f"roots={len(self._roots)}, depth={self.depth()})"
        )


def forest_from_order(graph: Graph, order: Sequence[Vertex]) -> EliminationForest:
    """Build the elimination forest induced by an elimination *order*.

    Processing ``order`` left to right, each vertex becomes a root of the
    forest for the component of the remaining graph it is removed from; its
    children are the vertices chosen next inside each sub-component.  This is
    the standard order→forest correspondence; the forest depth equals the
    "vertex ranking" quality of the order.
    """
    position = {v: i for i, v in enumerate(order)}
    if set(position) != set(graph.vertices()):
        raise DecompositionError("order must enumerate the graph's vertices")

    parent: Dict[Vertex, Optional[Vertex]] = {}

    def recurse(component: List[Vertex], above: Optional[Vertex]) -> None:
        sub = graph.induced_subgraph(component)
        for comp in sub.connected_components():
            top = min(comp, key=lambda v: position[v])
            parent[top] = above
            rest = [v for v in comp if v != top]
            if rest:
                recurse(rest, top)

    recurse(graph.vertices(), None)
    return EliminationForest(parent)
