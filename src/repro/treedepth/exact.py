"""Exact treedepth via the Lemma 2.2 recursion.

    td(G) = 1                                  if |V| = 1
          = 1 + min_v td(G - v)                if G is connected
          = max over components                otherwise

The recursion is memoized on vertex subsets, so it is exponential in n —
use it as a ground-truth oracle on small graphs (n up to ~16), which is
exactly what the test-suite and benchmarks need.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Optional, Tuple

from ..graph import Graph, Vertex
from ..obs.profile import profiled
from .elimination import EliminationForest

ParentMap = Dict[Vertex, Optional[Vertex]]


def degeneracy(graph: Graph) -> int:
    """Graph degeneracy (max over subgraphs of the min degree).

    Computed by repeatedly removing a minimum-degree vertex.  Used as a
    treedepth lower bound: degeneracy <= treewidth <= treedepth - 1.
    """
    degrees = {v: graph.degree(v) for v in graph.vertices()}
    adj = {v: set(graph.neighbors(v)) for v in graph.vertices()}
    best = 0
    remaining = set(degrees)
    while remaining:
        v = min(remaining, key=lambda u: (degrees[u], u))
        best = max(best, degrees[v])
        remaining.discard(v)
        for u in adj[v]:
            if u in remaining:
                degrees[u] -= 1
                adj[u].discard(v)
    return best


def treedepth_lower_bound(graph: Graph) -> int:
    """A cheap valid lower bound on td(G)."""
    if graph.num_vertices() == 0:
        return 0
    bound = 1 + degeneracy(graph)
    if graph.is_connected() and graph.num_vertices() > 1:
        # G contains a path on diam+1 vertices; td(P_n) = ceil(log2(n+1)).
        diam = graph.diameter()
        path_vertices = diam + 1
        bound = max(bound, _ceil_log2(path_vertices + 1))
    return bound


def _ceil_log2(x: int) -> int:
    """ceil(log2(x)) for x >= 1."""
    return (x - 1).bit_length()


class _TreedepthSolver:
    """Memoized exact solver producing an optimal elimination forest."""

    def __init__(self, graph: Graph):
        self._graph = graph
        self._memo: Dict[FrozenSet[Vertex], Tuple[int, ParentMap]] = {}

    def solve(self) -> Tuple[int, ParentMap]:
        if self._graph.num_vertices() == 0:
            return 0, {}
        with profiled("treedepth.exact"):
            return self._solve(frozenset(self._graph.vertices()))

    def _solve(self, vs: FrozenSet[Vertex]) -> Tuple[int, ParentMap]:
        if vs in self._memo:
            return self._memo[vs]
        result = self._compute(vs)
        self._memo[vs] = result
        return result

    def _compute(self, vs: FrozenSet[Vertex]) -> Tuple[int, ParentMap]:
        if len(vs) == 1:
            v = next(iter(vs))
            return 1, {v: None}
        sub = self._graph.induced_subgraph(vs)
        components = sub.connected_components()
        if len(components) > 1:
            depth = 0
            parent: ParentMap = {}
            for comp in components:
                d, pm = self._solve(frozenset(comp))
                depth = max(depth, d)
                parent.update(pm)
            return depth, parent
        best_depth: Optional[int] = None
        best_parent: ParentMap = {}
        for v in sorted(vs):
            d, pm = self._solve(vs - {v})
            if best_depth is not None and 1 + d >= best_depth:
                continue
            best_depth = 1 + d
            best_parent = {u: (v if p is None else p) for u, p in pm.items()}
            best_parent[v] = None
        assert best_depth is not None
        return best_depth, best_parent


def treedepth(graph: Graph) -> int:
    """The exact treedepth of ``graph`` (exponential time; small graphs)."""
    depth, _ = _TreedepthSolver(graph).solve()
    return depth


def optimal_elimination_forest(graph: Graph) -> EliminationForest:
    """An elimination forest of minimum depth (= treedepth)."""
    _, parent = _TreedepthSolver(graph).solve()
    forest = EliminationForest(parent)
    forest.validate_for(graph)
    return forest


def treedepth_at_most(graph: Graph, d: int) -> Optional[EliminationForest]:
    """An elimination forest of depth <= d, or None if td(G) > d."""
    depth, parent = _TreedepthSolver(graph).solve()
    if depth > d:
        return None
    return EliminationForest(parent)
