"""Polynomial-time elimination-forest heuristics.

The distributed protocol (Algorithm 2) builds an elimination tree that is a
*subtree of G* and therefore, by Lemma 2.5, has depth at most 2^{td(G)}.
The sequential analogue of that guarantee is the DFS forest: in an
undirected DFS every non-tree edge is a back edge, so a DFS forest is always
an elimination forest, and if it is a subforest of G its depth is bounded by
2^{td(G)}.

For trees we also provide the centroid decomposition, which achieves the
optimal O(log n) depth and is used to sanity-check the quality gap.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..errors import DecompositionError
from ..graph import Graph, Vertex
from ..obs.profile import profiled
from .elimination import EliminationForest, forest_from_order


def dfs_elimination_forest(graph: Graph, root: Optional[Vertex] = None) -> EliminationForest:
    """The DFS forest of ``graph`` (rooted at ``root`` in its component).

    Always a valid elimination forest; always a subforest of G; depth at
    most 2^{td(G)} by Lemma 2.5.
    """
    parent: Dict[Vertex, Optional[Vertex]] = {}
    visited = set()

    def dfs(start: Vertex) -> None:
        parent[start] = None
        visited.add(start)
        # Iterative DFS that records tree edges on first discovery.
        iters = {start: iter(graph.neighbors(start))}
        path: List[Vertex] = [start]
        while path:
            v = path[-1]
            advanced = False
            for u in iters[v]:
                if u not in visited:
                    visited.add(u)
                    parent[u] = v
                    iters[u] = iter(graph.neighbors(u))
                    path.append(u)
                    advanced = True
                    break
            if not advanced:
                path.pop()

    starts = graph.vertices()
    if root is not None:
        if not graph.has_vertex(root):
            raise DecompositionError(f"unknown root {root!r}")
        starts = [root] + [v for v in starts if v != root]
    for v in starts:
        if v not in visited:
            dfs(v)
    forest = EliminationForest(parent)
    forest.validate_for(graph)
    return forest


def centroid_elimination_forest(tree: Graph) -> EliminationForest:
    """Centroid decomposition of a forest: an elimination forest of depth
    O(log n).  Raises if the input graph contains a cycle.
    """
    from ..graph.properties import is_acyclic

    if not is_acyclic(tree):
        raise DecompositionError("centroid decomposition requires a forest")

    parent: Dict[Vertex, Optional[Vertex]] = {}

    def centroid(component: List[Vertex]) -> Vertex:
        sub = tree.induced_subgraph(component)
        n = len(component)
        best_v = component[0]
        best_score = n + 1
        for v in component:
            pieces = sub.without_vertices([v]).connected_components()
            score = max((len(p) for p in pieces), default=0)
            if score < best_score or (score == best_score and v < best_v):
                best_score = score
                best_v = v
        return best_v

    def recurse(component: List[Vertex], above: Optional[Vertex]) -> None:
        c = centroid(component)
        parent[c] = above
        sub = tree.induced_subgraph(component)
        for piece in sub.without_vertices([c]).connected_components():
            recurse(piece, c)

    for comp in tree.connected_components():
        recurse(comp, None)
    forest = EliminationForest(parent)
    forest.validate_for(tree)
    return forest


def greedy_elimination_forest(graph: Graph) -> EliminationForest:
    """Order-based heuristic: max-degree-first elimination order.

    Eliminating high-degree vertices first tends to shatter the graph
    quickly, keeping the forest shallow.  Any order yields a *valid*
    elimination forest via :func:`forest_from_order`; only the depth varies.
    """
    order = sorted(graph.vertices(), key=lambda v: (-graph.degree(v), v))
    forest = forest_from_order(graph, order)
    forest.validate_for(graph)
    return forest


def best_heuristic_forest(graph: Graph) -> EliminationForest:
    """The shallowest forest among the implemented heuristics."""
    with profiled("treedepth.heuristic_search"):
        candidates = [
            dfs_elimination_forest(graph), greedy_elimination_forest(graph)
        ]
        from ..graph.properties import is_acyclic

        if is_acyclic(graph):
            candidates.append(centroid_elimination_forest(graph))
        return min(candidates, key=lambda f: f.depth())
