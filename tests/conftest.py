"""Shared pytest configuration.

Hypothesis settings are centralized here: the ``ci`` profile disables
per-example deadlines (automaton compilation on a cold cache routinely
blows the default 200 ms on shared CI runners, and wall-clock flakiness
is exactly what a conformance suite must not have) and keeps
``derandomize=False`` so shrinking still explores.  Individual tests
tune ``max_examples`` only; none should pass ``deadline=`` inline.
"""

try:
    from hypothesis import settings
except ImportError:  # pragma: no cover - hypothesis is a baked-in dev dep
    settings = None

if settings is not None:
    settings.register_profile("ci", deadline=None, print_blob=True)
    settings.load_profile("ci")
