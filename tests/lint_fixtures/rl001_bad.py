"""RL001 golden fixture: every finding here is a locality violation.

This file is parsed by the linter, never imported.
"""

from repro.congest import NodeContext, node_program
from repro.graph import Graph

WORLD = Graph()
CACHE = {}


def make(graph: Graph):
    @node_program
    def program(ctx: NodeContext):
        degree = len(graph.neighbors(ctx.node))  # closure Graph
        CACHE[ctx.node] = degree  # module-level mutable state
        n = WORLD.num_vertices()  # module-level Graph
        sim = ctx._simulation  # simulator internals
        global TOTAL  # rebinding module state
        TOTAL = degree + n + len(str(sim))
        yield
        return degree

    return program


@node_program
def param_program(ctx: NodeContext, graph: Graph):  # Graph parameter
    yield
    return graph.num_vertices()
