"""RL001 near-miss fixture: closure constants and ctx access are fine."""

from repro.congest import NodeContext, node_program

PERIOD = 7  # immutable module constant: fine


def make(automaton, codec):
    table = {"a": 1}  # closure-level common-knowledge table: fine

    @node_program
    def program(ctx: NodeContext):
        total = table["a"] + len(ctx.neighbors) + PERIOD
        ctx.send_all(("v", total))
        inbox = yield
        return total + len(inbox)

    return program
