"""RL002 golden fixture: order/randomness/identity nondeterminism."""

import random

from repro.congest import NodeContext, node_program


@node_program
def program(ctx: NodeContext):
    nonce = random.randrange(10)  # unseeded global randomness
    token = hash(ctx.node)  # process-dependent identity
    peers = set(ctx.neighbors)
    first = next(iter(peers))  # materializes set order
    ctx.send_all(("pick", first, nonce, token))
    inbox = yield
    best = None
    for sender, payload in inbox.items():  # unordered iteration
        if payload:
            best = payload  # keeps the last match: order-dependent
    return best
