"""RL002 near-miss fixture: folds, guards, and cleansed order are fine."""

import random

from repro.congest import NodeContext, node_program


@node_program
def program(ctx: NodeContext):
    rng = random.Random(ctx.node * 7919)  # seeded instance: fine
    peers = set(ctx.neighbors)
    low = min(peers)  # order-insensitive reduction
    ctx.send_all(("low", low, rng.randrange(4)))
    inbox = yield
    best = None
    for sender, payload in sorted(inbox.items()):  # cleansed iteration
        if payload:
            best = payload
    count = 0
    smallest = None
    saw_any = False
    for payload in inbox.values():
        count = count + 1  # fold reads its own target
        if smallest is None or payload < smallest:
            smallest = payload  # min-fold guard reads the target
        if payload:
            saw_any = True  # constant result: any-fold
    return (low, best, count, smallest, saw_any)
