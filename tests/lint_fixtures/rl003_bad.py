"""RL003 golden fixture: round-structure violations."""

from repro.congest import NodeContext, node_program


@node_program
def program(ctx: NodeContext):
    parent = ctx.input["parent"]
    for _ in range(3):
        ctx.send(parent, ("tick", 1))  # same target every iteration, no yield
    inbox = yield
    ctx.send(parent, ("a", 1))
    ctx.send(parent, ("b", 2))  # second send to parent this round
    yield
    ctx.send_all(("x", 1))
    ctx.send(parent, ("y", 2))  # overlaps the send_all this round
    yield
    ctx.send(parent, ("done", None))  # no yield left: never delivered
    return len(inbox)
