"""RL003 near-miss fixture: broadcast loops and yielding loops are fine."""

from repro.congest import NodeContext, node_program


@node_program
def program(ctx: NodeContext):
    children = tuple(ctx.input["children"])
    for child in children:
        ctx.send(child, ("go", 1))  # distinct per-iteration targets
    inbox = yield
    while True:
        ctx.send_all(("beat", 1))  # the loop yields every iteration
        inbox = yield
        if inbox:
            return len(inbox)
