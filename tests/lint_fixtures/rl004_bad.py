"""RL004 golden fixture: payloads outside the Payload algebra."""

from repro.congest import NodeContext, node_program


@node_program
def program(ctx: NodeContext):
    weights = [1, 2, 3]
    ctx.send_all(("w", weights))  # list through a name
    yield
    ctx.send_all((1.5, {"a": 1}))  # float constant, dict literal
    yield
    ctx.send_all((len(ctx.neighbors) / 2,))  # true division makes a float
    yield
    return None
