"""RL004 near-miss fixture: the whole Payload algebra, nothing else."""

from repro.congest import NodeContext, node_program


@node_program
def program(ctx: NodeContext):
    payload = ("ok", 3, frozenset((1, 2)), None, True)
    ctx.send_all(payload)
    yield
    ctx.send_all((len(ctx.neighbors) // 2, "s"))  # floor division stays int
    yield
    return None
