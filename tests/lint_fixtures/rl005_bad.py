"""RL005 golden fixture: reliable_send with no finite retry bound."""

from repro.congest import NodeContext, node_program, reliable_send


@node_program
def program(ctx: NodeContext):
    target = min(ctx.neighbors)
    # Default max_retries=None: waits for the ack forever.
    retries = yield from reliable_send(ctx, target, ("v", 1))
    # Explicit None is just as unbounded.
    retries = yield from reliable_send(
        ctx, target, ("v", 2), tag="second", max_retries=None
    )
    yield
    return retries
