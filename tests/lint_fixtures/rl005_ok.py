"""RL005 near-miss fixture: every reliable_send carries a finite bound."""

from repro.congest import NodeContext, node_program, reliable_send


@node_program
def program(ctx: NodeContext):
    target = min(ctx.neighbors)
    retries = yield from reliable_send(ctx, target, ("v", 1), max_retries=3)
    # Positional bound (ctx, target, payload, tag, max_retries).
    retries = yield from reliable_send(ctx, target, ("v", 2), "second", 5)
    # A computed bound: the rule cannot prove it infinite, so it trusts it.
    budget = ctx.degree + 1
    retries = yield from reliable_send(
        ctx, target, ("v", 3), tag="third", max_retries=budget
    )
    yield
    return retries
