"""RL006 golden fixture: payloads that bust the declared CONGEST budget."""

from repro.congest import NodeContext, node_program


@node_program
def concat_program(ctx: NodeContext):
    # The accumulator grows by one O(log n) id per neighbor: its width is
    # degree-dependent, so no O(log n)-family bound exists (⊤).
    acc = ()
    for nb in sorted(ctx.neighbors):
        acc = acc + (nb,)
    ctx.send_all(("blob", acc))
    yield
    return None


@node_program(bits="O(1)")
def beacon_program(ctx: NodeContext):
    # A node id needs O(log n) bits — more than the declared O(1) budget.
    ctx.send_all(("id", ctx.node))
    yield
    return None
