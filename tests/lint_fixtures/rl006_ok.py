"""RL006 near-miss fixture: every payload certifies within O(log n)."""

from repro.congest import NodeContext, node_program


@node_program
def program(ctx: NodeContext):
    # A sum of budget-bounded terms: additive growth widens to one extra
    # log n term, still inside the O(log n) family.
    total = 0
    inbox = yield
    for nb in sorted(ctx.neighbors):
        total = total + inbox.get(nb, 0)
    # Masking pins the width to an 8-bit constant.
    checksum = total & 255
    ctx.send_all(("sum", total, checksum, ctx.node))
    yield
    return total


@node_program(bits="O(1)")
def pulse_program(ctx: NodeContext):
    # Constant-width payloads satisfy even the strictest budget.
    ctx.send_all(("pulse", 1, True))
    yield
    return None
