"""RL007 golden fixture: a message-emitting loop with no static exit."""

from repro.congest import NodeContext, node_program


@node_program
def program(ctx: NodeContext):
    # The loop yields (so RL003 is satisfied) but never breaks, returns,
    # or raises: the number of message-emitting rounds is unbounded.
    while True:
        ctx.send_all(("ping", 1))
        yield
