"""RL007 near-miss fixtures: every message loop has a reachable exit."""

from repro.congest import NodeContext, node_program


@node_program
def program(ctx: NodeContext):
    rounds = 0
    while True:
        ctx.send_all(("ping", rounds))
        inbox = yield
        rounds = rounds + 1
        if rounds > ctx.degree:
            break
    yield
    return rounds


@node_program
def raising_program(ctx: NodeContext):
    while True:
        ctx.send_all(("probe", 0))
        inbox = yield
        if inbox:
            raise RuntimeError("partner answered out of protocol")
