"""RL008 golden fixture: nondeterminism reaching a payload through a chain.

RL002's one-hop patterns cannot see either violation here: the
materialized inbox order travels through a second assignment before it
is sent, and the wall-clock read is not covered by RL002 at all.
"""

import time

from repro.congest import NodeContext, node_program


@node_program
def program(ctx: NodeContext):
    inbox = yield
    first = list(inbox)
    relay = first
    stamp = time.monotonic()
    ctx.send_all(("pick", relay[0]))
    yield
    return stamp is not None
