"""RL008 near-miss fixture: chains cleansed at the source stay silent."""

from repro.congest import NodeContext, node_program


@node_program
def program(ctx: NodeContext):
    inbox = yield
    # Sorting at the source makes every downstream hop deterministic.
    first = sorted(inbox)
    relay = first
    # Keyed dict reads are deterministic even on an unordered inbox.
    value = inbox.get(min(ctx.neighbors), 0)
    ctx.send_all(("pick", relay[0], value))
    yield
    return None
