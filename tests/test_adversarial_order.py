"""Adversarial inbox ordering (the dynamic RL002 cross-check) and the
runtime hardening that rides along: payload path errors, undelivered
message accounting, and the double-run guard."""

import pytest

from repro.algebra import compile_formula
from repro.congest import INBOX_ORDERS, Simulation, run_protocol
from repro.congest.messages import payload_bits
from repro.distributed import build_elimination_tree, decide_pipeline
from repro.errors import CongestError, PayloadTypeError
from repro.graph import generators as gen
from repro.mso import formulas
from repro.treedepth import treedepth

SEEDS = [1, 7, 1234]


def networks():
    yield gen.path(6)
    yield gen.star(5)
    yield gen.cycle(7)
    yield gen.random_bounded_treedepth(12, 3, seed=5)


# -- shuffle mode is a no-op for conforming protocols ------------------------

def test_elimination_tree_invariant_under_shuffle():
    for g in networks():
        d = treedepth(g)
        baseline = build_elimination_tree(g, d)
        assert baseline.accepted
        reference = {
            v: (out.parent, out.depth, out.children, out.bag)
            for v, out in baseline.outputs.items()
        }
        for seed in SEEDS:
            shuffled = build_elimination_tree(
                g, d, inbox_order="shuffle", seed=seed
            )
            assert shuffled.accepted
            assert {
                v: (out.parent, out.depth, out.children, out.bag)
                for v, out in shuffled.outputs.items()
            } == reference


@pytest.mark.parametrize("order", ["shuffle", "sorted", "reversed"])
def test_decision_invariant_under_adversarial_orders(order):
    automaton = compile_formula(formulas.triangle_free(), ())
    for g in networks():
        d = treedepth(g)
        baseline = decide_pipeline(automaton, g, d=d)
        for seed in SEEDS:
            outcome = decide_pipeline(
                automaton, g, d=d, inbox_order=order, seed=seed
            )
            assert outcome.accepted == baseline.accepted
            assert outcome.total_rounds == baseline.total_rounds


def test_invalid_inbox_order_rejected():
    with pytest.raises(CongestError):
        Simulation(gen.path(2), _echo_program, inbox_order="chaos")
    assert "arrival" in INBOX_ORDERS and "shuffle" in INBOX_ORDERS


def test_shuffle_actually_permutes_inboxes():
    """An order-sensitive probe must observe different inboxes under
    different shuffle seeds (otherwise the cross-check checks nothing)."""
    g = gen.star(9)  # center sees 9 messages: 9! orderings
    observed = set()
    for seed in range(6):
        result = run_protocol(
            g, _first_sender_program, inbox_order="shuffle", seed=seed
        )
        observed.add(result.outputs[0])
    assert len(observed) > 1


def _echo_program(ctx):
    yield
    return None


def _first_sender_program(ctx):
    ctx.send_all(("ping", ctx.node))
    inbox = yield
    for sender in inbox:  # deliberately order-sensitive probe
        return sender
    return None


# -- payload hardening -------------------------------------------------------

@pytest.mark.parametrize(
    "payload,path,type_name",
    [
        ([1, 2], "payload", "list"),
        ((1, ("a", 2.5)), "payload[1][1]", "float"),
        ((1, {"k": 1}), "payload[1]", "dict"),
        (({1, 2},), "payload[0]", "set"),
        ((1, (frozenset(((2, b"x"),)),)), "payload[1][0]{0}[1]", "bytes"),
    ],
)
def test_payload_bits_names_offending_subvalue(payload, path, type_name):
    with pytest.raises(PayloadTypeError) as exc:
        payload_bits(payload)
    assert exc.value.path == path
    assert exc.value.type_name == type_name
    assert path in str(exc.value)


def test_payload_type_error_is_congest_error():
    assert issubclass(PayloadTypeError, CongestError)


def test_payload_bits_accepts_full_algebra():
    assert payload_bits(("ok", 3, frozenset((1, 2)), None, True)) > 0


# -- runtime metrics edge cases ----------------------------------------------

def _dead_letter_program(ctx):
    ctx.send_all(("lost", 1))
    if False:
        yield
    return ctx.node


def test_undelivered_messages_are_counted():
    g = gen.path(3)
    result = run_protocol(g, _dead_letter_program)
    # Every node halts in the sweep where its sends were queued: none of
    # the 2*|E| messages can be delivered.
    assert result.undelivered == 2 * g.num_edges()
    assert result.metrics.undelivered_messages == result.undelivered
    assert "undelivered" in result.metrics.summary()


def test_clean_protocols_have_no_undelivered_messages():
    g = gen.random_bounded_treedepth(10, 3, seed=2)
    result = build_elimination_tree(g, treedepth(g))
    assert result.accepted


def test_simulation_cannot_run_twice():
    sim = Simulation(gen.path(3), _echo_program)
    sim.run()
    with pytest.raises(CongestError):
        sim.run()  # rerunning would silently reuse exhausted generators
