"""Unit tests for individual automata and symbol machinery."""

import pytest

from repro.algebra import (
    BaseStructure,
    BaseSymbol,
    ComplementAutomaton,
    ConstAutomaton,
    EdgeWitnessAutomaton,
    GraphDegreesAutomaton,
    NonEmptyAutomaton,
    ProductAutomaton,
    ProjectionAutomaton,
    SingletonAutomaton,
    base_structure,
    enumerate_symbol_choices,
    extend_symbol,
    owned_items,
    symbol_for_assignment,
)
from repro.errors import ReproError
from repro.graph import generators as gen
from repro.mso import Sort, Var, vertex_set
from repro.treedepth import EliminationForest


def chain_forest():
    # Path 0-1-2 with elimination chain 0 -> 1 -> 2.
    return EliminationForest({0: None, 1: 0, 2: 1})


def make_symbol(depth, anc_edges, vbits=(), ebits=None, labels=()):
    structure = BaseStructure(
        depth=depth,
        anc_edges=tuple(anc_edges),
        vlabels=frozenset(labels),
        elabels=tuple((p, frozenset()) for p in anc_edges),
    )
    ebits = ebits or {}
    return BaseSymbol(
        structure=structure,
        vbits=frozenset(vbits),
        ebits=tuple((p, frozenset(ebits.get(p, ()))) for p in anc_edges),
    )


# ----------------------------------------------------------------------
# Symbols
# ----------------------------------------------------------------------

def test_base_structure_from_graph():
    g = gen.path(3)
    forest = chain_forest()
    s2 = base_structure(g, forest, 2)
    assert s2.depth == 3
    assert s2.anc_edges == (2,)  # edge to vertex 1 at position 2
    s0 = base_structure(g, forest, 0)
    assert s0.depth == 1 and s0.anc_edges == ()


def test_owned_items():
    g = gen.path(3)
    forest = chain_forest()
    v, edges = owned_items(g, forest, 2)
    assert v == 2
    assert edges == [(2, (1, 2))]


def test_symbol_for_assignment_sets_bits():
    g = gen.path(3)
    forest = chain_forest()
    structure = base_structure(g, forest, 2)
    v, edges = owned_items(g, forest, 2)
    s = Var("S", Sort.VERTEX_SET)
    m = Var("M", Sort.EDGE_SET)
    symbol = symbol_for_assignment(
        structure, (s, m), v, edges,
        {s: frozenset({2}), m: frozenset({(1, 2)})},
    )
    assert symbol.vbits == {0}
    assert symbol.edge_bits_at(2) == {1}


def test_enumerate_symbol_choices_counts():
    g = gen.path(3)
    forest = chain_forest()
    structure = base_structure(g, forest, 2)
    v, edges = owned_items(g, forest, 2)
    s = Var("S", Sort.VERTEX_SET)
    m = Var("M", Sort.EDGE_SET)
    choices = list(enumerate_symbol_choices(structure, (s, m), v, edges))
    # vertex in/out of S x edge in/out of M.
    assert len(choices) == 4
    chosen_sets = {tuple(c.chosen) for c in choices}
    assert len(chosen_sets) == 4


def test_extend_symbol_vertex_and_edge():
    symbol = make_symbol(3, (1, 2))
    vertex_exts = list(extend_symbol(symbol, 0, Sort.VERTEX_SET))
    assert len(vertex_exts) == 2
    edge_exts = list(extend_symbol(symbol, 0, Sort.EDGE_SET))
    assert len(edge_exts) == 4  # 2 ancestor-edge slots


# ----------------------------------------------------------------------
# Atomic automata, driven by hand
# ----------------------------------------------------------------------

def run_chain(automaton, symbols):
    """Run a chain graph: deepest symbol first; each is glued then forgotten."""
    state = None
    for depth in range(len(symbols), 0, -1):
        sym = symbols[depth - 1]
        leaf = automaton.leaf(sym)
        if state is None:
            state = leaf
        else:
            state = automaton.glue(depth, state, leaf)
        state = automaton.forget(depth, state)
    return state


def test_singleton_automaton():
    s = Var("S", Sort.VERTEX_SET)
    aut = SingletonAutomaton((s,), 0)
    symbols = [make_symbol(1, ()), make_symbol(2, (1,), vbits=(0,))]
    state = run_chain(aut, symbols)
    assert aut.accepts(state)
    both = [make_symbol(1, (), vbits=(0,)), make_symbol(2, (1,), vbits=(0,))]
    assert not aut.accepts(run_chain(aut, both))
    none = [make_symbol(1, ()), make_symbol(2, (1,))]
    assert not aut.accepts(run_chain(aut, none))


def test_edge_witness_adjacency():
    x = Var("X", Sort.VERTEX_SET)
    y = Var("Y", Sort.VERTEX_SET)
    aut = EdgeWitnessAutomaton((x, y), x=0, y=1)
    # Chain 0-1: vertex 1 (deeper) in X, vertex 0 in Y, edge present.
    symbols = [make_symbol(1, (), vbits=(1,)), make_symbol(2, (1,), vbits=(0,))]
    assert aut.accepts(run_chain(aut, symbols))
    # No edge between them (anc_edges empty).
    no_edge = [make_symbol(1, (), vbits=(1,)), make_symbol(2, (), vbits=(0,))]
    assert not aut.accepts(run_chain(aut, no_edge))
    # Edge present but bits on the same endpoint only.
    same = [make_symbol(1, ()), make_symbol(2, (1,), vbits=(0, 1))]
    assert not aut.accepts(run_chain(aut, same))


def test_edge_witness_with_filter():
    e = Var("E", Sort.EDGE_SET)
    x = Var("X", Sort.VERTEX_SET)
    aut = EdgeWitnessAutomaton((e, x), x=1, y=None, edge_filter=0)
    # Edge in E, deeper endpoint in X.
    hit = [make_symbol(1, ()), make_symbol(2, (1,), vbits=(1,), ebits={1: (0,)})]
    assert aut.accepts(run_chain(aut, hit))
    # Edge not in E.
    miss = [make_symbol(1, ()), make_symbol(2, (1,), vbits=(1,))]
    assert not aut.accepts(run_chain(aut, miss))
    # Edge in E, ancestor endpoint in X (resolved at the ancestor's forget).
    anc = [make_symbol(1, (), vbits=(1,)), make_symbol(2, (1,), ebits={1: (0,)})]
    assert aut.accepts(run_chain(aut, anc))


def test_graph_degrees_automaton():
    aut = GraphDegreesAutomaton((), frozenset({0, 1}), cap=2)
    # Chain 0-1-2 (path): middle vertex has degree 2 -> violated.
    symbols = [
        make_symbol(1, ()),
        make_symbol(2, (1,)),
        make_symbol(3, (2,)),
    ]
    assert not aut.accepts(run_chain(aut, symbols))
    # Single edge: both endpoints degree 1 -> fine.
    ok = [make_symbol(1, ()), make_symbol(2, (1,))]
    assert aut.accepts(run_chain(aut, ok))


def test_pending_glue_boundary_mismatch_raises():
    x = Var("X", Sort.VERTEX_SET)
    aut = EdgeWitnessAutomaton((x,), x=0, y=None)
    s1 = aut.leaf(make_symbol(2, (1,)))
    s2 = aut.leaf(make_symbol(3, (1,)))
    with pytest.raises(ReproError):
        aut.glue(2, s1, s2)


def test_pending_glue_double_base_raises():
    x = Var("X", Sort.VERTEX_SET)
    aut = EdgeWitnessAutomaton((x,), x=0, y=None)
    s1 = aut.leaf(make_symbol(2, (1,)))
    with pytest.raises(ReproError):
        aut.glue(2, s1, s1)


# ----------------------------------------------------------------------
# Composites
# ----------------------------------------------------------------------

def test_product_and_complement():
    t = ConstAutomaton((), True)
    f = ConstAutomaton((), False)
    sym = make_symbol(1, ())
    both = ProductAutomaton((), [t, f], conjunctive=True)
    either = ProductAutomaton((), [t, f], conjunctive=False)
    s_both = both.forget(1, both.leaf(sym))
    s_either = either.forget(1, either.leaf(sym))
    assert not both.accepts(s_both)
    assert either.accepts(s_either)
    neg = ComplementAutomaton((), f)
    assert neg.accepts(neg.forget(1, neg.leaf(sym)))


def test_product_requires_children():
    with pytest.raises(ReproError):
        ProductAutomaton((), [], conjunctive=True)


def test_projection_scope_discipline():
    s = vertex_set("S")
    inner = NonEmptyAutomaton((s,), 0)
    proj = ProjectionAutomaton(inner, s)
    assert proj.scope == ()
    wrong = vertex_set("T")
    with pytest.raises(ReproError):
        ProjectionAutomaton(inner, wrong)


def test_projection_exists_nonempty():
    s = vertex_set("S")
    inner = NonEmptyAutomaton((s,), 0)
    proj = ProjectionAutomaton(inner, s)
    sym = make_symbol(1, ())
    state = proj.forget(1, proj.leaf(sym))
    assert proj.accepts(state)  # some subset of one vertex is nonempty


def test_intern_and_num_classes():
    aut = ConstAutomaton((), True)
    sym = make_symbol(1, ())
    aut.leaf(sym)
    assert aut.num_classes() >= 1
    first = aut.intern(aut.leaf(sym))
    assert aut.intern(aut.leaf(sym)) == first
