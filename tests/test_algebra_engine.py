"""Courcelle engine vs brute-force semantics: the core correctness tests.

Every catalog formula is checked on a zoo of small graphs against
``repro.mso.semantics`` (and the direct graph oracles), over several
elimination forests — including deliberately non-optimal ones, since
correctness must not depend on the forest's depth.
"""

import pytest

from repro.algebra import check, check_assignment, compile_formula, count, optimize
from repro.graph import Graph
from repro.graph import generators as gen
from repro.graph import properties as props
from repro.mso import (
    count_satisfying_assignments,
    edge_set,
    evaluate,
    formulas,
    parse,
    vertex_set,
)
from repro.mso import optimize as brute_optimize
from repro.treedepth import dfs_elimination_forest, optimal_elimination_forest


def graph_zoo():
    return [
        Graph([0]),
        gen.path(2),
        gen.path(5),
        gen.cycle(3),
        gen.cycle(4),
        gen.cycle(5),
        gen.star(3),
        gen.clique(4),
        gen.paw(),
        gen.diamond(),
        gen.caterpillar(3, 1),
        gen.random_connected_graph(6, 3, seed=1),
        gen.random_bounded_treedepth(7, 3, seed=2),
    ]


def forests_for(g):
    yield optimal_elimination_forest(g)
    yield dfs_elimination_forest(g)


# Each entry: formula, fast ground-truth oracle.  (The oracles themselves
# are cross-validated against the brute-force MSO semantics on tiny graphs
# in test_mso_semantics.py, so this closes the loop without paying the
# exponential cost of `evaluate` on every zoo graph.)
CLOSED_FORMULAS = {
    "triangle_free": (
        formulas.triangle_free(),
        lambda g: not props.has_subgraph(g, gen.triangle()),
    ),
    "acyclic": (formulas.acyclic(), props.is_acyclic),
    "connected": (formulas.connected(), lambda g: g.is_connected()),
    "2_colorable": (formulas.k_colorable(2), lambda g: props.is_k_colorable(g, 2)),
    "non_3_colorable": (
        formulas.not_k_colorable(3),
        lambda g: not props.is_k_colorable(g, 3),
    ),
    "hamiltonian": (
        formulas.hamiltonian_cycle_exists(),
        props.has_hamiltonian_cycle,
    ),
    "perfect_matching": (
        formulas.has_perfect_matching(),
        lambda g: g.num_vertices() % 2 == 0
        and props.max_matching_size(g) * 2 == g.num_vertices(),
    ),
    "degree_gt_2": (
        formulas.exists_vertex_of_degree_greater(2),
        lambda g: props.max_degree(g) > 2,
    ),
    "c4_free": (
        formulas.h_free(gen.cycle(4)),
        lambda g: not props.has_subgraph(g, gen.cycle(4)),
    ),
    "claw_free": (
        formulas.h_free(gen.claw()),
        lambda g: not props.has_subgraph(g, gen.claw()),
    ),
}


@pytest.mark.parametrize("name", sorted(CLOSED_FORMULAS))
def test_engine_matches_oracles(name):
    formula, oracle = CLOSED_FORMULAS[name]
    automaton = compile_formula(formula, ())
    for g in graph_zoo():
        expected = oracle(g)
        for forest in forests_for(g):
            assert check(formula, g, forest, automaton) == expected, (name, g)


@pytest.mark.parametrize(
    "name", ["triangle_free", "acyclic", "connected", "2_colorable"]
)
def test_engine_matches_brute_force_semantics_on_tiny_graphs(name):
    formula, _ = CLOSED_FORMULAS[name]
    automaton = compile_formula(formula, ())
    for g in [gen.path(4), gen.cycle(4), gen.star(3), gen.paw(),
              gen.random_connected_graph(5, 2, seed=9)]:
        expected = evaluate(g, formula)
        forest = optimal_elimination_forest(g)
        assert check(formula, g, forest, automaton) == expected, (name, g)


def test_engine_on_disconnected_graphs():
    from repro.graph import disjoint_union

    g = disjoint_union(gen.cycle(3), gen.path(3))
    forest = optimal_elimination_forest(g)
    assert not check(formulas.connected(), g, forest)
    assert not check(formulas.triangle_free(), g, forest)
    assert not check(formulas.acyclic(), g, forest)
    g2 = disjoint_union(gen.path(2), gen.path(2))
    forest2 = optimal_elimination_forest(g2)
    assert check(formulas.acyclic(), g2, forest2)
    assert check(formulas.has_perfect_matching(), g2, forest2)


def test_engine_rejects_invalid_forest():
    from repro.errors import DecompositionError
    from repro.treedepth import EliminationForest

    g = Graph(range(3), [(0, 1), (1, 2)])
    bad = EliminationForest({0: None, 1: 0, 2: 0})
    with pytest.raises(DecompositionError):
        check(formulas.acyclic(), g, bad)


def test_engine_empty_graph_falls_back():
    g = Graph()
    from repro.treedepth import EliminationForest

    forest = EliminationForest({})
    assert check(formulas.triangle_free(), g, forest)


def test_labeled_decision():
    g = gen.path(3)
    for v, lab in [(0, "red"), (1, "blue"), (2, "red")]:
        g.add_vertex_label(v, lab)
    forest = optimal_elimination_forest(g)
    formula = formulas.properly_2_labeled()
    assert check(formula, g, forest) == evaluate(g, formula)
    bad = gen.path(3)
    bad.add_vertex_label(0, "red")
    bad.add_vertex_label(1, "red")
    bad.add_vertex_label(2, "blue")
    forest_bad = optimal_elimination_forest(bad)
    assert check(formula, bad, forest_bad) == evaluate(bad, formula)


def test_edge_labeled_decision():
    g = gen.path(3)
    g.add_edge_label(0, 1, "marked")
    forest = optimal_elimination_forest(g)
    f = parse("exists e:E . label(marked, e)")
    assert check(f, g, forest)
    g2 = gen.path(3)
    assert not check(f, g2, optimal_elimination_forest(g2))


def test_check_assignment_matches_semantics():
    s = vertex_set("S")
    formula = formulas.independent_set(s)
    g = gen.cycle(5)
    forest = optimal_elimination_forest(g)
    automaton = compile_formula(formula, (s,))
    for subset in [frozenset(), frozenset({0, 2}), frozenset({0, 1}), frozenset({1, 3})]:
        expected = evaluate(g, formula, {s: subset})
        assert (
            check_assignment(formula, g, forest, {s: subset}, automaton) == expected
        )


def test_check_assignment_edge_set():
    m = edge_set("M")
    formula = formulas.matching(m)
    g = gen.path(4)
    forest = optimal_elimination_forest(g)
    assert check_assignment(formula, g, forest, {m: frozenset({(0, 1), (2, 3)})})
    assert not check_assignment(formula, g, forest, {m: frozenset({(0, 1), (1, 2)})})


# ----------------------------------------------------------------------
# Optimization (Lemma 4.6)
# ----------------------------------------------------------------------

@pytest.mark.parametrize(
    "factory,maximize,oracle",
    [
        (formulas.independent_set, True, props.max_independent_set),
        (formulas.vertex_cover, False, props.min_vertex_cover),
        (formulas.dominating_set, False, props.min_dominating_set),
    ],
)
def test_optimize_vertex_sets_match_bruteforce(factory, maximize, oracle):
    s = vertex_set("S")
    formula = factory(s)
    automaton = compile_formula(formula, (s,))
    for g in [gen.path(5), gen.cycle(5), gen.star(4), gen.paw(),
              gen.random_connected_graph(6, 3, seed=4)]:
        forest = optimal_elimination_forest(g)
        result = optimize(formula, g, forest, s, maximize=maximize, automaton=automaton)
        assert result is not None
        expected_value, _ = oracle(g)
        assert result.value == expected_value, g
        # The witness itself must satisfy the predicate with the right weight.
        assert evaluate(g, formula, {s: result.witness})
        assert len(result.witness) == expected_value


def test_optimize_weighted_independent_set():
    g = gen.path(4)
    g.set_vertex_weight(0, 2)
    g.set_vertex_weight(1, 10)
    g.set_vertex_weight(2, 2)
    g.set_vertex_weight(3, 2)
    s = vertex_set("S")
    formula = formulas.independent_set(s)
    forest = optimal_elimination_forest(g)
    result = optimize(formula, g, forest, s, maximize=True)
    assert result is not None
    assert result.value == 12  # {1, 3}
    assert result.witness == frozenset({1, 3})


def test_optimize_max_matching():
    m = edge_set("M")
    formula = formulas.matching(m)
    for g in [gen.path(5), gen.cycle(5), gen.star(4)]:
        forest = optimal_elimination_forest(g)
        result = optimize(formula, g, forest, m, maximize=True)
        assert result is not None
        assert result.value == props.max_matching_size(g)
        assert props.is_matching(g, result.witness)


def test_optimize_minimum_spanning_tree():
    g = gen.cycle(4)
    g.set_edge_weight(0, 1, 5)
    g.set_edge_weight(1, 2, 1)
    g.set_edge_weight(2, 3, 1)
    g.set_edge_weight(0, 3, 1)
    t = edge_set("T")
    formula = formulas.spanning_tree(t)
    forest = optimal_elimination_forest(g)
    result = optimize(formula, g, forest, t, maximize=False)
    assert result is not None
    assert result.value == props.min_spanning_tree_weight(g) == 3
    assert props.is_spanning_tree(g, result.witness)


def test_optimize_infeasible():
    # A clique has no spanning tree made of non-edges... use an impossible
    # predicate instead: an independent set that is also the whole K3.
    from repro.mso import IncCounts, and_

    g = gen.path(2)
    t = edge_set("T")
    impossible = and_(
        formulas.matching(t), IncCounts(t, frozenset({2}))
    )  # matching with all degrees exactly 2
    forest = optimal_elimination_forest(g)
    assert optimize(impossible, g, forest, t) is None


def test_optimize_min_feedback_vertex_set():
    s = vertex_set("S")
    formula = formulas.feedback_vertex_set(s)
    for g in [gen.cycle(4), gen.paw(), gen.diamond()]:
        forest = optimal_elimination_forest(g)
        result = optimize(formula, g, forest, s, maximize=False)
        assert result is not None
        expected, _ = props.min_feedback_vertex_set(g)
        assert result.value == expected
        assert props.is_feedback_vertex_set(g, result.witness)


# ----------------------------------------------------------------------
# Counting (Section 6)
# ----------------------------------------------------------------------

def test_count_triangles_matches_enumeration():
    from repro.algebra.compiler import compile_with_singletons

    formula, variables = formulas.triangle_assignment()
    automaton = compile_with_singletons(formula, variables)
    for g in [gen.clique(4), gen.cycle(5), gen.paw(), gen.diamond()]:
        forest = optimal_elimination_forest(g)
        got = count(formula, g, forest, variables, automaton)
        assert got == 6 * props.count_triangles(g), g


def test_count_independent_sets():
    s = vertex_set("S")
    formula = formulas.independent_set(s)
    for g in [gen.path(4), gen.cycle(4), gen.star(3)]:
        forest = optimal_elimination_forest(g)
        got = count(formula, g, forest, (s,))
        expected = count_satisfying_assignments(g, formula, (s,))
        assert got == expected, g


def test_count_perfect_matchings():
    m = edge_set("M")
    formula = formulas.perfect_matching(m)
    g = gen.cycle(4)
    forest = optimal_elimination_forest(g)
    assert count(formula, g, forest, (m,)) == 2
    g2 = gen.clique(4)
    assert count(formula, g2, optimal_elimination_forest(g2), (m,)) == 3


def test_num_classes_is_positive_and_reported():
    formula = formulas.triangle_free()
    automaton = compile_formula(formula, ())
    g = gen.clique(4)
    check(formula, g, optimal_elimination_forest(g), automaton)
    assert automaton.num_classes() > 0
