"""Tests for the :mod:`repro.api` facade: Session, Result, replay.

Covers all four workloads through :class:`~repro.api.Session`, the
argument validation of the facade, and the satellite regression for
:attr:`Result.replay_args`: a faulty run replayed through the facade must
reproduce the verdict *and* the fault trace exactly.
"""

import pytest

from repro.api import Result, Session
from repro.distributed import decide_pipeline
from repro.errors import ReproError
from repro.faults import FaultPlan, RetryPolicy
from repro.graph import generators as gen
from repro.graph.properties import (
    count_triangles,
    is_independent_set,
    min_vertex_cover,
)
from repro.mso import formulas, vertex_set
from repro.obs import Tracer


@pytest.fixture(scope="module")
def network():
    return gen.random_bounded_treedepth(12, 3, seed=5)


# -- decide -----------------------------------------------------------------

def test_decide_matches_naive_pipeline(network):
    session = Session(network, d=3)
    result = session.decide(formulas.triangle_free())
    assert result.workload == "decide"
    assert isinstance(result, Result)
    automaton, codec = session.cache.automaton_with_codec(
        formulas.triangle_free(), (), d=3, labels=()
    )
    baseline = decide_pipeline(
        automaton, network, 3, codec=codec, engine="naive"
    )
    assert result.verdict == baseline.accepted
    assert result.rounds == baseline.total_rounds
    assert result.phase_rounds["elimination"] + result.phase_rounds["checking"] \
        == result.rounds
    assert result.messages > 0
    assert result.max_payload_bits > 0


def test_decide_parses_text_formulas(network):
    result = Session(network, d=3).decide(
        "forall x:V . exists y:V . adj(x, y)"
    )
    assert result.verdict is True


def test_decide_treedepth_exceeded_yields_none_verdict():
    # td(C8) = 4, so the d=3 promise legitimately fails.
    result = Session(gen.cycle(8), d=3).decide(formulas.triangle_free())
    assert result.treedepth_exceeded
    assert result.verdict is None


def test_decide_rejects_open_formulas(network):
    with pytest.raises(ReproError):
        Session(network, d=3).decide(formulas.independent_set(vertex_set("S")))


# -- optimize ---------------------------------------------------------------

def test_optimize_max_independent_set_on_cycle():
    g = gen.cycle(8)
    result = Session(g, d=4).optimize(formulas.independent_set(vertex_set("S")))
    assert result.workload == "optimize"
    assert result.verdict is True
    assert result.value == 4
    assert is_independent_set(g, result.witness)


def test_optimize_min_sense_vertex_cover():
    g = gen.cycle(8)
    result = Session(g, d=4).optimize(
        formulas.vertex_cover(vertex_set("S")), sense="min"
    )
    best, _cover = min_vertex_cover(g)
    assert result.value == best == 4


def test_optimize_weights_override_leaves_graph_untouched():
    g = gen.cycle(8)
    weights = {v: (10 if v == 0 else 1) for v in g.vertices()}
    result = Session(g, d=4).optimize(
        formulas.independent_set(vertex_set("S")), weights=weights
    )
    assert 0 in result.witness
    assert result.value == 13  # vertex 0 (10) + three others (1 each)
    assert all(g.vertex_weight(v) == 1 for v in g.vertices())


def test_optimize_rejects_bad_sense_and_closed_formula(network):
    with pytest.raises(ReproError):
        Session(network, d=3).optimize(
            formulas.independent_set(vertex_set("S")), sense="biggest"
        )
    with pytest.raises(ReproError):
        Session(network, d=3).optimize(formulas.triangle_free())
    with pytest.raises(ReproError):
        Session(network, d=3).optimize(
            formulas.independent_set(vertex_set("S")), weights={"no-such": 1}
        )


# -- count ------------------------------------------------------------------

def test_count_triangle_assignments(network):
    formula, _variables = formulas.triangle_assignment()
    result = Session(network, d=3).count(formula)
    assert result.workload == "count"
    assert result.verdict is True
    assert result.count == 6 * count_triangles(network)


def test_count_rejects_closed_formula(network):
    with pytest.raises(ReproError):
        Session(network, d=3).count(formulas.triangle_free())


# -- certify ----------------------------------------------------------------

def test_certify_acyclic_tree():
    tree = gen.random_tree(20, seed=3)
    result = Session(tree, d=5).certify(formulas.acyclic())
    assert result.workload == "certify"
    assert result.verdict is True
    assert result.rounds == result.phase_rounds["verification"]
    assert result.max_payload_bits > 0
    assert result.num_classes > 0


# -- session validation -----------------------------------------------------

def test_session_rejects_unknown_engine_and_order(network):
    with pytest.raises(ReproError):
        Session(network, d=3, engine="warp")
    with pytest.raises(ReproError):
        Session(network, d=3, inbox_order="chaotic")


def test_session_trace_knob(network):
    session = Session(network, d=3, trace=True)
    assert isinstance(session.tracer, Tracer)
    mine = Tracer()
    assert Session(network, d=3, trace=mine).tracer is mine
    assert Session(network, d=3).tracer is None


def test_engines_agree_through_facade(network):
    phi = formulas.k_colorable(2)
    batched = Session(network, d=3, engine="batched").decide(phi)
    naive = Session(network, d=3, engine="naive").decide(phi)
    assert batched.verdict == naive.verdict
    assert batched.rounds == naive.rounds
    assert batched.messages == naive.messages
    assert batched.max_payload_bits == naive.max_payload_bits


# -- replay regression (satellite) ------------------------------------------

def test_replay_args_reproduce_faulty_run_and_fault_trace(network):
    plan = FaultPlan(
        seed=4, drop_rate=0.02, duplicate_rate=0.02, delay_rate=0.01,
        max_delay=2,
    )
    session = Session(
        network, d=3, seed=9, faults=plan,
        retry=RetryPolicy(attempts=4), trace=True,
    )
    first = session.decide(formulas.triangle_free())
    assert session.tracer.fault_counts  # faults actually fired

    replay_session = Session(network, d=3, trace=True, **first.replay_args)
    replay = replay_session.decide(formulas.triangle_free())

    assert replay.verdict == first.verdict
    assert replay.rounds == first.rounds
    assert replay.messages == first.messages
    assert replay_session.tracer.fault_counts == session.tracer.fault_counts


def test_replay_args_include_engine(network):
    result = Session(network, d=3, engine="naive", seed=1).decide(
        formulas.triangle_free()
    )
    assert result.replay_args["engine"] == "naive"
    assert result.replay_args["seed"] == 1
